"""Figure 7: live-out predictor accuracy vs size and associativity."""

from conftest import register_table

from repro.experiments import figure7, format_figure7


def test_fig7_liveout_predictor_sweep(benchmark):
    data = benchmark.pedantic(figure7, rounds=1, iterations=1)
    register_table("fig7_liveout_sweep", format_figure7(data))
    accuracy = data["accuracy"]
    entries = data["entries"]
    # Space-limited: accuracy must grow with table size (2-way).
    two_way = [accuracy[2][e] for e in entries]
    assert two_way == sorted(two_way)
    # 2-way beats direct-mapped at the smallest size.
    assert accuracy[2][entries[0]] >= accuracy[1][entries[0]]
