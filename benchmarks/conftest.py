"""Shared infrastructure for the benchmark harness.

Each ``bench_*.py`` regenerates one of the paper's tables or figures.  The
rendered tables are registered here and echoed to the terminal after the
run (pytest captures per-test stdout, so ordinary prints would be hidden);
they are also written to ``benchmarks/results/`` for later inspection.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict

RESULTS_DIR = Path(__file__).parent / "results"

_tables: Dict[str, str] = {}


def register_table(name: str, text: str) -> None:
    """Record a rendered experiment table for the end-of-run summary."""
    _tables[name] = text
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    from repro.experiments.runner import SWEEP_STATS

    if SWEEP_STATS.get("sweep.jobs"):
        terminalreporter.write_sep("=", "sweep runner")
        terminalreporter.write_line(
            f"jobs={int(SWEEP_STATS.get('sweep.jobs'))} "
            f"memo_hits={int(SWEEP_STATS.get('sweep.memo_hits'))} "
            f"disk_hits={int(SWEEP_STATS.get('sweep.disk_hits'))} "
            f"executed={int(SWEEP_STATS.get('sweep.executed'))} "
            f"exec_seconds={SWEEP_STATS.get('sweep.exec_seconds'):.1f}")
    if not _tables:
        return
    terminalreporter.write_sep("=", "paper tables & figures (reproduced)")
    for name in sorted(_tables):
        terminalreporter.write_line("")
        for line in _tables[name].splitlines():
            terminalreporter.write_line(line)
    terminalreporter.write_line("")
    terminalreporter.write_line(
        f"(tables also written to {RESULTS_DIR}/)")


def pytest_report_header(config):
    length = os.environ.get("REPRO_SIM_INSTRUCTIONS", "30000 (default)")
    benches = os.environ.get("REPRO_EXPERIMENT_BENCHMARKS", "full suite")
    return (f"repro benchmarks: {length} instructions/benchmark, "
            f"benchmarks={benches}")
