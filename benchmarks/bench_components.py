"""Micro-benchmarks of the substrate components (real pytest-benchmark
timing loops, unlike the single-shot figure harnesses)."""

from repro.config import FragmentConfig, TracePredictorConfig
from repro.emulator.machine import Machine
from repro.frontend.fragments import carve_stream, walk_fragment
from repro.predictors.trace_predictor import TracePredictor
from repro.workloads.kernels import hash_kernel
from repro.workloads.suite import get_benchmark, oracle_stream


def test_bench_emulator_throughput(benchmark):
    program = hash_kernel(64, 32)

    def run():
        return Machine(program).run(10_000).instructions_executed

    executed = benchmark(run)
    assert executed > 5000


def test_bench_fragment_carving(benchmark):
    stream = oracle_stream("gzip", 10_000).stream
    config = FragmentConfig()

    def carve():
        return sum(1 for _ in carve_stream(stream, config))

    fragments = benchmark(carve)
    assert fragments > 100


def test_bench_static_walk(benchmark):
    program = get_benchmark("gzip")
    stream = oracle_stream("gzip", 5_000).stream
    config = FragmentConfig()
    keys = [f.key for f in carve_stream(stream, config)][:200]

    def walk_all():
        return sum(walk_fragment(program, k.start_pc, k.directions,
                                 config).length for k in keys)

    total = benchmark(walk_all)
    assert total > 0


def test_bench_trace_predictor(benchmark):
    stream = oracle_stream("gzip", 10_000).stream
    keys = [f.key for f in carve_stream(stream, FragmentConfig())]

    def train_and_predict():
        predictor = TracePredictor(TracePredictorConfig())
        hits = 0
        for key in keys:
            if predictor.predict() == key:
                hits += 1
            predictor.push_history(key)
            predictor.train(key)
        return hits

    hits = benchmark(train_and_predict)
    assert hits > 0


def test_bench_timing_simulator(benchmark):
    from repro import run_simulation

    def simulate():
        return run_simulation("pr-2x8w", "gzip", max_instructions=3000)

    result = benchmark.pedantic(simulate, rounds=2, iterations=1)
    assert result.committed > 0
