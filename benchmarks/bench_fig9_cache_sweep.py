"""Figure 9: sensitivity to total L1 instruction storage."""

from conftest import register_table

from repro.experiments import figure9, format_figure9


def test_fig9_cache_size_sensitivity(benchmark):
    data = benchmark.pedantic(figure9, rounds=1, iterations=1)
    register_table("fig9_cache_sweep", format_figure9(data))
    speedup = data["speedup"]

    def loss(config):
        small, large = speedup[config][0], speedup[config][-1]
        return 1.0 - small / large

    # Paper shape: the parallel front-end is far more robust to shrinking
    # caches than both sequential mechanisms, and the trace cache has the
    # steepest curve of all.
    assert loss("pr-2x8w") < loss("w16")
    assert loss("pr-2x8w") < loss("tc")
    assert loss("tc") >= loss("w16") - 0.05
