"""Figure 5: instructions fetched and renamed per cycle."""

from conftest import register_table

from repro.experiments import figure5, format_figure5


def test_fig5_fetch_and_rename_rates(benchmark):
    data = benchmark.pedantic(figure5, rounds=1, iterations=1)
    register_table("fig5_throughput", format_figure5(data))
    fetch, rename = data["fetch_rate"], data["rename_rate"]
    # Parallel fetch beats W16 outright and is competitive with or
    # better than the equal-storage trace cache.
    assert fetch["pf-2x8w"] > fetch["w16"]
    assert fetch["pf-2x8w"] > 0.85 * fetch["tc"]
    # Fetch outruns rename everywhere; parallel rename narrows the gap.
    assert all(fetch[c] >= rename[c] for c in fetch)
    assert rename["pr-4x4w"] > rename["pf-4x4w"]
