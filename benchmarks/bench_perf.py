#!/usr/bin/env python
"""Reproducible wall-clock benchmark of the simulator's cycle loop.

Runs the pinned workload matrix (W16, TC, PF+PR on gcc) defined in
:mod:`repro.perf`, times ``Processor.run`` only (generation, emulation
and warming excluded), and writes a ``BENCH_perf.json`` record::

    PYTHONPATH=src python benchmarks/bench_perf.py --output BENCH_perf.json

``--smoke`` shrinks the instruction count so the run finishes in seconds
(the CI benchmark job and the tier-1 smoke test use it).  ``--check``
compares against a committed baseline record, normalising by each
record's calibration score so machine speed cancels, and exits non-zero
on a >30% throughput regression::

    PYTHONPATH=src python benchmarks/bench_perf.py --smoke \\
        --check benchmarks/BENCH_perf_baseline.json

``--soa`` adds a section timing the batched tier (``REPRO_FAST=2``)
against tier 1 in the same invocation; ``--soa-gate`` additionally
fails the run unless every config clears the noise-tolerant speedup
floor (within-record ratio, so machine speed cancels exactly)::

    PYTHONPATH=src python benchmarks/bench_perf.py --smoke --soa-gate

``--cosim`` adds a section timing one co-simulated stream pass of the
pinned paper-config matrix against N independent serial passes;
``--cosim-gate`` fails the run unless the within-record speedup clears
the floor::

    PYTHONPATH=src python benchmarks/bench_perf.py --smoke --cosim-gate

See docs/PERFORMANCE.md for how to read the record.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import perf  # noqa: E402  (path setup must come first)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the simulator cycle loop on the pinned "
                    "workload matrix and record BENCH_perf.json.")
    parser.add_argument("--smoke", action="store_true",
                        help=f"short run ({perf.SMOKE_INSTRUCTIONS} "
                             "instructions) for CI and tests")
    parser.add_argument("-n", "--instructions", type=int, default=None,
                        help="dynamic instructions per run (default: "
                             f"{perf.PINNED_INSTRUCTIONS}, or "
                             f"{perf.SMOKE_INSTRUCTIONS} with --smoke)")
    parser.add_argument("--configs", nargs="+",
                        default=list(perf.PINNED_CONFIGS),
                        help="front-end configurations to run "
                             "(default: pinned matrix)")
    parser.add_argument("--benchmark", default=perf.PINNED_BENCHMARK,
                        help="suite benchmark (default: pinned)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repetitions per entry; fastest wins "
                             "(default: 3)")
    parser.add_argument("--no-sampled", action="store_true",
                        help="skip the interval-sampled vs full-detail "
                             "scenario")
    parser.add_argument("--sampled-instructions", type=int, default=None,
                        help="instructions for the sampled scenario "
                             f"(default: {perf.SAMPLED_INSTRUCTIONS}, or "
                             f"{perf.SMOKE_SAMPLED_INSTRUCTIONS} with "
                             "--smoke)")
    parser.add_argument("--no-phases", action="store_true",
                        help="skip the profiled run for phase breakdown")
    parser.add_argument("--soa", action="store_true",
                        help="pin the matrix to REPRO_FAST=1 and add a "
                             "'soa' section re-running it at REPRO_FAST=2 "
                             "with per-entry speedup_vs_fast")
    parser.add_argument("--soa-gate", action="store_true",
                        help="implies --soa; exit 1 unless every SoA "
                             "entry beats the speedup floor vs tier 1 "
                             "within this same record")
    parser.add_argument("--soa-floor", type=float,
                        default=perf.SOA_GATE_SPEEDUP,
                        help="speedup floor for --soa-gate (default: "
                             f"{perf.SOA_GATE_SPEEDUP}; the design "
                             f"target is {perf.SOA_TARGET_SPEEDUP})")
    parser.add_argument("--cosim", action="store_true",
                        help="add a 'cosim' section timing one "
                             "co-simulated stream pass of the pinned "
                             f"{len(perf.COSIM_CONFIGS)}-config matrix "
                             "against N independent serial passes")
    parser.add_argument("--cosim-gate", action="store_true",
                        help="implies --cosim; exit 1 unless the co-sim "
                             "pass beats the speedup floor vs serial "
                             "within this same record")
    parser.add_argument("--cosim-floor", type=float,
                        default=perf.COSIM_GATE_SPEEDUP,
                        help="speedup floor for --cosim-gate (default: "
                             f"{perf.COSIM_GATE_SPEEDUP}; the design "
                             f"target is {perf.COSIM_TARGET_SPEEDUP})")
    parser.add_argument("--cosim-instructions", type=int, default=None,
                        help="instructions for the cosim scenario "
                             f"(default: {perf.SAMPLED_INSTRUCTIONS}, or "
                             f"{perf.SMOKE_SAMPLED_INSTRUCTIONS} with "
                             "--smoke)")
    parser.add_argument("--output", "-o", default="BENCH_perf.json",
                        help="record path (default: BENCH_perf.json)")
    parser.add_argument("--check", metavar="BASELINE",
                        help="compare against a baseline record; exit 1 "
                             "on a >threshold normalised regression")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="regression threshold for --check "
                             "(default: 0.30)")
    args = parser.parse_args(argv)

    instructions = args.instructions
    if instructions is None:
        instructions = (perf.SMOKE_INSTRUCTIONS if args.smoke
                        else perf.PINNED_INSTRUCTIONS)

    sampled_instructions = None
    if not args.no_sampled:
        sampled_instructions = args.sampled_instructions
        if sampled_instructions is None:
            sampled_instructions = (perf.SMOKE_SAMPLED_INSTRUCTIONS
                                    if args.smoke
                                    else perf.SAMPLED_INSTRUCTIONS)

    cosim_instructions = None
    if args.cosim or args.cosim_gate:
        cosim_instructions = args.cosim_instructions
        if cosim_instructions is None:
            cosim_instructions = (perf.SMOKE_SAMPLED_INSTRUCTIONS
                                  if args.smoke
                                  else perf.SAMPLED_INSTRUCTIONS)

    record = perf.run_matrix(configs=args.configs,
                             benchmark=args.benchmark,
                             instructions=instructions,
                             repeats=args.repeats,
                             phase_breakdown=not args.no_phases,
                             sampled_instructions=sampled_instructions,
                             soa=args.soa or args.soa_gate,
                             cosim_instructions=cosim_instructions)
    perf.write_record(record, args.output)

    header = (f"{'config':10s} {'cycles/s':>12s} {'uops/s':>12s} "
              f"{'wall s':>8s} {'dec$ hit':>9s}")
    print(header)
    for entry in record["entries"]:
        hit = entry["decode_cache_hit_rate"]
        print(f"{entry['config']:10s} "
              f"{entry['sim_cycles_per_sec']:12.1f} "
              f"{entry['uops_per_sec']:12.1f} "
              f"{entry['wall_seconds']:8.4f} "
              f"{'-' if hit is None else format(hit, '9.4f')}")
    if "soa" in record:
        print(f"\nSoA tier (REPRO_FAST=2) vs tier 1, same record:")
        print(f"{'config':10s} {'cycles/s':>12s} {'speedup':>8s}")
        for entry in record["soa"]:
            print(f"{entry['config']:10s} "
                  f"{entry['sim_cycles_per_sec']:12.1f} "
                  f"{entry['speedup_vs_fast']:7.2f}x")
    if "sampled" in record:
        print(f"\nsampled vs full detail "
              f"({record['sampled'][0]['instructions']} instructions):")
        print(f"{'config':10s} {'full s':>8s} {'sampled s':>10s} "
              f"{'speedup':>8s} {'IPC err':>8s} {'95% CI':>8s}")
        for entry in record["sampled"]:
            print(f"{entry['config']:10s} "
                  f"{entry['full_wall_seconds']:8.3f} "
                  f"{entry['wall_seconds']:10.3f} "
                  f"{entry['speedup']:7.2f}x "
                  f"{entry['ipc_rel_error'] * 100:7.2f}% "
                  f"{entry['ipc_ci_rel'] * 100:7.2f}%")
    if "cosim" in record:
        entry = record["cosim"][0]
        print(f"\nco-sim: one stream pass, {len(entry['configs'])} timing "
              f"models ({entry['instructions']} instructions):")
        print(f"  serial {entry['serial_wall_seconds']:.3f}s  "
              f"cosim {entry['wall_seconds']:.3f}s  "
              f"speedup {entry['speedup_vs_serial']:.2f}x  "
              f"({entry['sim_cycles_per_sec']:.0f} agg sim cycles/s)")
    print(f"calibration {record['calibration_score']:.0f} spins/s; "
          f"record written to {args.output}")

    if args.check:
        baseline = perf.load_record(args.check)
        failures = perf.compare_records(record, baseline,
                                        threshold=args.threshold)
        if failures:
            print(f"\nREGRESSION vs {args.check}:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"regression check vs {args.check}: OK")

    if args.soa_gate:
        failures = perf.check_soa_speedup(record, target=args.soa_floor)
        if failures:
            print(f"\nSoA GATE FAILED (floor {args.soa_floor}x):",
                  file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"SoA gate (>= {args.soa_floor}x vs tier 1): OK")

    if args.cosim_gate:
        failures = perf.check_cosim_speedup(record,
                                            target=args.cosim_floor)
        if failures:
            print(f"\nCO-SIM GATE FAILED (floor {args.cosim_floor}x):",
                  file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"co-sim gate (>= {args.cosim_floor}x vs serial): OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
