"""Extension experiment: longer fragments (the paper's future work).

The conclusion of the paper argues that fragments — unlike trace-cache
traces — "can be longer and can have a larger variance in size without
affecting cache storage efficiency", because fragment buffers hold only
the small in-flight window rather than the whole working set.  This bench
explores that claim: the parallel front-end is run with progressively
longer fragment-selection limits (the trace cache cannot follow — its
line size pins traces at 16 instructions).
"""

import os

from conftest import register_table

from repro.experiments import SweepJob, prefetch, run_cached
from repro.stats import format_table

BENCH = os.environ.get("REPRO_ABLATION_BENCHMARK", "gzip")


def _length() -> int:
    return int(os.environ.get("REPRO_SIM_INSTRUCTIONS", "30000"))


def _long_fragment_overrides(max_length, cond_limit):
    return (("fragment.max_length", max_length),
            ("fragment.cond_branch_limit", cond_limit),
            ("frontend.fragment_buffer_size", max_length))


def run_long_fragments():
    grid = ((16, 8), (24, 12), (32, 16))
    prefetch([SweepJob("pr-2x8w", BENCH, _length(),
                       overrides=_long_fragment_overrides(m, c),
                       label=f"pr-2x8w/frag{m}")
              for m, c in grid]
             + [SweepJob("tc", BENCH, _length())])
    rows = []
    for max_length, cond_limit in grid:
        result = run_cached(
            "pr-2x8w", BENCH, _length(),
            overrides=_long_fragment_overrides(max_length, cond_limit),
            label=f"pr-2x8w/frag{max_length}")
        rows.append([
            max_length, result.ipc, result.fetch_rate,
            result.counter("commit.insts")
            / max(1.0, result.counter("commit.trained_fragments")),
            1000 * result.counter("frontend.control_mispredicts")
            / max(1, result.committed),
        ])
    tc = run_cached("tc", BENCH, _length())
    rows.append(["TC(16)", tc.ipc, tc.fetch_rate, 0.0, 0.0])
    return rows


def test_extension_long_fragments(benchmark):
    rows = benchmark.pedantic(run_long_fragments, rounds=1, iterations=1)
    register_table("extension_long_fragments", (
        f"Extension: longer fragments for PR-2x8w ({BENCH}) — the paper's "
        "future-work direction\n"
        + format_table(["max frag len", "IPC", "fetch/cyc",
                        "avg committed frag", "mispr/1k"], rows)))
    by_len = {row[0]: row for row in rows}
    # Longer selection limits must actually lengthen committed fragments.
    assert by_len[32][3] > by_len[16][3]
    # And must not collapse performance (they may help or mildly hurt via
    # deeper speculation per prediction).
    assert by_len[32][1] > 0.7 * by_len[16][1]
