"""Figure 6: parallel renaming behind a trace cache (penalty vs
monolithic), plus the Section 5.2 renamed-before-source statistic."""

from conftest import register_table

from repro.experiments import figure6, format_figure6


def test_fig6_parallel_rename_penalty(benchmark):
    data = benchmark.pedantic(figure6, rounds=1, iterations=1)
    register_table("fig6_tc_parallel_rename", format_figure6(data))
    penalties = data["penalty_percent"]
    # Paper: 2x8w within ~1%, 4x4w ~3.5%; shape check: both small, and
    # the narrower renamers cost at least as much.
    assert penalties["tc+pr-2x8w"] < 6.0
    assert penalties["tc+pr-4x4w"] < 10.0
    before = data["renamed_before_source"]
    assert before["tc+pr-4x4w"] > before["tc+pr-2x8w"]
