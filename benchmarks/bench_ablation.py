"""Ablation studies of the parallel front-end's design choices.

Section 3.2 frames fragment buffers as one end of a spectrum ("a very
small trace cache ... with a powerful parallel fill mechanism") whose
other end is a large trace cache with a slow sequential fill; this bench
walks that spectrum by varying the number of fragment buffers.  It also
quantifies the worth of functional warming (cold vs steady state) and of
the fragment-length heuristic.
"""

import os

from conftest import register_table

from repro.experiments import SweepJob, prefetch, run_cached
from repro.stats import format_table

BENCH = os.environ.get("REPRO_ABLATION_BENCHMARK", "gzip")


def _length() -> int:
    return int(os.environ.get("REPRO_SIM_INSTRUCTIONS", "30000"))


def run_buffer_spectrum():
    jobs = [SweepJob(
        "pf-2x8w", BENCH, _length(),
        overrides=(("frontend.num_fragment_buffers", buffers),),
        label=f"pf-2x8w/{buffers}buf")
        for buffers in (4, 8, 16, 32, 64)]
    prefetch(jobs)
    rows = []
    for job, buffers in zip(jobs, (4, 8, 16, 32, 64)):
        result = run_cached(job.config_name, job.benchmark, job.length,
                            overrides=job.overrides, label=job.label)
        rows.append([buffers, result.ipc, result.fetch_rate,
                     result.fragment_reuse_rate,
                     result.preconstructed_fraction])
    return rows


def test_fragment_buffer_spectrum(benchmark):
    rows = benchmark.pedantic(run_buffer_spectrum, rounds=1, iterations=1)
    register_table("ablation_buffer_spectrum", (
        f"Ablation: fragment-buffer count (PF-2x8w, {BENCH})\n"
        + format_table(["buffers", "IPC", "fetch/cyc", "reuse",
                        "preconstructed"], rows)))
    by_count = {row[0]: row for row in rows}
    # More buffers -> deeper fetch-ahead (higher raw fetch rate) ...
    assert by_count[64][2] > by_count[4][2]
    # ... while the reuse *fraction* is highest with few buffers, whose
    # window tracks only the hottest recurring fragments.
    assert by_count[4][3] >= by_count[64][3]
    # Starving the front-end of buffers must not help performance.
    assert by_count[16][1] >= by_count[4][1] * 0.95


def _fragment_length_overrides(max_length, limit):
    return (("fragment.max_length", max_length),
            ("fragment.cond_branch_limit", limit),
            ("frontend.fragment_buffer_size", max_length))


def run_fragment_length_ablation():
    grid = ((8, 4), (16, 8), (32, 16))
    prefetch([SweepJob("pf-2x8w", BENCH, _length(),
                       overrides=_fragment_length_overrides(m, l),
                       label=f"pf-2x8w/frag{m}")
              for m, l in grid])
    rows = []
    for max_length, limit in grid:
        result = run_cached(
            "pf-2x8w", BENCH, _length(),
            overrides=_fragment_length_overrides(max_length, limit),
            label=f"pf-2x8w/frag{max_length}")
        rows.append([f"{max_length}/{limit}", result.ipc,
                     result.fetch_rate,
                     result.counter("commit.trained_fragments")])
    return rows


def test_fragment_length_heuristic(benchmark):
    rows = benchmark.pedantic(run_fragment_length_ablation, rounds=1,
                              iterations=1)
    register_table("ablation_fragment_length", (
        f"Ablation: fragment selection heuristics (PF-2x8w, {BENCH})\n"
        + format_table(["max/cond-limit", "IPC", "fetch/cyc",
                        "fragments"], rows)))
    assert all(row[1] > 0 for row in rows)


def run_warming_ablation():
    configs = ("w16", "tc", "pr-2x8w")
    prefetch([SweepJob(name, BENCH, _length(), warm=warm)
              for name in configs for warm in (False, True)])
    rows = []
    for config_name in configs:
        cold = run_cached(config_name, BENCH, _length(), warm=False)
        hot = run_cached(config_name, BENCH, _length(), warm=True)
        rows.append([config_name, cold.ipc, hot.ipc, hot.ipc / cold.ipc])
    return rows


def test_warming_ablation(benchmark):
    rows = benchmark.pedantic(run_warming_ablation, rounds=1, iterations=1)
    register_table("ablation_warming", (
        f"Ablation: cold start vs functional warming ({BENCH})\n"
        + format_table(["front-end", "cold IPC", "warm IPC", "ratio"],
                       rows)))
    # Steady state must outperform cold start everywhere.
    assert all(row[3] > 1.0 for row in rows)


def run_rename_solutions():
    """Section 4's two parallel-rename solutions, head to head."""
    grid = (("pf-2x8w", "monolithic (serialised)"),
            ("pd-2x8w", "solution 1: delay"),
            ("pr-2x8w", "solution 2: live-out pred."),
            ("pd-4x4w", "solution 1: delay 4x4w"),
            ("pr-4x4w", "solution 2: live-outs 4x4w"))
    prefetch([SweepJob(name, BENCH, _length()) for name, _ in grid])
    rows = []
    for config_name, label in grid:
        result = run_cached(config_name, BENCH, _length())
        rows.append([label, result.ipc, result.rename_rate,
                     100 * result.renamed_before_source_fraction])
    return rows


def test_rename_solutions(benchmark):
    rows = benchmark.pedantic(run_rename_solutions, rounds=1, iterations=1)
    register_table("ablation_rename_solutions", (
        f"Ablation: Section 4's rename solutions ({BENCH})\n"
        + format_table(["mechanism", "IPC", "rename/cyc",
                        "renamed-before-source %"], rows)))
    by_label = {row[0]: row for row in rows}
    # The delay scheme postpones more consumers than live-out prediction.
    assert by_label["solution 1: delay"][3] >= \
        by_label["solution 2: live-out pred."][3]


def run_liveout_recovery():
    """Section 4.3: squash vs selective re-execution on mispredictions."""
    policies = ("squash", "reexecute")
    prefetch([SweepJob("pr-4x4w", BENCH, _length(),
                       overrides=(("frontend.liveout_recovery", policy),),
                       label=f"pr-4x4w/{policy}")
              for policy in policies])
    rows = []
    for recovery in policies:
        result = run_cached(
            "pr-4x4w", BENCH, _length(),
            overrides=(("frontend.liveout_recovery", recovery),),
            label=f"pr-4x4w/{recovery}")
        rows.append([recovery, result.ipc,
                     result.counter("rename.liveout_mispredicts"),
                     result.counter("rename.liveout_squashes"),
                     result.counter("rename.reexecuted_uops")])
    return rows


def test_liveout_recovery_policy(benchmark):
    rows = benchmark.pedantic(run_liveout_recovery, rounds=1, iterations=1)
    register_table("ablation_liveout_recovery", (
        f"Ablation: live-out misprediction recovery (PR-4x4w, {BENCH}) — "
        "Section 4.3's two policies\n"
        + format_table(["policy", "IPC", "mispredicts", "squashes",
                        "re-executed uops"], rows)))
    by_policy = {row[0]: row for row in rows}
    # Re-execution must not squash, and vice versa.
    assert by_policy["reexecute"][3] == 0
    assert by_policy["squash"][4] == 0
