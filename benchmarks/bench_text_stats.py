"""In-text statistics: fragment-buffer reuse (Section 3.2, 20-70%),
just-in-time fragment construction (Section 3.3, 84%) and the trace-cache
hit rate (87%)."""

from conftest import register_table

from repro.experiments import format_text_statistics, text_statistics


def test_text_statistics(benchmark):
    data = benchmark.pedantic(text_statistics, rounds=1, iterations=1)
    register_table("text_statistics", format_text_statistics(data))
    low, high = data["reuse_range"]
    # The paper reports 20-70% across benchmarks; require real spread.
    assert 0.0 <= low < high < 0.98
    assert data["mean_preconstructed"] > 0.4
    assert data["mean_tc_hit_rate"] > 0.4
