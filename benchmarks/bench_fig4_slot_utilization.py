"""Figure 4: fetch-slot utilization of each fetch mechanism."""

from conftest import register_table

from repro.experiments import figure4, format_figure4


def test_fig4_slot_utilization(benchmark):
    data = benchmark.pedantic(figure4, rounds=1, iterations=1)
    register_table("fig4_slot_utilization", format_figure4(data))
    means = data["hmean"]
    # The paper's ordering: W16 < TC < PF-2x8w < PF-4x4w.
    assert means["w16"] < means["tc"]
    assert means["tc"] < means["pf-4x4w"]
    assert means["pf-2x8w"] < means["pf-4x4w"]
