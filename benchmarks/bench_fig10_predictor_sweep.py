"""Figure 10: sensitivity to trace/fragment predictor size."""

from conftest import register_table

from repro.experiments import figure10, format_figure10


def test_fig10_predictor_size_sensitivity(benchmark):
    data = benchmark.pedantic(figure10, rounds=1, iterations=1)
    register_table("fig10_predictor_sweep", format_figure10(data))
    speedup = data["speedup"]
    # Larger predictors never hurt appreciably for the parallel front-end.
    series = speedup["pr-2x8w"]
    assert series[-1] >= series[0] - 0.02
