"""Figure 8: overall performance (percent speedup over W16)."""

from conftest import register_table

from repro.experiments import experiment_length, figure8, format_figure8


def test_fig8_overall_performance(benchmark):
    data = benchmark.pedantic(figure8, rounds=1, iterations=1)
    register_table("fig8_performance", format_figure8(data))
    means = data["mean"]
    # Paper headline shape: the parallel front-end beats W16 by a clear
    # margin.
    assert means["pr-2x8w"] > 0.0
    if experiment_length() >= 20_000:
        # At full scale: PR beats equal-storage TC and lands in TC2x's
        # neighbourhood with half the instruction storage.
        assert means["pr-2x8w"] > means["tc"]
        assert abs(means["pr-2x8w"] - means["tc2x"]) < 20.0
