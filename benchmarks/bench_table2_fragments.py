"""Table 2: benchmark characteristics (average fragment size)."""

from conftest import register_table

from repro.experiments import format_table2, table2


def test_table2_fragment_sizes(benchmark):
    rows = benchmark.pedantic(table2, rounds=1, iterations=1)
    register_table("table2_fragments", format_table2(rows))
    # The paper's band is 9.04 (mcf) to 12.79 (bzip2); the synthetic suite
    # must land in a comparable band with mcf shortest.
    lengths = {name: row["avg_fragment_length"] for name, row in rows.items()}
    assert min(lengths, key=lengths.get) == "mcf"
    assert all(8.0 <= value <= 14.5 for value in lengths.values())
