"""Table 1: simulation parameters (rendered from the live configuration)."""

from conftest import register_table

from repro.experiments import table1


def test_table1_parameters(benchmark):
    text = benchmark.pedantic(table1, rounds=1, iterations=1)
    register_table("table1_parameters", text)
    assert "256-entry instruction window" in text
    assert "DOLC 9-4-7-9" in text
