#!/usr/bin/env python3
"""Quickstart: compare a sequential and a parallel front-end.

Runs the paper's baseline 16-wide sequential fetch unit (W16) and the
proposed parallel front-end (PR-2x8w: 2 sequencers + 2 renamers, 8-wide
each) on one benchmark, and prints the headline metrics of the paper:
IPC, fetch/rename throughput, and fetch-slot utilization.

Usage::

    python examples/quickstart.py [benchmark] [instructions]

Defaults: gzip, 20000 instructions.
"""

import sys

from repro import run_simulation
from repro.stats import format_table


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gzip"
    length = int(sys.argv[2]) if len(sys.argv) > 2 else 20_000

    print(f"Simulating {length} instructions of '{benchmark}' ...\n")
    results = {name: run_simulation(name, benchmark,
                                    max_instructions=length)
               for name in ("w16", "pr-2x8w")}

    rows = []
    for name, result in results.items():
        rows.append([
            name, result.ipc, result.fetch_rate, result.rename_rate,
            result.slot_utilization, result.cycles,
        ])
    print(format_table(
        ["front-end", "IPC", "fetch/cyc", "rename/cyc", "slot util",
         "cycles"], rows))

    speedup = results["pr-2x8w"].ipc / results["w16"].ipc
    print(f"\nParallel front-end speedup over W16: {speedup:.2f}x")
    print("(The paper reports 10-13% average speedup over W16 in "
          "steady state, Section 5.4.)")


if __name__ == "__main__":
    main()
