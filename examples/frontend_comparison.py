#!/usr/bin/env python3
"""Compare every front-end mechanism of the paper on one benchmark.

Reproduces one column of Figures 4/5/8 for a single benchmark: all seven
named configurations (plus the Figure 6 trace-cache + parallel-rename
hybrids) with their throughput, utilization and speedup over W16, and the
mechanism-specific statistics (trace-cache hit rate, fragment-buffer
reuse, live-out accuracy).

Usage::

    python examples/frontend_comparison.py [benchmark] [instructions]
"""

import sys

from repro import PAPER_CONFIGS, run_simulation
from repro.stats import format_table


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "crafty"
    length = int(sys.argv[2]) if len(sys.argv) > 2 else 20_000
    configs = list(PAPER_CONFIGS) + ["tc+pr-2x8w", "tc+pr-4x4w"]

    print(f"Benchmark '{benchmark}', {length} instructions, "
          f"{len(configs)} front-ends:\n")
    results = {}
    for name in configs:
        results[name] = run_simulation(name, benchmark,
                                       max_instructions=length)

    base_ipc = results["w16"].ipc
    rows = []
    for name in configs:
        r = results[name]
        mechanism_stat = ""
        if r.counter("tc.hits") or r.counter("tc.misses"):
            mechanism_stat = f"TC hit {100 * r.trace_cache_hit_rate:.0f}%"
        elif r.counter("fragbuf.reuses"):
            mechanism_stat = f"reuse {100 * r.fragment_reuse_rate:.0f}%"
        rows.append([
            name, r.ipc, (r.ipc / base_ipc - 1) * 100, r.fetch_rate,
            r.rename_rate, r.slot_utilization, mechanism_stat,
        ])
    print(format_table(
        ["front-end", "IPC", "vs W16 %", "fetch/cyc", "rename/cyc",
         "util", "notes"], rows, float_fmt="{:.2f}"))

    pr = results["pr-4x4w"]
    print(f"\nPR-4x4w live-out predictor accuracy: "
          f"{100 * pr.liveout_accuracy:.1f}% "
          f"(paper: ~98% with the 2-way 4K-entry table)")
    print(f"PR-4x4w instructions renamed before their producer: "
          f"{100 * pr.renamed_before_source_fraction:.1f}% "
          f"(paper: 4-12%)")


if __name__ == "__main__":
    main()
