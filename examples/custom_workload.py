#!/usr/bin/env python3
"""Run your own code through the simulator.

Two ways to bring a workload:

1. write assembly directly (the repro ISA is a small RISC: see
   ``repro.isa.assembler`` for the language) — here, a string-search
   kernel written by hand;
2. generate a synthetic program from a :class:`WorkloadSpec` — here, an
   interpreter-flavoured workload with heavy indirect branching.

Both are functionally executed for correctness (``out`` values checked)
and then timed on two front-ends.

Usage::

    python examples/custom_workload.py
"""

from repro import assemble, run_simulation
from repro.emulator import execute
from repro.workloads import WorkloadSpec, generate_program

NEEDLE_COUNT_EXPECTED = 3

SEARCH_KERNEL = """
    # Count occurrences of a needle value in an array, 4 passes.
        .text
    main:
        li   s1, 4              # passes
    pass:
        la   t0, haystack
        li   t1, 32             # elements
        li   t2, 7              # needle
        li   s0, 0              # match counter
    scan:
        ld   t3, 0(t0)
        bne  t3, t2, nomatch
        addi s0, s0, 1
    nomatch:
        addi t0, t0, 8
        addi t1, t1, -1
        bne  t1, zero, scan
        addi s1, s1, -1
        bne  s1, zero, pass
        out  s0
        halt

        .data
    haystack:
        .word 1, 4, 7, 2, 9, 8, 3, 5, 7, 1, 0, 6, 2, 4, 8, 3
        .word 9, 1, 5, 7, 2, 8, 4, 6, 0, 3, 1, 9, 5, 2, 8, 4
"""


def run_hand_written() -> None:
    print("=== Hand-written assembly: needle search ===")
    program = assemble(SEARCH_KERNEL, name="needle_search")

    functional = execute(program)
    print(f"functional result: {functional.outputs} "
          f"(expected [{NEEDLE_COUNT_EXPECTED}]), "
          f"{len(functional)} instructions")
    assert functional.outputs == [NEEDLE_COUNT_EXPECTED]

    for config in ("w16", "pf-2x8w"):
        result = run_simulation(config, program, max_instructions=2000)
        print(f"  {config:8} IPC={result.ipc:.2f} "
              f"fetch={result.fetch_rate:.2f}/cyc "
              f"cycles={result.cycles}")


def run_generated() -> None:
    print("\n=== Generated workload: interpreter-flavoured ===")
    spec = WorkloadSpec(
        name="tiny-interp", seed=7, num_functions=48, hot_functions=24,
        segments_per_function=(2, 4), block_len=(2, 5),
        diamond_prob=0.25, switch_prob=0.20, call_prob=0.15,
        mem_prob=0.18, switch_cases=8, biased_branch_fraction=0.7)
    program = generate_program(spec)
    print(f"generated {len(program)} static instructions "
          f"({program.text_size / 1024:.1f} KB)")

    for config in ("w16", "tc", "pr-2x8w"):
        result = run_simulation(config, program, max_instructions=10_000)
        print(f"  {config:8} IPC={result.ipc:.2f} "
              f"fetch={result.fetch_rate:.2f}/cyc "
              f"util={result.slot_utilization:.2f}")
    print("(indirect-heavy code stresses fragment prediction — compare "
          "the spread with quickstart.py's gzip)")


if __name__ == "__main__":
    run_hand_written()
    run_generated()
