#!/usr/bin/env python3
"""Visualise the pipeline: watch instructions flow through rename,
dispatch, issue, execute and commit on two different front-ends.

The diagram makes the paper's §3.4 point visible: with a sequential
renamer the gap between rename (R) and older instructions' commit (C)
stays tight and serialized; the parallel front-end spreads rename across
fragments.

Usage::

    python examples/pipeline_view.py [benchmark] [start_instruction]
"""

import sys

from repro.core.trace import (
    format_pipeview,
    pipeline_summary,
    trace_simulation,
)


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gzip"
    start = int(sys.argv[2]) if len(sys.argv) > 2 else 400

    for config in ("w16", "pr-2x8w"):
        traces = trace_simulation(config, benchmark,
                                  max_instructions=2000)
        print(f"=== {config} ===")
        print(format_pipeview(traces, start=start, count=24))
        summary = pipeline_summary(traces)
        print(f"instructions={summary['instructions']}  "
              f"avg window wait={summary['avg_wait_cycles']:.1f} cyc  "
              f"avg lifetime={summary['avg_lifetime_cycles']:.1f} cyc\n")


if __name__ == "__main__":
    main()
