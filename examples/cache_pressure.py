#!/usr/bin/env python3
"""Latency tolerance under instruction-cache pressure (the Figure 9 story).

Sweeps total L1 instruction storage from 8 KB to 128 KB for one benchmark
and shows how each front-end degrades.  The paper's key result: the
parallel front-end loses only ~6% while sequential mechanisms lose
50-65%, because (1) sequencers keep fetching other fragments past a cache
miss and (2) multiple misses overlap.

Usage::

    python examples/cache_pressure.py [benchmark] [instructions]
"""

import sys

from repro import frontend_config, run_simulation
from repro.stats import format_table

KB = 1024
STORAGES = (8 * KB, 16 * KB, 32 * KB, 64 * KB, 128 * KB)
CONFIGS = ("w16", "tc", "pr-2x8w")


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gzip"
    length = int(sys.argv[2]) if len(sys.argv) > 2 else 20_000

    print(f"Benchmark '{benchmark}', {length} instructions.\n")
    ipc = {name: {} for name in CONFIGS}
    miss = {name: {} for name in CONFIGS}
    for name in CONFIGS:
        for storage in STORAGES:
            config = frontend_config(name, total_l1_storage=storage)
            result = run_simulation(config, benchmark,
                                    max_instructions=length,
                                    config_name=name)
            ipc[name][storage] = result.ipc
            miss[name][storage] = result.l1i_miss_rate

    rows = []
    for storage in STORAGES:
        row = [storage // KB]
        for name in CONFIGS:
            row.append(ipc[name][storage])
            row.append(100 * miss[name][storage])
        rows.append(row)
    headers = ["KB"]
    for name in CONFIGS:
        headers += [f"{name} IPC", f"{name} miss%"]
    print(format_table(headers, rows, float_fmt="{:.2f}"))

    print("\nPerformance retained shrinking the cache 128 KB -> 8 KB:")
    for name in CONFIGS:
        retained = ipc[name][STORAGES[0]] / ipc[name][STORAGES[-1]]
        print(f"  {name:8} {100 * retained:5.1f}%  "
              f"(paper: parallel ~94%, sequential 35-50%)")


if __name__ == "__main__":
    main()
