"""repro — reproduction of "Parallelism in the Front-End" (ISCA 2003).

A cycle-level out-of-order superscalar simulator with four front-end
mechanisms — sequential fetch (W16), trace cache (TC), parallel fetch
using multiple sequencers (PF), and parallel fetch with parallel rename
(PR) — plus the substrates they need: a small RISC ISA with assembler and
functional emulator, a synthetic SPECint2000-like workload suite, a banked
cache hierarchy, the DOLC next-trace predictor and the live-out predictor.

Quickstart::

    from repro import run_simulation

    baseline = run_simulation("w16", "gcc")
    parallel = run_simulation("pr-2x8w", "gcc")
    print(parallel.ipc / baseline.ipc)
"""

from repro.config import (
    PAPER_CONFIGS,
    BackEndConfig,
    CacheConfig,
    FragmentConfig,
    FrontEndConfig,
    LiveOutPredictorConfig,
    MemoryConfig,
    ProcessorConfig,
    TraceCacheConfig,
    TracePredictorConfig,
    frontend_config,
)
from repro.core.simulation import SimulationResult, run_simulation
from repro.sampling import SamplingConfig
from repro.errors import (
    AssemblerError,
    ConfigError,
    EmulationError,
    ReproError,
    SimulationError,
)
from repro.isa import Program, assemble
from repro.workloads import BENCHMARK_NAMES, get_benchmark, oracle_stream

__version__ = "1.0.0"

__all__ = [
    "run_simulation",
    "SimulationResult",
    "SamplingConfig",
    "frontend_config",
    "ProcessorConfig",
    "FrontEndConfig",
    "BackEndConfig",
    "MemoryConfig",
    "CacheConfig",
    "TraceCacheConfig",
    "TracePredictorConfig",
    "LiveOutPredictorConfig",
    "FragmentConfig",
    "PAPER_CONFIGS",
    "assemble",
    "Program",
    "BENCHMARK_NAMES",
    "get_benchmark",
    "oracle_stream",
    "ReproError",
    "AssemblerError",
    "EmulationError",
    "ConfigError",
    "SimulationError",
    "__version__",
]
