"""The reproducible wall-clock benchmark harness.

:func:`run_benchmark` times ``Processor.run`` (warming excluded) for one
configuration, and :func:`run_matrix` runs the pinned workload matrix
and produces the ``BENCH_perf.json`` record every PR appends to its perf
trajectory.  :func:`calibrate` measures a pure-Python spin-loop score so
records from different machines can be compared (see
:func:`compare_records`, which normalises by it).

Entries can pin a ``REPRO_FAST`` tier explicitly (*level*), which is how
one matrix run measures the tier-1 and tier-2 (SoA) loops side by side
and reports ``speedup_vs_fast`` without mutating the environment.

Typical use::

    PYTHONPATH=src python benchmarks/bench_perf.py --output BENCH_perf.json
    PYTHONPATH=src python benchmarks/bench_perf.py --smoke \\
        --check benchmarks/BENCH_perf_baseline.json
"""

from __future__ import annotations

import json
import platform
import time
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.perf.knobs import PerfConfig, fast_level

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.processor import Processor

# The harness imports (Processor, warming, workloads) are deferred to the
# function bodies: the processor itself consults the knobs in
# repro.perf at construction, so this package must be importable before
# repro.core is.

#: The pinned workload matrix: the paper's baseline (W16), the trace
#: cache (TC) and parallel fetch + parallel rename (PF+PR).  Fixed so
#: ``BENCH_perf.json`` records stay comparable across PRs.
PINNED_CONFIGS: Tuple[str, ...] = ("w16", "tc", "pr-2x8w")
#: Pinned benchmark: large footprint, hard control flow — the workload
#: that exercises every front-end structure.
PINNED_BENCHMARK = "gcc"
#: Pinned dynamic instruction count for the full matrix.
PINNED_INSTRUCTIONS = 30_000
#: Instruction count for ``--smoke`` (tier-1-safe, a few seconds).
SMOKE_INSTRUCTIONS = 4_000
#: Pinned instruction count for the sampled-vs-full scenario: 8x the
#: full-detail matrix, where interval sampling has room to pay off.
SAMPLED_INSTRUCTIONS = 8 * PINNED_INSTRUCTIONS
#: Sampled-scenario instruction count for ``--smoke``.
SMOKE_SAMPLED_INSTRUCTIONS = 8 * SMOKE_INSTRUCTIONS

#: Record format version for ``BENCH_perf.json``.
SCHEMA_VERSION = 1

#: The wall-clock speedup the SoA tier aims for over tier 1 on the
#: pinned matrix (the design target; measured standing is recorded in
#: the committed ``BENCH_perf*.json`` baselines and docs/PERFORMANCE.md).
SOA_TARGET_SPEEDUP = 1.5

#: The speedup floor CI actually enforces (``bench_perf.py --soa-gate``).
#: Deliberately below :data:`SOA_TARGET_SPEEDUP`: the measured tier-2
#: standing is ~1.3x and shared-runner wall clocks jitter by 10-15%, so
#: gating at the aspirational target would make the gate flaky while a
#: floor of 1.15x still catches any real loss of the batching win.
SOA_GATE_SPEEDUP = 1.15

#: The pinned co-simulation matrix: the paper's full config column (the
#: Figs 4-10 sweep shape) over one benchmark stream.  Fixed so ``cosim``
#: sections stay comparable across PRs.
COSIM_CONFIGS: Tuple[str, ...] = ("w16", "tc", "tc2x", "pf-2x8w",
                                  "pf-4x4w", "pr-2x8w", "pr-4x4w")

#: The aggregate-throughput speedup co-simulation aims for over N
#: independent stream passes on the pinned matrix (the design target;
#: measured standing is in the committed baselines and
#: docs/PERFORMANCE.md).
COSIM_TARGET_SPEEDUP = 2.0

#: The co-sim speedup floor CI enforces (``bench_perf.py --cosim-gate``).
#: Below :data:`COSIM_TARGET_SPEEDUP` for the same reason as
#: :data:`SOA_GATE_SPEEDUP`: the measured standing is ~2.1x at the full
#: pinned size (higher at smoke sizes, where shared prep is a larger
#: fraction), and wall-clock jitter should not flake the gate; 1.5x
#: still catches any real loss of the sharing win.
COSIM_GATE_SPEEDUP = 1.5


def calibrate(target_seconds: float = 0.05) -> float:
    """A machine-speed score in spin-loop iterations per second.

    Pure-Python arithmetic loop, no allocation: approximates how fast the
    host runs exactly the kind of bytecode the simulator's cycle loop is
    made of.  Dividing two records' throughputs by their calibration
    scores makes them comparable across machines — which is what lets CI
    keep a committed baseline and still gate on regressions.
    """
    chunk = 100_000

    def spin(n: int) -> int:
        acc = 0
        for i in range(n):
            acc = (acc + i) & 0xFFFFFFFF
        return acc

    spin(chunk)  # warm the loop
    iterations = 0
    start = time.perf_counter()
    while True:
        spin(chunk)
        iterations += chunk
        elapsed = time.perf_counter() - start
        if elapsed >= target_seconds:
            return iterations / elapsed


def run_benchmark(config_name: str, benchmark: str = PINNED_BENCHMARK,
                  instructions: int = PINNED_INSTRUCTIONS,
                  repeats: int = 1,
                  phase_breakdown: bool = True,
                  level: Optional[int] = None) -> Dict[str, object]:
    """Time ``Processor.run`` for one configuration; returns one entry.

    The timed region is the cycle loop only: program generation, oracle
    emulation and warming happen before the clock starts.  With
    *repeats* > 1 the fastest run is reported (standard practice for
    wall-clock microbenchmarks — slower runs measure interference, not
    the code).  The phase breakdown comes from a separate profiled run
    so profiler probes never pollute the headline number.  *level* pins
    the ``REPRO_FAST`` tier for this entry (default: the environment's).
    """
    from repro.config import frontend_config
    from repro.core.processor import Processor
    from repro.core.warming import warm_processor
    from repro.workloads import suite

    config = frontend_config(config_name)
    program = suite.get_benchmark(benchmark)
    oracle = suite.oracle_stream(benchmark, instructions).stream
    perf_cfg = None if level is None else PerfConfig(level=level)

    best_seconds = float("inf")
    cycles = committed = uops = 0
    for _ in range(max(1, repeats)):
        processor = Processor(config, program, oracle,
                              watchdog=None, invariants=None,
                              perf=perf_cfg)
        warm_processor(processor, oracle)
        start = time.perf_counter()
        processor.run()
        elapsed = time.perf_counter() - start
        if elapsed < best_seconds:
            best_seconds = elapsed
        cycles = processor.now
        committed = processor.committed
        uops = int(processor.stats.get("rename.insts"))

    entry: Dict[str, object] = {
        "config": config_name,
        "benchmark": benchmark,
        "instructions": instructions,
        "fast_level": level if level is not None else fast_level(),
        "wall_seconds": round(best_seconds, 6),
        "sim_cycles": cycles,
        "committed": committed,
        "renamed_uops": uops,
        "sim_cycles_per_sec": round(cycles / best_seconds, 1),
        "uops_per_sec": round(uops / best_seconds, 1),
        "decode_cache_hit_rate": _decode_cache_hit_rate(processor),
    }
    entry["phase_seconds"] = (
        _phase_breakdown(config_name, program, oracle, perf_cfg)
        if phase_breakdown else None)
    return entry


def _decode_cache_hit_rate(processor: "Processor") -> Optional[float]:
    cache = processor.decode_cache
    if cache is None:
        return None
    total = cache.hits + cache.misses
    return round(cache.hits / total, 4) if total else 0.0


def _phase_breakdown(config_name: str, program, oracle,
                     perf_cfg: Optional[PerfConfig] = None
                     ) -> Dict[str, float]:
    """Per-phase wall-clock seconds from one profiled run."""
    from repro.config import ObservabilityConfig, frontend_config
    from repro.core.processor import Processor
    from repro.core.warming import warm_processor
    from repro.obs import Observability

    obs = Observability(ObservabilityConfig(profile=True))
    processor = Processor(frontend_config(config_name), program, oracle,
                          watchdog=None, invariants=None, obs=obs,
                          perf=perf_cfg)
    warm_processor(processor, oracle)
    processor.run()
    assert obs.profiler is not None
    return {phase: round(seconds, 6)
            for phase, seconds in obs.profiler.seconds.items()}


def run_sampled_benchmark(config_name: str,
                          benchmark: str = PINNED_BENCHMARK,
                          instructions: int = SAMPLED_INSTRUCTIONS,
                          repeats: int = 1) -> Dict[str, object]:
    """Time interval-sampled simulation against the full-detail run.

    Both sides start from a prepped oracle and a pre-trained warming
    snapshot (the donor is trained once, untimed, before the clock
    starts), so the timed regions compare what a user actually waits
    for: functional warming plus the detailed cycle loop, versus the
    sampled engine end to end (snapshot clone, gap fast-forward,
    detailed windows).  ``speedup`` is the ratio of estimated-sim-cycles
    per wall-second, and ``ipc_rel_error`` is the sampled IPC's relative
    error against the full-detail reference — the two numbers the
    sampled mode's acceptance rests on.
    """
    from repro.config import frontend_config
    from repro.core.processor import Processor
    from repro.sampling import SamplingConfig, run_sampled
    from repro.sampling import prep

    config = frontend_config(config_name)
    program, execution, stream_key = prep.get_oracle(benchmark,
                                                     instructions)
    oracle = execution.stream
    sampling = SamplingConfig.from_env()

    # Train the warming snapshot outside the clock; every timed run
    # below (full and sampled) then clones it.
    scratch = Processor(config, program, oracle,
                        watchdog=None, invariants=None)
    prep.warm_from_snapshot(scratch, oracle, stream_key, pin=program)

    full_best = float("inf")
    full_cycles = full_committed = 0
    for _ in range(max(1, repeats)):
        processor = Processor(config, program, oracle,
                              watchdog=None, invariants=None)
        start = time.perf_counter()
        prep.warm_from_snapshot(processor, oracle, stream_key,
                                pin=program)
        processor.run()
        elapsed = time.perf_counter() - start
        full_best = min(full_best, elapsed)
        full_cycles = processor.now
        full_committed = processor.committed

    sampled_best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = run_sampled(config, program, oracle, sampling,
                             config_name=config_name, benchmark=benchmark,
                             warm=True, stream_key=stream_key, pin=program)
        elapsed = time.perf_counter() - start
        sampled_best = min(sampled_best, elapsed)
    assert result is not None

    full_ipc = full_committed / full_cycles if full_cycles else 0.0
    full_scps = full_cycles / full_best
    sampled_scps = result.cycles / sampled_best
    return {
        "config": config_name,
        "benchmark": benchmark,
        "instructions": instructions,
        "period": sampling.period,
        "unit": sampling.unit,
        "warmup": sampling.warmup,
        "full_wall_seconds": round(full_best, 6),
        "full_ipc": round(full_ipc, 6),
        "full_sim_cycles": full_cycles,
        "wall_seconds": round(sampled_best, 6),
        "sampled_ipc": round(result.ipc, 6),
        "est_sim_cycles": result.cycles,
        "units_measured": int(result.counter("sampling.units_measured")),
        "ipc_ci_rel": round(
            result.counter("sampling.ipc_halfwidth_rel"), 6),
        "ipc_rel_error": round(
            abs(result.ipc - full_ipc) / full_ipc if full_ipc else 0.0, 6),
        "speedup": round(sampled_scps / full_scps, 2) if full_scps else 0.0,
        "sim_cycles_per_sec": round(sampled_scps, 1),
    }


def run_cosim_benchmark(configs: Sequence[str] = COSIM_CONFIGS,
                        benchmark: str = PINNED_BENCHMARK,
                        instructions: int = SAMPLED_INSTRUCTIONS,
                        repeats: int = 1) -> Dict[str, object]:
    """Time one co-simulated stream pass against N independent passes.

    The serial side runs every config through :func:`run_simulation`
    from fully cold per-process caches (prep *and* suite stream caches
    cleared per config) — what each job costs on an ungrouped
    (``REPRO_SWEEP_GROUP=0``) sweep worker, and the literal reading of
    the module headline: N configs, N stream passes.  The co-sim side
    runs the same jobs through one :func:`repro.perf.cosim.run_cosim`
    call from the same cold start: one stream pass, N timing models.
    Both sides are sampled (the sweep's long-horizon operating point;
    full-detail co-sim shares less because the detailed cycle loop —
    the product — dominates).  ``speedup_vs_serial`` is the wall-clock
    ratio, equal to the aggregate sim-cycles/sec ratio since co-sim
    results are bit-identical (asserted here too).
    """
    from repro.core.simulation import run_simulation
    from repro.perf.cosim import run_cosim
    from repro.sampling import SamplingConfig, prep
    from repro.workloads import suite

    sampling = SamplingConfig.from_env()

    def cold() -> None:
        prep.clear_prep_caches()
        suite.clear_caches()

    serial_best = float("inf")
    serial_cycles: List[int] = []
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        serial_results = []
        for name in configs:
            cold()  # every config pays its own stream pass
            serial_results.append(run_simulation(
                name, benchmark, max_instructions=instructions,
                sampling=sampling))
        serial_best = min(serial_best, time.perf_counter() - start)
        serial_cycles = [r.cycles for r in serial_results]

    cosim_best = float("inf")
    savings: Dict[str, float] = {}
    for _ in range(max(1, repeats)):
        cold()
        start = time.perf_counter()
        results, savings = run_cosim(
            [(name, None) for name in configs], benchmark,
            max_instructions=instructions, sampling=sampling)
        cosim_best = min(cosim_best, time.perf_counter() - start)
        assert [r.cycles for r in results] == serial_cycles, \
            "co-sim results diverged from serial reference"

    agg_cycles = sum(serial_cycles)
    serial_scps = agg_cycles / serial_best
    cosim_scps = agg_cycles / cosim_best
    return {
        "config": "+".join(configs),
        "configs": list(configs),
        "benchmark": benchmark,
        "instructions": instructions,
        "period": sampling.period,
        "unit": sampling.unit,
        "warmup": sampling.warmup,
        "serial_wall_seconds": round(serial_best, 6),
        "wall_seconds": round(cosim_best, 6),
        "agg_sim_cycles": agg_cycles,
        "serial_sim_cycles_per_sec": round(serial_scps, 1),
        "sim_cycles_per_sec": round(cosim_scps, 1),
        "speedup_vs_serial": round(cosim_scps / serial_scps, 2),
        "shared_decode": int(savings.get("cosim.shared_decode", 0)),
        "gap_insts_shared": int(savings.get("cosim.gap_insts_shared", 0)),
    }


def run_matrix(configs: Sequence[str] = PINNED_CONFIGS,
               benchmark: str = PINNED_BENCHMARK,
               instructions: int = PINNED_INSTRUCTIONS,
               repeats: int = 1,
               phase_breakdown: bool = True,
               sampled_instructions: Optional[int] = None,
               soa: bool = False,
               cosim_instructions: Optional[int] = None
               ) -> Dict[str, object]:
    """Run the benchmark matrix; returns the ``BENCH_perf.json`` record.

    With *sampled_instructions* set, the record also carries a
    ``sampled`` section: the sampled-vs-full scenario for every config
    at that (longer) instruction count (see :func:`run_sampled_benchmark`).
    With *soa* set, the ``entries`` section is pinned to tier 1 and a
    ``soa`` section re-runs every config at ``REPRO_FAST=2``, annotating
    each entry with ``speedup_vs_fast`` — the ratio the CI gate asserts
    against :data:`SOA_TARGET_SPEEDUP`.  With *cosim_instructions* set,
    a ``cosim`` section runs the pinned :data:`COSIM_CONFIGS` matrix
    through one co-simulated stream pass versus N serial passes (see
    :func:`run_cosim_benchmark`); its ``speedup_vs_serial`` is what
    ``--cosim-gate`` asserts against :data:`COSIM_GATE_SPEEDUP`.
    """
    entry_level = 1 if soa else None
    entries = [run_benchmark(name, benchmark, instructions,
                             repeats=repeats,
                             phase_breakdown=phase_breakdown,
                             level=entry_level)
               for name in configs]
    record = {
        "schema": SCHEMA_VERSION,
        "benchmark": benchmark,
        "instructions": instructions,
        "fast_paths": fast_level() >= 1,
        "fast_level": fast_level(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "calibration_score": round(calibrate(), 1),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "entries": entries,
    }
    if soa:
        fast_by_config = {e["config"]: e for e in entries}
        soa_entries = []
        for name in configs:
            entry = run_benchmark(name, benchmark, instructions,
                                  repeats=repeats,
                                  phase_breakdown=phase_breakdown,
                                  level=2)
            fast = fast_by_config[name]
            entry["speedup_vs_fast"] = round(
                float(entry["sim_cycles_per_sec"])
                / float(fast["sim_cycles_per_sec"]), 3)
            soa_entries.append(entry)
        record["soa"] = soa_entries
    if sampled_instructions is not None:
        record["sampled"] = [
            run_sampled_benchmark(name, benchmark, sampled_instructions)
            for name in configs]
    if cosim_instructions is not None:
        record["cosim"] = [
            run_cosim_benchmark(COSIM_CONFIGS, benchmark,
                                cosim_instructions, repeats=repeats)]
    return record


def write_record(record: Dict[str, object], path: str) -> None:
    """Write a benchmark record as stable, diff-friendly JSON."""
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_record(path: str) -> Dict[str, object]:
    """Read a record previously written by :func:`write_record`."""
    with open(path) as handle:
        return json.load(handle)


def compare_records(current: Dict[str, object],
                    baseline: Dict[str, object],
                    threshold: float = 0.30) -> List[str]:
    """Regression check: current vs. baseline, calibration-normalised.

    Each matrix entry's ``sim_cycles_per_sec`` is divided by its record's
    calibration score, cancelling out machine speed; a normalised
    throughput more than *threshold* below baseline is a regression.
    Returns human-readable failure strings (empty = pass).  Entries
    present on only one side are ignored — the matrix is pinned, but a
    baseline from an older schema should not hard-fail the gate.
    Entries whose instruction counts differ are also skipped: throughput
    at a short smoke run (cold caches) is not comparable to a full run.
    The ``soa`` and ``sampled`` sections are gated the same way on their
    ``sim_cycles_per_sec``, so a regression that only slows the SoA step
    or the sampling engine still fails.
    """
    failures: List[str] = []
    cur_cal = float(current.get("calibration_score", 0)) or 1.0
    base_cal = float(baseline.get("calibration_score", 0)) or 1.0
    for section, label in (("entries", ""), ("soa", "soa "),
                           ("sampled", "sampled "), ("cosim", "cosim ")):
        baseline_by_key = {
            (e["config"], e["benchmark"]): e
            for e in baseline.get(section, ())
        }
        for entry in current.get(section, ()):
            key = (entry["config"], entry["benchmark"])
            base = baseline_by_key.get(key)
            if base is None:
                continue
            if entry.get("instructions") != base.get("instructions"):
                continue
            cur_norm = float(entry["sim_cycles_per_sec"]) / cur_cal
            base_norm = float(base["sim_cycles_per_sec"]) / base_cal
            if base_norm <= 0:
                continue
            ratio = cur_norm / base_norm
            if ratio < 1.0 - threshold:
                failures.append(
                    f"{label}{key[0]}/{key[1]}: normalised throughput "
                    f"fell to {ratio:.2f}x of baseline "
                    f"({entry['sim_cycles_per_sec']} vs "
                    f"{base['sim_cycles_per_sec']} sim cycles/s raw)")
    return failures


def check_soa_speedup(record: Dict[str, object],
                      target: float = SOA_GATE_SPEEDUP) -> List[str]:
    """The SoA gate: every ``soa`` entry must hit *target* vs tier 1.

    Compares ``speedup_vs_fast`` within a single record — tier 1 and
    tier 2 timed in the same invocation on the same machine — so no
    calibration normalisation is needed, and machine-speed drift between
    baseline and current runs cannot fake a pass or a failure.  The
    default *target* is the noise-tolerant :data:`SOA_GATE_SPEEDUP`
    floor, not the aspirational :data:`SOA_TARGET_SPEEDUP`.  Returns
    failure strings (empty = pass).
    """
    failures: List[str] = []
    for entry in record.get("soa", ()):
        speedup = float(entry.get("speedup_vs_fast", 0.0))
        if speedup < target:
            failures.append(
                f"soa {entry['config']}/{entry['benchmark']}: "
                f"{speedup:.2f}x vs tier 1, need >= {target:.2f}x")
    if not record.get("soa"):
        failures.append("record has no 'soa' section (run with --soa)")
    return failures


def check_cosim_speedup(record: Dict[str, object],
                        target: float = COSIM_GATE_SPEEDUP) -> List[str]:
    """The co-sim gate: every ``cosim`` entry must hit *target*.

    Like :func:`check_soa_speedup`, the ratio lives within one record —
    serial and co-simulated passes timed in the same invocation on the
    same machine — so no calibration normalisation is needed.  The
    default *target* is the noise-tolerant :data:`COSIM_GATE_SPEEDUP`
    floor, not the aspirational :data:`COSIM_TARGET_SPEEDUP`.  Returns
    failure strings (empty = pass).
    """
    failures: List[str] = []
    for entry in record.get("cosim", ()):
        speedup = float(entry.get("speedup_vs_serial", 0.0))
        if speedup < target:
            failures.append(
                f"cosim {entry['config']}/{entry['benchmark']}: "
                f"{speedup:.2f}x vs serial passes, need >= {target:.2f}x")
    if not record.get("cosim"):
        failures.append("record has no 'cosim' section (run with --cosim)")
    return failures
