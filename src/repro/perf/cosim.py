"""Multi-config co-simulation: one stream pass, N timing models.

The paper's whole evaluation is a many-configs-one-benchmark matrix
(Figs 4-10: W16/TC/PF/PR over each benchmark), and everything that is a
pure function of the *stream* — decode, the flattened oracle-PC table,
fragment metadata, functional gap fast-forwarding, warm-snapshot
training — was still being recomputed once per config.  This engine
advances N :class:`~repro.core.processor.Processor` instances over one
shared prepared stream and shares exactly that config-independent work:

* one :class:`~repro.perf.soa.SharedStream` (decode cache + SoA PC
  table + per-fragment-config metadata) injected into every sibling;
* one warm-snapshot training pass per fragment config
  (:func:`repro.sampling.prep.warm_group_snapshots`) instead of one
  per distinct warm digest;
* in sampled mode, one functional gap fast-forward per group: the
  cache-touch list of each gap (which addresses fill, in which order)
  depends only on the stream, so it is computed once and replayed into
  each sibling's memory hierarchy.

Everything config-dependent — predictors, rename state, window, caches'
*contents*, stats — stays strictly per sibling, so results (counters
included) are bit-identical to serial per-config runs in full-detail,
obs-on and sampled modes; the parity tests assert it.  The sweep runner
(:mod:`repro.experiments.runner`) turns a stream group into one co-sim
batch when ``REPRO_COSIM`` is on (the default while grouping is on).

Like :mod:`repro.perf.bench`, the heavyweight simulator imports are
deferred into the functions: ``repro.core.processor`` imports this
package for :class:`~repro.perf.knobs.PerfConfig`, so a module-level
import of ``repro.core`` here would be circular.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.perf.knobs import PerfConfig

#: One co-simulated job: a named config (``run_simulation``'s first two
#: identity arguments; everything else is shared across the group).
CosimSpec = Tuple[Union[str, "ProcessorConfig"], Optional[str]]  # noqa: F821


def _gap_touches(gap, seen_line: int) -> Tuple[List[Tuple[int, bool]], int]:
    """The cache-touch list of one functional fast-forward gap.

    Mirrors :meth:`repro.core.warming.WarmingState.feed_caches` exactly:
    an instruction-side touch on every I-line change, a data-side touch
    per memory record, in stream order.  Which touches happen depends
    only on the stream and the carried *seen_line* — never on a config —
    so one list serves every sibling.  Returns the touches and the
    carried-out seen line.
    """
    touches: List[Tuple[int, bool]] = []
    append = touches.append
    for record in gap:
        line = record.pc >> 6
        if line != seen_line:
            append((record.pc, True))
            seen_line = line
        if record.ea is not None:
            append((record.ea, False))
    return touches, seen_line


def _replay_touches(memory, touches: Sequence[Tuple[int, bool]]) -> None:
    """Apply a shared touch list to one sibling's memory hierarchy.

    Fill order per touch matches ``feed_caches``: L2 first, then the
    L1 side the touch belongs to — each sibling's LRU state observes
    exactly the update sequence a solo gap walk would apply.
    """
    l2_fill = memory.l2.fill
    l1i_fill = memory.l1i.fill
    l1d_fill = memory.l1d.fill
    for addr, is_inst in touches:
        l2_fill(addr)
        if is_inst:
            l1i_fill(addr)
        else:
            l1d_fill(addr)


def run_cosim(specs: Sequence[CosimSpec],
              benchmark,
              max_instructions: Optional[int] = None,
              warm: bool = True,
              sampling=None,
              unit_hook: Optional[Callable] = None,
              ) -> Tuple[List["SimulationResult"],  # noqa: F821
                         Dict[str, float]]:
    """Co-simulate every config in *specs* over one shared stream.

    Args:
        specs: ``(config, config_name)`` pairs — a named paper config or
            a full :class:`~repro.config.ProcessorConfig`, plus the
            result label (None derives it like ``run_simulation``).
        benchmark: suite benchmark name or ad-hoc
            :class:`~repro.isa.program.Program`, shared by the group.
        max_instructions: shared dynamic instruction budget.
        warm: shared pre-run functional warming flag.
        sampling: shared sampling selector (``run_simulation`` semantics;
            resolved once for the group).
        unit_hook: sampled mode only — called as ``unit_hook(ui,
            processors)`` after each measured unit's windows complete,
            with the sibling processors in spec order.  A test seam for
            the cross-config state-isolation contract; None in
            production.

    Returns:
        ``(results, savings)``: one :class:`SimulationResult` per spec,
        in order, each bit-identical to the serial
        ``run_simulation(config, benchmark, ...)`` result; and a counter
        dict describing the work sharing (``cosim.jobs``,
        ``cosim.shared_decode``, ``cosim.gap_insts_shared``, plus
        ``prep.snapshot_*`` deltas) for the sweep summary.
    """
    from repro.core.processor import Processor
    from repro.core.simulation import (
        SimulationResult,
        _resolve_config,
        _resolve_live,
    )
    from repro.core.warming import WarmingState
    from repro.obs import Observability
    from repro.perf.soa import SharedStream
    from repro.sampling import prep
    from repro.sampling.engine import (
        SampleAccum,
        _cpi_stats,
        finalize_sampled,
        measure_unit,
        resolve_sampling,
        unit_geometry,
    )
    from repro.workloads import suite

    if not specs:
        return [], {}
    names: List[str] = []
    configs: List["ProcessorConfig"] = []  # noqa: F821
    for config, name in specs:
        resolved_name, processor_config = _resolve_config(config)
        names.append(name or resolved_name)
        configs.append(processor_config)

    length = (suite.default_sim_instructions() if max_instructions is None
              else max_instructions)
    program, execution, stream_key = prep.get_oracle(benchmark, length)
    oracle = execution.stream
    bench_name = benchmark if isinstance(benchmark, str) else program.name
    sampling_config = resolve_sampling(sampling)
    n = len(specs)

    savings: Dict[str, float] = {"cosim.jobs": float(n)}
    prep_before = prep.PREP_STATS.as_dict()
    if warm:
        prep.warm_group_snapshots(configs, oracle, stream_key, pin=program)
        prep_after = prep.PREP_STATS.as_dict()
        for key in ("prep.snapshot_trains", "prep.snapshot_group_shared"):
            delta = prep_after.get(key, 0.0) - prep_before.get(key, 0.0)
            if delta:
                savings[key] = delta

    shared = (SharedStream(oracle)
              if PerfConfig.from_env().fast else None)

    results: List[SimulationResult] = []
    if sampling_config is None:
        # Full-detail mode.  Sharing is stream-level (decode cache, SoA
        # tables, warm snapshots) and every shared structure is a pure
        # keyed function, so sibling order — sequential here — cannot
        # affect any result; cycle-interleaving would buy nothing.
        for processor_config, name in zip(configs, names):
            obs = Observability.from_env()
            live = _resolve_live(None, bench_name, name, "full")
            processor = Processor(processor_config, program, oracle,
                                  obs=obs, live=live, shared=shared)
            if warm:
                prep.warm_from_snapshot(processor, oracle, stream_key,
                                        pin=program)
            processor.run()
            if live is not None:
                live.publish_final(processor)
            results.append(SimulationResult(
                benchmark=bench_name,
                config_name=name,
                cycles=processor.now,
                committed=processor.committed,
                counters=processor.stats.as_dict(),
            ))
    else:
        # Sampled mode: unit-lockstep.  Measured units detail-simulate
        # every sibling; each gap is fast-forwarded once (warm mode) via
        # the shared touch list and replayed per sibling.
        raw_pos, total, total_units, measured_units = unit_geometry(
            oracle, sampling_config)
        unit = sampling_config.unit

        processors: List[Processor] = []
        obs_list: List[Observability] = []
        lives: List[object] = []
        accs: List[SampleAccum] = []
        warmers: List[WarmingState] = []
        for processor_config, name in zip(configs, names):
            obs = Observability.from_env()
            live = _resolve_live(None, bench_name, name, "sampled")
            processor = Processor(processor_config, program, oracle,
                                  obs=obs, live=live, shared=shared)
            if warm:
                prep.warm_from_snapshot(processor, oracle, stream_key,
                                        pin=program)
            processors.append(processor)
            obs_list.append(obs)
            lives.append(live)
            accs.append(SampleAccum())
            warmers.append(WarmingState(processor))

        cursor = 0        # identical across siblings by construction
        seen_line = -1    # shared gap I-line carry (stream-dependent)
        gap_shared = 0
        for ui in range(len(measured_units)):
            j = measured_units[ui]
            m_start = j * unit
            m_end = min(m_start + unit, total)
            w_start = max(m_start - sampling_config.warmup, cursor)

            if w_start > cursor:
                gap = oracle[raw_pos[cursor]:raw_pos[w_start]]
                if warm:
                    touches, seen_line = _gap_touches(gap, seen_line)
                    for i, processor in enumerate(processors):
                        obs = obs_list[i]
                        profiler = obs.profiler if obs is not None else None
                        t0 = (profiler.start()
                              if profiler is not None else 0.0)
                        _replay_touches(processor.memory, touches)
                        if profiler is not None:
                            profiler.stop("warm", t0)
                    gap_shared += (w_start - cursor) * (n - 1)
                else:
                    # Pure-SMARTS gaps train per-sibling predictors;
                    # that work is config state, so it cannot be shared.
                    for i, warmer in enumerate(warmers):
                        obs = obs_list[i]
                        profiler = obs.profiler if obs is not None else None
                        t0 = (profiler.start()
                              if profiler is not None else 0.0)
                        warmer.feed(gap)
                        warmer.discard_partial()
                        if profiler is not None:
                            profiler.stop("warm", t0)
                for acc in accs:
                    acc.gap_insts += w_start - cursor

            for i, processor in enumerate(processors):
                measure_unit(processor, accs[i], w_start, m_start, m_end)
                live = lives[i]
                if live is not None:
                    mean, _, halfwidth = _cpi_stats(accs[i].unit_cycles,
                                                    accs[i].unit_insts)
                    live.note_sampling(
                        unit=ui + 1,
                        units_total=len(measured_units),
                        measured_insts=sum(accs[i].unit_insts),
                        cpi_mean=round(mean, 6),
                        cpi_halfwidth=round(halfwidth, 6),
                        ipc_halfwidth_rel=(round(halfwidth / mean, 6)
                                           if mean else 0.0))
                    live.publish(processor)
            cursor = m_end
            if unit_hook is not None:
                unit_hook(ui, processors)

        savings["cosim.gap_insts_shared"] = float(gap_shared)
        for i, name in enumerate(names):
            results.append(finalize_sampled(
                processors[i], accs[i], sampling_config, total, total_units,
                name, bench_name, observability=obs_list[i], live=lives[i]))

    if shared is not None:
        # Decode entries are built once and served to the other n-1
        # siblings; misses count the builds (including any re-builds).
        savings["cosim.shared_decode"] = float(
            shared.decode_cache.misses * (n - 1))
    return results, savings
