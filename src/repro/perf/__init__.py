"""Speed tiers and the reproducible wall-clock benchmark harness.

Three related jobs live in this package:

* :mod:`repro.perf.knobs` — the ``REPRO_FAST`` tier switch.  Tier 0 is
  the reference loop (the correctness oracle), tier 1 (default) enables
  the behaviour-preserving hot-path caches, tier 2 adds the batched
  structure-of-arrays cycle step.  The golden-parity tests
  (``tests/test_perf.py``, ``tests/test_perf_soa.py``) run the tiers
  side by side and assert every result counter is bit-identical, which
  is what licenses the fast tiers in the first place.  Structural
  optimizations (precomputed instruction attributes, the array-backed
  rename map, idle-phase skipping) are unconditional — they are provably
  behaviour-preserving and have no slow twin.

* :mod:`repro.perf.soa` — the tier-2 batched state: flattened oracle
  PCs and per-fragment decode/source/dest metadata the batched rename,
  tagging and commit loops run over (layout in ``docs/DATA_LAYOUT.md``).

* :mod:`repro.perf.bench` — the benchmark harness behind
  ``benchmarks/bench_perf.py`` and the ``BENCH_perf*.json`` records.
"""

from repro.config import PERF_FAST_ENV
from repro.perf.bench import (
    COSIM_CONFIGS,
    COSIM_GATE_SPEEDUP,
    COSIM_TARGET_SPEEDUP,
    PINNED_BENCHMARK,
    PINNED_CONFIGS,
    PINNED_INSTRUCTIONS,
    SAMPLED_INSTRUCTIONS,
    SCHEMA_VERSION,
    SMOKE_INSTRUCTIONS,
    SMOKE_SAMPLED_INSTRUCTIONS,
    SOA_GATE_SPEEDUP,
    SOA_TARGET_SPEEDUP,
    calibrate,
    check_cosim_speedup,
    check_soa_speedup,
    compare_records,
    load_record,
    run_benchmark,
    run_cosim_benchmark,
    run_matrix,
    run_sampled_benchmark,
    write_record,
)
from repro.perf.knobs import (
    PerfConfig,
    fast_level,
    fast_paths_enabled,
    soa_enabled,
)

__all__ = [
    "COSIM_CONFIGS",
    "COSIM_GATE_SPEEDUP",
    "COSIM_TARGET_SPEEDUP",
    "PERF_FAST_ENV",
    "PINNED_BENCHMARK",
    "PINNED_CONFIGS",
    "PINNED_INSTRUCTIONS",
    "SAMPLED_INSTRUCTIONS",
    "SCHEMA_VERSION",
    "SMOKE_INSTRUCTIONS",
    "SMOKE_SAMPLED_INSTRUCTIONS",
    "SOA_GATE_SPEEDUP",
    "SOA_TARGET_SPEEDUP",
    "PerfConfig",
    "calibrate",
    "check_cosim_speedup",
    "check_soa_speedup",
    "compare_records",
    "fast_level",
    "fast_paths_enabled",
    "load_record",
    "run_benchmark",
    "run_cosim_benchmark",
    "run_matrix",
    "run_sampled_benchmark",
    "soa_enabled",
    "write_record",
]
