"""The ``REPRO_FAST`` speed-tier knob and its parsed form.

The knob has three levels (see ``docs/PERFORMANCE.md`` for the full
speed-tier table and ``docs/DATA_LAYOUT.md`` for what tier 2 changes):

* ``REPRO_FAST=0`` — the reference loop: no decode cache, no fragment
  walk cache, per-object cycle step.  The correctness oracle.
* ``REPRO_FAST=1`` (or unset) — the behaviour-preserving hot-path
  caches from PR 4: the decoded-uop cache
  (:class:`repro.core.uop.DecodeCache`) and the front-end fragment walk
  cache (:class:`repro.frontend.control.FrontEndControl`).
* ``REPRO_FAST=2`` — everything in tier 1 plus the batched
  structure-of-arrays cycle step (:mod:`repro.perf.soa`): oracle PCs
  flattened into one array, per-fragment decode/source/dest metadata
  precomputed once, and rename/commit executed as bulk batch loops.

Every tier is bit-identical to tier 0 by contract; the golden-parity
tests (``tests/test_perf.py``, ``tests/test_perf_soa.py``) run the
tiers side by side and assert every counter matches.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.config import PERF_FAST_ENV

#: ``REPRO_FAST`` values that select the reference loop (tier 0).
_OFF_VALUES = ("0", "false", "no", "off", "")
#: ``REPRO_FAST`` values that select the batched SoA step (tier 2).
_SOA_VALUES = ("2", "soa")


def fast_level() -> int:
    """The configured ``REPRO_FAST`` tier: 0, 1 or 2.

    Unset defaults to tier 1.  Falsy spellings (``0``/``false``/``no``/
    ``off``/empty) select the reference loop; ``2`` (or ``soa``) selects
    the batched structure-of-arrays step; anything else truthy is
    tier 1.
    """
    value = os.environ.get(PERF_FAST_ENV)
    if value is None:
        return 1
    text = value.strip().lower()
    if text in _OFF_VALUES:
        return 0
    if text in _SOA_VALUES:
        return 2
    return 1


def fast_paths_enabled() -> bool:
    """Whether the gated hot-path caches are on (tier >= 1).

    Unset or any truthy value enables them; ``0``/``false``/``no``/
    ``off`` selects the reference loop.
    """
    return fast_level() >= 1


def soa_enabled() -> bool:
    """Whether the batched SoA cycle step is selected (tier 2)."""
    return fast_level() >= 2


@dataclass(frozen=True)
class PerfConfig:
    """Resolved speed-tier selection for one :class:`Processor`.

    Kept separate from :class:`repro.config.ProcessorConfig` on purpose:
    the tier changes *how fast* a simulation runs, never *what* it
    computes, so it must not leak into result identity, sweep cache
    keys, or warm-snapshot digests.
    """

    #: The ``REPRO_FAST`` tier (0 = reference, 1 = cached, 2 = SoA).
    level: int = 1

    @property
    def fast(self) -> bool:
        """Tier >= 1: decode cache + fragment walk cache."""
        return self.level >= 1

    @property
    def soa(self) -> bool:
        """Tier >= 2: batched structure-of-arrays cycle step."""
        return self.level >= 2

    @classmethod
    def from_env(cls) -> "PerfConfig":
        """The tier selected by ``REPRO_FAST`` right now."""
        return cls(level=fast_level())
