"""Tier-2 batched structure-of-arrays pipeline state (``REPRO_FAST=2``).

The reference cycle loop re-derives the same per-instruction facts for
every dynamic instance: oracle tagging compares PCs one attribute lookup
at a time, rename asks the decode cache for operands per uop, commit
releases window slots one at a time.  Tier 2 hoists everything that is a
pure function of the *static* fragment into a :class:`FragMeta` built
once per :class:`~repro.frontend.fragments.StaticFragment`, and flattens
the oracle stream's PCs into one preallocated list so tagging a fragment
becomes a single slice comparison.

Index linkage invariants (see ``docs/DATA_LAYOUT.md`` for the full
memory model):

* ``SoAState.oracle_pcs[i]`` is the PC of oracle record ``i`` — the
  flat mirror of ``Processor._oracle``; positions never move.
* ``FragMeta.pcs/srcs/dest/decoded[p]`` describe static instruction
  position ``p`` of one fragment; a fragment's dynamic uop at position
  ``p`` is built from exactly these entries, so tier 2 produces
  bit-identical uops to the reference ``_make_uop`` path.
* Metadata is cached per *canonical fragment key*.  The key records the
  actual direction of every conditional branch inside the fragment
  (fallback-supplied bits included — see ``walk_fragment``), so for a
  fixed program it fully determines the walk path: two static fragments
  with equal keys carry the same ``Instruction`` objects position for
  position, and sharing one metadata entry between them is exact.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.uop import DecodeCache, DecodedUop
from repro.emulator.stream import DynamicInstruction
from repro.frontend.fragments import FragmentKey, StaticFragment


class FragMeta:
    """Per-static-fragment arrays the batched loops index by position."""

    __slots__ = ("insts", "pcs", "srcs", "dest", "decoded", "src_plan",
                 "chunks")

    def __init__(self, static: StaticFragment, cache: DecodeCache):
        #: The fragment's (non-NOP) instructions, aliased for the rename
        #: hot loop.
        self.insts = static.instructions
        # One fused pass builds every per-position array (pcs, decoded,
        # srcs, dest, src_plan): metadata construction is pure tier-2
        # overhead, so its cost lands directly on the speedup ratio.
        lookup = cache.lookup
        #: PC per position — compared against ``oracle_pcs`` as a slice.
        pcs: List[int] = []
        #: One shared :class:`DecodedUop` per position.
        decoded: List[DecodedUop] = []
        #: Dependence-creating source registers per position.
        srcs_l: List[Tuple[int, ...]] = []
        #: Destination register per position (None = no rename effect).
        dest_l: List[Optional[int]] = []
        #: Per-position source-resolution plan for the parallel renamer.
        #: Which map a source register resolves against is a pure
        #: function of the static fragment (rename runs positions in
        #: order, so the nearest earlier internal write — if any — always
        #: wins over the incoming map).  Entry ``q >= 0``: the producer
        #: is this fragment's own uop at position ``q``.  Entry
        #: ``-(reg + 1)``: the source reads register ``reg`` from the
        #: fragment's incoming map (or architectural state when absent).
        plan: List[Tuple[int, ...]] = []
        last_write: Dict[int, int] = {}
        lw_get = last_write.get
        for p, inst in enumerate(static.instructions):
            addr = inst.addr
            pcs.append(addr)
            d = lookup(addr, inst)
            decoded.append(d)
            srcs = d.srcs
            srcs_l.append(srcs)
            dest = d.dest
            dest_l.append(dest)
            plan.append(tuple(lw_get(r, -(r + 1)) for r in srcs))
            if dest is not None:
                last_write[dest] = p
        self.pcs = pcs
        self.decoded = decoded
        self.srcs = srcs_l
        self.dest = dest_l
        self.src_plan = plan
        #: Per-cycle fetch chunk tables, lazily built by the sequencer:
        #: ``(width, line_shift) -> {start_cursor: (end_cursor, fetched)}``.
        #: A sequencer cycle's stopping point (width exhausted, line
        #: boundary, taken transfer) is a pure function of the static
        #: fragment, so the walk is computed once per geometry.
        self.chunks: Dict[Tuple[int, int], Dict[int, Tuple[int, int]]] = {}


class SharedStream:
    """Config-independent per-stream state for co-simulated siblings.

    The co-simulation engine (:mod:`repro.perf.cosim`) runs N timing
    configs over one prepared stream; everything here is a pure function
    of the stream (plus, for fragment metadata, the fragment config), so
    one instance can back every sibling ``Processor`` without perturbing
    result identity:

    * one :class:`~repro.core.uop.DecodeCache` — decode is pure per PC
      and instruction identity, and its hit/miss counters never reach
      :class:`~repro.core.simulation.SimulationResult`;
    * one flattened oracle-PC table (the ``SoAState.oracle_pcs`` mirror);
    * one :class:`FragMeta` dict *per fragment config* — canonical keys
      are only exact within one carving geometry, so metadata is scoped
      by :class:`~repro.config.FragmentConfig`.
    """

    __slots__ = ("decode_cache", "oracle_pcs", "_meta_by_fragment")

    def __init__(self, oracle: List[DynamicInstruction]):
        self.decode_cache = DecodeCache()
        #: PCs of the non-NOP records, matching ``Processor._oracle``.
        self.oracle_pcs: List[int] = [
            r.pc for r in oracle if not r.inst.is_nop]
        self._meta_by_fragment: Dict[object, Dict[FragmentKey, FragMeta]] = {}

    def meta_for(self, fragment_config: object) -> Dict[FragmentKey, FragMeta]:
        """The shared metadata dict for one carving geometry."""
        meta = self._meta_by_fragment.get(fragment_config)
        if meta is None:
            meta = {}
            self._meta_by_fragment[fragment_config] = meta
        return meta


class SoAState:
    """Flat tier-2 state owned by one :class:`Processor` instance."""

    __slots__ = ("oracle_pcs", "_cache", "_meta")

    #: Metadata entries kept before the cache is wiped (a safety bound —
    #: real workloads revisit far fewer distinct fragment keys).
    _META_CAP = 8192

    def __init__(self, oracle: List[DynamicInstruction],
                 decode_cache: DecodeCache,
                 oracle_pcs: Optional[List[int]] = None,
                 meta: Optional[Dict[FragmentKey, FragMeta]] = None):
        # The co-simulation engine (repro.perf.cosim) injects one shared
        # PC table and FragMeta dict across sibling processors on the
        # same stream; both are pure per (stream, fragment config, decode
        # cache), so sharing is exact.  Solo processors build their own.
        #: PC of every oracle record, flattened for slice comparison.
        self.oracle_pcs: List[int] = (
            [r.pc for r in oracle] if oracle_pcs is None else oracle_pcs)
        self._cache = decode_cache
        self._meta: Dict[FragmentKey, FragMeta] = (
            {} if meta is None else meta)

    def meta_for(self, static: StaticFragment) -> FragMeta:
        """The (cached) batched metadata for *static*.

        Keyed by the canonical fragment key rather than object identity:
        walks that consulted the direction fallback produce fresh
        ``StaticFragment`` objects every time (the walk cache cannot memo
        them), but their canonical keys — and therefore instructions —
        are identical, so the metadata is shared."""
        meta = self._meta.get(static.key)
        if meta is not None:
            return meta
        if len(self._meta) >= self._META_CAP:
            self._meta.clear()
        meta = FragMeta(static, self._cache)
        self._meta[static.key] = meta
        return meta
