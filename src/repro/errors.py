"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AssemblerError(ReproError):
    """Raised when assembly source cannot be assembled.

    Carries the source line number (1-based) when available.
    """

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class EmulationError(ReproError):
    """Raised when the functional emulator encounters an illegal state
    (bad PC, unaligned access, division by zero, runaway execution)."""


class ConfigError(ReproError):
    """Raised for invalid simulator configuration values."""


class SimulationError(ReproError):
    """Raised when the timing model reaches an inconsistent state.

    This always indicates a bug in the simulator rather than a property of
    the simulated program, so it should never be silently swallowed.
    """
