"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AssemblerError(ReproError):
    """Raised when assembly source cannot be assembled.

    Carries the source line number (1-based) when available.
    """

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class EmulationError(ReproError):
    """Raised when the functional emulator encounters an illegal state
    (bad PC, unaligned access, division by zero, runaway execution)."""


class ConfigError(ReproError):
    """Raised for invalid simulator configuration values."""


class SimulationError(ReproError):
    """Raised when the timing model reaches an inconsistent state.

    This always indicates a bug in the simulator rather than a property of
    the simulated program, so it should never be silently swallowed.
    """


class InvariantError(SimulationError):
    """A per-cycle pipeline audit found structurally inconsistent state.

    Raised by :mod:`repro.core.invariants` with the cycle at which the
    audit fired and a diagnostic dump of the pipeline (fragments in
    flight, buffer occupancy, commit/oracle cursors) so the failure is
    debuggable from the exception alone.
    """

    def __init__(self, message: str, cycle: int | None = None,
                 dump: str | None = None):
        self.cycle = cycle
        self.dump = dump
        if cycle is not None:
            message = f"cycle {cycle}: {message}"
        if dump:
            message = f"{message}\n{dump}"
        super().__init__(message)


class DeadlockError(InvariantError):
    """The pipeline stopped making forward progress (no-commit livelock).

    Raised by the forward-progress watchdog well before the ``max_cycles``
    safety bound, so a livelocked simulation fails loudly with a
    cycle-stamped pipeline dump instead of silently timing out.
    """


class SweepError(ReproError):
    """One or more sweep jobs failed after exhausting their retries.

    Raised by :meth:`repro.experiments.runner.SweepReport.raise_failures`;
    the per-job details live in the report's ``failures`` mapping.
    """
