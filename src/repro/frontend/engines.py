"""Fill engines: how fragment buffers get filled.

All three fetch mechanisms share the fragment-buffer/readout machinery and
differ only in how buffers are filled:

* :class:`SequentialFillEngine` (W16) — one 16-wide sequencer, one cache
  line per cycle, fragments filled strictly in order; a cache miss stalls
  all fetch (the sequential-fetch limitation of Section 2.1);
* :class:`TraceCacheFillEngine` (TC) — a trace-cache probe per fragment; a
  hit delivers the whole fragment in one cycle, a miss falls back to the
  W16 sequencer and fills the trace cache when the fragment completes;
* :class:`ParallelFillEngine` (PF) — N narrow sequencers over a banked
  cache.  Sequencers are assigned to the oldest *fetchable* fragments each
  cycle, so a sequencer whose fragment is waiting on a cache miss is
  redeployed to another fragment while the miss is serviced (Section 2.2)
  — the source of parallel fetch's latency tolerance.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Set

from repro.frontend.buffers import FragmentInFlight
from repro.frontend.sequencer import Sequencer
from repro.frontend.trace_cache import TraceCache
from repro.isa.program import Program
from repro.memory.hierarchy import MemoryHierarchy
from repro.stats import StatsCollector


class _BankGate:
    """Per-cycle arbitration over the banked instruction cache.

    Each bank serves one line per cycle; requests for a line that has
    already been read this cycle piggyback on that read (adjacent
    fragments frequently live in the same line, and one RAM row read can
    feed every consumer).
    """

    def __init__(self, memory: MemoryHierarchy, max_grants: int):
        self._memory = memory
        self._max_grants = max_grants
        self._line_shift = memory.config.l1i.line_bytes.bit_length() - 1
        self._busy: Set[int] = set()
        self._granted_lines: Set[int] = set()
        self._grants = 0

    def reset(self) -> None:
        self._busy.clear()
        self._granted_lines.clear()
        self._grants = 0

    def __call__(self, addr: int) -> bool:
        line = addr >> self._line_shift
        if line in self._granted_lines:
            return True
        if self._grants >= self._max_grants:
            return False
        bank = self._memory.ibank_of(addr)
        if bank in self._busy:
            return False
        self._busy.add(bank)
        self._granted_lines.add(line)
        self._grants += 1
        return True


class FillEngine:
    """Interface shared by all fill engines."""

    def can_accept(self) -> bool:
        """May the front-end hand this engine another fragment?"""
        raise NotImplementedError

    def accept(self, fragment: FragmentInFlight) -> None:
        """Queue a newly-allocated fragment for filling.

        Fragments satisfied by buffer reuse are already complete and are
        never handed to the engine.
        """
        raise NotImplementedError

    def cycle(self, now: int) -> int:
        """Advance one cycle; returns instructions fetched."""
        raise NotImplementedError

    def squash(self) -> None:
        """Drop any queued/active fragments that have been squashed."""
        raise NotImplementedError

    def busy_sequencers(self, now: int) -> int:
        """Sequencers with fetchable work this cycle (observability)."""
        raise NotImplementedError

    def prewarm_chunks(self, meta, pcs) -> None:
        """Eagerly build per-fragment fetch chunk tables (tier 2).

        Functional-warming hook: chunk tables are pure functions of the
        static fragment and the sequencer geometry, so prebuilding them
        during warming is invisible to the timed run's results."""


class SequentialFillEngine(FillEngine):
    """W16: a single full-width sequencer, single-ported cache.

    Fragments fill strictly in order and a cache miss blocks everything —
    sequential fetch has no way to work past a stall.
    """

    def __init__(self, program: Program, memory: MemoryHierarchy,
                 stats: StatsCollector, width: int = 16):
        self.stats = stats
        self._queue: Deque[FragmentInFlight] = deque()
        self._sequencer = Sequencer(0, width, program, memory, stats)
        self._gate = _BankGate(memory, max_grants=1)
        self._current: Optional[FragmentInFlight] = None

    def can_accept(self) -> bool:
        """Whether the fetch queue has room for another fragment."""
        return len(self._queue) < 4

    def accept(self, fragment: FragmentInFlight) -> None:
        """Queue *fragment* for fetch."""
        self._queue.append(fragment)

    def prewarm_chunks(self, meta, pcs) -> None:
        """Prebuild the W16 sequencer's chunk table for one fragment."""
        self._sequencer.prewarm_chunks(meta, pcs)

    def cycle(self, now: int) -> int:
        """Fetch up to one fragment's worth of instructions this cycle."""
        if self._current is None and not self._queue:
            return 0  # idle: nothing queued, nothing in flight
        self._gate.reset()
        if self._current is not None and (self._current.complete
                                          or self._current.squashed):
            self._current = None
        if self._current is None:
            while self._queue and self._queue[0].squashed:
                self._queue.popleft()
            if not self._queue:
                return 0
            self._current = self._queue.popleft()
        return self._sequencer.fetch_fragment(self._current, now,
                                              self._gate)

    def squash(self) -> None:
        """Drop squashed fragments from fetch state."""
        self._queue = deque(f for f in self._queue if not f.squashed)
        if self._current is not None and self._current.squashed:
            self._current = None

    def busy_sequencers(self, now: int) -> int:
        """Sequencers actively fetching this cycle (0 or 1)."""
        return int(self._current is not None
                   and self._current.fetch_stall_until <= now)


class TraceCacheFillEngine(FillEngine):
    """TC: trace-cache probe, W16 fill path on misses."""

    def __init__(self, program: Program, memory: MemoryHierarchy,
                 trace_cache: TraceCache, stats: StatsCollector,
                 width: int = 16):
        self.stats = stats
        self.trace_cache = trace_cache
        self._queue: Deque[FragmentInFlight] = deque()
        self._sequencer = Sequencer(0, width, program, memory, stats)
        self._gate = _BankGate(memory, max_grants=1)
        self._filling: Optional[FragmentInFlight] = None

    def can_accept(self) -> bool:
        """Whether the fetch queue has room for another fragment."""
        return len(self._queue) < 4

    def accept(self, fragment: FragmentInFlight) -> None:
        """Queue *fragment* for trace-cache lookup and fetch."""
        self._queue.append(fragment)

    def prewarm_chunks(self, meta, pcs) -> None:
        """Prebuild the fill-path sequencer's chunk table."""
        self._sequencer.prewarm_chunks(meta, pcs)

    def cycle(self, now: int) -> int:
        """Probe the trace cache, then fill at most one fragment."""
        if self._filling is None and not self._queue:
            return 0  # idle: nothing queued, nothing in flight
        self._gate.reset()
        if self._filling is not None and (self._filling.squashed
                                          or self._filling.complete):
            self._filling = None

        if self._filling is None:
            while self._queue and self._queue[0].squashed:
                self._queue.popleft()
            if not self._queue:
                return 0
            fragment = self._queue.popleft()
            if self.trace_cache.lookup(fragment.key):
                # Hit: the whole trace arrives this cycle.
                length = fragment.static_frag.length
                fragment.fetched_count = length
                fragment.fetch_cursor = len(
                    fragment.static_frag.traversed_pcs)
                fragment.complete = True
                fragment.construct_cycle = now
                fragment.fetch_start_cycle = now
                self.stats.add("fetch.slots", 16)
                self.stats.add("fetch.insts", length)
                return length
            # Miss: build the trace through the sequential path.
            self._filling = fragment

        fetched = self._sequencer.fetch_fragment(self._filling, now,
                                                 self._gate)
        if self._filling.complete:
            self.trace_cache.insert(self._filling.key)
            self._filling = None
        return fetched

    def squash(self) -> None:
        """Drop squashed fragments from fetch state."""
        self._queue = deque(f for f in self._queue if not f.squashed)
        if self._filling is not None and self._filling.squashed:
            self._filling = None

    def busy_sequencers(self, now: int) -> int:
        """Sequencers actively fetching this cycle (0 or 1)."""
        return int(self._filling is not None
                   and self._filling.fetch_stall_until <= now)


class ParallelFillEngine(FillEngine):
    """PF: N sequencers of width/N each over a banked cache."""

    def __init__(self, program: Program, memory: MemoryHierarchy,
                 stats: StatsCollector, sequencers: int,
                 sequencer_width: int):
        self.stats = stats
        self._pending: List[FragmentInFlight] = []
        self._sequencers: List[Sequencer] = [
            Sequencer(i, sequencer_width, program, memory, stats)
            for i in range(sequencers)
        ]
        self._gate = _BankGate(memory, max_grants=memory.num_ibanks)

    def can_accept(self) -> bool:
        # Fragment supply is bounded by buffer availability upstream.
        """Always true: supply is bounded by fragment buffers."""
        return True

    def accept(self, fragment: FragmentInFlight) -> None:
        """Add *fragment* to the pool competing for sequencers."""
        self._pending.append(fragment)

    def prewarm_chunks(self, meta, pcs) -> None:
        """Prebuild the chunk table (all sequencers share one geometry)."""
        self._sequencers[0].prewarm_chunks(meta, pcs)

    def cycle(self, now: int) -> int:
        """Let the oldest fetchable fragments use the sequencers."""
        pending = self._pending
        if not pending:
            return 0
        self._gate.reset()
        # Oldest fetchable fragments win sequencers this cycle; fragments
        # waiting on a miss are skipped, overlapping the miss with the
        # fetch of younger fragments.
        keep: List[FragmentInFlight] = []
        candidates: List[FragmentInFlight] = []
        for f in pending:
            if f.squashed or f.complete:
                continue
            keep.append(f)
            if f.fetch_stall_until <= now:
                candidates.append(f)
        self._pending = keep
        fetched = 0
        for sequencer, fragment in zip(self._sequencers, candidates):
            fetched += sequencer.fetch_fragment(fragment, now, self._gate)
        stalled = len(keep) - len(candidates)
        if stalled:
            self.stats.add("fetch.miss_stall_cycles", stalled)
        return fetched

    def squash(self) -> None:
        """Drop squashed fragments from the pending pool."""
        self._pending = [f for f in self._pending if not f.squashed]

    def busy_sequencers(self, now: int) -> int:
        """Sequencers with a fetchable fragment this cycle."""
        fetchable = sum(1 for f in self._pending
                        if not (f.squashed or f.complete)
                        and f.fetch_stall_until <= now)
        return min(fetchable, len(self._sequencers))
