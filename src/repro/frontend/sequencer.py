"""Sequencers: the building block of every fetch mechanism.

A sequencer walks one fragment's instructions in program order, reading
cache lines from the (possibly banked) L1 instruction cache.  Per cycle it
fetches at most ``width`` instructions from a single cache line, stopping
early at taken control transfers and line boundaries — exactly the W16
behaviour of Section 5, parameterised by width.

Cache-miss state lives on the *fragment* (``fetch_stall_until``), not the
sequencer: in the parallel fetch unit a sequencer whose fragment misses is
redeployed to another fragment while the miss is serviced (Section 2.2),
whereas the sequential mechanisms keep working the same fragment and
therefore stall.

Fetch-slot accounting implements the Figure 4 metric: a sequencer that is
*active* (fetching an unstalled fragment) exposes ``width`` fetch slots
that cycle; instructions actually fetched fill some of them, and taken
branches, line boundaries and fragment ends waste the rest.  Miss-stall,
bank-blocked and idle cycles expose no slots.
"""

from __future__ import annotations

from typing import Callable

from repro.frontend.buffers import FragmentInFlight
from repro.isa.program import Program
from repro.memory.hierarchy import MemoryHierarchy
from repro.stats import StatsCollector

#: A bank gate takes a byte address and returns True if the banked cache
#: can serve that line this cycle (marking the bank busy as a side effect).
BankGate = Callable[[int], bool]


class Sequencer:
    """Fetches fragments, ``width`` instructions per cycle."""

    def __init__(self, index: int, width: int, program: Program,
                 memory: MemoryHierarchy, stats: StatsCollector):
        self.index = index
        self.width = width
        self.program = program
        self.memory = memory
        self.stats = stats
        line_bytes = memory.config.l1i.line_bytes
        self._line_shift = line_bytes.bit_length() - 1
        #: Chunk-table key: identical (width, line-shift) sequencers can
        #: share one precomputed table per fragment (see FragMeta.chunks).
        self._geometry = (width, self._line_shift)

    def fetch_fragment(self, fragment: FragmentInFlight, now: int,
                       bank_gate: BankGate) -> int:
        """Fetch one cycle's worth of *fragment*; returns instructions
        fetched (non-NOP).  Marks the fragment stalled on a cache miss."""
        if fragment.complete or fragment.squashed:
            return 0
        if fragment.fetch_start_cycle < 0:
            fragment.fetch_start_cycle = now
            fragment.fetch_sequencer = self.index
        if now < fragment.fetch_stall_until:
            self.stats.add("fetch.miss_stall_cycles")
            return 0

        pcs = fragment.static_frag.traversed_pcs
        cursor = fragment.fetch_cursor
        if cursor >= len(pcs):
            self._finish(fragment, now)
            return 0

        pc = pcs[cursor]
        line = pc >> self._line_shift
        if fragment.fetch_pending_line == line:
            # Fill bypass: the outstanding miss for this line just
            # completed; consume the returned data directly (it needs no
            # bank read and survives even if the line was evicted again
            # while we waited — otherwise heavy thrash livelocks fetch).
            fragment.fetch_pending_line = -1
        else:
            if not bank_gate(pc):
                # Bank conflict: the sequencer is blocked for the cycle.
                # Like miss stalls, blocked cycles expose no fetch slots
                # (Figure 4 counts only cycles a sequencer is active).
                self.stats.add("fetch.bank_conflicts")
                return 0
            ready = self.memory.fetch_line(pc, now)
            if ready > now:
                fragment.fetch_stall_until = ready
                fragment.fetch_pending_line = line
                self.stats.add("fetch.line_misses")
                return 0
        meta = fragment.soa_meta
        if meta is not None:
            # Tier 2: the cycle's stopping point is a pure function of
            # the static fragment and the sequencer geometry — replay it
            # from the precomputed chunk table instead of re-walking.
            geometry = self._geometry
            table = meta.chunks.get(geometry)
            if table is None:
                table = self._build_chunks(pcs)
                meta.chunks[geometry] = table
            cursor, fetched = table[cursor]
        else:
            fetched = 0
            slots_used = 0
            while cursor < len(pcs) and slots_used < self.width:
                pc = pcs[cursor]
                if pc >> self._line_shift != line:
                    break  # line boundary: next line comes next cycle
                inst = self.program.inst_at(pc)
                slots_used += 1
                cursor += 1
                if not inst.is_nop:
                    fetched += 1
                # Taken control transfer ends the cycle's fetch run.
                if cursor < len(pcs) and pcs[cursor] != pc + 4:
                    break

        fragment.fetch_cursor = cursor
        fragment.fetched_count += fetched
        self.stats.add("fetch.slots", self.width)
        self.stats.add("fetch.insts", fetched)
        if cursor >= len(pcs):
            self._finish(fragment, now)
        return fetched

    def prewarm_chunks(self, meta, pcs) -> None:
        """Build this sequencer's chunk table for one fragment eagerly.

        Functional-warming hook: the table is a pure function of the
        static fragment and the geometry, so building it before the
        timed run only moves work out of the measured region."""
        if self._geometry not in meta.chunks:
            meta.chunks[self._geometry] = self._build_chunks(pcs)

    def _build_chunks(self, pcs) -> dict:
        """Chunk table for one fragment: ``start -> (end, fetched)``.

        Verbatim replay of the per-cycle walk above, run over the whole
        fragment.  Fetch always resumes at a previous chunk's end (misses
        and bank conflicts leave the cursor untouched), so every cursor
        value the sequencer can observe is a chunk start.
        """
        table = {}
        cursor = 0
        limit = len(pcs)
        shift = self._line_shift
        width = self.width
        inst_at = self.program.inst_at
        while cursor < limit:
            start = cursor
            line = pcs[cursor] >> shift
            fetched = 0
            slots_used = 0
            while cursor < limit and slots_used < width:
                pc = pcs[cursor]
                if pc >> shift != line:
                    break
                slots_used += 1
                cursor += 1
                if not inst_at(pc).is_nop:
                    fetched += 1
                if cursor < limit and pcs[cursor] != pc + 4:
                    break
            table[start] = (cursor, fetched)
        return table

    def _finish(self, fragment: FragmentInFlight, now: int) -> None:
        fragment.complete = True
        fragment.construct_cycle = now
