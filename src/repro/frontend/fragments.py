"""Fragments: discontiguous portions of the dynamic instruction stream.

A *fragment* (Section 3.1 of the paper) is identified by its start PC and
the directions of the conditional branches inside it.  Given that key, the
static program determines the fragment's contents: the fetch hardware
walks static code from the start PC, following direct control transfers
and the predicted branch directions, until a termination condition fires.

Termination heuristics (identical to the paper's trace selection):

* at any **indirect** control transfer (``jr``/``jalr``/``ret``),
* at any **conditional branch after the eighth instruction**,
* at the **sixteenth instruction**,
* and additionally at ``halt`` (end of program).

NOP instructions are eliminated early and count toward neither fragment
length nor any fetch/rename/commit statistics, exactly as in Section 5.

Two views of the same concept live here:

* :func:`walk_fragment` — the *static* walk used by sequencers and the
  trace-cache fill unit (works on predicted keys, including wrong paths);
* :func:`carve_stream` — the *dynamic* carve of the oracle stream used to
  train predictors and to define the correct fragment sequence.

For any fragment observed dynamically, the static walk of its key
reproduces exactly the same instructions — a property the test suite
checks exhaustively.
"""

from __future__ import annotations

import enum
from typing import Iterator, List, NamedTuple, Optional, Sequence, Tuple

from repro.config import FragmentConfig
from repro.emulator.stream import DynamicInstruction
from repro.isa.instructions import Instruction
from repro.isa.program import Program

#: Safety bound on static-walk steps (NOP runs make traversed length
#: exceed fragment length, but never by more than the text segment).
_MAX_WALK_STEPS = 4096


class FragmentKey(NamedTuple):
    """Identity of a fragment: start PC + conditional-branch directions."""

    start_pc: int
    directions: Tuple[bool, ...]

    def hash_id(self) -> int:
        """A well-mixed 32-bit ID used by predictor index hashing.

        Both the start PC and the direction bits must influence *every*
        bit of the ID: predictor tables index with narrow slices of it
        (the DOLC scheme), so poor mixing aliases unrelated fragments.
        """
        bits = 0
        for taken in self.directions:
            bits = (bits << 1) | int(taken)
        value = ((self.start_pc >> 2) * 0x9E3779B1) & 0xFFFFFFFF
        # Fold in the direction count so (pc, "T") != (pc, "NT").
        value ^= (bits * 0x85EBCA6B + len(self.directions)) & 0xFFFFFFFF
        value ^= value >> 15
        return value

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        dirs = "".join("T" if d else "N" for d in self.directions)
        return f"{self.start_pc:#x}/{dirs or '-'}"


class TerminationReason(enum.Enum):
    """Why a fragment ended."""

    INDIRECT = "indirect"          # indirect jump/call/return
    COND_LIMIT = "cond_limit"      # conditional branch after the 8th inst
    MAX_LENGTH = "max_length"      # hit the 16-instruction limit
    HALT = "halt"                  # program end
    STREAM_END = "stream_end"      # dynamic stream was truncated
    WALK_LIMIT = "walk_limit"      # static walk safety bound (NOP runs)


class StaticFragment(NamedTuple):
    """Result of statically walking a fragment key.

    Attributes:
        key: the (possibly canonicalised) fragment key; ``directions`` is
            trimmed to the branches actually inside the fragment.
        instructions: the non-NOP instructions, in order.
        traversed_pcs: every PC visited, including NOPs, in fetch order —
            this is what the sequencer actually reads from the I-cache.
        reason: why the fragment terminated.
        next_pc: statically-known start of the next fragment, or ``None``
            when the fragment ends at an indirect transfer or ``halt``.
    """

    key: FragmentKey
    instructions: Tuple[Instruction, ...]
    traversed_pcs: Tuple[int, ...]
    reason: TerminationReason
    next_pc: Optional[int]

    @property
    def length(self) -> int:
        """Fragment length in non-NOP instructions."""
        return len(self.instructions)


class DynamicFragment:
    """A fragment carved from the oracle dynamic stream."""

    __slots__ = ("key", "records", "reason", "next_pc", "first_index")

    def __init__(self, key: FragmentKey,
                 records: List[DynamicInstruction],
                 reason: TerminationReason,
                 next_pc: Optional[int]):
        self.key = key
        self.records = records
        self.reason = reason
        self.next_pc = next_pc
        self.first_index = records[0].index if records else -1

    @property
    def length(self) -> int:
        """Number of oracle records in the dynamic fragment."""
        return len(self.records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DynamicFragment {self.key} len={self.length}>"


def should_terminate(inst: Instruction, position: int,
                     config: FragmentConfig) -> Optional[TerminationReason]:
    """Termination check *after* placing the non-NOP *inst* at 1-based
    *position* within the fragment."""
    if inst.is_halt:
        return TerminationReason.HALT
    if inst.is_indirect:
        return TerminationReason.INDIRECT
    if inst.is_cond_branch and position > config.cond_branch_limit:
        return TerminationReason.COND_LIMIT
    if position >= config.max_length:
        return TerminationReason.MAX_LENGTH
    return None


def walk_fragment(program: Program, start_pc: int,
                  directions: Sequence[bool],
                  config: FragmentConfig,
                  fallback=None) -> StaticFragment:
    """Statically construct the fragment identified by
    ``(start_pc, directions)``.

    Direction bits are consumed by conditional branches in order.  When
    the walk encounters more conditional branches than direction bits
    (cold fragments, start-overridden fragments), *fallback* — a callable
    ``pc -> bool`` such as a bimodal predictor — supplies the direction;
    with no fallback the branch defaults to not-taken.
    """
    instructions: List[Instruction] = []
    traversed: List[int] = []
    used_dirs: List[bool] = []
    pc = start_pc
    dir_index = 0
    reason = TerminationReason.WALK_LIMIT
    next_pc: Optional[int] = None

    for _ in range(_MAX_WALK_STEPS):
        if not program.contains_addr(pc):
            # Fell off the text segment down a bogus (wrong-path) key.
            reason = TerminationReason.HALT
            break
        inst = program.inst_at(pc)
        traversed.append(pc)
        if inst.is_nop:
            pc += 4
            continue
        instructions.append(inst)
        position = len(instructions)

        taken = False
        if inst.is_cond_branch:
            if dir_index < len(directions):
                taken = bool(directions[dir_index])
            elif fallback is not None:
                taken = bool(fallback(pc))
            dir_index += 1
            used_dirs.append(taken)
        elif inst.is_control and not inst.is_indirect and not inst.is_halt:
            taken = True  # direct jump/call

        if taken and inst.target is not None:
            following = inst.target
        else:
            following = pc + 4

        stop = should_terminate(inst, position, config)
        if stop is not None:
            reason = stop
            next_pc = None if stop in (TerminationReason.INDIRECT,
                                       TerminationReason.HALT) else following
            break
        pc = following

    key = FragmentKey(start_pc, tuple(used_dirs))
    return StaticFragment(key, tuple(instructions), tuple(traversed),
                          reason, next_pc)


def carve_stream(stream: Sequence[DynamicInstruction],
                 config: FragmentConfig) -> Iterator[DynamicFragment]:
    """Carve the oracle dynamic stream into its fragment sequence.

    NOP records are dropped entirely.  The final fragment may end with
    :data:`TerminationReason.STREAM_END` when the stream is truncated.
    """
    records: List[DynamicInstruction] = []
    directions: List[bool] = []

    for record in stream:
        if record.inst.is_nop:
            continue
        records.append(record)
        inst = record.inst
        if inst.is_cond_branch:
            directions.append(record.taken)
        reason = should_terminate(inst, len(records), config)
        if reason is not None:
            key = FragmentKey(records[0].pc, tuple(directions))
            next_pc = (None if reason in (TerminationReason.INDIRECT,
                                          TerminationReason.HALT)
                       else record.next_pc)
            yield DynamicFragment(key, records, reason, next_pc)
            records, directions = [], []

    if records:
        key = FragmentKey(records[0].pc, tuple(directions))
        yield DynamicFragment(key, records, TerminationReason.STREAM_END,
                              records[-1].next_pc)


def average_fragment_length(stream: Sequence[DynamicInstruction],
                            config: FragmentConfig) -> float:
    """Average fragment size in instructions (the Table 2 metric).

    The trailing truncated fragment, if any, is excluded so short
    simulations do not bias the average downward.
    """
    total = 0
    count = 0
    for fragment in carve_stream(stream, config):
        if fragment.reason is TerminationReason.STREAM_END:
            continue
        total += fragment.length
        count += 1
    return total / count if count else 0.0
