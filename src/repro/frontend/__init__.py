"""Front-end models: fragments, buffers, fetch engines, control."""

from repro.frontend.buffers import FragmentBufferArray, FragmentInFlight
from repro.frontend.control import FrontEndControl
from repro.frontend.engines import (
    FillEngine,
    ParallelFillEngine,
    SequentialFillEngine,
    TraceCacheFillEngine,
)
from repro.frontend.fragments import (
    DynamicFragment,
    FragmentKey,
    StaticFragment,
    TerminationReason,
    average_fragment_length,
    carve_stream,
    should_terminate,
    walk_fragment,
)
from repro.frontend.sequencer import Sequencer
from repro.frontend.trace_cache import TraceCache

__all__ = [
    "FragmentKey",
    "StaticFragment",
    "DynamicFragment",
    "TerminationReason",
    "walk_fragment",
    "carve_stream",
    "average_fragment_length",
    "should_terminate",
    "FragmentBufferArray",
    "FragmentInFlight",
    "FrontEndControl",
    "Sequencer",
    "TraceCache",
    "FillEngine",
    "SequentialFillEngine",
    "TraceCacheFillEngine",
    "ParallelFillEngine",
]
