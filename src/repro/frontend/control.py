"""Front-end control: the predicted fragment chain.

All three fetch mechanisms (W16, trace cache, parallel fetch) consume the
same abstraction: a sequence of predicted fragments.  This module owns
that sequence — it consults the trace/fragment predictor (one prediction
per cycle, the paper's structural limit), applies the statically-known
fall-through override, falls back to the return-address stack after
``ret``-terminated fragments, stalls behind unresolved indirect jumps, and
checkpoints/recovers predictor state around mispredictions.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.config import FragmentConfig
from repro.frontend.buffers import FragmentInFlight
from repro.frontend.fragments import (
    FragmentKey,
    StaticFragment,
    TerminationReason,
    walk_fragment,
)
from repro.isa.program import Program
from repro.perf import fast_paths_enabled
from repro.predictors.return_stack import ReturnAddressStack
from repro.predictors.trace_predictor import TracePredictor
from repro.stats import StatsCollector

#: Bound on cached fragment walks; overflow clears the cache outright
#: (cheap, and a working set anywhere near this size is a wrong-path
#: explosion, not a loop).
_WALK_CACHE_CAPACITY = 32768


class FrontEndControl:
    """Generates the next predicted fragment, one per cycle at most."""

    def __init__(self, program: Program, fragment_config: FragmentConfig,
                 predictor: TracePredictor, ras: ReturnAddressStack,
                 stats: StatsCollector, start_pc: int,
                 direction_fallback=None,
                 walk_cache: Optional[bool] = None,
                 walk_memo: bool = False):
        self.program = program
        self.fragment_config = fragment_config
        self.predictor = predictor
        self.ras = ras
        self.stats = stats
        #: ``pc -> bool`` fallback direction source (bimodal predictor).
        self.direction_fallback = direction_fallback

        self._next_seq = 0
        #: Statically-known (or redirect-supplied) start of the next
        #: fragment; None when the next start must come from a predictor.
        self._forced_start: Optional[int] = start_pc
        #: RAS-supplied start after a ``ret``-terminated fragment.
        self._ras_hint: Optional[int] = None
        #: True when fetch is stalled behind an unresolved indirect.
        self.stalled_on_indirect = False

        #: ``(start_pc, directions) -> StaticFragment`` memo for walks
        #: that never consulted the direction fallback — only those are
        #: pure functions of the key (the bimodal fallback trains over
        #: time, so a walk that asked it may answer differently later).
        #: None under ``REPRO_FAST=0`` (the golden-parity reference).
        #: The *walk_cache* parameter pins the choice explicitly (the
        #: processor resolves it from its PerfConfig so benchmark runs
        #: can mix tiers in one process); None defers to the environment.
        if walk_cache is None:
            walk_cache = fast_paths_enabled()
        self._walk_cache: Optional[
            Dict[Tuple[int, Tuple[bool, ...]], StaticFragment]] = (
            {} if walk_cache else None)
        #: Tier-2 verify-on-hit memo for walks that *did* consult the
        #: fallback: each entry records the fragment plus the exact
        #: ``(pc, answer)`` sequence the fallback produced during the
        #: original walk.  A hit re-asks the (pure) fallback the same
        #: questions in the same order; if every answer still matches,
        #: replaying the cached fragment is bit-identical to re-walking.
        #: Any drift (the bimodal table trained since) falls back to a
        #: fresh walk.  See ``docs/DATA_LAYOUT.md``.
        self._fallback_memo: Optional[Dict[
            Tuple[int, Tuple[bool, ...]],
            Tuple[StaticFragment, Tuple[Tuple[int, bool], ...]]]] = (
            {} if (walk_memo and walk_cache) else None)

    # -- fragment generation ----------------------------------------------

    def try_next_fragment(self) -> Optional[FragmentInFlight]:
        """Produce the next fragment of the predicted chain, or None when
        the next start PC is unknown (stalled behind an indirect)."""
        prediction = self.predictor.predict()
        start, directions = self._resolve_start(prediction)
        if start is None:
            self.stalled_on_indirect = True
            self.stats.add("frontend.indirect_stall_cycles")
            return None
        self.stalled_on_indirect = False

        history_snapshot = self.predictor.snapshot_history()
        ras_snapshot = self.ras.snapshot()
        static_frag = self._walk(start, directions)
        fragment = FragmentInFlight(self._next_seq, static_frag.key,
                                    static_frag, history_snapshot,
                                    ras_snapshot)
        self._next_seq += 1

        self.predictor.push_history(static_frag.key)
        self._replay_ras(static_frag, len(static_frag.instructions))
        self._prepare_next_start(static_frag)
        self.stats.add("frontend.fragments_created")
        return fragment

    def prewarm(self, start: int, directions) -> Optional[StaticFragment]:
        """Pre-walk one fragment key into the walk caches.

        Functional-warming hook: only the pure walk cache and the
        verify-on-hit fallback memo are populated — both replay
        bit-identically (the memo re-verifies its recorded fallback
        answers on every hit), so prewarming cannot change results.
        Returns the walked fragment, or None when caching is off."""
        if self._walk_cache is None:
            return None
        return self._walk(start, directions)

    def _walk(self, start: int, directions) -> StaticFragment:
        """Walk (or recall) the fragment at ``(start, directions)``.

        Walks that never consulted the direction fallback are memoised
        unconditionally: with every conditional branch covered by a
        supplied direction bit, the walk is a pure function of the key
        and the (immutable) program.  Under tier 2, fallback-consulted
        walks are additionally memoised with the fallback's recorded
        answers and verified on every hit (the bimodal table trains over
        time, so yesterday's answers may have drifted); either way the
        replayed result is bit-identical to re-walking.
        """
        cache = self._walk_cache
        fallback = self.direction_fallback
        if cache is None:
            return walk_fragment(self.program, start, directions,
                                 self.fragment_config, fallback=fallback)
        key = (start, tuple(directions))
        cached = cache.get(key)
        if cached is not None:
            return cached
        memo = self._fallback_memo
        if memo is not None and fallback is not None:
            entry = memo.get(key)
            if entry is not None:
                static_frag, checks = entry
                for pc, answer in checks:
                    if fallback(pc) is not answer:
                        break
                else:
                    return static_frag
        asked: list = []
        gated = None
        if fallback is not None:
            append = asked.append
            def gated(pc, _fallback=fallback, _append=append):
                answer = _fallback(pc)
                _append((pc, answer))
                return answer
        static_frag = walk_fragment(self.program, start, directions,
                                    self.fragment_config, fallback=gated)
        if not asked:
            if len(cache) >= _WALK_CACHE_CAPACITY:
                cache.clear()
            cache[key] = static_frag
        elif memo is not None:
            if len(memo) >= _WALK_CACHE_CAPACITY:
                memo.clear()
            memo[key] = (static_frag, tuple(asked))
        return static_frag

    def _resolve_start(self, prediction: Optional[FragmentKey]):
        """Decide the next fragment's start PC and direction bits."""
        if self._forced_start is not None:
            start = self._forced_start
            if prediction is not None and prediction.start_pc == start:
                return start, prediction.directions
            if prediction is not None:
                self.stats.add("frontend.start_overrides")
            return start, ()
        if self._ras_hint is not None:
            start = self._ras_hint
            if prediction is not None and prediction.start_pc == start:
                return start, prediction.directions
            return start, ()
        if prediction is not None:
            return prediction.start_pc, prediction.directions
        return None, ()

    def _prepare_next_start(self, static_frag: StaticFragment) -> None:
        """Set up the start source for the fragment after *static_frag*."""
        self._forced_start = None
        self._ras_hint = None
        if static_frag.next_pc is not None:
            self._forced_start = static_frag.next_pc
        elif (static_frag.reason is TerminationReason.INDIRECT
              and static_frag.instructions
              and static_frag.instructions[-1].is_return):
            self._ras_hint = self.ras.pop()

    def _replay_ras(self, static_frag: StaticFragment, upto: int) -> None:
        """Apply the RAS effects of the fragment's first *upto* insts.

        The terminal ``ret``'s pop is handled by :meth:`_prepare_next_start`
        (the popped value doubles as the next-start hint), so it is skipped
        here.
        """
        for inst in static_frag.instructions[:upto]:
            if inst.is_call:
                self.ras.push(inst.next_addr)

    # -- recovery ------------------------------------------------------------

    def redirect(self, target_pc: int,
                 fragment: Optional[FragmentInFlight] = None,
                 valid_prefix: int = 0) -> None:
        """Redirect the fragment chain to *target_pc*.

        When the misprediction happened inside *fragment* (whose first
        *valid_prefix* instructions remain architecturally valid), predictor
        history and RAS are rolled back to the fragment's checkpoints and
        the valid prefix's RAS effects are replayed.
        """
        if fragment is not None:
            self.predictor.restore_history(fragment.history_snapshot)
            self.ras.restore(fragment.ras_snapshot)
            self._replay_ras(fragment.static_frag, valid_prefix)
            last_valid = (fragment.static_frag.instructions[valid_prefix - 1]
                          if valid_prefix else None)
            if last_valid is not None and last_valid.is_return:
                self.ras.pop()
        self._forced_start = target_pc
        self._ras_hint = None
        self.stalled_on_indirect = False
        self.stats.add("frontend.redirects")
