"""Trace cache storage model (mechanism TC of Section 5).

A 2-way set-associative cache of traces, indexed by trace start address,
tagged by the full fragment key (start PC + branch directions) so that two
traces from the same start with different internal paths compete for the
ways of one set.  Each line stores up to 16 instructions; a hit supplies
the whole trace in a single cycle.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from repro.config import TraceCacheConfig
from repro.frontend.fragments import FragmentKey
from repro.stats import StatsCollector


class TraceCache:
    """Tag-level trace cache with true-LRU sets."""

    def __init__(self, config: TraceCacheConfig,
                 stats: Optional[StatsCollector] = None):
        self.config = config
        self.stats = stats if stats is not None else StatsCollector()
        self._num_sets = max(1, config.num_sets)
        # Each set maps FragmentKey -> None in LRU order.
        self._sets: List[OrderedDict] = [OrderedDict()
                                         for _ in range(self._num_sets)]

    def _set_index(self, key: FragmentKey) -> int:
        return (key.start_pc >> 2) % self._num_sets

    def lookup(self, key: FragmentKey) -> bool:
        """Probe for a trace; counts hit/miss and updates LRU."""
        cache_set = self._sets[self._set_index(key)]
        if key in cache_set:
            cache_set.move_to_end(key)
            self.stats.add("tc.hits")
            return True
        self.stats.add("tc.misses")
        return False

    def insert(self, key: FragmentKey) -> None:
        """Fill a trace built by the miss path."""
        cache_set = self._sets[self._set_index(key)]
        if key in cache_set:
            cache_set.move_to_end(key)
            return
        if len(cache_set) >= self.config.assoc:
            cache_set.popitem(last=False)
            self.stats.add("tc.evictions")
        cache_set[key] = None
        self.stats.add("tc.fills")

    def adopt_state(self, donor: "TraceCache") -> None:
        """Clone *donor*'s resident traces and LRU order."""
        if donor.config != self.config:
            raise ValueError("trace-cache geometry mismatch in adopt_state")
        self._sets = [OrderedDict(s) for s in donor._sets]

    @property
    def hit_rate(self) -> float:
        """Trace-cache hits over accesses so far."""
        hits = self.stats.get("tc.hits")
        total = hits + self.stats.get("tc.misses")
        return hits / total if total else 0.0
