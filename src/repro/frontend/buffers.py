"""Fragment buffers and in-flight fragment state (Section 3.2).

A :class:`FragmentInFlight` tracks one predicted fragment from allocation
through fetch, rename and commit.  The :class:`FragmentBufferArray` models
the 16-entry storage array: each buffer holds one fragment's instructions
while it is fetched and renamed, and *retains* its contents after being
freed so that a recurring fragment can be reused without touching the
instruction cache — the "very small trace cache with a powerful parallel
fill mechanism" of Section 3.2.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.uop import MicroOp, PlaceholderProducer
from repro.frontend.fragments import FragmentKey, StaticFragment
from repro.predictors.liveout import LiveOutInfo
from repro.predictors.return_stack import RasSnapshot
from repro.predictors.trace_predictor import HistorySnapshot
from repro.stats import StatsCollector


class FragmentInFlight:
    """One fragment's journey through the pipeline."""

    __slots__ = (
        "seq", "key", "static_frag", "buffer_index",
        "fetched_count", "fetch_cursor", "complete", "construct_cycle",
        "fetch_stall_until", "fetch_pending_line",
        "read_count", "rename_started_cycle", "rename_done",
        "phase1_done", "phase1_cycle", "incoming_map", "placeholders",
        "liveout_prediction", "liveout_mispredicted", "internal_writers",
        "window_reserved", "uops", "squashed", "truncated_at",
        "history_snapshot", "ras_snapshot", "reused", "stalled_for_indirect",
        "outgoing_predicted", "outgoing_actual",
        "mispredict_position", "mispredict_target",
        "committed_count", "records",
        "alloc_cycle", "fetch_start_cycle", "fetch_sequencer",
        "rename_done_cycle", "_static_len", "soa_meta",
    )

    def __init__(self, seq: int, key: FragmentKey,
                 static_frag: StaticFragment,
                 history_snapshot: HistorySnapshot,
                 ras_snapshot: RasSnapshot):
        self.seq = seq
        self.key = key
        self.static_frag = static_frag
        #: ``len(static_frag.instructions)``, snapshotted: length checks
        #: run several times per instruction on the rename hot path.
        self._static_len = len(static_frag.instructions)
        #: Tier-2 batched metadata (:class:`repro.perf.soa.FragMeta`),
        #: attached by the processor's SoA tagger; None below tier 2.
        self.soa_meta = None
        self.buffer_index: Optional[int] = None

        # Fetch progress.
        self.fetched_count = 0            # non-NOP instructions fetched
        self.fetch_cursor = 0             # index into traversed_pcs
        self.complete = False
        self.construct_cycle = -1         # cycle fetch completed
        self.reused = False
        # Lifecycle stamps (observability; -1 = never happened).
        self.alloc_cycle = -1             # cycle a buffer was allocated
        self.fetch_start_cycle = -1       # cycle fetch first touched it
        self.fetch_sequencer = -1         # sequencer that fetched it
        self.rename_done_cycle = -1       # cycle rename completed
        #: Cycle until which fetch of this fragment waits on a cache miss.
        self.fetch_stall_until = -1
        #: Line address of the outstanding miss; when the wait ends the
        #: returned data is consumed directly (fill bypass) even if the
        #: line has been evicted again meanwhile.
        self.fetch_pending_line = -1

        # Rename progress.
        self.read_count = 0               # instructions renamed so far
        self.rename_started_cycle = -1
        self.rename_done = False
        self.phase1_done = False
        self.phase1_cycle = -1
        self.incoming_map: Optional[Dict[int, object]] = None
        self.placeholders: Dict[int, PlaceholderProducer] = {}
        self.liveout_prediction: Optional[LiveOutInfo] = None
        self.liveout_mispredicted = False
        #: arch reg -> last MicroOp in this fragment writing it (actual).
        self.internal_writers: Dict[int, MicroOp] = {}
        self.window_reserved = False

        self.uops: List[MicroOp] = []
        self.squashed = False
        #: When a control misprediction truncates this fragment, the
        #: number of instructions that remain architecturally valid.
        self.truncated_at: Optional[int] = None

        self.history_snapshot = history_snapshot
        self.ras_snapshot = ras_snapshot
        self.stalled_for_indirect = False

        #: Cross-fragment register maps produced by parallel rename.
        self.outgoing_predicted: Optional[Dict[int, object]] = None
        self.outgoing_actual: Optional[Dict[int, object]] = None

        #: Filled in by oracle tagging when a control misprediction is
        #: discovered at this fragment's ``mispredict_position``: when the
        #: uop at that position executes, fetch redirects to
        #: ``mispredict_target``.
        self.mispredict_position: Optional[int] = None
        self.mispredict_target: Optional[int] = None

        #: Oracle records per instruction position (None = wrong path);
        #: assigned by the processor when the fragment is created.
        self.records: List[object] = []
        #: Number of this fragment's uops that have committed.
        self.committed_count = 0

    @property
    def length(self) -> int:
        """Fragment length in non-NOP instructions."""
        truncated = self.truncated_at
        return self._static_len if truncated is None else truncated

    @property
    def fully_renamed(self) -> bool:
        """Whether every instruction has been renamed."""
        return self.rename_done

    def renameable_count(self) -> int:
        """Instructions fetched but not yet renamed."""
        truncated = self.truncated_at
        limit = self._static_len if truncated is None else truncated
        fetched = self.fetched_count
        if fetched < limit:
            limit = fetched
        return limit - self.read_count

    def reset_rename(self) -> None:
        """Discard rename progress (live-out misprediction recovery)."""
        self.read_count = 0
        self.rename_started_cycle = -1
        self.rename_done = False
        self.rename_done_cycle = -1
        self.phase1_done = False
        self.phase1_cycle = -1
        self.incoming_map = None
        for placeholder in self.placeholders.values():
            placeholder.invalidated = True
        self.placeholders = {}
        self.liveout_mispredicted = False
        self.internal_writers = {}
        self.uops = []
        self.outgoing_predicted = None
        self.outgoing_actual = None
        self.window_reserved = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<frag#{self.seq} {self.key} fetched={self.fetched_count}"
                f"/{self.static_frag.length} read={self.read_count}>")


class _Buffer:
    """One storage slot of the fragment buffer array."""

    __slots__ = ("index", "occupant", "retained_key", "retained_frag",
                 "free_time")

    def __init__(self, index: int):
        self.index = index
        self.occupant: Optional[FragmentInFlight] = None
        #: Contents retained after free, for reuse (Section 3.2).
        self.retained_key: Optional[FragmentKey] = None
        self.retained_frag: Optional[StaticFragment] = None
        self.free_time = -1


class FragmentBufferArray:
    """The array of fragment buffers shared by all fill mechanisms."""

    def __init__(self, num_buffers: int, stats: StatsCollector):
        self.stats = stats
        self._buffers = [_Buffer(i) for i in range(num_buffers)]
        #: Count of unoccupied buffers — maintained by allocate/release
        #: (the only occupant writers) so the per-cycle fetch gate is O(1).
        self._free = num_buffers

    def free_count(self) -> int:
        """Buffers without an occupant."""
        return self._free

    def occupied_count(self) -> int:
        """Buffers currently holding an in-flight fragment."""
        return len(self._buffers) - self._free

    def allocate(self, fragment: FragmentInFlight, now: int) -> bool:
        """Assign a buffer to *fragment*; returns False when all are busy.

        If a free buffer retains the same fragment key, its contents are
        reused: the fragment is complete immediately and needs no fetch.
        """
        if not self._free:
            self.stats.add("fragbuf.alloc_stalls")
            return False

        # One pass: first free buffer retaining this key wins; otherwise
        # the free buffer freed longest ago (earliest free_time, first in
        # buffer order on ties), preserving recently retired fragments
        # for reuse.
        key = fragment.key
        reuse = None
        oldest = None
        oldest_time = 0
        for b in self._buffers:
            if b.occupant is not None:
                continue
            if b.retained_key == key:
                reuse = b
                break
            if oldest is None or b.free_time < oldest_time:
                oldest = b
                oldest_time = b.free_time
        if reuse is not None:
            buffer = reuse
            fragment.reused = True
            fragment.fetched_count = fragment.static_frag.length
            fragment.fetch_cursor = len(fragment.static_frag.traversed_pcs)
            fragment.complete = True
            fragment.construct_cycle = now
            fragment.fetch_start_cycle = now
            self.stats.add("fragbuf.reuses")
        else:
            buffer = oldest
        buffer.occupant = fragment
        self._free -= 1
        buffer.retained_key = None
        buffer.retained_frag = None
        fragment.buffer_index = buffer.index
        fragment.alloc_cycle = now
        self.stats.add("fragbuf.allocations")
        return True

    def release(self, fragment: FragmentInFlight, now: int,
                retain: bool = True) -> None:
        """Mark the fragment's buffer unused, retaining contents."""
        if fragment.buffer_index is None:
            return
        buffer = self._buffers[fragment.buffer_index]
        if buffer.occupant is fragment:
            buffer.occupant = None
            self._free += 1
            buffer.free_time = now
            if retain and fragment.complete:
                buffer.retained_key = fragment.key
                buffer.retained_frag = fragment.static_frag
        fragment.buffer_index = None

    def occupants(self) -> List[FragmentInFlight]:
        """Currently-resident fragments, in fragment order."""
        resident = [b.occupant for b in self._buffers if b.occupant]
        return sorted(resident, key=lambda f: f.seq)
