"""Out-of-order execution core: window, scheduler, functional units.

Models the Table 1 back-end: a 256-entry instruction window fed through a
short dispatch pipeline, an oldest-first wakeup/select scheduler over the
functional-unit pool, a load/store path through the D-cache, and per-cycle
issue/width limits.  Commit ordering lives in the processor (it needs
fragment bookkeeping); the core exposes window-entry reservation and
per-cycle completion events.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, Dict, List, Tuple

from repro.config import BackEndConfig
from repro.core.uop import (
    FU_POOL,
    LATENCY_KEY,
    MicroOp,
    PlaceholderProducer,
    UopState,
)
from repro.errors import SimulationError
from repro.memory.hierarchy import MemoryHierarchy
from repro.stats import StatsCollector

#: Legacy aliases — the tables moved next to the decoded-uop cache in
#: :mod:`repro.core.uop` so decode can precompute pool/latency keys.
_FU_POOL = FU_POOL
_LATENCY_KEY = LATENCY_KEY

_DONE_STATES = (UopState.DONE, UopState.COMMITTED)


class OutOfOrderCore:
    """Window + scheduler + functional units."""

    def __init__(self, config: BackEndConfig, memory: MemoryHierarchy,
                 stats: StatsCollector):
        self.config = config
        self.memory = memory
        self.stats = stats
        self._reserved = 0
        self._reservations: Dict[int, int] = {}
        self._dispatch: Deque[MicroOp] = deque()
        self._ready: List[Tuple[int, MicroOp]] = []
        self._completions: Dict[int, List[MicroOp]] = {}

    # -- window reservation (ROB entries, Section 4.2) -------------------

    @property
    def window_free(self) -> int:
        """Unreserved instruction-window slots."""
        return self.config.window_size - self._reserved

    @property
    def window_used(self) -> int:
        """Reserved window entries (the ROB-fill observability gauge)."""
        return self._reserved

    def reserve(self, count: int, fragment_seq: int) -> bool:
        """Reserve *count* window entries for a fragment."""
        if count > self.window_free:
            return False
        self._reserved += count
        self._reservations[fragment_seq] = (
            self._reservations.get(fragment_seq, 0) + count)
        return True

    def reserve_single(self, fragment_seq: int) -> bool:
        """Reserve one window slot for *fragment_seq* (False when full)."""
        return self.reserve(1, fragment_seq)

    def release(self, fragment_seq: int, count: int = 1) -> None:
        """Return up to *count* of *fragment_seq*'s reserved window slots."""
        held = self._reservations.get(fragment_seq, 0)
        count = min(count, held)
        if count <= 0:
            return
        self._reserved -= count
        if held == count:
            self._reservations.pop(fragment_seq, None)
        else:
            self._reservations[fragment_seq] = held - count

    def release_all(self, fragment_seq: int) -> None:
        """Release every entry still held by a squashed fragment."""
        self.release(fragment_seq, self._reservations.get(fragment_seq, 0))

    def set_reservation(self, fragment_seq: int, target: int) -> None:
        """Shrink a fragment's reservation to *target* entries (used when
        a misprediction truncates the fragment)."""
        held = self._reservations.get(fragment_seq, 0)
        if held > target:
            self.release(fragment_seq, held - target)

    # -- dispatch ---------------------------------------------------------

    def dispatch(self, uops: List[MicroOp], now: int) -> None:
        """Queue renamed uops; they enter the window after the dispatch
        pipeline latency."""
        ready_at = now + self.config.dispatch_latency
        for uop in uops:
            uop.dispatch_ready_cycle = ready_at
            self._dispatch.append(uop)

    def queue_dispatched(self, uops: List[MicroOp]) -> None:
        """Tier-2 twin of :meth:`dispatch` for uops whose
        ``dispatch_ready_cycle`` was already stamped in the rename build
        loop — one C-level extend instead of a per-uop pass."""
        self._dispatch.extend(uops)

    def _attach_waiter(self, source, consumer: MicroOp) -> bool:
        """Register *consumer* to be woken when *source* completes.

        Placeholder chains (cold-fragment pass-through mappings) are
        walked to the deepest unresolved producer.  Returns True when the
        consumer must wait, False when the source is already available.
        """
        while isinstance(source, PlaceholderProducer):
            if source.done:
                return False
            if source.producer is None:
                source.consumers.append(consumer)
                return True
            source = source.producer
        if source.state in _DONE_STATES:
            return False
        source.consumers.append(consumer)
        return True

    def _insert_window(self, uop: MicroOp) -> None:
        pending = 0
        for source in uop.sources:
            if self._attach_waiter(source, uop):
                pending += 1
        uop.pending = pending
        if pending == 0:
            uop.state = UopState.READY
            heapq.heappush(self._ready, (uop.seq, uop))
        else:
            uop.state = UopState.WAITING

    def bind_placeholder(self, placeholder: PlaceholderProducer,
                         producer=None, ready: bool = False) -> None:
        """Late-bind a placeholder (cold-fragment resolution).

        Unlike :meth:`PlaceholderProducer.bind`, this handles producers
        that have already completed by waking waiting consumers.
        """
        consumers, placeholder.consumers = placeholder.consumers, []
        # Path compression: resolve through intermediate placeholders so
        # pass-through chains (delay rename / cold fragments) stay short.
        while isinstance(producer, PlaceholderProducer):
            if producer.ready:
                ready = True
                producer = None
                break
            if producer.producer is None:
                break
            producer = producer.producer
        if ready:
            placeholder.ready = True
        else:
            placeholder.producer = producer
        for consumer in consumers:
            if consumer.state is not UopState.WAITING:
                continue
            if not self._attach_waiter(placeholder, consumer):
                consumer.pending -= 1
                if consumer.pending <= 0:
                    consumer.state = UopState.READY
                    heapq.heappush(self._ready, (consumer.seq, consumer))

    # -- per-cycle operation ------------------------------------------------

    _EMPTY: List[MicroOp] = []

    def cycle(self, now: int) -> List[MicroOp]:
        """One execution cycle; returns uops that completed this cycle.

        Idle phases are skipped outright: a cycle with no scheduled
        completions, an empty dispatch queue and an empty ready list
        touches none of the phase bodies (common while the window drains
        a long-latency miss).
        """
        completed = (self._complete(now) if now in self._completions
                     else self._EMPTY)
        if self._dispatch:
            self._drain_dispatch(now)
        if self._ready:
            self._issue(now)
        return completed

    def cycle_soa(self, now: int) -> List[MicroOp]:
        """Tier-2 (``REPRO_FAST=2``) twin of :meth:`cycle`.

        Same phase order, same observable effects — the dispatch-insert
        and issue loops are inlined with hoisted lookups, and the
        overwhelmingly common :class:`MicroOp` source skips the
        placeholder-chain walk of :meth:`_attach_waiter`.  The parity
        matrix in tests/test_perf_soa.py holds both paths bit-identical.
        """
        completed = (self._complete(now) if now in self._completions
                     else self._EMPTY)
        dispatch = self._dispatch
        ready = self._ready
        heappush = heapq.heappush
        if dispatch:
            done = UopState.DONE
            committed = UopState.COMMITTED
            squashed = UopState.SQUASHED
            renamed = UopState.RENAMED
            ready_state = UopState.READY
            waiting = UopState.WAITING
            popleft = dispatch.popleft
            attach = self._attach_waiter
            while dispatch and dispatch[0].dispatch_ready_cycle <= now:
                uop = popleft()
                state = uop.state
                if state is squashed:
                    continue
                if state is not renamed:
                    raise SimulationError(
                        f"dispatching uop in state {uop.state}")
                pending = 0
                for source in uop.sources:
                    if source.__class__ is MicroOp:
                        sstate = source.state
                        if sstate is done or sstate is committed:
                            continue
                        source.consumers.append(uop)
                        pending += 1
                    elif attach(source, uop):
                        pending += 1
                uop.pending = pending
                if pending == 0:
                    uop.state = ready_state
                    heappush(ready, (uop.seq, uop))
                else:
                    uop.state = waiting
        if ready:
            config = self.config
            counts_get = config.fu_counts.get
            width = config.issue_width
            latencies = config.fu_latencies
            completions = self._completions
            data_access = self.memory.data_access
            used: Dict[str, int] = {}
            used_get = used.get
            heappop = heapq.heappop
            ready_state = UopState.READY
            executing = UopState.EXECUTING
            issued = 0
            skipped: List[Tuple[int, MicroOp]] = []
            while ready and issued < width:
                item = heappop(ready)
                uop = item[1]
                if uop.state is not ready_state:
                    continue  # squashed while queued
                decoded = uop.decoded
                pool = (decoded.pool if decoded is not None
                        else _FU_POOL[uop.inst.op_class])
                in_use = used_get(pool, 0)
                if in_use >= counts_get(pool, 0):
                    skipped.append(item)
                    continue
                used[pool] = in_use + 1
                issued += 1
                # _start_execution, inlined.
                uop.state = executing
                uop.issue_cycle = now
                key = (decoded.latency_key if decoded is not None
                       else _LATENCY_KEY[uop.inst.op_class])
                done_at = now + latencies[key]
                inst = uop.inst
                if inst.is_mem and uop.record is not None \
                        and uop.record.ea is not None:
                    data_ready = data_access(uop.record.ea, now)
                    if inst.is_load:
                        done_at = max(done_at, data_ready + 1)
                # Wrong-path memory ops have no architectural address;
                # they are charged the L1-hit path only.
                bucket = completions.get(done_at)
                if bucket is None:
                    completions[done_at] = [uop]
                else:
                    bucket.append(uop)
            for item in skipped:
                heappush(ready, item)
            if skipped:
                self.stats.add("exec.fu_structural_stalls", len(skipped))
            self.stats.add("exec.issued", issued)
        return completed

    def _complete(self, now: int) -> List[MicroOp]:
        finished = []
        for uop in self._completions.pop(now, ()):
            if uop.state is not UopState.EXECUTING:
                continue  # squashed in flight
            uop.state = UopState.DONE
            uop.complete_cycle = now
            if uop.consumers:
                self._wakeup(uop)
            finished.append(uop)
        return finished

    def _wakeup(self, producer: MicroOp) -> None:
        consumers, producer.consumers = producer.consumers, []
        for consumer in consumers:
            if consumer.state is not UopState.WAITING:
                continue
            consumer.pending -= 1
            if consumer.pending <= 0:
                consumer.state = UopState.READY
                heapq.heappush(self._ready, (consumer.seq, consumer))

    def _drain_dispatch(self, now: int) -> None:
        while self._dispatch and self._dispatch[0].dispatch_ready_cycle <= now:
            uop = self._dispatch.popleft()
            if uop.state is UopState.SQUASHED:
                continue
            if uop.state is not UopState.RENAMED:
                raise SimulationError(f"dispatching uop in state {uop.state}")
            self._insert_window(uop)

    def _issue(self, now: int) -> None:
        counts = self.config.fu_counts
        used: Dict[str, int] = {}
        issued = 0
        skipped: List[Tuple[int, MicroOp]] = []
        while self._ready and issued < self.config.issue_width:
            seq, uop = heapq.heappop(self._ready)
            if uop.state is not UopState.READY:
                continue  # squashed while queued
            decoded = uop.decoded
            pool = (decoded.pool if decoded is not None
                    else _FU_POOL[uop.inst.op_class])
            if used.get(pool, 0) >= counts.get(pool, 0):
                skipped.append((seq, uop))
                continue
            used[pool] = used.get(pool, 0) + 1
            issued += 1
            self._start_execution(uop, now)
        for item in skipped:
            heapq.heappush(self._ready, item)
        if skipped:
            self.stats.add("exec.fu_structural_stalls", len(skipped))
        self.stats.add("exec.issued", issued)

    def _start_execution(self, uop: MicroOp, now: int) -> None:
        uop.state = UopState.EXECUTING
        uop.issue_cycle = now
        decoded = uop.decoded
        key = (decoded.latency_key if decoded is not None
               else _LATENCY_KEY[uop.inst.op_class])
        done_at = now + self.config.fu_latencies[key]
        inst = uop.inst
        if inst.is_mem and uop.record is not None \
                and uop.record.ea is not None:
            data_ready = self.memory.data_access(uop.record.ea, now)
            if inst.is_load:
                done_at = max(done_at, data_ready + 1)
        # Wrong-path memory ops have no architectural address; they are
        # charged the L1-hit path only.
        self._completions.setdefault(done_at, []).append(uop)

    # -- introspection ---------------------------------------------------

    def in_flight_dispatch(self) -> int:
        """Uops renamed but not yet inserted into the window."""
        return len(self._dispatch)

    def drop_squashed_dispatch(self) -> None:
        """Prune squashed uops from the dispatch queue (after a squash)."""
        self._dispatch = deque(u for u in self._dispatch
                               if u.state is not UopState.SQUASHED)
