"""Out-of-order back-end models."""

from repro.backend.core import OutOfOrderCore

__all__ = ["OutOfOrderCore"]
