"""Live telemetry: publish read-only snapshots of a running simulation.

A :class:`LiveTelemetry` instance snapshots the pipeline gauges from
:mod:`repro.obs.metrics` plus run progress — committed instructions,
IPC-so-far, recovery count, latest durable-checkpoint ordinal, and (in
interval-sampled mode) unit/confidence progress — every
``LiveConfig.every`` simulated cycles, and writes the most recent
``LiveConfig.history`` snapshots as NDJSON into a status file that is
replaced atomically on every publish.  ``repro attach`` (and any
``tail``-grade tooling) polls that file; the publisher never listens on
anything and never blocks the simulation on a reader.

The hard contract, shared with the rest of :mod:`repro.obs`: attaching a
publisher must leave the simulated results **bit-identical**.  Three
rules enforce it:

* every quantity published is obtained by pure inspection
  (:func:`repro.obs.metrics.read_gauges`, ``stats.get``, plain
  attribute reads) — nothing is ticked, popped or cached on the
  processor;
* publishing never touches ``processor.stats`` — wall-clock and
  sequence numbers live only in the snapshot lines;
* the publish cadence is keyed off the simulated cycle, so deciding
  *whether* to publish reads the same state with or without a reader
  attached.

A regression test runs the same simulation with and without
``REPRO_LIVE=1`` (full-detail and sampled) and asserts equal counters.
"""

from __future__ import annotations

import io
import json
import os
import threading
import time
from collections import deque
from itertools import count
from typing import TYPE_CHECKING, Deque, Dict, List, Optional

from repro.config import LiveConfig
from repro.obs.metrics import GAUGE_NAMES, read_gauges

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.processor import Processor

#: Stamped into every snapshot as ``"v"``; bump on breaking changes.
SCHEMA_VERSION = 1

#: Default status-file directory, relative to the working directory.
DEFAULT_DIR = ".repro_live"

#: Keys every snapshot line must carry (see :func:`validate_snapshot`).
REQUIRED_KEYS = frozenset((
    "v", "seq", "pid", "state", "mode", "cycle", "committed", "ipc",
    "gauges", "wall",
))

#: Lifecycle states a snapshot may report.
STATES = ("running", "done")

#: Unique tmp-file suffixes so concurrent publishers (e.g. sweep workers
#: sharing a directory) never clobber each other's in-flight writes.
_TMP_SEQ = count()


def default_path(pid: Optional[int] = None) -> str:
    """Status-file path used when ``REPRO_LIVE_PATH`` is not set.

    Keyed by pid so ``repro attach <pid>`` can find the file for a
    specific process, and concurrent runs in one directory do not fight.
    """
    return os.path.join(DEFAULT_DIR, f"run-{pid or os.getpid()}.ndjson")


def default_sweep_path(pid: Optional[int] = None) -> str:
    """Status-file path a :class:`SweepFleet` publishes to by default."""
    return os.path.join(DEFAULT_DIR, f"sweep-{pid or os.getpid()}.ndjson")


def _write_ring(path: str, ring: "Deque[Dict[str, object]]") -> None:
    """Atomically replace *path* with *ring* as NDJSON.

    Same discipline as the checkpoint store: write a uniquely-named
    sibling tmp file, then ``os.replace`` it over the destination so a
    reader only ever sees a complete file.  Failures are swallowed —
    telemetry must never take down the run it is watching (disk full,
    unlinked directory...).
    """
    tmp = f"{path}.tmp.{os.getpid()}-{next(_TMP_SEQ)}"
    payload = "".join(
        json.dumps(snapshot, separators=(",", ":")) + "\n"
        for snapshot in ring)
    try:
        with io.open(tmp, "w", encoding="utf-8") as handle:
            handle.write(payload)
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass


def validate_snapshot(snapshot: object) -> List[str]:
    """Schema-check one snapshot; returns problems (empty list = valid).

    Used by the attach CLI's ``--json`` mode and by CI so a drifting
    publisher fails loudly instead of rendering garbage.
    """
    if not isinstance(snapshot, dict):
        return ["snapshot is not a JSON object"]
    problems = []
    missing = sorted(REQUIRED_KEYS - snapshot.keys())
    if missing:
        problems.append(f"missing keys: {', '.join(missing)}")
        return problems
    if snapshot["v"] != SCHEMA_VERSION:
        problems.append(f"schema version {snapshot['v']!r}, "
                        f"expected {SCHEMA_VERSION}")
    if snapshot["state"] not in STATES:
        problems.append(f"unknown state {snapshot['state']!r}")
    for key in ("seq", "pid", "cycle", "committed"):
        value = snapshot[key]
        if not isinstance(value, int) or value < 0:
            problems.append(f"{key} must be a non-negative integer, "
                            f"got {value!r}")
    for key in ("ipc", "wall"):
        if not isinstance(snapshot[key], (int, float)):
            problems.append(f"{key} must be numeric, got {snapshot[key]!r}")
    gauges = snapshot["gauges"]
    if not isinstance(gauges, dict):
        problems.append("gauges must be an object")
    else:
        for name, value in gauges.items():
            if not isinstance(value, (int, float)):
                problems.append(f"gauge {name} is not numeric: {value!r}")
    return problems


def read_snapshots(path: str) -> List[Dict[str, object]]:
    """Parse a status file into snapshots, oldest first.

    Liberal on input: a missing file yields ``[]`` and unparsable lines
    are skipped (the writer replaces the file atomically, but a reader
    may race a publisher from an older schema).
    """
    try:
        with io.open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError:
        return []
    snapshots = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            parsed = json.loads(line)
        except ValueError:
            continue
        if isinstance(parsed, dict):
            snapshots.append(parsed)
    return snapshots


class LiveTelemetry:
    """Publishes run snapshots to an atomically-replaced NDJSON file."""

    def __init__(self, config: LiveConfig,
                 benchmark: Optional[str] = None,
                 config_name: Optional[str] = None,
                 mode: str = "full"):
        self.config = config
        self.path = config.path or default_path()
        self.benchmark = benchmark
        self.config_name = config_name
        self.mode = mode
        self._ring: Deque[Dict[str, object]] = deque(maxlen=config.history)
        self._seq = 0
        self._start = time.monotonic()
        self._checkpoint: Optional[int] = None
        self._sampling: Optional[Dict[str, object]] = None
        self._limits: Optional[Dict[str, int]] = None
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)

    # -- side-channel annotations -----------------------------------------

    def note_checkpoint(self, ordinal: int) -> None:
        """Record the latest durable-checkpoint ordinal for snapshots."""
        self._checkpoint = ordinal

    def note_sampling(self, **progress: object) -> None:
        """Record sampled-mode progress (unit index, CI half-width...).

        The sampling engine calls this at unit boundaries; the values
        ride along on every subsequent snapshot under ``"sampling"``.
        """
        if self._sampling is None:
            self._sampling = {}
        self._sampling.update(progress)

    # -- publishing --------------------------------------------------------

    def maybe_publish(self, processor: "Processor") -> None:
        """Publish when the simulated cycle hits the configured cadence.

        Mirrors ``MetricsRecorder.maybe_sample``: the gate reads only
        ``processor.now``, so the decision is identical whether or not
        anyone is watching the status file.
        """
        if processor.now % self.config.every:
            return
        self.publish(processor)

    def publish(self, processor: "Processor", state: str = "running") -> None:
        """Append one snapshot of *processor* and rewrite the status file."""
        self._ring.append(self.snapshot(processor, state))
        self._write()

    def publish_final(self, processor: "Processor") -> None:
        """Publish the terminal snapshot (``state="done"``)."""
        self.publish(processor, state="done")

    def snapshot(self, processor: "Processor",
                 state: str = "running") -> Dict[str, object]:
        """Build one snapshot dict via read-only processor inspection."""
        if self._limits is None:
            frontend = processor.config.frontend
            self._limits = {
                "fragbuf.occupancy": frontend.num_fragment_buffers,
                "window.used": processor.config.backend.window_size,
                "sequencers.busy": frontend.sequencers,
                "fragments.in_flight": frontend.num_fragment_buffers,
            }
        now = processor.now
        committed = processor.committed
        stats = processor.stats
        snapshot: Dict[str, object] = {
            "v": SCHEMA_VERSION,
            "seq": self._seq,
            "pid": os.getpid(),
            "state": state,
            "mode": self.mode,
            "benchmark": self.benchmark,
            "config": self.config_name,
            "cycle": now,
            "committed": committed,
            "total": processor.stream_length,
            "ipc": (committed / now) if now else 0.0,
            "gauges": dict(zip(GAUGE_NAMES, read_gauges(processor))),
            "limits": self._limits,
            "recoveries": stats.get("frontend.recoveries"),
            "liveout_mispredictions": stats.get("rename.liveout_mispredicts"),
            "checkpoint": self._checkpoint,
            "sampling": dict(self._sampling) if self._sampling else None,
            "wall": time.monotonic() - self._start,
        }
        obs = processor.obs
        profiler = obs.profiler if obs is not None else None
        if profiler is not None and profiler.seconds:
            snapshot["profile"] = {
                phase: round(seconds, 6)
                for phase, seconds in profiler.seconds.items()}
        self._seq += 1
        return snapshot

    def _write(self) -> None:
        """Atomically replace the status file with the snapshot ring."""
        _write_ring(self.path, self._ring)


class SweepFleet:
    """Aggregated live telemetry for one sweep: one publisher, N jobs.

    Fed from :func:`~repro.experiments.runner.run_sweep`'s ``progress``
    and ``observer`` hooks and published with the same atomic NDJSON
    discipline as :class:`LiveTelemetry`, but fleet-shaped — the same
    keys the job server's ``/jobs/<id>/metrics`` stream carries
    (``jobs_done``, ``cache_hits``, ``retries``, cumulative
    ``committed``...) plus a short per-job tail for the attach table.
    Thread-safe: sweeps drive their hooks from whatever thread runs
    them, while ``repro sweep --attach`` renders from the main thread.
    """

    #: Recent per-job outcomes carried in each snapshot for the table.
    RECENT = 12

    def __init__(self, config: LiveConfig, jobs_total: int,
                 tag: Optional[str] = None):
        self.config = config
        self.path = config.path or default_sweep_path()
        self.tag = tag
        self.jobs_total = jobs_total
        self._lock = threading.Lock()
        self._ring: Deque[Dict[str, object]] = deque(maxlen=config.history)
        self._recent: Deque[Dict[str, object]] = deque(maxlen=self.RECENT)
        self._seq = 0
        self._start = time.monotonic()
        self.jobs_done = 0          # executed to completion
        self.cache_hits = 0
        self.jobs_failed = 0
        self.retries = 0
        self.committed = 0
        self.cycles = 0
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)

    # -- run_sweep hooks ---------------------------------------------------

    def note_done(self, job: object, result: object,
                  seconds: float) -> None:
        """``progress`` hook: one job executed to completion."""
        with self._lock:
            self.jobs_done += 1
            self.committed += int(getattr(result, "committed", 0))
            self.cycles += int(getattr(result, "cycles", 0))
            self._recent.append({
                "job": self._describe(job),
                "status": "done",
                "ipc": round(getattr(result, "ipc", 0.0), 3),
                "seconds": round(seconds, 2),
            })
        self.publish()

    def observe(self, kind: str, job: object, info: Dict[str, object]
                ) -> None:
        """``observer`` hook: cache hits, retries and failures."""
        with self._lock:
            if kind == "cached":
                self.cache_hits += 1
                self._recent.append({
                    "job": self._describe(job),
                    "status": str(info.get("source", "cache")),
                })
            elif kind == "retry":
                self.retries += 1
            elif kind == "failure":
                self.jobs_failed += 1
                self._recent.append({
                    "job": self._describe(job),
                    "status": f"FAILED:{info.get('error', '?')}",
                })
            else:
                return
        self.publish()

    @staticmethod
    def _describe(job: object) -> str:
        describe = getattr(job, "describe", None)
        return describe() if callable(describe) else str(job)

    # -- publishing --------------------------------------------------------

    def snapshot(self, state: str = "running") -> Dict[str, object]:
        """One fleet-shaped snapshot (caller need not hold the lock)."""
        with self._lock:
            snapshot: Dict[str, object] = {
                "seq": self._seq,
                "pid": os.getpid(),
                "state": state,
                "tag": self.tag,
                "committed": self.committed,
                "ipc": round(self.committed / self.cycles, 6)
                       if self.cycles else 0.0,
                "jobs_done": self.jobs_done,
                "jobs_total": self.jobs_total,
                "jobs_failed": self.jobs_failed,
                "cache_hits": self.cache_hits,
                "retries": self.retries,
                "jobs": list(self._recent),
                "wall": round(time.monotonic() - self._start, 3),
            }
            self._seq += 1
        return snapshot

    def history(self) -> List[Dict[str, object]]:
        """Published snapshots, oldest first (for sparkline renderers)."""
        with self._lock:
            return list(self._ring)

    def publish(self, state: str = "running") -> None:
        """Append one snapshot and rewrite the status file."""
        snapshot = self.snapshot(state)
        with self._lock:
            self._ring.append(snapshot)
            _write_ring(self.path, self._ring)

    def publish_final(self) -> None:
        """Publish the terminal snapshot (``state="done"``)."""
        self.publish(state="done")
