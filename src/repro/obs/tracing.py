"""Structured pipeline event tracing with Chrome trace-event export.

The :class:`EventTracer` records fragment lifecycle events — predicted,
fetch start/done, renamed, squashed — plus control recoveries, live-out
mispredictions and commits, and exports them in the Chrome trace-event
JSON format, loadable in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``.

Mapping onto the trace model:

* one simulated cycle = one microsecond of trace time (``ts`` is the
  cycle number);
* each fragment is an async span (``ph: b``/``e``, ``cat: fragment``,
  ``id``: the fragment sequence number) from prediction to
  retirement/squash, so overlapping fragments nest naturally;
* the fetch of each fragment is a complete event (``ph: X``) on the
  track of the sequencer that fetched it (``tid`` = sequencer index),
  so per-sequencer utilization is visible at a glance;
* rename is an async span per fragment (``cat: rename``), overlapping
  freely for the parallel renamers;
* recoveries, live-out mispredictions, squashes and fragment commits
  are instant events (``ph: i``) on a dedicated events track;
* gauge samples (when the metrics recorder is also enabled) become
  counter events (``ph: C``) and render as counter tracks.

Events are capped at ``limit``; overflow is counted, never raised.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.frontend.buffers import FragmentInFlight

#: tid of the instant-event track (sequencers occupy 0..N-1).
EVENTS_TID = 90
#: tid of the rename track.
RENAME_TID = 91
#: tid hosting counter events.
COUNTER_TID = 92

#: Chrome trace-event phases this module emits (and the validator knows).
KNOWN_PHASES = ("b", "e", "X", "i", "C", "M")


class EventTracer:
    """Records pipeline lifecycle events for Chrome/Perfetto export."""

    def __init__(self, limit: int = 200_000, pid: int = 1):
        self.limit = limit
        self.pid = pid
        self.events: List[Dict[str, Any]] = []
        self.dropped = 0
        self._sequencer_tids: set = set()

    # -- low-level emission ------------------------------------------------

    def _emit(self, **event: Any) -> None:
        if len(self.events) >= self.limit:
            self.dropped += 1
            return
        event["pid"] = self.pid
        self.events.append(event)

    def instant(self, name: str, ts: int,
                args: Optional[Dict[str, Any]] = None,
                tid: int = EVENTS_TID) -> None:
        """Emit a Chrome-trace instant event at timestamp *ts*."""
        event: Dict[str, Any] = {"name": name, "cat": "event", "ph": "i",
                                 "ts": ts, "tid": tid, "s": "t"}
        if args:
            event["args"] = args
        self._emit(**event)

    def counter(self, name: str, ts: int, value: float) -> None:
        """Emit a Chrome-trace counter sample (gauge track)."""
        self._emit(name=name, cat="gauge", ph="C", ts=ts,
                   tid=COUNTER_TID, args={"value": value})

    # -- fragment lifecycle ------------------------------------------------

    def fragment_predicted(self, fragment: "FragmentInFlight",
                           now: int) -> None:
        """The front-end predicted and allocated a buffer for *fragment*."""
        self._emit(name=f"frag {fragment.key.start_pc:#x}",
                   cat="fragment", ph="b", id=fragment.seq,
                   ts=now, tid=EVENTS_TID,
                   args={"seq": fragment.seq,
                         "pc": fragment.key.start_pc,
                         "length": fragment.static_frag.length,
                         "reused": fragment.reused})

    def fragment_retired(self, fragment: "FragmentInFlight",
                         now: int) -> None:
        """*fragment* fully committed; emit its sub-spans and close it."""
        self._fetch_span(fragment)
        self._rename_span(fragment, now)
        self.instant("commit", now,
                     {"seq": fragment.seq,
                      "committed": fragment.committed_count})
        self._emit(name=f"frag {fragment.key.start_pc:#x}",
                   cat="fragment", ph="e", id=fragment.seq,
                   ts=now, tid=EVENTS_TID,
                   args={"committed": fragment.committed_count})

    def fragment_squashed(self, fragment: "FragmentInFlight",
                          now: int) -> None:
        """Close a squashed fragment's spans and mark the squash."""
        self._fetch_span(fragment)
        self.instant("squash", now, {"seq": fragment.seq})
        self._emit(name=f"frag {fragment.key.start_pc:#x}",
                   cat="fragment", ph="e", id=fragment.seq,
                   ts=now, tid=EVENTS_TID, args={"squashed": True})

    def _fetch_span(self, fragment: "FragmentInFlight") -> None:
        """Fetch as a complete event on the fetching sequencer's track.

        Uses the cycle stamps recorded on the fragment: buffer reuses and
        trace-cache hits complete in their allocation cycle, so their
        spans collapse to the minimum one-cycle duration.
        """
        if fragment.construct_cycle < 0:
            return  # squashed before fetch delivered anything
        start = fragment.fetch_start_cycle
        if start < 0:
            start = fragment.construct_cycle
        tid = max(fragment.fetch_sequencer, 0)
        self._sequencer_tids.add(tid)
        self._emit(name=f"fetch {fragment.key.start_pc:#x}",
                   cat="fetch", ph="X", ts=start,
                   dur=max(fragment.construct_cycle - start, 1), tid=tid,
                   args={"seq": fragment.seq,
                         "insts": fragment.fetched_count,
                         "reused": fragment.reused})

    def _rename_span(self, fragment: "FragmentInFlight", now: int) -> None:
        if fragment.rename_started_cycle < 0:
            return
        end = fragment.rename_done_cycle
        if end < fragment.rename_started_cycle:
            end = now
        self._emit(name=f"rename {fragment.key.start_pc:#x}",
                   cat="rename", ph="b", id=fragment.seq,
                   ts=fragment.rename_started_cycle, tid=RENAME_TID,
                   args={"seq": fragment.seq})
        self._emit(name=f"rename {fragment.key.start_pc:#x}",
                   cat="rename", ph="e", id=fragment.seq,
                   ts=end, tid=RENAME_TID)

    # -- non-fragment events -----------------------------------------------

    def recovery(self, fragment: "FragmentInFlight", position: int,
                 target: int, now: int) -> None:
        """Mark a control-misprediction recovery redirecting fetch."""
        self.instant("recovery", now,
                     {"seq": fragment.seq, "position": position,
                      "target": target})

    def liveout_mispredict(self, fragment: "FragmentInFlight",
                           now: int, policy: str) -> None:
        """Mark a live-out misprediction rename restart."""
        self.instant("liveout-mispredict", now,
                     {"seq": fragment.seq, "policy": policy})

    # -- export ------------------------------------------------------------

    def export(self, process_name: str = "repro",
               sequencers: int = 1) -> Dict[str, Any]:
        """The complete trace as a Chrome trace-event JSON object."""
        metadata: List[Dict[str, Any]] = [{
            "name": "process_name", "ph": "M", "pid": self.pid, "tid": 0,
            "ts": 0, "args": {"name": process_name},
        }]
        tids = set(range(sequencers)) | self._sequencer_tids
        names = {tid: f"sequencer {tid}" for tid in sorted(tids)}
        names[EVENTS_TID] = "pipeline events"
        names[RENAME_TID] = "rename"
        names[COUNTER_TID] = "gauges"
        for tid, name in names.items():
            metadata.append({"name": "thread_name", "ph": "M",
                             "pid": self.pid, "tid": tid, "ts": 0,
                             "args": {"name": name}})
        return {"traceEvents": metadata + self.events,
                "displayTimeUnit": "ms",
                "otherData": {"clock": "1 cycle = 1 us",
                              "dropped_events": self.dropped}}


def validate_chrome_trace(payload: Any) -> int:
    """Validate *payload* against the Chrome trace-event schema subset
    this tracer emits; returns the event count.

    Checks the structural requirements Perfetto's importer relies on:
    a ``traceEvents`` list whose entries all carry ``name``/``ph``/
    ``pid``/``tid``/numeric ``ts``, async events an ``id``, complete
    events a non-negative ``dur``, counter/metadata events ``args``.
    Raises :class:`ValueError` on the first violation.
    """
    if not isinstance(payload, dict):
        raise ValueError("trace payload must be a JSON object")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    open_spans: Dict[Any, int] = {}
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where} is not an object")
        ph = event.get("ph")
        if ph not in KNOWN_PHASES:
            raise ValueError(f"{where}: unknown phase {ph!r}")
        for field in ("name", "pid", "tid"):
            if field not in event:
                raise ValueError(f"{where}: missing {field!r}")
        if not isinstance(event.get("ts"), (int, float)):
            raise ValueError(f"{where}: ts must be a number")
        if ph in ("b", "e"):
            if "id" not in event:
                raise ValueError(f"{where}: async event missing id")
            key = (event.get("cat"), event["id"])
            open_spans[key] = open_spans.get(key, 0) + (1 if ph == "b"
                                                        else -1)
            if open_spans[key] < 0:
                raise ValueError(f"{where}: async end before begin "
                                 f"for {key}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"{where}: complete event needs dur >= 0")
        if ph in ("C", "M") and not isinstance(event.get("args"), dict):
            raise ValueError(f"{where}: {ph} event needs args")
    return len(events)
