"""Opt-in simulator observability (:class:`ObservabilityConfig`).

Three pillars, all off by default and near-free when disabled:

* :class:`~repro.obs.metrics.MetricsRecorder` — cycle-sampled gauges
  (buffer occupancy, window fill, busy sequencers, rename/dispatch
  queue depth, in-flight fragments) in ring-buffered time series with
  running min/mean/max/histogram summaries;
* :class:`~repro.obs.tracing.EventTracer` — pipeline lifecycle events
  exported as Chrome trace-event JSON for Perfetto/``chrome://tracing``;
* :class:`~repro.obs.profiling.PhaseProfiler` — simulator wall-clock
  attributed to pipeline phases.

Usage::

    from repro.config import ObservabilityConfig
    from repro.obs import Observability

    obs = Observability(ObservabilityConfig(sample_interval=100,
                                            trace=True))
    result = run_simulation("pr-2x8w", "gcc", observability=obs)
    payload = obs.tracer.export(process_name="pr-2x8w/gcc")

A fourth, independent piece — :class:`~repro.obs.live.LiveTelemetry` —
publishes read-only snapshots of a *running* simulation to a status
file for ``repro attach``; it is configured by :class:`LiveConfig`
rather than :class:`ObservabilityConfig` because it also runs in modes
(interval sampling, durable checkpointing) that bypass the pillar
bundle.

Environment knobs (read by :meth:`ObservabilityConfig.from_env`, which
the default ``run_simulation`` path consults): ``REPRO_OBS_SAMPLE``
(gauge sample interval in cycles), ``REPRO_OBS_RING`` (ring capacity),
``REPRO_OBS_TRACE`` (truthy, or a path to auto-export the trace to),
``REPRO_OBS_TRACE_LIMIT`` (event cap), ``REPRO_OBS_PROFILE`` (truthy).
Live telemetry reads ``REPRO_LIVE``, ``REPRO_LIVE_PATH`` and
``REPRO_LIVE_EVERY`` (see :meth:`LiveConfig.from_env`).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Optional

from repro.config import LiveConfig, ObservabilityConfig
from repro.obs.live import (
    LiveTelemetry,
    SweepFleet,
    read_snapshots,
    validate_snapshot,
)
from repro.obs.metrics import MetricsRecorder, TimeSeries
from repro.obs.profiling import PhaseProfiler
from repro.obs.tracing import EventTracer, validate_chrome_trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.processor import Processor

__all__ = [
    "Observability",
    "ObservabilityConfig",
    "LiveConfig",
    "LiveTelemetry",
    "SweepFleet",
    "MetricsRecorder",
    "TimeSeries",
    "EventTracer",
    "PhaseProfiler",
    "read_snapshots",
    "validate_chrome_trace",
    "validate_snapshot",
]


class Observability:
    """Bundles the three pillars for one simulation run."""

    def __init__(self, config: Optional[ObservabilityConfig] = None):
        self.config = config or ObservabilityConfig()
        self.tracer: Optional[EventTracer] = (
            EventTracer(limit=self.config.trace_limit)
            if self.config.trace else None)
        self.metrics: Optional[MetricsRecorder] = (
            MetricsRecorder(self.config.sample_interval,
                            capacity=self.config.ring_capacity,
                            tracer=self.tracer)
            if self.config.sample_interval else None)
        self.profiler: Optional[PhaseProfiler] = (
            PhaseProfiler() if self.config.profile else None)

    @property
    def enabled(self) -> bool:
        """Whether any pillar (metrics/tracing/profiling) is active."""
        return (self.metrics is not None or self.tracer is not None
                or self.profiler is not None)

    @classmethod
    def from_env(cls) -> Optional["Observability"]:
        """An instance per ``REPRO_OBS_*``, or None when all knobs are
        off — so the default simulation path allocates nothing."""
        config = ObservabilityConfig.from_env()
        return cls(config) if config.enabled else None

    def finalize(self, processor: "Processor") -> None:
        """Fold summaries into the processor's stats (and auto-export).

        Called by ``Processor.run`` when it finishes, so every counter
        lands in the :class:`~repro.core.simulation.SimulationResult`.
        All obs counters are ``set`` (gauge semantics): merging result
        collectors keeps the last writer rather than summing summaries.
        """
        stats = processor.stats
        if self.metrics is not None:
            self.metrics.to_counters(stats)
        if self.tracer is not None:
            stats.set("obs.trace.events", len(self.tracer.events))
            stats.set("obs.trace.dropped", self.tracer.dropped)
        if self.profiler is not None:
            self.profiler.to_counters(stats)
        if self.tracer is not None and self.config.trace_path:
            self.export_trace(self.config.trace_path,
                              process_name=processor.program.name,
                              sequencers=processor.config.frontend.sequencers)

    def export_trace(self, path: str, process_name: str = "repro",
                     sequencers: int = 1) -> dict:
        """Write the Chrome trace-event JSON to *path*; returns it."""
        if self.tracer is None:
            raise ValueError("tracing is not enabled")
        payload = self.tracer.export(process_name=process_name,
                                     sequencers=sequencers)
        with open(path, "w") as handle:
            json.dump(payload, handle)
        return payload
