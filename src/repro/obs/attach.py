"""``repro attach``: live view of a running simulation or service job.

Two snapshot sources feed the same renderer:

* :class:`FileSource` — polls the atomic status file a
  :class:`~repro.obs.live.LiveTelemetry` publisher maintains (attach by
  path, or by pid via the default per-process path);
* :class:`ServiceSource` — follows the job server's
  ``GET /jobs/<id>/metrics`` NDJSON stream (attach by job id).

On top of either source sit two front ends: a curses TUI
(:func:`run_tui`) with occupancy bars, a rolling IPC sparkline, phase
timings and sampled-mode confidence progress, and a non-interactive
``--once`` mode (:func:`snapshot_once`) that prints the newest
schema-validated snapshot as JSON for scripts and CI.

Everything here is strictly a *reader*: attaching, detaching or crashing
a viewer can never affect the run being watched, which only ever
appends to its own status file.
"""

from __future__ import annotations

import json
import os
import socket
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.obs.live import (
    default_path,
    default_sweep_path,
    read_snapshots,
    validate_snapshot,
)

#: Snapshots retained for sparklines (the newest wins for the panels).
HISTORY = 300

#: Eight-level bar glyphs for sparklines and occupancy bars.
_BLOCKS = " ▁▂▃▄▅▆▇█"


class FileSource:
    """Snapshots from a live status file (attach by path or pid)."""

    def __init__(self, path: str):
        self.path = path
        self.describe = path
        self._last_seq = -1

    def poll(self) -> List[Dict[str, object]]:
        """New snapshots since the previous poll, oldest first."""
        fresh = [s for s in read_snapshots(self.path)
                 if isinstance(s.get("seq"), int) and s["seq"] > self._last_seq]
        if fresh:
            self._last_seq = fresh[-1]["seq"]
        return fresh

    def close(self) -> None:
        """Nothing to release for a file poller."""


class ServiceSource:
    """Snapshots from a job server's ``/jobs/<id>/metrics`` stream.

    A plain blocking socket reading NDJSON lines — the attach CLI has no
    event loop, and the server heartbeats every 15 s so a stalled read
    means the server is gone, not idle.
    """

    def __init__(self, host: str, port: int, record_id: str,
                 timeout: float = 60.0):
        self.describe = f"{host}:{port}/jobs/{record_id}"
        self._sock = socket.create_connection((host, port), timeout=timeout)
        request = (f"GET /jobs/{record_id}/metrics HTTP/1.1\r\n"
                   f"Host: {host}\r\nConnection: close\r\n\r\n")
        self._sock.sendall(request.encode())
        self._file = self._sock.makefile("r", encoding="utf-8")
        status = self._file.readline()
        if "200" not in status:
            raise OSError(f"metrics stream refused: {status.strip()!r}")
        while self._file.readline().strip():
            pass  # drain response headers

    def poll(self) -> List[Dict[str, object]]:
        """Read one snapshot line (blocking up to the socket timeout)."""
        line = self._file.readline()
        if not line:
            return []
        line = line.strip()
        if not line:
            return []
        try:
            parsed = json.loads(line)
        except ValueError:
            return []
        return [parsed] if isinstance(parsed, dict) else []

    def close(self) -> None:
        """Tear the stream connection down."""
        try:
            self._file.close()
            self._sock.close()
        except OSError:
            pass


def resolve_source(target: str, server: Optional[Tuple[str, int]] = None):
    """Build the snapshot source for an attach *target*.

    With *server* set the target is a job id on that server; a target
    that is all digits is a pid (mapped to that process's run status
    file, or its sweep status file when only that exists); anything
    else is a status-file path.
    """
    if server is not None:
        return ServiceSource(server[0], server[1], target)
    if target.isdigit():
        run_path = default_path(int(target))
        sweep_path = default_sweep_path(int(target))
        if not os.path.exists(run_path) and os.path.exists(sweep_path):
            return FileSource(sweep_path)
        return FileSource(run_path)
    return FileSource(target)


def snapshot_once(source) -> Tuple[Optional[Dict[str, object]], List[str]]:
    """One poll: the newest snapshot (or None) and its schema problems.

    Service-job snapshots have their own shape (fleet progress, not
    pipeline gauges), so only simulation snapshots — recognised by their
    ``gauges`` key — go through the full schema validator.
    """
    snapshots = source.poll()
    if not snapshots:
        return None, []
    newest = snapshots[-1]
    problems = validate_snapshot(newest) if "gauges" in newest else []
    return newest, problems


def sparkline(values: List[float], width: int) -> str:
    """Render *values* (newest last) as a fixed-width block sparkline."""
    if not values:
        return " " * width
    tail = values[-width:]
    top = max(tail)
    if top <= 0:
        return (" " * (width - len(tail))) + "▁" * len(tail)
    line = "".join(
        _BLOCKS[min(8, max(1, int(round(v / top * 8))))] for v in tail)
    return (" " * (width - len(tail))) + line


def bar(value: float, limit: float, width: int) -> str:
    """A ``[####----]`` occupancy bar clamped to *limit*."""
    if limit <= 0:
        limit = max(value, 1.0)
    fill = min(width, int(round(min(value, limit) / limit * width)))
    return "[" + "#" * fill + "-" * (width - fill) + "]"


def render_lines(snapshot: Dict[str, object],
                 history: List[Dict[str, object]],
                 width: int = 78) -> List[str]:
    """Format one snapshot (plus history for sparklines) as text lines.

    Shared by the curses TUI and the ``--follow``-style plain renderer,
    and unit-testable without a terminal.  Fleet-shaped snapshots (a
    sweep's or a service job's — recognised by ``jobs_done``) get the
    fleet table instead of the pipeline panels.
    """
    if "jobs_done" in snapshot:
        return render_fleet_lines(snapshot, history, width=width)
    lines: List[str] = []
    bench = snapshot.get("benchmark") or "?"
    config = snapshot.get("config") or "?"
    state = snapshot.get("state", "?")
    mode = snapshot.get("mode", "?")
    wall = snapshot.get("wall", 0.0)
    lines.append(f"repro attach  {config}/{bench}  [{state}]  mode={mode}"
                 f"  pid={snapshot.get('pid', '?')}  wall={wall:.1f}s")
    committed = snapshot.get("committed", 0)
    total = snapshot.get("total") or 0
    cycle = snapshot.get("cycle", 0)
    ipc = snapshot.get("ipc", 0.0)
    progress = f"{committed}/{total}" if total else str(committed)
    pct = f" ({100.0 * committed / total:.1f}%)" if total else ""
    eta = ""
    if total and committed and state == "running" and wall:
        remaining = (total - committed) * (wall / committed)
        eta = f"  eta={remaining:.0f}s"
    lines.append(f"committed {progress}{pct}  cycle {cycle}"
                 f"  IPC {ipc:.3f}{eta}")
    ipcs = [s.get("ipc", 0.0) for s in history
            if isinstance(s.get("ipc"), (int, float))]
    lines.append(f"ipc  {sparkline(ipcs, min(60, width - 6))}")
    gauges = snapshot.get("gauges") or {}
    limits = snapshot.get("limits") or {}
    for name in sorted(gauges):
        value = gauges[name]
        limit = limits.get(name, 0)
        if limit:
            lines.append(f"  {name:<22} {bar(value, limit, 24)} "
                         f"{value:.0f}/{limit:.0f}")
        else:
            # No architectural capacity to scale against (queue depths):
            # the raw value reads better than a misleading full bar.
            lines.append(f"  {name:<22} {value:.0f}")
    extras = []
    recoveries = snapshot.get("recoveries")
    if recoveries:
        extras.append(f"recoveries={recoveries:.0f}")
    liveout = snapshot.get("liveout_mispredictions")
    if liveout:
        extras.append(f"liveout-mispredicts={liveout:.0f}")
    if snapshot.get("checkpoint") is not None:
        extras.append(f"checkpoint#{snapshot['checkpoint']}")
    if extras:
        lines.append("  ".join(extras))
    sampling = snapshot.get("sampling")
    if isinstance(sampling, dict):
        unit = sampling.get("unit", 0)
        units_total = sampling.get("units_total", 0)
        rel = sampling.get("ipc_halfwidth_rel", 0.0)
        lines.append(f"sampling unit {unit}/{units_total}"
                     f"  ±{100.0 * rel:.2f}% IPC (95% CI)")
    profile = snapshot.get("profile")
    if isinstance(profile, dict) and profile:
        total_s = sum(profile.values()) or 1.0
        parts = "  ".join(
            f"{phase}={seconds:.2f}s({100.0 * seconds / total_s:.0f}%)"
            for phase, seconds in sorted(profile.items(),
                                         key=lambda kv: -kv[1]))
        lines.append(f"phases {parts}")
    return [line[:width] for line in lines]


def render_fleet_lines(snapshot: Dict[str, object],
                       history: List[Dict[str, object]],
                       width: int = 78) -> List[str]:
    """Format one fleet snapshot (a sweep or a service job) as text.

    Used for ``repro sweep --attach``, for attaching to a sweep's
    status file, and for service-job metrics streams — all of which
    carry the same fleet keys (``jobs_done``, ``cache_hits``,
    ``retries``, cumulative ``committed``); per-job rows appear when
    the snapshot carries a ``jobs`` tail (sweeps do, service jobs
    summarise remotely).
    """
    lines: List[str] = []
    label = snapshot.get("tag") or snapshot.get("id") or "?"
    state = snapshot.get("state", "?")
    wall = snapshot.get("wall", 0.0)
    lines.append(f"fleet {label}  [{state}]"
                 f"  pid={snapshot.get('pid', '?')}  wall={wall:.1f}s")
    done = snapshot.get("jobs_done", 0) or 0
    cached = snapshot.get("cache_hits", 0) or 0
    failed = snapshot.get("jobs_failed", 0) or 0
    total = snapshot.get("jobs_total", 0) or 0
    settled = done + cached + failed
    eta = ""
    if total and settled and settled < total and state == "running" and wall:
        remaining = (total - settled) * (wall / settled)
        eta = f"  eta={remaining:.0f}s"
    pct = f" ({100.0 * settled / total:.0f}%)" if total else ""
    lines.append(f"jobs {bar(settled, total, 24)} {settled}/{total}{pct}"
                 f"  executed={done}  cached={cached}  failed={failed}"
                 f"  retries={snapshot.get('retries', 0)}{eta}")
    committed = snapshot.get("committed", 0)
    ipc = snapshot.get("ipc", 0.0)
    lines.append(f"committed {committed}  mean IPC {ipc:.3f}")
    ipcs = [s.get("ipc", 0.0) for s in history
            if isinstance(s.get("ipc"), (int, float))]
    lines.append(f"ipc  {sparkline(ipcs, min(60, width - 6))}")
    jobs = snapshot.get("jobs")
    if isinstance(jobs, list):
        for row in jobs[-10:]:
            if not isinstance(row, dict):
                continue
            status = str(row.get("status", "?"))
            detail = ""
            if "ipc" in row:
                detail = f"  IPC={row['ipc']}  ({row.get('seconds', 0)}s)"
            lines.append(f"  {str(row.get('job', '?')):<44.44}"
                         f" {status:<12.12}{detail}")
    return [line[:width] for line in lines]


def run_tui(source, interval: float = 0.5) -> int:
    """Curses front end: redraw until the run finishes or 'q' quits."""
    import curses

    def loop(stdscr) -> int:
        curses.curs_set(0)
        stdscr.nodelay(True)
        history: Deque[Dict[str, object]] = deque(maxlen=HISTORY)
        latest: Optional[Dict[str, object]] = None
        waited = 0.0
        while True:
            for snapshot in source.poll():
                history.append(snapshot)
                latest = snapshot
            height, width = stdscr.getmaxyx()
            stdscr.erase()
            if latest is None:
                waited += interval
                stdscr.addstr(0, 0, f"waiting for telemetry from "
                                    f"{source.describe} ({waited:.0f}s)"
                                    f" — is the run using REPRO_LIVE=1?")
            else:
                lines = render_lines(latest, list(history),
                                     width=max(20, width - 1))
                for row, line in enumerate(lines[:height - 1]):
                    stdscr.addstr(row, 0, line)
                stdscr.addstr(min(len(lines), height - 1), 0,
                              "q to detach (the run keeps going)")
            stdscr.refresh()
            if latest is not None and latest.get("state") == "done":
                stdscr.nodelay(False)  # leave the final screen up
            try:
                key = stdscr.getch()
            except curses.error:  # pragma: no cover - terminal quirk
                key = -1
            if key in (ord("q"), ord("Q")):
                return 0
            time.sleep(interval)

    try:
        return curses.wrapper(loop)
    finally:
        source.close()
