"""Cycle-sampled time-series metrics.

A :class:`MetricsRecorder` snapshots a fixed set of pipeline gauges every
N cycles — fragment-buffer occupancy, instruction-window fill, busy
sequencers, rename-queue depth, dispatch-queue depth, in-flight fragment
count — into per-gauge :class:`TimeSeries` ring buffers.  Each series
keeps the last ``capacity`` samples for plotting/export plus *running*
min/mean/max and a power-of-two histogram over every sample ever taken,
so the summaries are exact even after the ring has wrapped.

The recorder is pull-based: the processor's run loop calls
:meth:`MetricsRecorder.maybe_sample` once per cycle and the recorder
reads the gauges it needs off the processor.  Nothing in the pipeline
models pushes to it, so the disabled path costs one ``is not None``
check per cycle.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.stats import StatsCollector, format_table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.processor import Processor
    from repro.obs.tracing import EventTracer


#: The pipeline gauges sampled off a processor, in presentation order.
#: Shared between :class:`MetricsRecorder` and the live telemetry
#: publisher (:mod:`repro.obs.live`) so both report the same quantities.
GAUGE_NAMES = (
    "fragbuf.occupancy",
    "window.used",
    "sequencers.busy",
    "rename.queue",
    "dispatch.queue",
    "fragments.in_flight",
)


def read_gauges(processor: "Processor") -> Tuple[float, ...]:
    """Read every gauge in :data:`GAUGE_NAMES` order, strictly read-only.

    This is the single place that knows how to interrogate the pipeline
    structures; every query is a pure inspection (occupancy counts,
    window fill, busy-sequencer count), which is what lets both the
    metrics recorder and the live publisher guarantee bit-identical
    simulation results whether or not they are attached.
    """
    fragments = processor.fragments
    return (
        processor.buffers.occupied_count(),
        processor.core.window_used,
        processor.engine.busy_sequencers(processor.now),
        sum(f.renameable_count() for f in fragments),
        processor.core.in_flight_dispatch(),
        len(fragments),
    )


def _bucket_label(index: int) -> str:
    """Label of power-of-two histogram bucket *index* (0, 1, 2-3, 4-7...)."""
    if index <= 1:
        return str(index)
    lo = 1 << (index - 1)
    hi = (1 << index) - 1
    return f"{lo}-{hi}"


class TimeSeries:
    """One gauge's history: a sample ring plus exact running summaries."""

    __slots__ = ("name", "_ring", "count", "total", "vmin", "vmax",
                 "_histogram")

    def __init__(self, name: str, capacity: int):
        self.name = name
        self._ring: deque = deque(maxlen=capacity)
        self.count = 0
        self.total = 0.0
        self.vmin = float("inf")
        self.vmax = float("-inf")
        #: Power-of-two buckets: index 0 holds zeros, index k holds
        #: values in [2^(k-1), 2^k).  Gauges are small non-negative ints.
        self._histogram: Dict[int, int] = {}

    def append(self, cycle: int, value: float) -> None:
        """Record one (cycle, value) sample, updating running stats."""
        self._ring.append((cycle, value))
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value
        bucket = int(value).bit_length() if value >= 1 else 0
        self._histogram[bucket] = self._histogram.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        """Mean over every sample ever appended (not just retained)."""
        return self.total / self.count if self.count else 0.0

    @property
    def last(self) -> float:
        """Most recent sampled value (0.0 before any sample)."""
        return self._ring[-1][1] if self._ring else 0.0

    def samples(self) -> List[Tuple[int, float]]:
        """The retained (cycle, value) samples, oldest first."""
        return list(self._ring)

    def histogram(self) -> Dict[str, int]:
        """Sample counts per power-of-two bucket, labelled by range."""
        return {_bucket_label(index): count
                for index, count in sorted(self._histogram.items())}

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready summary: count, min/max/mean, retained samples."""
        return {
            "name": self.name,
            "samples": self.count,
            "min": self.vmin if self.count else 0.0,
            "mean": self.mean,
            "max": self.vmax if self.count else 0.0,
            "histogram": self.histogram(),
            "ring": [[cycle, value] for cycle, value in self._ring],
        }


class MetricsRecorder:
    """Samples pipeline gauges every ``interval`` cycles."""

    #: The gauges sampled off the processor, in presentation order.
    GAUGES = GAUGE_NAMES

    def __init__(self, interval: int, capacity: int = 4096,
                 tracer: Optional["EventTracer"] = None):
        if interval <= 0:
            raise ValueError("sample interval must be positive")
        self.interval = interval
        self.capacity = capacity
        #: When set, every sample is mirrored as a Chrome counter event,
        #: so Perfetto shows the gauges as counter tracks over the trace.
        self.tracer = tracer
        self.series: Dict[str, TimeSeries] = {
            name: TimeSeries(name, capacity) for name in self.GAUGES}

    def maybe_sample(self, processor: "Processor") -> None:
        """Sample the processor when the cycle hits the interval."""
        if processor.now % self.interval:
            return
        self.sample(processor)

    def sample(self, processor: "Processor") -> None:
        """Snapshot every gauge at the processor's current cycle."""
        now = processor.now
        values = read_gauges(processor)
        for name, value in zip(self.GAUGES, values):
            self.series[name].append(now, value)
            if self.tracer is not None:
                self.tracer.counter(name, now, value)

    # -- reporting ---------------------------------------------------------

    def to_counters(self, stats: StatsCollector) -> None:
        """Fold each series' summary into *stats* as ``obs.*`` gauges."""
        for name, series in self.series.items():
            if not series.count:
                continue
            stats.set(f"obs.{name}.samples", series.count)
            stats.set(f"obs.{name}.min", series.vmin)
            stats.set(f"obs.{name}.mean", series.mean)
            stats.set(f"obs.{name}.max", series.vmax)

    def summary_text(self) -> str:
        """Fixed-width summary table for the ``repro`` text reports."""
        rows = []
        for name in self.GAUGES:
            series = self.series[name]
            if not series.count:
                continue
            rows.append([name, series.count, series.vmin, series.mean,
                         series.vmax, series.last])
        if not rows:
            return "(no samples recorded)"
        return format_table(
            ["gauge", "samples", "min", "mean", "max", "last"], rows,
            float_fmt="{:.2f}")

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready dump of every series' summary."""
        return {"interval": self.interval,
                "capacity": self.capacity,
                "series": {name: series.as_dict()
                           for name, series in self.series.items()}}
