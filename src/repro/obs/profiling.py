"""Self-profiling: attribute simulator wall-clock to pipeline phases.

The :class:`PhaseProfiler` answers "where does a simulation's host time
go?" — execute, commit, rename, fetch, misprediction recovery — so perf
work on the simulator itself can be targeted and verified.  The design
constraint is *zero* cost when disabled: the processor swaps in an
instrumented copy of its step function only when a profiler is attached
(see ``Processor._step_profiled``), so the default path contains no
timing calls at all.

The explicit ``start()``/``stop()`` API (rather than a context manager)
keeps the per-phase overhead to two ``perf_counter`` calls and one dict
update; a ``with`` block would add generator/``__exit__`` dispatch to a
path that runs five times per simulated cycle.
"""

from __future__ import annotations

import time
from typing import Dict, List

from repro.stats import StatsCollector, format_table

#: Pipeline phases in report order (matches ``Processor._step_profiled``).
PHASES = ("execute", "commit", "rename", "fetch", "observe")


class PhaseProfiler:
    """Accumulates wall-clock seconds and call counts per phase."""

    __slots__ = ("seconds", "calls", "start")

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}
        #: Alias so call sites read ``t0 = profiler.start()``.
        self.start = time.perf_counter

    def stop(self, phase: str, t0: float) -> None:
        """Charge the time since *t0* to *phase*."""
        elapsed = time.perf_counter() - t0
        self.seconds[phase] = self.seconds.get(phase, 0.0) + elapsed
        self.calls[phase] = self.calls.get(phase, 0) + 1

    @property
    def total_seconds(self) -> float:
        """Wall-clock seconds across all phases."""
        return sum(self.seconds.values())

    # -- reporting ---------------------------------------------------------

    def to_counters(self, stats: StatsCollector) -> None:
        """Export per-phase seconds/calls into *stats* counters."""
        for phase, seconds in self.seconds.items():
            stats.set(f"obs.profile.{phase}.seconds", seconds)
            stats.set(f"obs.profile.{phase}.calls", self.calls[phase])
        stats.set("obs.profile.total_seconds", self.total_seconds)

    def report(self) -> str:
        """Per-phase wall-clock breakdown as a fixed-width table."""
        total = self.total_seconds
        rows: List[List[object]] = []
        ordered = [p for p in PHASES if p in self.seconds]
        ordered += sorted(set(self.seconds) - set(PHASES))
        for phase in ordered:
            seconds = self.seconds[phase]
            calls = self.calls[phase]
            rows.append([
                phase, seconds, (100.0 * seconds / total) if total else 0.0,
                calls, (1e6 * seconds / calls) if calls else 0.0,
            ])
        rows.append(["total", total, 100.0 if total else 0.0,
                     max(self.calls.values(), default=0), 0.0])
        return format_table(
            ["phase", "seconds", "%", "calls", "us/call"], rows,
            float_fmt="{:.3f}")

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """JSON-ready {phase: {seconds, calls}} mapping."""
        return {phase: {"seconds": self.seconds[phase],
                        "calls": self.calls[phase]}
                for phase in self.seconds}
