"""Command-line interface: ``python -m repro``.

Subcommands:

* ``run`` — simulate one (front-end, benchmark) pair and print metrics;
  ``--pipeview[=N]`` renders the classic pipeline diagram of the last N
  committed instructions, ``--sample N`` prints cycle-sampled gauge
  summaries, ``--sampled [PERIOD]`` switches to interval-sampled
  simulation (see :mod:`repro.sampling`), ``--json`` emits the result
  as JSON;
* ``compare`` — run several front-ends on one benchmark side by side;
* ``figure`` — regenerate one of the paper's tables/figures;
* ``sweep`` — run a (configs x benchmarks) matrix on the parallel runner
  with the persistent result cache, printing progress and a summary
  (``--json`` for machine-readable output, ``--sampled [PERIOD]`` for
  interval-sampled jobs, ``--checkpoint N`` for durable mid-run
  snapshots, ``--resume [SWEEP_ID]`` to continue a crashed sweep from
  its manifest);
* ``trace`` — record a fragment-lifecycle event trace and export it as
  Chrome trace-event JSON for Perfetto / ``chrome://tracing``;
* ``profile`` — attribute the simulator's own wall-clock to pipeline
  phases (self-profiling);
* ``attach`` — live view of a running simulation or service job
  (``REPRO_LIVE=1`` runs publish telemetry; attach by status-file path,
  pid, or job id with ``--server``); ``--once --json`` prints one
  schema-validated snapshot for scripts and CI;
* ``bench-info`` — show the synthetic suite's characteristics (Table 2);
* ``serve`` — run the long-lived async sweep job server
  (:mod:`repro.service`): submit/poll/stream jobs over HTTP, cached
  results served to many concurrent readers;
* ``submit`` — submit a sweep to a running server, stream its progress
  and print the results;
* ``loadgen`` — hammer a running server with concurrent requests and
  verify zero server errors plus bit-identical results.
"""

from __future__ import annotations

import argparse
import functools
import json
import sys

from repro import PAPER_CONFIGS, run_simulation
from repro.stats import format_table
from repro.workloads.suite import BENCHMARK_NAMES

ALL_CONFIGS = list(PAPER_CONFIGS) + ["tc+pr-2x8w", "tc+pr-4x4w"]

FIGURES = {
    "table1": lambda ex: ex.table1(),
    "table2": lambda ex: ex.format_table2(ex.table2()),
    "fig4": lambda ex: ex.format_figure4(ex.figure4()),
    "fig5": lambda ex: ex.format_figure5(ex.figure5()),
    "fig6": lambda ex: ex.format_figure6(ex.figure6()),
    "fig7": lambda ex: ex.format_figure7(ex.figure7()),
    "fig8": lambda ex: ex.format_figure8(ex.figure8()),
    "fig9": lambda ex: ex.format_figure9(ex.figure9()),
    "fig10": lambda ex: ex.format_figure10(ex.figure10()),
    "text": lambda ex: ex.format_text_statistics(ex.text_statistics()),
}


def _result_row(result):
    return [result.config_name, result.ipc, result.fetch_rate,
            result.rename_rate, result.slot_utilization, result.cycles]


def _result_payload(result):
    """A SimulationResult as a JSON-ready dict (``--json`` output)."""
    return {
        "benchmark": result.benchmark,
        "config": result.config_name,
        "cycles": result.cycles,
        "committed": result.committed,
        "ipc": result.ipc,
        "fetch_rate": result.fetch_rate,
        "rename_rate": result.rename_rate,
        "slot_utilization": result.slot_utilization,
        "counters": dict(result.counters),
    }


def _sampling_arg(args: argparse.Namespace):
    """Resolve the ``--sampled`` / ``--sample-unit`` / ``--sample-warmup``
    flags to a ``run_simulation(sampling=...)`` argument.

    Returns None when no flag was given, deferring to ``REPRO_SAMPLE``
    (unset = full detail), so plain invocations are unchanged.
    """
    sampled = getattr(args, "sampled", None)
    unit = getattr(args, "sample_unit", None)
    warmup = getattr(args, "sample_warmup", None)
    if sampled is None and unit is None and warmup is None:
        return None
    import dataclasses

    from repro.sampling import SamplingConfig
    period = None if sampled in (None, "on") else int(sampled)
    config = SamplingConfig.from_env(period)
    if unit is not None:
        config = dataclasses.replace(config, unit=unit)
    if warmup is not None:
        config = dataclasses.replace(config, warmup=warmup)
    return config


def _print_sampling_summary(result) -> None:
    """One-line confidence summary for a sampled result."""
    if not result.counter("sampling.enabled"):
        return
    measured = int(result.counter("sampling.units_measured"))
    total = int(result.counter("sampling.units_total"))
    halfwidth = result.counter("sampling.ipc_halfwidth_rel")
    discarded = int(result.counter("sampling.warmup_cycles_discarded"))
    print(f"sampled: {measured}/{total} units measured, "
          f"IPC +/-{100 * halfwidth:.1f}% (95% CI), "
          f"{discarded} warm-up cycles discarded")


def _make_observability(args: argparse.Namespace):
    """An Observability bundle for the run-style commands, or None.

    Built only when a CLI knob asks for it, so a plain ``repro run``
    still lets ``run_simulation`` consult the ``REPRO_OBS_*``
    environment (its default behaviour when *observability* is None).
    """
    sample = getattr(args, "sample", None)
    if not sample:
        return None
    from repro.config import ObservabilityConfig
    from repro.obs import Observability
    return Observability(ObservabilityConfig(sample_interval=sample))


def cmd_run(args: argparse.Namespace) -> int:
    """Run one (config, benchmark) simulation and print its metrics."""
    from repro.core.trace import (
        UopTrace,
        format_pipeview,
        pipeline_summary,
    )

    obs = _make_observability(args)
    uop_log = [] if args.pipeview is not None else None
    live = None
    if args.live is not None:
        from repro.config import LiveConfig
        live = (LiveConfig() if args.live is True
                else LiveConfig(path=args.live))
    result = run_simulation(args.config, args.benchmark,
                            max_instructions=args.instructions,
                            warm=not args.cold, observability=obs,
                            uop_log=uop_log, sampling=_sampling_arg(args),
                            checkpoint_every=args.checkpoint, live=live)
    traces = ([UopTrace.from_uop(uop) for uop in uop_log]
              if uop_log is not None else [])
    if args.json:
        payload = _result_payload(result)
        if traces:
            payload["pipeline"] = pipeline_summary(traces)
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(format_table(
        ["front-end", "IPC", "fetch/cyc", "rename/cyc", "util", "cycles"],
        [_result_row(result)]))
    _print_sampling_summary(result)
    if obs is not None and obs.metrics is not None:
        print()
        print(obs.metrics.summary_text())
    if args.pipeview is not None:
        print()
        count = args.pipeview
        start = max(0, len(traces) - count)
        print(format_pipeview(traces, start=start, count=count))
    if args.counters:
        print()
        for name, value in sorted(result.counters.items()):
            print(f"{name:45} {value:14.0f}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    """Simulate a benchmark on several configs and print a comparison table."""
    rows = []
    for config in args.configs:
        result = run_simulation(config, args.benchmark,
                                max_instructions=args.instructions,
                                warm=not args.cold)
        rows.append(_result_row(result))
    print(format_table(
        ["front-end", "IPC", "fetch/cyc", "rename/cyc", "util", "cycles"],
        rows))
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    """Reproduce one of the paper's figures or tables by name."""
    from repro import experiments
    print(FIGURES[args.name](experiments))
    return 0


def _attach_sweep(sweep, fleet, out):
    """Run *sweep* on a worker thread while rendering the fleet table.

    On a TTY the table redraws in place (ANSI cursor-up); on a pipe or
    in CI it degrades to one summary line whenever the fleet counts
    change, so logs stay readable.
    """
    import threading

    from repro.obs.attach import render_fleet_lines

    box = {}

    def run():
        try:
            box["report"] = sweep()
        except BaseException as exc:  # re-raised on the main thread
            box["error"] = exc

    thread = threading.Thread(target=run, name="repro-sweep", daemon=True)
    thread.start()
    tty = out.isatty()
    printed = 0
    last_counts = None
    while True:
        thread.join(timeout=0.5)
        alive = thread.is_alive()
        snapshot = fleet.snapshot("running" if alive else "done")
        if tty:
            lines = render_fleet_lines(snapshot, fleet.history(),
                                       width=100)
            if printed:
                out.write(f"\x1b[{printed}A\x1b[J")
            out.write("\n".join(lines) + "\n")
            out.flush()
            printed = len(lines)
        else:
            counts = (snapshot["jobs_done"], snapshot["cache_hits"],
                      snapshot["jobs_failed"], snapshot["retries"],
                      snapshot["state"])
            if counts != last_counts:
                last_counts = counts
                lines = render_fleet_lines(snapshot, [], width=100)
                out.write(lines[1] + "\n")
                out.flush()
        if not alive:
            break
    if "error" in box:
        raise box["error"]
    return box["report"]


def cmd_sweep(args: argparse.Namespace) -> int:
    """Run the full figure sweep through the parallel sweep runner.

    Every sweep writes a durable manifest (``<cache dir>/sweeps/``)
    before running, so a crashed or killed invocation can be resumed
    with ``--resume [SWEEP_ID]``: completed jobs return from the result
    cache, and jobs launched with ``--checkpoint N`` restart from their
    latest durable snapshot instead of from zero.
    """
    from repro.experiments import manifest as manifests
    from repro.experiments.common import (
        experiment_benchmarks,
        experiment_length,
    )
    from repro.experiments.runner import ResultCache, SweepJob, run_sweep

    cache = ResultCache(enabled=False if args.no_cache else None)
    if args.clear_cache:
        removed = ResultCache(enabled=True).clear()
        print(f"cleared {removed} cached result(s)")
        return 0

    progress_out = sys.stderr if args.json else sys.stdout
    if args.resume is not None:
        try:
            if args.resume == "latest":
                manifest = manifests.latest_manifest()
                if manifest is None:
                    print("no incomplete sweep manifest to resume",
                          file=sys.stderr)
                    return 1
            else:
                manifest = manifests.load_manifest(args.resume)
        except manifests.ManifestError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        jobs = manifest.jobs
        print(f"resuming sweep {manifest.sweep_id} "
              f"({len(jobs)} job(s))", flush=True, file=progress_out)
    else:
        benchmarks = args.benchmarks or experiment_benchmarks()
        length = args.instructions or experiment_length()
        sampling_config = _sampling_arg(args)
        sampling = (None if sampling_config is None else
                    (sampling_config.period, sampling_config.unit,
                     sampling_config.warmup))
        jobs = [SweepJob(config_name=config, benchmark=bench,
                         length=length, sampling=sampling,
                         checkpoint=args.checkpoint)
                for config in args.configs for bench in benchmarks]
        manifest = manifests.write_manifest(jobs, options={
            "workers": args.workers, "retries": args.retries,
            "timeout": args.timeout})
        print(f"sweep {manifest.sweep_id} "
              f"(resume with: repro sweep --resume {manifest.sweep_id})",
              flush=True, file=progress_out)

    # Fleet telemetry: on for --attach / --live, or ambiently via
    # REPRO_LIVE — same knobs as a single run, sweep-shaped snapshots.
    from repro.config import LiveConfig
    if args.attach or args.live is not None:
        live_config = (LiveConfig() if args.live in (None, True)
                       else LiveConfig(path=args.live))
    else:
        live_config = LiveConfig.from_env()
    fleet = None
    if live_config is not None:
        from repro.obs.live import SweepFleet
        fleet = SweepFleet(live_config, len(jobs), tag=manifest.sweep_id)
        fleet.publish()  # jobs_total visible to attach before any event
        print(f"fleet telemetry: repro attach {fleet.path}",
              flush=True, file=progress_out)

    done = [0]
    # Progress goes to stderr under --json so stdout stays parseable.

    def progress(job, result, seconds):
        done[0] += 1
        if fleet is not None:
            fleet.note_done(job, result, seconds)
        if not args.attach:
            print(f"  [{done[0]}/{len(jobs)}] {job.describe():40} "
                  f"IPC={result.ipc:.2f}  ({seconds:.1f}s)",
                  flush=True, file=progress_out)

    sweep = functools.partial(
        run_sweep, jobs, workers=args.workers, cache=cache,
        progress=progress, retries=args.retries, timeout=args.timeout,
        cosim=False if args.no_cosim else None,
        observer=None if fleet is None else fleet.observe)
    if args.attach:
        report = _attach_sweep(sweep, fleet, progress_out)
    else:
        report = sweep()
    if fleet is not None:
        fleet.publish_final()
    if not report.failures:
        # Failed sweeps stay incomplete so ``--resume`` retries them.
        manifests.mark_complete(manifest)
    if args.json:
        payload = {
            "results": [_result_payload(result)
                        for job, result in report.results.items()],
            "failures": [failure.describe()
                         for failure in report.failures.values()],
            "summary": report.stats.as_dict(),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 1 if report.failures else 0
    rows = []
    for job in jobs:
        result = report.results.get(job)
        if result is None:
            failure = report.failures.get(job)
            rows.append([job.config_name, job.benchmark,
                         "FAILED" if failure is None
                         else f"FAILED:{failure.error_type}",
                         "-", "-", "-", "-"])
            continue
        row = _result_row(result)
        rows.append([row[0], job.benchmark] + row[1:])
    print(format_table(
        ["front-end", "benchmark", "IPC", "fetch/cyc", "rename/cyc",
         "util", "cycles"], rows))
    print()
    print(report.summary())
    return 1 if report.failures else 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Capture a Chrome/Perfetto event trace of one simulation."""
    from repro.config import ObservabilityConfig, frontend_config
    from repro.obs import Observability, validate_chrome_trace

    obs = Observability(ObservabilityConfig(
        trace=True, trace_limit=args.limit,
        sample_interval=args.sample or 0))
    result = run_simulation(args.config, args.benchmark,
                            max_instructions=args.instructions,
                            warm=not args.cold, observability=obs)
    sequencers = frontend_config(args.config).frontend.sequencers
    payload = obs.export_trace(
        args.output, process_name=f"{args.config}/{args.benchmark}",
        sequencers=sequencers)
    events = validate_chrome_trace(payload)
    print(format_table(
        ["front-end", "IPC", "fetch/cyc", "rename/cyc", "util", "cycles"],
        [_result_row(result)]))
    print()
    print(f"wrote {args.output}: {events} trace events "
          f"({obs.tracer.dropped} dropped at the {args.limit} cap)")
    print("load it in https://ui.perfetto.dev or chrome://tracing")
    if obs.tracer.dropped:
        print(f"warning: trace truncated — {obs.tracer.dropped} event(s) "
              f"dropped at the {args.limit}-event cap; re-run with a "
              f"higher --limit or fewer instructions for a complete trace",
              file=sys.stderr)
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Self-profile one simulation and print per-phase wall-clock time."""
    from repro.config import ObservabilityConfig
    from repro.obs import Observability

    obs = Observability(ObservabilityConfig(
        profile=True, sample_interval=args.sample or 0))
    result = run_simulation(args.config, args.benchmark,
                            max_instructions=args.instructions,
                            warm=not args.cold, observability=obs)
    if args.json:
        payload = _result_payload(result)
        payload["profile"] = obs.profiler.as_dict()
        if obs.metrics is not None:
            payload["metrics"] = obs.metrics.as_dict()
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(format_table(
        ["front-end", "IPC", "fetch/cyc", "rename/cyc", "util", "cycles"],
        [_result_row(result)]))
    print()
    print(obs.profiler.report())
    if obs.metrics is not None:
        print()
        print(obs.metrics.summary_text())
    return 0


def cmd_attach(args: argparse.Namespace) -> int:
    """Attach a live view to a running simulation or service job."""
    import time

    from repro.obs import attach as attach_mod

    server = _parse_server(args.server) if args.server else None
    try:
        source = attach_mod.resolve_source(args.target, server=server)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not args.once:
        return attach_mod.run_tui(source, interval=args.interval)
    deadline = time.monotonic() + args.wait
    while True:
        snapshot, problems = attach_mod.snapshot_once(source)
        if snapshot is not None:
            break
        if time.monotonic() >= deadline:
            print(f"no telemetry at {source.describe} — is the run "
                  f"using REPRO_LIVE=1?", file=sys.stderr)
            source.close()
            return 2
        time.sleep(0.2)
    source.close()
    for problem in problems:
        print(f"schema: {problem}", file=sys.stderr)
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
    else:
        print("\n".join(attach_mod.render_lines(snapshot, [snapshot])))
    return 3 if problems else 0


def _parse_server(text: str):
    """Split a ``HOST:PORT`` (or bare ``HOST`` / ``:PORT``) address."""
    from repro.service import DEFAULT_HOST, DEFAULT_PORT
    if ":" in text:
        host, _, port = text.rpartition(":")
    else:
        host, port = text, ""
    return (host or DEFAULT_HOST,
            int(port) if port else DEFAULT_PORT)


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the sweep job server until SIGINT/SIGTERM or POST /shutdown."""
    import asyncio
    import os
    import signal

    from repro.experiments.runner import parse_cache_budget
    from repro.service import DEFAULT_HOST, DEFAULT_PORT
    from repro.service import ServiceConfig, SweepService

    config = ServiceConfig(
        host=DEFAULT_HOST if args.host is None else args.host,
        port=DEFAULT_PORT if args.port is None else args.port,
        sweep_workers=args.workers,
        max_active=args.max_active, cache_dir=args.cache_dir,
        cache_budget=parse_cache_budget(args.budget),
        journal=not args.no_journal, journal_path=args.journal_path)

    async def main() -> None:
        service = SweepService(config)
        await service.start()
        print(f"repro service listening on "
              f"http://{config.host}:{service.port} (pid {os.getpid()})",
              flush=True)
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, service.request_shutdown)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        await service.serve_forever()
        print("repro service stopped", flush=True)

    asyncio.run(main())
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    """Submit a sweep to a running job server and print its results."""
    import asyncio

    from repro.experiments.common import (
        experiment_benchmarks,
        experiment_length,
    )
    from repro.experiments.runner import SweepJob
    from repro.service import ServiceClient
    from repro.service.protocol import DONE

    host, port = _parse_server(args.server)
    benchmarks = args.benchmarks or experiment_benchmarks()
    length = args.instructions or experiment_length()
    sampling_config = _sampling_arg(args)
    sampling = (None if sampling_config is None else
                (sampling_config.period, sampling_config.unit,
                 sampling_config.warmup))
    jobs = [SweepJob(config_name=config, benchmark=bench, length=length,
                     sampling=sampling)
            for config in args.configs for bench in benchmarks]
    progress_out = sys.stderr if args.json else sys.stdout

    async def main():
        client = ServiceClient(host, port)
        record = await client.submit(jobs, retries=args.retries,
                                     timeout=args.timeout)
        print(f"submitted {record['total']} job(s) as {record['id']} "
              f"to {host}:{port}", flush=True, file=progress_out)
        async for event in client.events(record["id"]):
            if event["type"] == "progress":
                print(f"  [{event['done']}/{event['total']}] "
                      f"{event['job']:40} IPC={event['ipc']:.2f}  "
                      f"({event['seconds']:.1f}s)",
                      flush=True, file=progress_out)
        return await client.status(record["id"], results=True)

    final = asyncio.run(main())
    if args.json:
        print(json.dumps(final, indent=2, sort_keys=True))
        return 0 if final["state"] == DONE and not final["failures"] else 1
    from repro.service.client import result_from_wire
    rows = []
    for job, payload in zip(jobs,
                            final.get("results") or [None] * len(jobs)):
        if payload is None:
            rows.append([job.config_name, job.benchmark, "FAILED",
                         "-", "-", "-", "-"])
            continue
        row = _result_row(result_from_wire(payload))
        rows.append([row[0], job.benchmark] + row[1:])
    print(format_table(
        ["front-end", "benchmark", "IPC", "fetch/cyc", "rename/cyc",
         "util", "cycles"], rows))
    print()
    executed = int((final.get("stats") or {}).get("sweep.executed", 0))
    print("submit summary")
    print(f"  state         {final['state']}")
    print(f"  jobs          {final['total']}")
    print(f"  executed      {executed}")
    print(f"  cached        {final.get('cached', 0)}")
    print(f"  failures      {len(final['failures'])}")
    for failure in final["failures"]:
        print(f"  FAILED  {failure['job']}: {failure['error_type']}: "
              f"{failure['message']}")
    return 0 if final["state"] == DONE and not final["failures"] else 1


def cmd_loadgen(args: argparse.Namespace) -> int:
    """Hammer a running job server and verify the serving guarantees."""
    import asyncio

    from repro.service.loadgen import run_loadgen

    host, port = _parse_server(args.server)
    report = asyncio.run(run_loadgen(
        host=host, port=port, requests=args.requests,
        concurrency=args.concurrency, configs=args.configs,
        benchmarks=args.benchmarks, length=args.instructions,
        seed=args.seed, verify=not args.no_verify,
        cache_dir=args.cache_dir))
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.format_text())
    return 0 if report.ok else 1


def cmd_bench_info(args: argparse.Namespace) -> int:
    """Print static/dynamic characteristics of the suite benchmarks."""
    from repro.workloads.suite import characterize
    rows = []
    for name in args.benchmarks:
        c = characterize(name, args.instructions)
        rows.append([name, c.static_instructions, c.text_bytes / 1024,
                     c.avg_fragment_length,
                     100 * c.cond_branch_fraction,
                     100 * c.indirect_fraction])
    print(format_table(
        ["benchmark", "static insts", "text KB", "avg frag",
         "cond br %", "indirect %"], rows, float_fmt="{:.2f}"))
    return 0


def _add_sampling_flags(parser: argparse.ArgumentParser) -> None:
    """Interval-sampling flags shared by ``run`` and ``sweep``.

    (``--sample`` was already taken by the observability gauge sampler,
    hence ``--sampled``.)
    """
    parser.add_argument("--sampled", nargs="?", const="on", default=None,
                        metavar="PERIOD",
                        help="interval-sampled simulation: detail-simulate "
                             "every PERIOD-th unit (default 16 or "
                             "REPRO_SAMPLE) and fast-forward the gaps "
                             "functionally")
    parser.add_argument("--sample-unit", type=int, default=None,
                        metavar="N",
                        help="instructions per sampling unit "
                             "(default 1000 or REPRO_SAMPLE_UNIT)")
    parser.add_argument("--sample-warmup", type=int, default=None,
                        metavar="N",
                        help="detailed warm-up instructions before each "
                             "measured unit (default 1000 or "
                             "REPRO_SAMPLE_WARMUP)")


def build_parser() -> argparse.ArgumentParser:
    """Build the ``repro`` argparse command-line parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Parallelism in the Front-End' "
                    "(Oberoi & Sohi, ISCA 2003)")
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="simulate one configuration")
    run_p.add_argument("config", choices=ALL_CONFIGS)
    run_p.add_argument("benchmark")
    run_p.add_argument("-n", "--instructions", type=int, default=None)
    run_p.add_argument("--cold", action="store_true",
                       help="skip functional warming")
    run_p.add_argument("--counters", action="store_true",
                       help="dump every raw counter")
    run_p.add_argument("--pipeview", nargs="?", type=int, const=32,
                       default=None, metavar="N",
                       help="render the pipeline diagram of the last N "
                            "committed instructions (default 32)")
    run_p.add_argument("--sample", type=int, default=None, metavar="N",
                       help="sample pipeline gauges every N cycles and "
                            "print the time-series summary")
    run_p.add_argument("--json", action="store_true",
                       help="emit the result as JSON")
    run_p.add_argument("--checkpoint", type=int, default=None, metavar="N",
                       help="write a durable resume checkpoint every N "
                            "committed instructions (default: "
                            "REPRO_CHECKPOINT or off)")
    run_p.add_argument("--live", nargs="?", const=True, default=None,
                       metavar="PATH",
                       help="publish live telemetry for 'repro attach' "
                            "(to PATH, or the default .repro_live/ "
                            "status file; also REPRO_LIVE=1)")
    _add_sampling_flags(run_p)
    run_p.set_defaults(func=cmd_run)

    cmp_p = sub.add_parser("compare", help="compare front-ends")
    cmp_p.add_argument("benchmark")
    cmp_p.add_argument("--configs", nargs="+", default=list(PAPER_CONFIGS),
                       choices=ALL_CONFIGS)
    cmp_p.add_argument("-n", "--instructions", type=int, default=None)
    cmp_p.add_argument("--cold", action="store_true")
    cmp_p.set_defaults(func=cmd_compare)

    fig_p = sub.add_parser("figure",
                           help="regenerate a paper table/figure")
    fig_p.add_argument("name", choices=sorted(FIGURES))
    fig_p.set_defaults(func=cmd_figure)

    sweep_p = sub.add_parser(
        "sweep",
        help="run a configs x benchmarks matrix on the parallel runner")
    sweep_p.add_argument("--configs", nargs="+",
                         default=list(PAPER_CONFIGS), choices=ALL_CONFIGS)
    sweep_p.add_argument("--benchmarks", nargs="+", default=None,
                         choices=BENCHMARK_NAMES)
    sweep_p.add_argument("-n", "--instructions", type=int, default=None)
    sweep_p.add_argument("-j", "--workers", type=int, default=None,
                         help="worker processes "
                              "(default: REPRO_SWEEP_WORKERS or CPU count)")
    sweep_p.add_argument("--no-cache", action="store_true",
                         help="bypass the on-disk result cache")
    sweep_p.add_argument("--no-cosim", action="store_true",
                         help="run grouped jobs back to back instead of "
                              "co-simulating them over one shared stream "
                              "(REPRO_COSIM=0 does the same)")
    sweep_p.add_argument("--clear-cache", action="store_true",
                         help="delete every cached result and exit")
    sweep_p.add_argument("--retries", type=int, default=None,
                         help="retries per failed job "
                              "(default: REPRO_SWEEP_RETRIES or 2)")
    sweep_p.add_argument("--timeout", type=float, default=None,
                         help="per-job wall-clock timeout in seconds; "
                              "0 disables "
                              "(default: REPRO_JOB_TIMEOUT or none)")
    sweep_p.add_argument("--attach", action="store_true",
                         help="render a live fleet table (job states, "
                              "cache hits, retries, ETA) while the "
                              "sweep runs")
    sweep_p.add_argument("--live", nargs="?", const=True, metavar="PATH",
                         default=None,
                         help="publish fleet telemetry for repro attach "
                              "(optional status-file PATH; REPRO_LIVE=1 "
                              "also enables it)")
    sweep_p.add_argument("--json", action="store_true",
                         help="emit results and summary as JSON "
                              "(progress goes to stderr)")
    sweep_p.add_argument("--checkpoint", type=int, default=None,
                         metavar="N",
                         help="per-job durable checkpoints every N "
                              "committed instructions, so --resume "
                              "restarts in-flight jobs mid-stream")
    sweep_p.add_argument("--resume", nargs="?", const="latest",
                         default=None, metavar="SWEEP_ID",
                         help="resume a crashed/killed sweep from its "
                              "manifest (default: the most recent "
                              "incomplete one)")
    _add_sampling_flags(sweep_p)
    sweep_p.set_defaults(func=cmd_sweep)

    trace_p = sub.add_parser(
        "trace",
        help="record a Perfetto-compatible pipeline event trace")
    trace_p.add_argument("config", choices=ALL_CONFIGS)
    trace_p.add_argument("benchmark")
    trace_p.add_argument("-n", "--instructions", type=int, default=2000,
                         help="instructions to simulate (default 2000; "
                              "traces grow fast)")
    trace_p.add_argument("-o", "--output", default="repro-trace.json",
                         help="trace file path (default repro-trace.json)")
    trace_p.add_argument("--limit", type=int, default=200_000,
                         help="maximum trace events (default 200000)")
    trace_p.add_argument("--sample", type=int, default=None, metavar="N",
                         help="also record gauge counter tracks every "
                              "N cycles")
    trace_p.add_argument("--cold", action="store_true",
                         help="skip functional warming")
    trace_p.set_defaults(func=cmd_trace)

    prof_p = sub.add_parser(
        "profile",
        help="attribute simulator wall-clock to pipeline phases")
    prof_p.add_argument("config", choices=ALL_CONFIGS)
    prof_p.add_argument("benchmark")
    prof_p.add_argument("-n", "--instructions", type=int, default=None)
    prof_p.add_argument("--sample", type=int, default=None, metavar="N",
                        help="also sample pipeline gauges every N cycles")
    prof_p.add_argument("--cold", action="store_true",
                        help="skip functional warming")
    prof_p.add_argument("--json", action="store_true",
                        help="emit the result, profile and metrics as "
                             "JSON")
    prof_p.set_defaults(func=cmd_profile)

    attach_p = sub.add_parser(
        "attach",
        help="live view of a running simulation or service job")
    attach_p.add_argument("target",
                          help="status-file path, pid of a REPRO_LIVE "
                               "run, or job id (with --server)")
    attach_p.add_argument("--server", default=None, metavar="HOST:PORT",
                          help="attach to a job on a running job server")
    attach_p.add_argument("--once", action="store_true",
                          help="print the newest snapshot and exit "
                               "instead of opening the TUI")
    attach_p.add_argument("--json", action="store_true",
                          help="with --once: emit the snapshot as JSON")
    attach_p.add_argument("--wait", type=float, default=0.0, metavar="S",
                          help="with --once: wait up to S seconds for a "
                               "first snapshot (default 0)")
    attach_p.add_argument("--interval", type=float, default=0.5,
                          metavar="S",
                          help="TUI refresh interval in seconds "
                               "(default 0.5)")
    attach_p.set_defaults(func=cmd_attach)

    serve_p = sub.add_parser(
        "serve",
        help="run the async sweep job server (simulation-as-a-service)")
    serve_p.add_argument("--host", default=None,
                         help="bind address (default 127.0.0.1)")
    serve_p.add_argument("--port", type=int, default=None,
                         help="bind port (default 8023; 0 = ephemeral)")
    serve_p.add_argument("-j", "--workers", type=int, default=None,
                         help="worker processes per sweep "
                              "(default: REPRO_SWEEP_WORKERS or CPU count)")
    serve_p.add_argument("--max-active", type=int, default=2,
                         help="concurrent sweeps in flight (default 2)")
    serve_p.add_argument("--cache-dir", default=None,
                         help="result-cache directory "
                              "(default: REPRO_CACHE_DIR or .repro_cache)")
    serve_p.add_argument("--budget", default=None, metavar="BYTES",
                         help="cache size budget, e.g. 256M "
                              "(default: REPRO_CACHE_BUDGET or unlimited)")
    serve_p.add_argument("--no-journal", action="store_true",
                         help="disable the durable job journal (jobs "
                              "are forgotten on restart)")
    serve_p.add_argument("--journal-path", default=None, metavar="PATH",
                         help="journal file override (default: "
                              "<cache dir>/service/journal.ndjson)")
    serve_p.set_defaults(func=cmd_serve)

    submit_p = sub.add_parser(
        "submit",
        help="submit a sweep to a running job server")
    submit_p.add_argument("--server", default="127.0.0.1",
                          metavar="HOST:PORT",
                          help="server address (default 127.0.0.1:8023)")
    submit_p.add_argument("--configs", nargs="+",
                          default=list(PAPER_CONFIGS), choices=ALL_CONFIGS)
    submit_p.add_argument("--benchmarks", nargs="+", default=None,
                          choices=BENCHMARK_NAMES)
    submit_p.add_argument("-n", "--instructions", type=int, default=None)
    submit_p.add_argument("--retries", type=int, default=None,
                          help="server-side retries per failed job")
    submit_p.add_argument("--timeout", type=float, default=None,
                          help="server-side per-job timeout in seconds")
    submit_p.add_argument("--json", action="store_true",
                          help="emit the final job record as JSON "
                               "(progress goes to stderr)")
    _add_sampling_flags(submit_p)
    submit_p.set_defaults(func=cmd_submit)

    loadgen_p = sub.add_parser(
        "loadgen",
        help="fire concurrent requests at a running job server and "
             "verify the serving guarantees")
    loadgen_p.add_argument("--server", default="127.0.0.1",
                           metavar="HOST:PORT",
                           help="server address (default 127.0.0.1:8023)")
    loadgen_p.add_argument("--requests", type=int, default=1000,
                           help="request mix size (default 1000)")
    loadgen_p.add_argument("--concurrency", type=int, default=64,
                           help="in-flight request cap (default 64)")
    loadgen_p.add_argument("--configs", nargs="+",
                           default=["w16", "tc", "pf-2x8w", "pr-2x8w"],
                           choices=ALL_CONFIGS)
    loadgen_p.add_argument("--benchmarks", nargs="+",
                           default=["gzip", "mcf"],
                           choices=BENCHMARK_NAMES)
    loadgen_p.add_argument("-n", "--instructions", type=int, default=4000)
    loadgen_p.add_argument("--seed", type=int, default=0,
                           help="request-mix RNG seed (default 0)")
    loadgen_p.add_argument("--no-verify", action="store_true",
                           help="skip the serial bit-identity check")
    loadgen_p.add_argument("--cache-dir", default=None,
                           help="server cache directory to audit "
                                "against its budget (local servers)")
    loadgen_p.add_argument("--json", action="store_true",
                           help="emit the load report as JSON")
    loadgen_p.set_defaults(func=cmd_loadgen)

    info_p = sub.add_parser("bench-info",
                            help="synthetic suite characteristics")
    info_p.add_argument("--benchmarks", nargs="+",
                        default=list(BENCHMARK_NAMES),
                        choices=BENCHMARK_NAMES)
    info_p.add_argument("-n", "--instructions", type=int, default=10_000)
    info_p.set_defaults(func=cmd_bench_info)
    return parser


def main(argv=None) -> int:
    """CLI entry point: parse arguments and dispatch to a subcommand."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
