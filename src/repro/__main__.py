"""Command-line interface: ``python -m repro``.

Subcommands:

* ``run`` — simulate one (front-end, benchmark) pair and print metrics;
* ``compare`` — run several front-ends on one benchmark side by side;
* ``figure`` — regenerate one of the paper's tables/figures;
* ``sweep`` — run a (configs x benchmarks) matrix on the parallel runner
  with the persistent result cache, printing progress and a summary;
* ``bench-info`` — show the synthetic suite's characteristics (Table 2).
"""

from __future__ import annotations

import argparse
import sys

from repro import PAPER_CONFIGS, run_simulation
from repro.stats import format_table
from repro.workloads.suite import BENCHMARK_NAMES

ALL_CONFIGS = list(PAPER_CONFIGS) + ["tc+pr-2x8w", "tc+pr-4x4w"]

FIGURES = {
    "table1": lambda ex: ex.table1(),
    "table2": lambda ex: ex.format_table2(ex.table2()),
    "fig4": lambda ex: ex.format_figure4(ex.figure4()),
    "fig5": lambda ex: ex.format_figure5(ex.figure5()),
    "fig6": lambda ex: ex.format_figure6(ex.figure6()),
    "fig7": lambda ex: ex.format_figure7(ex.figure7()),
    "fig8": lambda ex: ex.format_figure8(ex.figure8()),
    "fig9": lambda ex: ex.format_figure9(ex.figure9()),
    "fig10": lambda ex: ex.format_figure10(ex.figure10()),
    "text": lambda ex: ex.format_text_statistics(ex.text_statistics()),
}


def _result_row(result):
    return [result.config_name, result.ipc, result.fetch_rate,
            result.rename_rate, result.slot_utilization, result.cycles]


def cmd_run(args: argparse.Namespace) -> int:
    result = run_simulation(args.config, args.benchmark,
                            max_instructions=args.instructions,
                            warm=not args.cold)
    print(format_table(
        ["front-end", "IPC", "fetch/cyc", "rename/cyc", "util", "cycles"],
        [_result_row(result)]))
    if args.counters:
        print()
        for name, value in sorted(result.counters.items()):
            print(f"{name:45} {value:14.0f}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    rows = []
    for config in args.configs:
        result = run_simulation(config, args.benchmark,
                                max_instructions=args.instructions,
                                warm=not args.cold)
        rows.append(_result_row(result))
    print(format_table(
        ["front-end", "IPC", "fetch/cyc", "rename/cyc", "util", "cycles"],
        rows))
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    from repro import experiments
    print(FIGURES[args.name](experiments))
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.common import (
        experiment_benchmarks,
        experiment_length,
    )
    from repro.experiments.runner import ResultCache, SweepJob, run_sweep

    cache = ResultCache(enabled=False if args.no_cache else None)
    if args.clear_cache:
        removed = ResultCache(enabled=True).clear()
        print(f"cleared {removed} cached result(s)")
        return 0

    benchmarks = args.benchmarks or experiment_benchmarks()
    length = args.instructions or experiment_length()
    jobs = [SweepJob(config_name=config, benchmark=bench, length=length)
            for config in args.configs for bench in benchmarks]

    done = [0]

    def progress(job, result, seconds):
        done[0] += 1
        print(f"  [{done[0]}/{len(jobs)}] {job.describe():40} "
              f"IPC={result.ipc:.2f}  ({seconds:.1f}s)", flush=True)

    report = run_sweep(jobs, workers=args.workers, cache=cache,
                       progress=progress, retries=args.retries,
                       timeout=args.timeout)
    rows = []
    for config in args.configs:
        for bench in benchmarks:
            job = SweepJob(config_name=config, benchmark=bench,
                           length=length)
            result = report.results.get(job)
            if result is None:
                failure = report.failures.get(job)
                rows.append([config, bench,
                             "FAILED" if failure is None
                             else f"FAILED:{failure.error_type}",
                             "-", "-", "-", "-"])
                continue
            row = _result_row(result)
            rows.append([row[0], bench] + row[1:])
    print(format_table(
        ["front-end", "benchmark", "IPC", "fetch/cyc", "rename/cyc",
         "util", "cycles"], rows))
    print()
    print(report.summary())
    return 1 if report.failures else 0


def cmd_bench_info(args: argparse.Namespace) -> int:
    from repro.workloads.suite import characterize
    rows = []
    for name in args.benchmarks:
        c = characterize(name, args.instructions)
        rows.append([name, c.static_instructions, c.text_bytes / 1024,
                     c.avg_fragment_length,
                     100 * c.cond_branch_fraction,
                     100 * c.indirect_fraction])
    print(format_table(
        ["benchmark", "static insts", "text KB", "avg frag",
         "cond br %", "indirect %"], rows, float_fmt="{:.2f}"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Parallelism in the Front-End' "
                    "(Oberoi & Sohi, ISCA 2003)")
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="simulate one configuration")
    run_p.add_argument("config", choices=ALL_CONFIGS)
    run_p.add_argument("benchmark")
    run_p.add_argument("-n", "--instructions", type=int, default=None)
    run_p.add_argument("--cold", action="store_true",
                       help="skip functional warming")
    run_p.add_argument("--counters", action="store_true",
                       help="dump every raw counter")
    run_p.set_defaults(func=cmd_run)

    cmp_p = sub.add_parser("compare", help="compare front-ends")
    cmp_p.add_argument("benchmark")
    cmp_p.add_argument("--configs", nargs="+", default=list(PAPER_CONFIGS),
                       choices=ALL_CONFIGS)
    cmp_p.add_argument("-n", "--instructions", type=int, default=None)
    cmp_p.add_argument("--cold", action="store_true")
    cmp_p.set_defaults(func=cmd_compare)

    fig_p = sub.add_parser("figure",
                           help="regenerate a paper table/figure")
    fig_p.add_argument("name", choices=sorted(FIGURES))
    fig_p.set_defaults(func=cmd_figure)

    sweep_p = sub.add_parser(
        "sweep",
        help="run a configs x benchmarks matrix on the parallel runner")
    sweep_p.add_argument("--configs", nargs="+",
                         default=list(PAPER_CONFIGS), choices=ALL_CONFIGS)
    sweep_p.add_argument("--benchmarks", nargs="+", default=None,
                         choices=BENCHMARK_NAMES)
    sweep_p.add_argument("-n", "--instructions", type=int, default=None)
    sweep_p.add_argument("-j", "--workers", type=int, default=None,
                         help="worker processes "
                              "(default: REPRO_SWEEP_WORKERS or CPU count)")
    sweep_p.add_argument("--no-cache", action="store_true",
                         help="bypass the on-disk result cache")
    sweep_p.add_argument("--clear-cache", action="store_true",
                         help="delete every cached result and exit")
    sweep_p.add_argument("--retries", type=int, default=None,
                         help="retries per failed job "
                              "(default: REPRO_SWEEP_RETRIES or 2)")
    sweep_p.add_argument("--timeout", type=float, default=None,
                         help="per-job wall-clock timeout in seconds; "
                              "0 disables "
                              "(default: REPRO_JOB_TIMEOUT or none)")
    sweep_p.set_defaults(func=cmd_sweep)

    info_p = sub.add_parser("bench-info",
                            help="synthetic suite characteristics")
    info_p.add_argument("--benchmarks", nargs="+",
                        default=list(BENCHMARK_NAMES),
                        choices=BENCHMARK_NAMES)
    info_p.add_argument("-n", "--instructions", type=int, default=10_000)
    info_p.set_defaults(func=cmd_bench_info)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
