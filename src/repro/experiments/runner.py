"""Parallel sweep executor with a persistent on-disk result cache.

Every figure in the reproduction is a matrix of independent
``(configuration, benchmark, length, overrides)`` simulations, which makes
the experiment layer embarrassingly parallel.  This module provides the
machinery the rest of :mod:`repro.experiments` runs on:

* :class:`SweepJob` — a picklable, hashable description of one simulation
  (named configuration plus the override knobs the experiments use);
* :class:`ResultCache` — a content-addressed JSON-per-result disk cache
  under ``.repro_cache/`` (override with ``REPRO_CACHE_DIR``, disable
  with ``REPRO_NO_CACHE``), keyed by a digest of the *resolved* processor
  configuration plus the job parameters and a cache-schema version, so
  stale entries are never served across config or format changes;
* :func:`run_sweep` — fans pending jobs out over a ``multiprocessing``
  pool (``REPRO_SWEEP_WORKERS`` sets the default width) and merges the
  results back in job order, so a parallel sweep is counter-for-counter
  identical to a serial one;
* :func:`run_job` — the single-job path (disk cache + execute) that the
  in-process memo in :mod:`repro.experiments.common` layers on top of.

Observability: each sweep produces a :class:`SweepReport` whose
:class:`~repro.stats.StatsCollector` carries job counts, cache hit/miss
counters, per-job and total wall-clock timing and worker utilization;
the same counters accumulate process-wide in :data:`SWEEP_STATS`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    MutableMapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.config import ProcessorConfig, frontend_config
from repro.core.simulation import SimulationResult, run_simulation
from repro.stats import StatsCollector

#: Bump whenever the cached payload format *or* anything that invalidates
#: old results (simulation semantics, counter meanings) changes.
CACHE_SCHEMA_VERSION = 1

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro_cache"

CACHE_DIR_ENV = "REPRO_CACHE_DIR"
NO_CACHE_ENV = "REPRO_NO_CACHE"
WORKERS_ENV = "REPRO_SWEEP_WORKERS"

#: Process-wide accumulation of every sweep's counters (tests and the CLI
#: read this to verify e.g. that a warm-cache sweep executed nothing).
SWEEP_STATS = StatsCollector()


# ---------------------------------------------------------------------------
# Job description


@dataclass(frozen=True)
class SweepJob:
    """One simulation of the experiment matrix, described by value.

    Only primitives — the job must be picklable for the worker pool and
    hashable for the in-process memo.  ``overrides`` is a tuple of
    ``(dotted.path, value)`` pairs applied to the resolved
    :class:`~repro.config.ProcessorConfig` with ``dataclasses.replace``
    (e.g. ``("frontend.num_fragment_buffers", 32)``).
    """

    config_name: str
    benchmark: str
    length: int
    total_l1_storage: Optional[int] = None
    predictor_entries: Optional[int] = None
    overrides: Tuple[Tuple[str, Any], ...] = ()
    warm: bool = True
    #: Display name recorded in the result (defaults to ``config_name``).
    label: Optional[str] = None

    def build_config(self) -> ProcessorConfig:
        """Resolve the named configuration and apply every override."""
        config = frontend_config(self.config_name,
                                 total_l1_storage=self.total_l1_storage)
        if self.predictor_entries is not None:
            config = config.replace(
                trace_predictor=config.trace_predictor.scaled(
                    self.predictor_entries))
        for path, value in self.overrides:
            config = _replace_path(config, path.split("."), value)
        return config

    def cache_key(self) -> str:
        """Content-addressed cache key for this job.

        Includes a digest of the fully resolved configuration, so cached
        results go stale automatically when configuration defaults (or
        the meaning of a named configuration) change between versions.
        """
        config_digest = hashlib.sha256(
            repr(self.build_config()).encode()).hexdigest()
        payload = json.dumps({
            "schema": CACHE_SCHEMA_VERSION,
            "config_name": self.config_name,
            "benchmark": self.benchmark,
            "length": self.length,
            "total_l1_storage": self.total_l1_storage,
            "predictor_entries": self.predictor_entries,
            "overrides": [[path, value] for path, value in self.overrides],
            "warm": self.warm,
            "label": self.label,
            "config_digest": config_digest,
        }, sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()

    def describe(self) -> str:
        parts = [self.label or self.config_name, self.benchmark,
                 f"n={self.length}"]
        if self.total_l1_storage is not None:
            parts.append(f"l1={self.total_l1_storage // 1024}KB")
        if self.predictor_entries is not None:
            parts.append(f"pred={self.predictor_entries}")
        for path, value in self.overrides:
            parts.append(f"{path}={value}")
        if not self.warm:
            parts.append("cold")
        return "/".join(parts)


def _replace_path(obj, parts: List[str], value):
    """Functional update of a nested dataclass field by dotted path."""
    if len(parts) == 1:
        return dataclasses.replace(obj, **{parts[0]: value})
    child = _replace_path(getattr(obj, parts[0]), parts[1:], value)
    return dataclasses.replace(obj, **{parts[0]: child})


# ---------------------------------------------------------------------------
# Disk cache


class ResultCache:
    """Content-addressed JSON-per-result cache under one directory.

    Each entry is a single ``<key>.json`` file holding the schema version,
    a human-readable description of the job, and the full result payload.
    Writes are atomic (temp file + rename) so concurrent workers and
    interrupted sweeps never leave a torn entry.
    """

    def __init__(self, directory: Optional[os.PathLike] = None,
                 enabled: Optional[bool] = None) -> None:
        if directory is None:
            directory = os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)
        self.directory = Path(directory)
        if enabled is None:
            enabled = not os.environ.get(NO_CACHE_ENV)
        self.enabled = enabled

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def load(self, key: str) -> Optional[SimulationResult]:
        """The cached result for *key*, or None (miss / disabled / stale)."""
        if not self.enabled:
            return None
        try:
            payload = json.loads(self._path(key).read_text())
        except (OSError, ValueError):
            return None
        if payload.get("schema") != CACHE_SCHEMA_VERSION:
            return None
        return _result_from_payload(payload["result"])

    def store(self, key: str, job: SweepJob,
              result: SimulationResult) -> None:
        if not self.enabled:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "job": job.describe(),
            "result": _result_to_payload(result),
        }
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload, sort_keys=True, indent=1))
        os.replace(tmp, path)

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                path.unlink()
                removed += 1
        return removed

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))


def _result_to_payload(result: SimulationResult) -> Dict[str, Any]:
    return {
        "benchmark": result.benchmark,
        "config_name": result.config_name,
        "cycles": result.cycles,
        "committed": result.committed,
        "counters": dict(result.counters),
    }


def _result_from_payload(payload: Dict[str, Any]) -> SimulationResult:
    return SimulationResult(
        benchmark=payload["benchmark"],
        config_name=payload["config_name"],
        cycles=payload["cycles"],
        committed=payload["committed"],
        counters={name: float(value)
                  for name, value in payload["counters"].items()},
    )


# ---------------------------------------------------------------------------
# Execution


def _execute_job(job: SweepJob) -> Tuple[Dict[str, Any], float]:
    """Run one job (worker-side); returns (result payload, seconds).

    Runs in a pool worker for parallel sweeps and inline for serial ones —
    the exact same code path, which is what makes parallel output
    bit-identical to serial.
    """
    start = time.perf_counter()
    result = run_simulation(job.build_config(), job.benchmark,
                            max_instructions=job.length,
                            config_name=job.label or job.config_name,
                            warm=job.warm)
    return _result_to_payload(result), time.perf_counter() - start


def default_workers() -> int:
    """Worker-pool width: ``REPRO_SWEEP_WORKERS`` or the CPU count."""
    override = os.environ.get(WORKERS_ENV)
    if override:
        return max(1, int(override))
    return os.cpu_count() or 1


@dataclass
class SweepReport:
    """Results plus observability for one :func:`run_sweep` call."""

    jobs: List[SweepJob]
    results: Dict[SweepJob, SimulationResult]
    stats: StatsCollector = field(default_factory=StatsCollector)
    job_seconds: Dict[SweepJob, float] = field(default_factory=dict)

    @property
    def executed(self) -> int:
        return int(self.stats.get("sweep.executed"))

    @property
    def cache_hits(self) -> int:
        return int(self.stats.get("sweep.memo_hits")
                   + self.stats.get("sweep.disk_hits"))

    def summary(self) -> str:
        stats = self.stats
        lines = [
            f"jobs          {int(stats.get('sweep.jobs'))}",
            f"memo hits     {int(stats.get('sweep.memo_hits'))}",
            f"disk hits     {int(stats.get('sweep.disk_hits'))}",
            f"executed      {int(stats.get('sweep.executed'))}",
            f"workers       {int(stats.get('sweep.workers'))}",
            f"wall seconds  {stats.get('sweep.wall_seconds'):.2f}",
            f"job seconds   {stats.get('sweep.exec_seconds'):.2f}",
            f"utilization   {stats.get('sweep.utilization'):.2f}",
        ]
        return "sweep summary\n" + "\n".join("  " + line for line in lines)


def run_job(job: SweepJob,
            cache: Optional[ResultCache] = None,
            stats: Optional[StatsCollector] = None) -> SimulationResult:
    """Run one job through the disk cache (the serial, single-job path)."""
    cache = cache if cache is not None else ResultCache()
    key = job.cache_key()
    cached = cache.load(key)
    for collector in (stats, SWEEP_STATS):
        if collector is not None:
            collector.add("sweep.jobs")
            collector.add("sweep.disk_hits" if cached is not None
                          else "sweep.executed")
    if cached is not None:
        return cached
    payload, seconds = _execute_job(job)
    result = _result_from_payload(payload)
    cache.store(key, job, result)
    for collector in (stats, SWEEP_STATS):
        if collector is not None:
            collector.add("sweep.exec_seconds", seconds)
    return result


def run_sweep(jobs: Sequence[SweepJob],
              workers: Optional[int] = None,
              memo: Optional[MutableMapping[SweepJob,
                                            SimulationResult]] = None,
              cache: Optional[ResultCache] = None,
              progress: Optional[Callable[[SweepJob, SimulationResult,
                                           float], None]] = None
              ) -> SweepReport:
    """Run every job, fanning cache misses out over a process pool.

    Results are merged back in job order, so the report is deterministic
    regardless of worker scheduling.  The lookup order per job is:

    1. *memo* — the caller's in-process L1 (e.g. the experiment-layer
       memo), consulted and updated in place when given;
    2. the on-disk :class:`ResultCache` (L2, persistent across processes);
    3. execution — inline for one pending job or ``workers == 1``,
       otherwise over ``multiprocessing.Pool(workers)``.
    """
    start = time.perf_counter()
    stats = StatsCollector()
    report = SweepReport(jobs=list(jobs), results={}, stats=stats)
    stats.add("sweep.jobs", len(report.jobs))

    cache = cache if cache is not None else ResultCache()
    unique: List[SweepJob] = []
    seen = set()
    for job in report.jobs:
        if job not in seen:
            seen.add(job)
            unique.append(job)

    pending: List[SweepJob] = []
    for job in unique:
        if memo is not None and job in memo:
            stats.add("sweep.memo_hits")
            report.results[job] = memo[job]
            continue
        cached = cache.load(job.cache_key())
        if cached is not None:
            stats.add("sweep.disk_hits")
            report.results[job] = cached
            if memo is not None:
                memo[job] = cached
            continue
        pending.append(job)

    workers = workers if workers is not None else default_workers()
    workers = max(1, min(workers, len(pending)) if pending else 1)
    stats.add("sweep.executed", len(pending))
    stats.set("sweep.workers", workers)

    if pending:
        if workers == 1:
            outcomes: Iterable = map(_execute_job, pending)
        else:
            pool = multiprocessing.Pool(workers)
            try:
                # imap (ordered) keeps the merge deterministic while
                # letting `progress` fire as jobs finish.
                outcomes = pool.imap(_execute_job, pending)
                outcomes = list(outcomes)
            finally:
                pool.close()
                pool.join()
        for job, (payload, seconds) in zip(pending, outcomes):
            result = _result_from_payload(payload)
            cache.store(job.cache_key(), job, result)
            report.results[job] = result
            report.job_seconds[job] = seconds
            stats.add("sweep.exec_seconds", seconds)
            if memo is not None:
                memo[job] = result
            if progress is not None:
                progress(job, result, seconds)

    wall = time.perf_counter() - start
    stats.set("sweep.wall_seconds", wall)
    if pending and wall > 0:
        stats.set("sweep.utilization",
                  stats.get("sweep.exec_seconds") / (workers * wall))
    SWEEP_STATS.merge(stats)
    return report


# ---------------------------------------------------------------------------
# Generic helper for non-simulation fan-out (e.g. Table 2 characterization)


def parallel_map(fn: Callable, items: Sequence,
                 workers: Optional[int] = None) -> List:
    """Order-preserving parallel map over a process pool.

    *fn* must be picklable (module-level).  Falls back to a plain map for
    one worker or one item, keeping results identical either way.
    """
    items = list(items)
    workers = workers if workers is not None else default_workers()
    workers = max(1, min(workers, len(items)) if items else 1)
    if workers == 1:
        return [fn(item) for item in items]
    pool = multiprocessing.Pool(workers)
    try:
        return pool.map(fn, items)
    finally:
        pool.close()
        pool.join()
