"""Parallel sweep executor with a persistent on-disk result cache.

Every figure in the reproduction is a matrix of independent
``(configuration, benchmark, length, overrides)`` simulations, which makes
the experiment layer embarrassingly parallel.  This module provides the
machinery the rest of :mod:`repro.experiments` runs on:

* :class:`SweepJob` — a picklable, hashable description of one simulation
  (named configuration plus the override knobs the experiments use);
* :class:`ResultCache` — a content-addressed JSON-per-result disk cache
  under ``.repro_cache/`` (override with ``REPRO_CACHE_DIR``, disable
  with ``REPRO_NO_CACHE``), keyed by a digest of the *resolved* processor
  configuration plus the job parameters and a cache-schema version, so
  stale entries are never served across config or format changes;
* :func:`run_sweep` — fans pending jobs out over a ``multiprocessing``
  pool (``REPRO_SWEEP_WORKERS`` sets the default width) and merges the
  results back in job order, so a parallel sweep is counter-for-counter
  identical to a serial one.  Jobs sharing an oracle stream — same
  ``(benchmark, length, warm)`` — are grouped onto one worker by
  default (``REPRO_SWEEP_GROUP=0`` disables, ``group_streams=``
  overrides), so each group pays stream emulation and warm-snapshot
  training once instead of once per scattered worker;
* :func:`run_job` — the single-job path (disk cache + execute) that the
  in-process memo in :mod:`repro.experiments.common` layers on top of.

Fault tolerance: a sweep survives individual job failures.  Each job
gets a wall-clock timeout (``REPRO_JOB_TIMEOUT`` / ``--timeout``; a
crashed worker whose result silently never arrives is bounded by the
same mechanism), bounded retries with exponential backoff
(``REPRO_SWEEP_RETRIES`` / ``--retries``, ``REPRO_SWEEP_BACKOFF``), and
failed pool jobs are re-executed inline in the parent.  When
``multiprocessing`` is unavailable or the pool cannot be created, the
sweep degrades to serial execution instead of crashing.  Jobs that
still fail after every retry become structured :class:`JobFailure`
records on the report (``SweepReport.failures``) rather than a
sweep-wide exception; callers that need all results call
:meth:`SweepReport.raise_failures`.  Pools are context-managed and
terminated on the error path, so a failing sweep never leaks or hangs
on stuck workers.

Observability: each sweep produces a :class:`SweepReport` whose
:class:`~repro.stats.StatsCollector` carries job counts, cache hit/miss
counters, per-job and total wall-clock timing, worker utilization and
the failure/recovery counters (``sweep.retries``, ``sweep.timeouts``,
``sweep.worker_errors``, ``sweep.failures``, ``sweep.recovered``,
``sweep.degraded``, ``sweep.cache_corrupt``); the same counters
accumulate process-wide in :data:`SWEEP_STATS`.  Deterministic fault
injection for all of these paths lives in :mod:`repro.faults`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    MutableMapping,
    Optional,
    Sequence,
    Tuple,
)

from repro import faults
from repro.config import ProcessorConfig, env_flag, frontend_config
from repro.core.simulation import SimulationResult, run_simulation
from repro.sampling.engine import SamplingConfig
from repro.errors import SweepError
from repro.stats import StatsCollector, ThreadSafeStatsCollector

#: Bump whenever the cached payload format *or* anything that invalidates
#: old results (simulation semantics, counter meanings) changes.
CACHE_SCHEMA_VERSION = 1

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro_cache"

CACHE_DIR_ENV = "REPRO_CACHE_DIR"
NO_CACHE_ENV = "REPRO_NO_CACHE"
WORKERS_ENV = "REPRO_SWEEP_WORKERS"
GROUP_ENV = "REPRO_SWEEP_GROUP"
COSIM_ENV = "REPRO_COSIM"
RETRIES_ENV = "REPRO_SWEEP_RETRIES"
TIMEOUT_ENV = "REPRO_JOB_TIMEOUT"
BACKOFF_ENV = "REPRO_SWEEP_BACKOFF"
CACHE_BUDGET_ENV = "REPRO_CACHE_BUDGET"
CACHE_TMP_TTL_ENV = "REPRO_CACHE_TMP_TTL"

#: Age (seconds) past which an orphaned ``.tmp`` write is considered
#: dead and reaped (``REPRO_CACHE_TMP_TTL``).  Generous: no legitimate
#: atomic write stays in flight for 10 minutes.
DEFAULT_TMP_TTL = 600.0

#: Stale-tmp sweeps on cache open are rate-limited to once per directory
#: per this many seconds per process (opening a cache is frequent and
#: cheap; directory scans should not be).
_REAP_INTERVAL = 60.0

#: Retries per job after its first attempt (``REPRO_SWEEP_RETRIES``).
DEFAULT_RETRIES = 2

#: Base of the exponential retry backoff, seconds (doubles per retry).
DEFAULT_BACKOFF = 0.05

#: Bounded wait for a pool result when no explicit job timeout is set.
#: A worker that dies mid-job (OOM kill, segfault) loses its task
#: *silently* — the pool repopulates but the result never arrives — so
#: some bound must always exist or a single crash hangs the sweep.
CRASH_GUARD_SECONDS = 600.0

#: Process-wide accumulation of every sweep's counters (tests and the CLI
#: read this to verify e.g. that a warm-cache sweep executed nothing).
#: Thread-safe: the job server merges into it from concurrent executor
#: threads, and the cache layer bumps it from the serving read path.
SWEEP_STATS = ThreadSafeStatsCollector()


def parse_cache_budget(text: Optional[str]) -> Optional[int]:
    """Parse a cache size budget like ``"256M"`` into bytes.

    Accepts a plain byte count or a ``K``/``M``/``G`` suffix (powers of
    1024, case-insensitive, optional trailing ``B``).  Returns None for
    an unset/empty/zero value (no budget).
    """
    if not text:
        return None
    raw = text.strip().upper()
    if raw.endswith("B"):
        raw = raw[:-1]
    scale = 1
    if raw and raw[-1] in "KMG":
        scale = 1024 ** ("KMG".index(raw[-1]) + 1)
        raw = raw[:-1]
    try:
        value = int(float(raw) * scale)
    except ValueError:
        raise ValueError(f"unparseable cache budget {text!r} "
                         "(expected bytes or K/M/G suffix)")
    return value if value > 0 else None


def default_cache_budget() -> Optional[int]:
    """Cache size budget in bytes: ``REPRO_CACHE_BUDGET`` or none."""
    return parse_cache_budget(os.environ.get(CACHE_BUDGET_ENV))


def default_tmp_ttl() -> float:
    """Orphaned-tmp age gate in seconds: ``REPRO_CACHE_TMP_TTL``."""
    override = os.environ.get(CACHE_TMP_TTL_ENV)
    if override:
        return max(0.0, float(override))
    return DEFAULT_TMP_TTL


#: Monotonic per-process discriminator for in-flight tmp writes, so two
#: threads storing the same key from one process never share a tmp file.
_TMP_SEQ = itertools.count()

#: Directory -> monotonic time of the last open-path stale-tmp sweep.
_LAST_REAP: Dict[str, float] = {}


# ---------------------------------------------------------------------------
# Job description


@dataclass(frozen=True)
class SweepJob:
    """One simulation of the experiment matrix, described by value.

    Only primitives — the job must be picklable for the worker pool and
    hashable for the in-process memo.  ``overrides`` is a tuple of
    ``(dotted.path, value)`` pairs applied to the resolved
    :class:`~repro.config.ProcessorConfig` with ``dataclasses.replace``
    (e.g. ``("frontend.num_fragment_buffers", 32)``).
    """

    config_name: str
    benchmark: str
    length: int
    total_l1_storage: Optional[int] = None
    predictor_entries: Optional[int] = None
    overrides: Tuple[Tuple[str, Any], ...] = ()
    warm: bool = True
    #: Display name recorded in the result (defaults to ``config_name``).
    label: Optional[str] = None
    #: Interval sampling as a ``(period, unit, warmup)`` tuple, or None
    #: for full detail.  Explicit-by-value (never env-resolved in the
    #: worker) so the content-addressed cache key always matches what
    #: actually ran.
    sampling: Optional[Tuple[int, int, int]] = None
    #: Durable checkpoint interval in committed instructions, or None
    #: for no checkpointing (see :mod:`repro.checkpoint`).  Explicit-by-
    #: value like ``sampling``: checkpoint boundaries drain the pipeline,
    #: so the cadence is part of the result's identity and must never be
    #: resolved from a worker's environment.
    checkpoint: Optional[int] = None

    def build_config(self) -> ProcessorConfig:
        """Resolve the named configuration and apply every override."""
        config = frontend_config(self.config_name,
                                 total_l1_storage=self.total_l1_storage)
        if self.predictor_entries is not None:
            config = config.replace(
                trace_predictor=config.trace_predictor.scaled(
                    self.predictor_entries))
        for path, value in self.overrides:
            config = _replace_path(config, path.split("."), value)
        return config

    def cache_key(self) -> str:
        """Content-addressed cache key for this job.

        Includes a digest of the fully resolved configuration, so cached
        results go stale automatically when configuration defaults (or
        the meaning of a named configuration) change between versions.
        """
        config_digest = hashlib.sha256(
            repr(self.build_config()).encode()).hexdigest()
        fields = {
            "schema": CACHE_SCHEMA_VERSION,
            "config_name": self.config_name,
            "benchmark": self.benchmark,
            "length": self.length,
            "total_l1_storage": self.total_l1_storage,
            "predictor_entries": self.predictor_entries,
            "overrides": [[path, value] for path, value in self.overrides],
            "warm": self.warm,
            "label": self.label,
            "config_digest": config_digest,
        }
        if self.sampling is not None:
            # Only sampled jobs carry the field, so every pre-existing
            # full-detail cache entry keeps its key.
            fields["sampling"] = list(self.sampling)
        if self.checkpoint is not None:
            # Same back-compat pattern: full-detail checkpoint boundaries
            # drain the pipeline, so the cadence changes the (still
            # deterministic) schedule and therefore the result identity.
            fields["checkpoint"] = self.checkpoint
        payload = json.dumps(fields, sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()

    def describe(self) -> str:
        """Human-readable one-line description of the job."""
        parts = [self.label or self.config_name, self.benchmark,
                 f"n={self.length}"]
        if self.total_l1_storage is not None:
            parts.append(f"l1={self.total_l1_storage // 1024}KB")
        if self.predictor_entries is not None:
            parts.append(f"pred={self.predictor_entries}")
        for path, value in self.overrides:
            parts.append(f"{path}={value}")
        if not self.warm:
            parts.append("cold")
        if self.sampling is not None:
            period, unit, warmup = self.sampling
            parts.append(f"sampled={period}x{unit}+{warmup}")
        if self.checkpoint is not None:
            parts.append(f"ckpt={self.checkpoint}")
        return "/".join(parts)


def _replace_path(obj, parts: List[str], value):
    """Functional update of a nested dataclass field by dotted path."""
    if len(parts) == 1:
        return dataclasses.replace(obj, **{parts[0]: value})
    child = _replace_path(getattr(obj, parts[0]), parts[1:], value)
    return dataclasses.replace(obj, **{parts[0]: child})


# ---------------------------------------------------------------------------
# Disk cache


class ResultCache:
    """Content-addressed JSON-per-result cache under one directory.

    Each entry is a single ``<key>.json`` file holding the schema version,
    a human-readable description of the job, and the full result payload.
    Writes are atomic (temp file + rename) so concurrent workers and
    interrupted sweeps never leave a torn entry.

    A corrupt entry (torn by a crash mid-``os.replace`` on exotic
    filesystems, truncated by a full disk, or hand-edited) is
    *quarantined* on load — renamed to ``<key>.json.corrupt`` and
    counted as ``sweep.cache_corrupt`` — so the job re-executes and the
    repaired entry is rewritten, instead of re-parsing the same broken
    file on every run forever.

    Multi-process hygiene: a worker killed between writing its temp file
    and the rename leaves an orphaned ``<key>.tmp.<pid>-<n>`` behind;
    stale orphans (older than ``REPRO_CACHE_TMP_TTL``, default 10 min)
    are swept on cache open and on :meth:`clear`, counted as
    ``sweep.cache_tmp_reaped``.  An optional size budget
    (``REPRO_CACHE_BUDGET``, e.g. ``256M``) evicts least-recently-used
    entries — by mtime, which loads refresh — after each store, counted
    as ``sweep.cache_evicted``.  Every delete tolerates losing the race
    to another process (entries may vanish between listing and unlink).
    """

    def __init__(self, directory: Optional[os.PathLike] = None,
                 enabled: Optional[bool] = None,
                 budget: Optional[int] = None) -> None:
        if directory is None:
            directory = os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)
        self.directory = Path(directory)
        if enabled is None:
            enabled = not env_flag(NO_CACHE_ENV)
        self.enabled = enabled
        #: Max total bytes of live entries (None = unlimited); explicit
        #: argument wins over ``REPRO_CACHE_BUDGET``.
        self.budget = budget if budget is not None else default_cache_budget()
        if self.enabled:
            self._reap_on_open()

    def _reap_on_open(self) -> None:
        """Open-path stale-tmp sweep, rate-limited per directory."""
        key = str(self.directory)
        now = time.monotonic()
        last = _LAST_REAP.get(key)
        if last is not None and now - last < _REAP_INTERVAL:
            return
        _LAST_REAP[key] = now
        self.reap_stale_tmp()

    def reap_stale_tmp(self, ttl: Optional[float] = None,
                       stats: Optional[StatsCollector] = None) -> int:
        """Delete orphaned ``.tmp`` files older than *ttl* seconds.

        *ttl* defaults to ``REPRO_CACHE_TMP_TTL`` (600 s) — generous
        enough that a tmp file from a live in-flight store is never
        touched.  Returns the number reaped; each one also counts as
        ``sweep.cache_tmp_reaped``.
        """
        if not self.directory.is_dir():
            return 0
        ttl = default_tmp_ttl() if ttl is None else max(0.0, ttl)
        cutoff = time.time() - ttl
        reaped = 0
        for path in self.directory.glob("*.tmp.*"):
            try:
                if path.stat().st_mtime > cutoff:
                    continue
                path.unlink()
            except OSError:  # vanished mid-race or unreadable: not ours
                continue
            reaped += 1
        if reaped:
            for collector in (stats, SWEEP_STATS):
                if collector is not None:
                    collector.add("sweep.cache_tmp_reaped", reaped)
        return reaped

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def load(self, key: str,
             stats: Optional[StatsCollector] = None
             ) -> Optional[SimulationResult]:
        """The cached result for *key*, or None (miss / disabled / stale).

        Corrupt entries are quarantined (see class docstring) and count
        as a miss; *stats*, when given, receives the
        ``sweep.cache_corrupt`` increment alongside :data:`SWEEP_STATS`.
        """
        if not self.enabled:
            return None
        start = time.perf_counter()
        try:
            path = self._path(key)
            try:
                text = path.read_text()
            except OSError:
                return None
            try:
                payload = json.loads(text)
                if payload.get("schema") != CACHE_SCHEMA_VERSION:
                    # Stale, not corrupt: a rewrite will replace it.
                    return None
                result = _result_from_payload(payload["result"])
            except (ValueError, KeyError, TypeError, AttributeError):
                self._quarantine(path, stats)
                return None
            if self.budget is not None:
                # LRU recency for the eviction policy: a hit refreshes
                # the entry's mtime.  Best-effort (racing eviction).
                try:
                    os.utime(path)
                except OSError:
                    pass
            return result
        finally:
            self._time("load", time.perf_counter() - start, stats)

    @staticmethod
    def _time(op: str, seconds: float,
              stats: Optional[StatsCollector] = None) -> None:
        """Attribute cache-layer wall clock (self-profiling; near-free:
        two perf_counter calls per cache touch)."""
        for collector in (stats, SWEEP_STATS):
            if collector is not None:
                collector.add(f"sweep.cache_{op}_seconds", seconds)
                collector.add(f"sweep.cache_{op}s")

    @staticmethod
    def _quarantine(path: Path,
                    stats: Optional[StatsCollector] = None) -> None:
        quarantined = path.with_name(path.name + ".corrupt")
        try:
            os.replace(path, quarantined)
        except OSError:  # pragma: no cover - e.g. concurrent quarantine
            pass
        for collector in (stats, SWEEP_STATS):
            if collector is not None:
                collector.add("sweep.cache_corrupt")

    def store(self, key: str, job: SweepJob,
              result: SimulationResult,
              stats: Optional[StatsCollector] = None) -> None:
        """Persist one job's result (and stats) under *key*."""
        if not self.enabled:
            return
        start = time.perf_counter()
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "job": job.describe(),
            "result": _result_to_payload(result),
        }
        text = json.dumps(payload, sort_keys=True, indent=1)
        plan = faults.active_plan()
        if plan is not None:
            text = plan.on_cache_write(job.describe(), text)
        path = self._path(key)
        # Unique per process *and* per in-flight write: concurrent
        # threads of one server process storing the same key must not
        # interleave writes into a shared tmp file.
        tmp = path.with_suffix(f".tmp.{os.getpid()}-{next(_TMP_SEQ)}")
        try:
            tmp.write_text(text)
            os.replace(tmp, path)
        except FileNotFoundError:
            # Our tmp vanished before the rename: an external sweeper
            # (aggressive TTL, concurrent wipe) won the race.  A cache
            # store losing a race must never fail the job it caches.
            for collector in (stats, SWEEP_STATS):
                if collector is not None:
                    collector.add("sweep.cache_store_lost")
        except BaseException:
            # Failed writes (full disk, interrupt) must not become
            # orphans the age-gated reaper has to find later.
            try:
                tmp.unlink()
            except OSError:
                pass
            raise
        self._evict_over_budget(stats)
        self._time("store", time.perf_counter() - start, stats)

    def _evict_over_budget(self, stats: Optional[StatsCollector]) -> None:
        """Evict oldest-mtime entries until the live set fits the budget.

        Runs after each store (a directory scan per executed job is
        noise next to the simulation it cached).  Concurrent evictors
        may race for the same victim; losing the race is fine.
        """
        if self.budget is None:
            return
        entries = []
        total = 0
        for path in self.directory.glob("*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        if total <= self.budget:
            return
        entries.sort(key=lambda entry: entry[:2])
        evicted = 0
        for _, size, path in entries:
            if total <= self.budget:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            evicted += 1
        if evicted:
            for collector in (stats, SWEEP_STATS):
                if collector is not None:
                    collector.add("sweep.cache_evicted", evicted)

    def clear(self, stats: Optional[StatsCollector] = None) -> int:
        """Delete every cache entry (plus quarantined corpses and any
        *stale* orphaned tmp files); returns the number of live entries
        removed.  Safe to run concurrently with other processes
        clearing or writing the same directory: entries that vanish
        between listing and unlink are simply skipped, and the tmp
        sweep keeps its age gate so a live writer's in-flight atomic
        write is never yanked out from under its rename.
        """
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                try:
                    path.unlink()
                except FileNotFoundError:
                    continue  # another process cleared it first
                removed += 1
            for path in self.directory.glob("*.json.corrupt"):
                try:
                    path.unlink()
                except FileNotFoundError:
                    continue
            self.reap_stale_tmp(stats=stats)
        return removed

    def total_bytes(self) -> int:
        """Total size of the live entries (the budget's measure)."""
        if not self.directory.is_dir():
            return 0
        total = 0
        for path in self.directory.glob("*.json"):
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))


def _result_to_payload(result: SimulationResult) -> Dict[str, Any]:
    return {
        "benchmark": result.benchmark,
        "config_name": result.config_name,
        "cycles": result.cycles,
        "committed": result.committed,
        "counters": dict(result.counters),
    }


def _result_from_payload(payload: Dict[str, Any]) -> SimulationResult:
    return SimulationResult(
        benchmark=payload["benchmark"],
        config_name=payload["config_name"],
        cycles=payload["cycles"],
        committed=payload["committed"],
        counters={name: float(value)
                  for name, value in payload["counters"].items()},
    )


# ---------------------------------------------------------------------------
# Execution


def _execute_job(job: SweepJob,
                 attempt: int = 0) -> Tuple[Dict[str, Any], float]:
    """Run one job (worker-side); returns (result payload, seconds).

    Runs in a pool worker for parallel sweeps and inline for serial ones —
    the exact same code path, which is what makes parallel output
    bit-identical to serial.  *attempt* numbers re-executions of the same
    job so the fault-injection plan (if any) can behave deterministically
    across processes.
    """
    plan = faults.active_plan()
    if plan is not None:
        plan.on_execute(job.describe(), attempt)
    start = time.perf_counter()
    # Sampling is passed by value from the job — never resolved from the
    # environment in a worker — so the content-addressed cache key always
    # matches what actually ran (sampling=False blocks REPRO_SAMPLE).
    if job.sampling is not None:
        period, unit, warmup = job.sampling
        sampling: Any = SamplingConfig(period=period, unit=unit,
                                       warmup=warmup)
    else:
        sampling = False
    # Checkpointing likewise: job.checkpoint or nothing (False blocks
    # a worker's inherited REPRO_CHECKPOINT from skewing identity).
    checkpoint_every: Any = (job.checkpoint if job.checkpoint is not None
                             else False)
    result = run_simulation(job.build_config(), job.benchmark,
                            max_instructions=job.length,
                            config_name=job.label or job.config_name,
                            warm=job.warm, sampling=sampling,
                            checkpoint_every=checkpoint_every)
    return _result_to_payload(result), time.perf_counter() - start


def _pool_task(task: Tuple[SweepJob, int]) -> Tuple:
    """Worker entry point: never raises across the pipe.

    Exceptions become structured ``("error", type, message)`` outcomes so
    one bad job cannot abort the whole ``imap``/``apply_async`` stream;
    successes are ``("ok", payload, seconds)``.
    """
    job, attempt = task
    try:
        payload, seconds = _execute_job(job, attempt)
        return ("ok", payload, seconds)
    except Exception as exc:
        return ("error", type(exc).__name__, str(exc))


def _cosim_batch(tasks: Sequence[Tuple[SweepJob, int]]
                 ) -> Tuple[List[Tuple], Dict[str, float]]:
    """Co-simulate one batch of stream-sibling jobs (worker-side).

    Every job shares ``(benchmark, length, warm)`` *and* the same
    sampling selector with no checkpointing (the caller partitions on
    that), so the whole batch maps onto one
    :func:`repro.perf.cosim.run_cosim` call.  Sampling is passed by
    value from the jobs — never resolved from the environment — exactly
    like :func:`_execute_job`, so cache keys keep matching what ran.
    Returns per-job ``("ok", payload, seconds)`` outcomes in job order
    (batch wall time split evenly — siblings share most of the work, so
    per-job attribution is nominal) plus the savings counters.
    """
    from repro.perf import cosim as cosim_engine

    jobs = [job for job, _ in tasks]
    lead = jobs[0]
    if lead.sampling is not None:
        period, unit, warmup = lead.sampling
        sampling: Any = SamplingConfig(period=period, unit=unit,
                                       warmup=warmup)
    else:
        sampling = False
    specs = [(job.build_config(), job.label or job.config_name)
             for job in jobs]
    start = time.perf_counter()
    results, savings = cosim_engine.run_cosim(
        specs, lead.benchmark, max_instructions=lead.length,
        warm=lead.warm, sampling=sampling)
    seconds = (time.perf_counter() - start) / len(jobs)
    outcomes = [("ok", _result_to_payload(result), seconds)
                for result in results]
    return outcomes, savings


def _pool_group_task(tasks: Sequence[Tuple[SweepJob, int]],
                     cosim: bool = False
                     ) -> Tuple[List[Tuple], Dict[str, float]]:
    """Worker entry point for a stream-sharing group of jobs.

    Every job in a group shares ``(benchmark, length, warm)``, so running
    the group sequentially inside one worker pays oracle-stream emulation
    and warm-snapshot training once for the whole group — the prep caches
    in :mod:`repro.sampling.prep` are process-local, and without grouping
    each worker a job lands on rebuilds them independently.  With *cosim*
    on, sub-batches of the group that also share a sampling selector
    (and do not checkpoint) advance through the stream together in one
    :func:`repro.perf.cosim.run_cosim` call, additionally sharing decode,
    SoA metadata and functional gap fast-forwarding; leftovers run
    per-job.  Fault-injection sweeps never co-simulate — the plan's
    deterministic per-job ``on_execute`` hook must fire per job.

    Returns ``(outcomes, group_stats)``: per-job outcomes in job order
    (never raising across the pipe — a failing job or batch yields
    ``("error", ...)`` tuples without poisoning its neighbours) and the
    savings counters pool workers cannot report via process-global stats.
    """
    tasks = list(tasks)
    group_stats: Dict[str, float] = {}
    outcomes: List[Optional[Tuple]] = [None] * len(tasks)
    if cosim and faults.active_plan() is None:
        batches: Dict[Tuple, List[int]] = {}
        for index, (job, _attempt_no) in enumerate(tasks):
            batches.setdefault((job.sampling, job.checkpoint),
                               []).append(index)
        for (_sampling, checkpoint), indices in batches.items():
            if checkpoint is not None or len(indices) < 2:
                continue  # nothing to share (or checkpointing: per-job)
            try:
                batch_outcomes, savings = _cosim_batch(
                    [tasks[i] for i in indices])
            except Exception as exc:
                # The whole batch shares one engine call, so one failure
                # taints every sibling: each re-runs individually inline.
                failure = ("error", type(exc).__name__, str(exc))
                for i in indices:
                    outcomes[i] = failure
                continue
            for i, outcome in zip(indices, batch_outcomes):
                outcomes[i] = outcome
            group_stats["cosim.groups"] = (
                group_stats.get("cosim.groups", 0.0) + 1.0)
            for key, value in savings.items():
                group_stats[key] = group_stats.get(key, 0.0) + value
    for index, task in enumerate(tasks):
        if outcomes[index] is None:
            outcomes[index] = _pool_task(task)
    return outcomes, group_stats


def _make_pool(workers: int) -> Optional[multiprocessing.pool.Pool]:
    """A worker pool, or None when multiprocessing is unavailable.

    Pool creation fails on platforms without working semaphores/fork
    support (``ImportError``/``OSError``); the sweep then degrades to
    serial in-process execution instead of crashing.
    """
    try:
        return multiprocessing.Pool(workers)
    except (ImportError, OSError, ValueError):
        return None


def _attempt(job: SweepJob, attempt: int,
             timeout: Optional[float]) -> Tuple:
    """One inline attempt at *job*; returns a structured outcome tuple.

    With a timeout configured the job runs in a fresh single-worker pool
    so a hung simulation can actually be killed (``terminate``); without
    one — or when multiprocessing is unavailable — it runs in-process.
    Outcomes: ``("ok", payload, seconds)``, ``("error", type, message)``
    or ``("timeout", "TimeoutError", message)``.
    """
    if timeout is not None:
        pool = _make_pool(1)
        if pool is not None:
            with pool:  # __exit__ terminates: a hung worker dies here
                try:
                    return pool.apply_async(
                        _pool_task, ((job, attempt),)).get(timeout)
                except multiprocessing.TimeoutError:
                    return ("timeout", "TimeoutError",
                            f"{job.describe()} produced no result within "
                            f"{timeout:g}s (attempt {attempt})")
                except Exception as exc:
                    return ("error", type(exc).__name__, str(exc))
    try:
        payload, seconds = _execute_job(job, attempt)
        return ("ok", payload, seconds)
    except Exception as exc:
        return ("error", type(exc).__name__, str(exc))


def default_workers() -> int:
    """Worker-pool width: ``REPRO_SWEEP_WORKERS`` or the CPU count."""
    override = os.environ.get(WORKERS_ENV)
    if override:
        return max(1, int(override))
    return os.cpu_count() or 1


def default_group_streams() -> bool:
    """Whether sweeps group stream-sharing jobs (``REPRO_SWEEP_GROUP``).

    Grouping is on by default; set ``REPRO_SWEEP_GROUP=0`` (or ``false``,
    ``no``, ``off``) to scatter jobs individually, e.g. when a sweep is
    dominated by one benchmark and per-job parallelism matters more than
    shared prep work.
    """
    return env_flag(GROUP_ENV, default=True)


def default_cosim() -> bool:
    """Whether grouped sweeps co-simulate their groups (``REPRO_COSIM``).

    On by default (it only takes effect while stream grouping is on);
    ``REPRO_COSIM=0`` (or ``false``, ``no``, ``off``) falls back to
    running each group's jobs back to back serially — the escape hatch
    if co-simulation is ever suspected of perturbing a result (the
    parity tests say it cannot).
    """
    return env_flag(COSIM_ENV, default=True)


def default_retries() -> int:
    """Retries per failed job: ``REPRO_SWEEP_RETRIES`` or 2."""
    override = os.environ.get(RETRIES_ENV)
    if override:
        return max(0, int(override))
    return DEFAULT_RETRIES


def default_job_timeout() -> Optional[float]:
    """Per-job wall-clock timeout in seconds: ``REPRO_JOB_TIMEOUT``.

    Unset or 0 means no explicit timeout (pool waits are still bounded
    by :data:`CRASH_GUARD_SECONDS` so a crashed worker cannot hang the
    sweep forever).
    """
    override = os.environ.get(TIMEOUT_ENV)
    if override:
        value = float(override)
        return value if value > 0 else None
    return None


def default_backoff() -> float:
    """Retry backoff base in seconds: ``REPRO_SWEEP_BACKOFF`` or 0.05."""
    override = os.environ.get(BACKOFF_ENV)
    if override:
        return max(0.0, float(override))
    return DEFAULT_BACKOFF


@dataclass(frozen=True)
class JobFailure:
    """Structured record of one job that failed all of its attempts."""

    job: SweepJob
    error_type: str
    message: str
    attempts: int

    def describe(self) -> str:
        """Human-readable one-line description of the failure."""
        return (f"{self.job.describe()}: {self.error_type}: "
                f"{self.message} (after {self.attempts} attempt(s))")


@dataclass
class SweepReport:
    """Results plus observability for one :func:`run_sweep` call."""

    jobs: List[SweepJob]
    results: Dict[SweepJob, SimulationResult]
    stats: StatsCollector = field(default_factory=StatsCollector)
    job_seconds: Dict[SweepJob, float] = field(default_factory=dict)
    #: Jobs that failed every attempt, with the final error per job.
    failures: Dict[SweepJob, JobFailure] = field(default_factory=dict)

    @property
    def executed(self) -> int:
        """Jobs that actually ran a simulation (not cached)."""
        return int(self.stats.get("sweep.executed"))

    @property
    def cache_hits(self) -> int:
        """Jobs served from the memo or disk cache."""
        return int(self.stats.get("sweep.memo_hits")
                   + self.stats.get("sweep.disk_hits"))

    @property
    def failed(self) -> int:
        """Jobs that exhausted their retries."""
        return len(self.failures)

    def raise_failures(self) -> None:
        """Raise :class:`~repro.errors.SweepError` if any job failed.

        For callers (the figure pipelines) that need every result and
        prefer one aggregate exception over per-job checks.
        """
        if self.failures:
            details = "; ".join(f.describe() for f in self.failures.values())
            raise SweepError(
                f"{len(self.failures)} sweep job(s) failed: {details}")

    def summary(self) -> str:
        """Multi-line execution summary (jobs, hits, retries, time)."""
        stats = self.stats
        lines = [
            f"jobs          {int(stats.get('sweep.jobs'))}",
            f"memo hits     {int(stats.get('sweep.memo_hits'))}",
            f"disk hits     {int(stats.get('sweep.disk_hits'))}",
            f"executed      {int(stats.get('sweep.executed'))}",
            f"workers       {int(stats.get('sweep.workers'))}",
            f"wall seconds  {stats.get('sweep.wall_seconds'):.2f}",
            f"job seconds   {stats.get('sweep.exec_seconds'):.2f}",
            f"cache seconds "
            f"{stats.get('sweep.cache_load_seconds') + stats.get('sweep.cache_store_seconds'):.2f}",
            f"utilization   {stats.get('sweep.utilization'):.2f}",
            f"retries       {int(stats.get('sweep.retries'))}",
            f"timeouts      {int(stats.get('sweep.timeouts'))}",
            f"recovered     {int(stats.get('sweep.recovered'))}",
            f"cache corrupt {int(stats.get('sweep.cache_corrupt'))}",
            f"failures      {len(self.failures)}",
        ]
        if stats.get("sweep.cosim_groups"):
            lines.append(
                f"cosim groups  {int(stats.get('sweep.cosim_groups'))} "
                f"({int(stats.get('sweep.cosim_jobs'))} jobs)")
            lines.append(
                f"cosim shared  "
                f"decode={int(stats.get('sweep.cosim_shared_decode'))} "
                f"gap_insts={int(stats.get('sweep.cosim_gap_insts_shared'))} "
                f"warm_trains_saved="
                f"{int(stats.get('prep.snapshot_group_shared'))}")
        if stats.get("sweep.degraded"):
            lines.append("degraded      serial (multiprocessing unavailable)")
        for failure in self.failures.values():
            lines.append(f"FAILED  {failure.describe()}")
        return "sweep summary\n" + "\n".join("  " + line for line in lines)


def run_job(job: SweepJob,
            cache: Optional[ResultCache] = None,
            stats: Optional[StatsCollector] = None) -> SimulationResult:
    """Run one job through the disk cache (the serial, single-job path)."""
    cache = cache if cache is not None else ResultCache()
    key = job.cache_key()
    cached = cache.load(key, stats=stats)
    for collector in (stats, SWEEP_STATS):
        if collector is not None:
            collector.add("sweep.jobs")
            collector.add("sweep.disk_hits" if cached is not None
                          else "sweep.executed")
    if cached is not None:
        return cached
    payload, seconds = _execute_job(job)
    result = _result_from_payload(payload)
    cache.store(key, job, result, stats=stats)
    for collector in (stats, SWEEP_STATS):
        if collector is not None:
            collector.add("sweep.exec_seconds", seconds)
    return result


def _notify(observer: Optional[Callable[[str, SweepJob, dict], None]],
            kind: str, job: SweepJob, **info: Any) -> None:
    """Best-effort observer callback — telemetry must not fail a sweep."""
    if observer is None:
        return
    try:
        observer(kind, job, info)
    except Exception:
        SWEEP_STATS.add("sweep.observer_errors")


def run_sweep(jobs: Sequence[SweepJob],
              workers: Optional[int] = None,
              memo: Optional[MutableMapping[SweepJob,
                                            SimulationResult]] = None,
              cache: Optional[ResultCache] = None,
              progress: Optional[Callable[[SweepJob, SimulationResult,
                                           float], None]] = None,
              retries: Optional[int] = None,
              timeout: Optional[float] = None,
              backoff: Optional[float] = None,
              observer: Optional[Callable[[str, SweepJob, dict],
                                          None]] = None,
              group_streams: Optional[bool] = None,
              cosim: Optional[bool] = None
              ) -> SweepReport:
    """Run every job, fanning cache misses out over a process pool.

    Results are merged back in job order, so the report is deterministic
    regardless of worker scheduling.  The lookup order per job is:

    1. *memo* — the caller's in-process L1 (e.g. the experiment-layer
       memo), consulted and updated in place when given;
    2. the on-disk :class:`ResultCache` (L2, persistent across processes);
    3. execution — inline for ``workers == 1`` (or when multiprocessing
       is unavailable), otherwise over ``multiprocessing.Pool(workers)``.

    On the pool path, jobs sharing an oracle stream — the same
    ``(benchmark, length, warm)`` triple — are scheduled as one *group*
    on one worker (*group_streams*, default from ``REPRO_SWEEP_GROUP``,
    on unless set falsy), so the group pays stream emulation and
    warm-snapshot training once; the per-benchmark prep caches
    (:mod:`repro.sampling.prep`) are process-local, and scattering
    stream-siblings across workers rebuilds them per worker.  Grouping
    never changes results — only worker placement — and the merge stays
    in submission order, so grouped and ungrouped sweeps produce
    identical reports (the test suite asserts this).  Group sizes are
    reported as ``sweep.stream_groups``; a group's wait bound scales
    with its size so grouping cannot starve the per-job *timeout*.

    With grouping on, a group's jobs that also share a sampling selector
    (and do not checkpoint) are *co-simulated*: one
    :func:`repro.perf.cosim.run_cosim` call advances all of their timing
    models over one shared stream, sharing decode, SoA metadata,
    warm-snapshot training and functional gap fast-forwarding
    (*cosim*, default from ``REPRO_COSIM``, on unless set falsy; it has
    no effect while grouping is off).  Co-simulation is bit-identical to
    running the group's jobs back to back — the parity tests assert
    it — and its savings surface as ``sweep.cosim_*`` counters in the
    report.  A failed co-sim batch degrades to per-job inline retries.

    Execution is fault tolerant: a job whose pool attempt raises, times
    out (*timeout* seconds of wall clock waiting on its result, env
    ``REPRO_JOB_TIMEOUT``) or loses its worker is re-attempted inline up
    to *retries* times (env ``REPRO_SWEEP_RETRIES``) with exponential
    backoff (*backoff* base seconds, env ``REPRO_SWEEP_BACKOFF``); a job
    that fails every attempt becomes a :class:`JobFailure` in
    ``report.failures`` instead of aborting the sweep.  ``timeout=0``
    disables the explicit timeout.

    *progress* fires per executed job; *observer*, when given, also sees
    the telemetry-only events — ``("cached", job, {"source"})`` per
    memo/disk hit, ``("retry", job, {"attempt"})`` per recovery attempt
    and ``("failure", job, {"error", "attempts"})`` per exhausted job.
    Both callbacks are best-effort: an observer that raises is counted
    (``sweep.observer_errors``) and otherwise ignored.
    """
    start = time.perf_counter()
    stats = StatsCollector()
    report = SweepReport(jobs=list(jobs), results={}, stats=stats)
    stats.add("sweep.jobs", len(report.jobs))

    retries = default_retries() if retries is None else max(0, retries)
    timeout = default_job_timeout() if timeout is None else \
        (timeout if timeout > 0 else None)
    backoff = default_backoff() if backoff is None else max(0.0, backoff)

    cache = cache if cache is not None else ResultCache()
    unique: List[SweepJob] = []
    seen = set()
    for job in report.jobs:
        if job not in seen:
            seen.add(job)
            unique.append(job)

    pending: List[SweepJob] = []
    for job in unique:
        if memo is not None and job in memo:
            stats.add("sweep.memo_hits")
            report.results[job] = memo[job]
            _notify(observer, "cached", job, source="memo")
            continue
        cached = cache.load(job.cache_key(), stats=stats)
        if cached is not None:
            stats.add("sweep.disk_hits")
            report.results[job] = cached
            if memo is not None:
                memo[job] = cached
            _notify(observer, "cached", job, source="disk")
            continue
        pending.append(job)

    group_streams = (default_group_streams() if group_streams is None
                     else group_streams)
    cosim = ((default_cosim() if cosim is None else bool(cosim))
             and group_streams)
    groups: List[List[SweepJob]] = []
    if group_streams:
        by_stream: Dict[Tuple[str, int, bool], List[SweepJob]] = {}
        for job in pending:
            gkey = (job.benchmark, job.length, job.warm)
            bucket = by_stream.get(gkey)
            if bucket is None:
                bucket = by_stream[gkey] = []
                groups.append(bucket)
            bucket.append(job)
        if pending:
            stats.set("sweep.stream_groups", len(groups))
    else:
        groups = [[job] for job in pending]

    workers = workers if workers is not None else default_workers()
    workers = max(1, min(workers, len(groups)) if groups else 1)
    stats.add("sweep.executed", len(pending))
    stats.set("sweep.workers", workers)

    done: set = set()
    attempts: Dict[SweepJob, int] = {job: 0 for job in pending}
    last_error: Dict[SweepJob, Tuple[str, str]] = {}
    retry_queue: List[SweepJob] = []

    def merge(job: SweepJob, payload: Dict[str, Any],
              seconds: float) -> None:
        """Fold one successful outcome into the report (job order for
        the pool phase, recovery order for retried jobs)."""
        done.add(job)
        result = _result_from_payload(payload)
        cache.store(job.cache_key(), job, result, stats=stats)
        report.results[job] = result
        report.job_seconds[job] = seconds
        stats.add("sweep.exec_seconds", seconds)
        stats.maximum("sweep.max_attempts", attempts[job])
        if memo is not None:
            memo[job] = result
        if progress is not None:
            progress(job, result, seconds)

    def fold_group_stats(group_stats: Dict[str, float]) -> None:
        """Fold a group task's counters into the sweep stats.

        Pool workers are separate processes, so co-sim/prep savings
        travel back in the group task's return value; ``cosim.*`` keys
        land under ``sweep.cosim_*``, prep deltas keep their names.
        """
        for key, value in group_stats.items():
            if key.startswith("cosim."):
                key = "sweep.cosim_" + key[len("cosim."):]
            stats.add(key, value)

    def run_group_inline(group: List[SweepJob]) -> None:
        """One group, executed in-process (serial path, no timeout)."""
        for job in group:
            attempts[job] = 1
        outcomes, group_stats = _pool_group_task(
            [(job, 0) for job in group], cosim)
        fold_group_stats(group_stats)
        for job, outcome in zip(group, outcomes):
            if outcome[0] == "ok":
                merge(job, outcome[1], outcome[2])
            else:
                stats.add("sweep.worker_errors")
                last_error[job] = (outcome[1], outcome[2])
                retry_queue.append(job)

    if pending:
        pool = _make_pool(workers) if workers > 1 else None
        if workers > 1 and pool is None:
            stats.set("sweep.degraded", 1)
        if pool is None:
            if timeout is None:
                # Serial (or degraded) path: groups still run as groups
                # — sharing prep work and co-simulating exactly like a
                # pool worker would — so single-stream sweeps (where the
                # worker clamp lands on 1) get the same savings.
                for group in groups:
                    run_group_inline(group)
            else:
                # A timeout needs per-job kill-able pools: every job
                # goes through the inline attempt loop below, first
                # attempt included.
                retry_queue = list(pending)
        else:
            # The pool is context-managed: __exit__ calls terminate(),
            # so an error path (or a worker still chewing on a hung or
            # timed-out job) cannot block in close()/join() or leak
            # worker processes.
            wait = timeout if timeout is not None else CRASH_GUARD_SECONDS
            with pool:
                # One async task per stream group (a singleton list per
                # job when grouping is off): the worker runs the group's
                # jobs back to back and returns per-job outcomes in job
                # order, so the merge below is still deterministic.
                handles = [
                    (group,
                     pool.apply_async(_pool_group_task,
                                      ([(job, 0) for job in group],
                                       cosim)))
                    for group in groups]
                for group, handle in handles:
                    for job in group:
                        attempts[job] = 1
                    # The whole group shares one pool result, so the
                    # wait bound scales with the group size: each job
                    # still gets its full per-job budget.
                    try:
                        outcomes, group_stats = handle.get(
                            wait * len(group))
                    except multiprocessing.TimeoutError:
                        # Either a job overran its budget or the worker
                        # died and the result will never arrive; every
                        # job of the group is retried inline (completed
                        # siblings re-execute — fault-path correctness
                        # over efficiency).
                        for job in group:
                            stats.add("sweep.timeouts"
                                      if timeout is not None
                                      else "sweep.worker_crashes")
                            last_error[job] = (
                                "TimeoutError",
                                f"no result within {wait * len(group):g}s "
                                "(worker hung, overloaded or crashed)")
                            retry_queue.append(job)
                        continue
                    except Exception as exc:
                        for job in group:
                            stats.add("sweep.worker_crashes")
                            last_error[job] = (type(exc).__name__,
                                               str(exc))
                            retry_queue.append(job)
                        continue
                    fold_group_stats(group_stats)
                    for job, outcome in zip(group, outcomes):
                        if outcome[0] == "ok":
                            merge(job, outcome[1], outcome[2])
                        else:
                            stats.add("sweep.worker_errors")
                            last_error[job] = (outcome[1], outcome[2])
                            retry_queue.append(job)

    # Inline (re-)execution: first attempts on the serial path, recovery
    # attempts for everything the pool could not finish.
    for job in retry_queue:
        while job not in done and attempts[job] <= retries:
            n = attempts[job]
            if n:  # a retry, not a first attempt
                stats.add("sweep.retries")
                _notify(observer, "retry", job, attempt=n + 1)
                delay = backoff * (2 ** (n - 1))
                if delay > 0:
                    time.sleep(delay)
            attempts[job] = n + 1
            outcome = _attempt(job, n, timeout)
            if outcome[0] == "ok":
                if n:
                    stats.add("sweep.recovered")
                merge(job, outcome[1], outcome[2])
            else:
                stats.add("sweep.timeouts" if outcome[0] == "timeout"
                          else "sweep.worker_errors")
                last_error[job] = (outcome[1], outcome[2])
        if job not in done:
            error_type, message = last_error.get(
                job, ("UnknownError", "no attempt recorded"))
            report.failures[job] = JobFailure(
                job=job, error_type=error_type, message=message,
                attempts=attempts[job])
            stats.add("sweep.failures")
            _notify(observer, "failure", job, error=error_type,
                    attempts=attempts[job])

    wall = time.perf_counter() - start
    stats.set("sweep.wall_seconds", wall)
    if pending and wall > 0:
        stats.set("sweep.utilization",
                  stats.get("sweep.exec_seconds") / (workers * wall))
    SWEEP_STATS.merge(stats)
    return report


# ---------------------------------------------------------------------------
# Generic helper for non-simulation fan-out (e.g. Table 2 characterization)


def parallel_map(fn: Callable, items: Sequence,
                 workers: Optional[int] = None) -> List:
    """Order-preserving parallel map over a process pool.

    *fn* must be picklable (module-level).  Falls back to a plain map for
    one worker or one item, keeping results identical either way.
    """
    items = list(items)
    workers = workers if workers is not None else default_workers()
    workers = max(1, min(workers, len(items)) if items else 1)
    pool = _make_pool(workers) if workers > 1 else None
    if pool is None:
        return [fn(item) for item in items]
    # Context-managed: terminate() on exit, so an exception mid-map
    # cannot hang in close()/join() behind unfinished jobs.
    with pool:
        return pool.map(fn, items)
