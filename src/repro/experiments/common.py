"""Shared infrastructure for the paper's experiments.

Simulation results are cached at two levels: an in-process memo (L1),
keyed by :class:`~repro.experiments.runner.SweepJob`, so experiments that
share runs — Figures 4, 5 and 8 all use the default-configuration matrix —
pay for each simulation once per process; and the runner's persistent
on-disk cache (L2, ``.repro_cache/``), so fresh processes don't re-pay
simulations at all.  Matrix-shaped work (`run_matrix`, and the experiment
modules' prefetches) additionally fans cache misses out over a
``multiprocessing`` worker pool via :func:`repro.experiments.runner.run_sweep`.

Environment knobs:

* ``REPRO_SIM_INSTRUCTIONS`` — dynamic instructions per benchmark run
  (default 30 000);
* ``REPRO_SWEEP_INSTRUCTIONS`` — shorter length used by the cache-size
  and predictor-size sweeps (default: half the above);
* ``REPRO_EXPERIMENT_BENCHMARKS`` — comma-separated benchmark subset
  (default: the full 12-benchmark suite);
* ``REPRO_SWEEP_WORKERS`` — worker-pool width (default: CPU count);
* ``REPRO_CACHE_DIR`` / ``REPRO_NO_CACHE`` — disk-cache location / kill
  switch (see :mod:`repro.experiments.runner`);
* ``REPRO_SWEEP_RETRIES`` / ``REPRO_JOB_TIMEOUT`` /
  ``REPRO_SWEEP_BACKOFF`` — fault-tolerance knobs for the sweep runner
  (retries per failed job, per-job wall-clock timeout, backoff base).
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.simulation import SimulationResult
from repro.experiments.runner import SweepJob, run_job, run_sweep
from repro.workloads.suite import BENCHMARK_NAMES, default_sim_instructions

#: In-process memo (the L1 cache above the runner's disk cache).
_result_cache: Dict[SweepJob, SimulationResult] = {}


def experiment_benchmarks() -> List[str]:
    """The benchmarks experiments run over (env-overridable)."""
    override = os.environ.get("REPRO_EXPERIMENT_BENCHMARKS")
    if not override:
        return list(BENCHMARK_NAMES)
    names = [n.strip() for n in override.split(",") if n.strip()]
    unknown = set(names) - set(BENCHMARK_NAMES)
    if unknown:
        raise ValueError(f"unknown benchmarks in override: {sorted(unknown)}")
    return names


def experiment_length() -> int:
    """Dynamic instruction count used by the figure experiments."""
    return default_sim_instructions()


def sweep_length() -> int:
    """Shorter default for the multi-point sweeps (Figures 9 and 10)."""
    override = os.environ.get("REPRO_SWEEP_INSTRUCTIONS")
    if override:
        return int(override)
    return max(2000, experiment_length() // 2)


def run_cached(config_name: str, benchmark: str, length: int,
               total_l1_storage: Optional[int] = None,
               predictor_entries: Optional[int] = None,
               overrides: Tuple[Tuple[str, Any], ...] = (),
               warm: bool = True,
               label: Optional[str] = None) -> SimulationResult:
    """Memoized simulation run (L1 memo over the runner's disk cache)."""
    job = SweepJob(config_name=config_name, benchmark=benchmark,
                   length=length, total_l1_storage=total_l1_storage,
                   predictor_entries=predictor_entries,
                   overrides=overrides, warm=warm, label=label)
    if job not in _result_cache:
        _result_cache[job] = run_job(job)
    return _result_cache[job]


def prefetch(jobs: Sequence[SweepJob],
             workers: Optional[int] = None) -> None:
    """Populate the memo (and disk cache) for *jobs* with a parallel sweep.

    Experiments call this before their `run_cached` loops so every miss is
    computed on the worker pool instead of serially at first use.
    Best-effort: a job that fails all its retries is simply left out of
    the memo — the authoritative `run_cached` path re-executes it and
    surfaces the error with full context.
    """
    run_sweep(jobs, workers=workers, memo=_result_cache)


def run_matrix(config_names: List[str], benchmarks: List[str],
               length: int, workers: Optional[int] = None
               ) -> Dict[str, Dict[str, SimulationResult]]:
    """Run every (config, benchmark) pair through the parallel runner.

    Raises :class:`~repro.errors.SweepError` if any job failed after all
    retries — the figure pipelines need a complete matrix.
    """
    jobs = [SweepJob(config_name=name, benchmark=bench, length=length)
            for name in config_names for bench in benchmarks]
    report = run_sweep(jobs, workers=workers, memo=_result_cache)
    report.raise_failures()
    return {name: {bench: report.results[
                       SweepJob(config_name=name, benchmark=bench,
                                length=length)]
                   for bench in benchmarks}
            for name in config_names}


def clear_cache() -> None:
    """Drop the in-process memo (the disk cache is left untouched)."""
    _result_cache.clear()
