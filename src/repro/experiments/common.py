"""Shared infrastructure for the paper's experiments.

Simulation results are memoized per (configuration, benchmark, length,
storage, predictor-size) so experiments that share runs — Figures 4, 5
and 8 all use the default-configuration matrix — pay for each simulation
once per process.

Environment knobs:

* ``REPRO_SIM_INSTRUCTIONS`` — dynamic instructions per benchmark run
  (default 30 000);
* ``REPRO_SWEEP_INSTRUCTIONS`` — shorter length used by the cache-size
  and predictor-size sweeps (default: half the above);
* ``REPRO_EXPERIMENT_BENCHMARKS`` — comma-separated benchmark subset
  (default: the full 12-benchmark suite).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from repro.config import frontend_config
from repro.core.simulation import SimulationResult, run_simulation
from repro.workloads.suite import BENCHMARK_NAMES, default_sim_instructions

_CacheKey = Tuple[str, str, int, Optional[int], Optional[int]]
_result_cache: Dict[_CacheKey, SimulationResult] = {}


def experiment_benchmarks() -> List[str]:
    """The benchmarks experiments run over (env-overridable)."""
    override = os.environ.get("REPRO_EXPERIMENT_BENCHMARKS")
    if not override:
        return list(BENCHMARK_NAMES)
    names = [n.strip() for n in override.split(",") if n.strip()]
    unknown = set(names) - set(BENCHMARK_NAMES)
    if unknown:
        raise ValueError(f"unknown benchmarks in override: {sorted(unknown)}")
    return names


def experiment_length() -> int:
    return default_sim_instructions()


def sweep_length() -> int:
    """Shorter default for the multi-point sweeps (Figures 9 and 10)."""
    override = os.environ.get("REPRO_SWEEP_INSTRUCTIONS")
    if override:
        return int(override)
    return max(2000, experiment_length() // 2)


def run_cached(config_name: str, benchmark: str, length: int,
               total_l1_storage: Optional[int] = None,
               predictor_entries: Optional[int] = None) -> SimulationResult:
    """Memoized simulation run."""
    key = (config_name, benchmark, length, total_l1_storage,
           predictor_entries)
    if key not in _result_cache:
        config = frontend_config(config_name,
                                 total_l1_storage=total_l1_storage)
        if predictor_entries is not None:
            config = config.replace(
                trace_predictor=config.trace_predictor.scaled(
                    predictor_entries))
        _result_cache[key] = run_simulation(config, benchmark,
                                            max_instructions=length,
                                            config_name=config_name)
    return _result_cache[key]


def run_matrix(config_names: List[str], benchmarks: List[str],
               length: int) -> Dict[str, Dict[str, SimulationResult]]:
    """Run every (config, benchmark) pair, memoized."""
    return {name: {bench: run_cached(name, bench, length)
                   for bench in benchmarks}
            for name in config_names}


def clear_cache() -> None:
    _result_cache.clear()
