"""Experiment harnesses: one entry point per paper table/figure.

Each experiment returns structured data plus a ``format_*`` companion that
renders the same rows/series the paper reports.
"""

from repro.experiments.common import (
    clear_cache,
    experiment_benchmarks,
    experiment_length,
    prefetch,
    run_cached,
    run_matrix,
    sweep_length,
)
from repro.experiments.runner import (
    SWEEP_STATS,
    ResultCache,
    SweepJob,
    SweepReport,
    run_job,
    run_sweep,
)
from repro.experiments.frontend_figs import (
    figure4,
    figure5,
    figure6,
    figure8,
    format_figure4,
    format_figure5,
    format_figure6,
    format_figure8,
    format_text_statistics,
    text_statistics,
)
from repro.experiments.sweeps import (
    figure7,
    figure9,
    figure10,
    format_figure7,
    format_figure9,
    format_figure10,
)
from repro.experiments.tables import format_table2, table1, table2

__all__ = [
    "run_cached",
    "run_matrix",
    "clear_cache",
    "prefetch",
    "SweepJob",
    "SweepReport",
    "ResultCache",
    "SWEEP_STATS",
    "run_job",
    "run_sweep",
    "experiment_benchmarks",
    "experiment_length",
    "sweep_length",
    "table1",
    "table2",
    "format_table2",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "text_statistics",
    "format_figure4",
    "format_figure5",
    "format_figure6",
    "format_figure7",
    "format_figure8",
    "format_figure9",
    "format_figure10",
    "format_text_statistics",
]
