"""Durable sweep manifests: crash-resumable ``repro sweep`` runs.

A sweep that dies mid-flight (crash, preemption, ``kill -9``) already
loses no *completed* work — finished jobs sit in the content-addressed
:class:`~repro.experiments.runner.ResultCache` — but it used to lose its
*description*: nothing on disk said which jobs the sweep comprised, so
"run it again" meant reconstructing the command line.  A manifest
persists exactly that: the job list (in the service wire form, so one
serialization covers both layers), the run options, and a completed
flag, written atomically under ``<cache dir>/sweeps/``.

``repro sweep --resume [SWEEP_ID]`` reloads the manifest (the most
recent incomplete one by default) and re-runs the sweep: completed jobs
are served from the result cache, and jobs that were in flight restart
— from their latest durable checkpoint when the sweep was launched with
``--checkpoint N`` (see :mod:`repro.checkpoint`), from zero otherwise.

Corrupt manifests (torn writes) are quarantined to ``*.json.corrupt``
and skipped, the same policy as every other durable artifact here.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ReproError
from repro.experiments.runner import CACHE_DIR_ENV, DEFAULT_CACHE_DIR, SweepJob
from repro.service.protocol import jobs_from_wire, jobs_to_wire

#: Bump when the manifest format changes incompatibly.
MANIFEST_SCHEMA_VERSION = 1


class ManifestError(ReproError):
    """Raised for a missing or unusable sweep manifest."""


def manifest_dir() -> Path:
    """Where manifests live: ``<cache dir>/sweeps``."""
    root = Path(os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR)
    return root / "sweeps"


def sweep_id_for(jobs: Sequence[SweepJob]) -> str:
    """Content-addressed sweep identity: a digest over the job keys.

    Order-independent (the digest sorts), so the same matrix submitted
    in any order resumes the same manifest.
    """
    digest = hashlib.sha256(
        "|".join(sorted(job.cache_key() for job in jobs)).encode())
    return digest.hexdigest()[:12]


@dataclass
class SweepManifest:
    """One durable sweep description."""

    sweep_id: str
    jobs: List[SweepJob]
    options: Dict[str, Any] = field(default_factory=dict)
    created: float = 0.0
    completed: bool = False

    def path(self, directory: Optional[Path] = None) -> Path:
        """The manifest's file under *directory* (default manifest dir)."""
        return (directory or manifest_dir()) / f"{self.sweep_id}.json"


def _write(manifest: SweepManifest, directory: Optional[Path] = None) -> Path:
    """Atomically persist *manifest*; returns its path."""
    directory = directory or manifest_dir()
    payload = {
        "schema": MANIFEST_SCHEMA_VERSION,
        "sweep_id": manifest.sweep_id,
        "created": manifest.created,
        "completed": manifest.completed,
        "options": manifest.options,
        "jobs": jobs_to_wire(manifest.jobs),
    }
    path = manifest.path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(directory), suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, sort_keys=True, indent=1)
    except BaseException:
        os.unlink(tmp)
        raise
    os.replace(tmp, path)
    return path


def write_manifest(jobs: Sequence[SweepJob],
                   options: Optional[Dict[str, Any]] = None,
                   directory: Optional[Path] = None) -> SweepManifest:
    """Persist a new (incomplete) manifest for *jobs* before running them.

    Re-launching the identical matrix reuses the same id and simply
    rewrites the manifest (still incomplete until :func:`mark_complete`).
    """
    manifest = SweepManifest(
        sweep_id=sweep_id_for(jobs),
        jobs=list(jobs),
        options=dict(options or {}),
        created=time.time(),
    )
    _write(manifest, directory)
    return manifest


def mark_complete(manifest: SweepManifest,
                  directory: Optional[Path] = None) -> None:
    """Flip *manifest* to completed and persist it."""
    manifest.completed = True
    _write(manifest, directory)


def _load_path(path: Path) -> SweepManifest:
    try:
        with open(path) as handle:
            payload = json.load(handle)
        if payload.get("schema") != MANIFEST_SCHEMA_VERSION:
            raise ValueError(f"manifest schema {payload.get('schema')!r}")
        return SweepManifest(
            sweep_id=str(payload["sweep_id"]),
            jobs=jobs_from_wire(payload["jobs"]),
            options=dict(payload.get("options") or {}),
            created=float(payload.get("created") or 0.0),
            completed=bool(payload.get("completed")),
        )
    except Exception as exc:
        quarantined = path.with_name(path.name + ".corrupt")
        try:
            os.replace(path, quarantined)
        except OSError:  # pragma: no cover - concurrent quarantine
            pass
        raise ManifestError(f"corrupt sweep manifest {path.name}: {exc}")


def load_manifest(sweep_id: str,
                  directory: Optional[Path] = None) -> SweepManifest:
    """Load one manifest by id; raises :class:`ManifestError` if absent
    or corrupt (corrupt files are quarantined to ``*.json.corrupt``)."""
    path = (directory or manifest_dir()) / f"{sweep_id}.json"
    if not path.is_file():
        raise ManifestError(f"no sweep manifest {sweep_id!r} under "
                            f"{path.parent}")
    return _load_path(path)


def list_manifests(directory: Optional[Path] = None) -> List[SweepManifest]:
    """Every readable manifest, newest first (corrupt ones quarantined)."""
    directory = directory or manifest_dir()
    if not directory.is_dir():
        return []
    manifests = []
    for path in directory.glob("*.json"):
        try:
            manifests.append(_load_path(path))
        except ManifestError:
            continue
    manifests.sort(key=lambda m: m.created, reverse=True)
    return manifests


def latest_manifest(directory: Optional[Path] = None
                    ) -> Optional[SweepManifest]:
    """The most recent *incomplete* manifest, or None.

    This is what a bare ``repro sweep --resume`` picks up: the sweep
    that most recently started and never marked itself done.
    """
    for manifest in list_manifests(directory):
        if not manifest.completed:
            return manifest
    return None
