"""Figures 7, 9 and 10: the predictor-accuracy and sensitivity sweeps."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.config import FragmentConfig, LiveOutPredictorConfig
from repro.experiments.common import (
    experiment_benchmarks,
    prefetch,
    run_cached,
    sweep_length,
)
from repro.experiments.runner import SweepJob
from repro.frontend.fragments import carve_stream
from repro.predictors.liveout import LiveOutPredictor, compute_liveouts
from repro.stats import format_table, series_table
from repro.workloads.suite import oracle_stream

KB = 1024

#: Live-out predictor sweep grid (Figure 7).
FIG7_ENTRIES = (256, 1024, 4096, 16384)
FIG7_ASSOCS = (1, 2, 4)

#: Total L1 instruction storage points (Figure 9).
FIG9_STORAGES = (8 * KB, 16 * KB, 32 * KB, 64 * KB, 128 * KB)
FIG9_CONFIGS = ("w16", "tc", "pr-2x8w", "pr-4x4w")

#: Primary-table sizes for the fragment-predictor sweep (Figure 10).
FIG10_ENTRIES = (8 * 1024, 16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024)
FIG10_CONFIGS = ("w16", "tc", "pr-2x8w")


def figure7(length: Optional[int] = None,
            benchmarks: Optional[List[str]] = None,
            entries_grid: Sequence[int] = FIG7_ENTRIES,
            assoc_grid: Sequence[int] = FIG7_ASSOCS) -> Dict:
    """Live-out predictor accuracy vs table size and associativity.

    Replays the committed fragment sequence of each benchmark through a
    live-out predictor of each geometry, counting exact-match predictions
    (regs bitmap, last-write bitmap and length all correct) — the paper's
    accuracy metric.  A full training pass precedes the measured pass so
    accuracy reflects steady state (capacity and conflict behaviour),
    matching the paper's billion-instruction runs rather than cold-start
    compulsory misses.  This is a predictor-only experiment; no timing
    model is needed.
    """
    length = length or sweep_length()
    benchmarks = benchmarks or experiment_benchmarks()
    fragment_config = FragmentConfig()
    accuracy: Dict[int, Dict[int, float]] = {}
    for assoc in assoc_grid:
        accuracy[assoc] = {}
        for entries in entries_grid:
            correct = total = 0
            for bench in benchmarks:
                predictor = LiveOutPredictor(
                    LiveOutPredictorConfig(entries=entries, assoc=assoc))
                stream = oracle_stream(bench, length).stream
                fragments = [
                    (fragment.key,
                     compute_liveouts([r.inst for r in fragment.records]))
                    for fragment in carve_stream(stream, fragment_config)]
                for key, actual in fragments:  # warming pass
                    predictor.train(key, actual)
                for key, actual in fragments:  # measured pass
                    total += 1
                    if predictor.predict(key) == actual:
                        correct += 1
                    predictor.train(key, actual)
            accuracy[assoc][entries] = correct / total if total else 0.0
    return {"accuracy": accuracy, "entries": list(entries_grid),
            "assocs": list(assoc_grid),
            "paper_default": 0.98}


def format_figure7(data: Dict) -> str:
    """Render Figure 7 (predictor sensitivity) as a text table."""
    series = {f"{assoc}-way": [data["accuracy"][assoc][e]
                               for e in data["entries"]]
              for assoc in data["assocs"]}
    return series_table(
        "Figure 7: Live-out predictor accuracy "
        f"(paper: 2-way 4K-entry = {data['paper_default']:.2f})",
        "entries", data["entries"], series)


def figure9(length: Optional[int] = None,
            benchmarks: Optional[List[str]] = None,
            storages: Sequence[int] = FIG9_STORAGES,
            configs: Sequence[str] = FIG9_CONFIGS) -> Dict:
    """Sensitivity to total L1 instruction storage (Figure 9).

    Y-values are speedup over W16 with 64 KB, averaged (geometric) across
    benchmarks, exactly as the paper plots.
    """
    length = length or sweep_length()
    benchmarks = benchmarks or experiment_benchmarks()
    prefetch([SweepJob("w16", bench, length, total_l1_storage=64 * KB)
              for bench in benchmarks]
             + [SweepJob(config, bench, length, total_l1_storage=storage)
                for config in configs for storage in storages
                for bench in benchmarks])
    baseline = {bench: run_cached("w16", bench, length,
                                  total_l1_storage=64 * KB).ipc
                for bench in benchmarks}
    series: Dict[str, List[float]] = {}
    per_benchmark: Dict[str, Dict[int, Dict[str, float]]] = {}
    for config in configs:
        series[config] = []
        per_benchmark[config] = {}
        for storage in storages:
            ratios = []
            per_benchmark[config][storage] = {}
            for bench in benchmarks:
                result = run_cached(config, bench, length,
                                    total_l1_storage=storage)
                ratio = result.ipc / baseline[bench]
                ratios.append(ratio)
                per_benchmark[config][storage][bench] = ratio
            product = 1.0
            for ratio in ratios:
                product *= ratio
            series[config].append(product ** (1.0 / len(ratios)))
    return {"storages": list(storages), "speedup": series,
            "per_benchmark": per_benchmark}


def format_figure9(data: Dict) -> str:
    """Render Figure 9 (L1 storage sensitivity) as a text table."""
    xs = [s // KB for s in data["storages"]]
    text = series_table(
        "Figure 9: Sensitivity to total L1 instruction storage "
        "(speedup over W16 @ 64 KB)",
        "KB", xs, data["speedup"])
    retention = {}
    for config, values in data["speedup"].items():
        retention[config] = values[0] / values[-1] if values[-1] else 0.0
    rows = [[cfg, 100 * (1 - retention[cfg])] for cfg in data["speedup"]]
    return (text + "\n\nPerformance lost shrinking "
            f"{xs[-1]}KB -> {xs[0]}KB (paper: PR ~6%, sequential 50-65%)\n"
            + format_table(["Mechanism", "Loss %"], rows,
                           float_fmt="{:.1f}"))


def figure10(length: Optional[int] = None,
             benchmarks: Optional[List[str]] = None,
             entries_grid: Sequence[int] = FIG10_ENTRIES,
             configs: Sequence[str] = FIG10_CONFIGS) -> Dict:
    """Sensitivity to trace/fragment predictor size (Figure 10).

    Y-values are speedup over W16 with the default 64K-entry predictor,
    geometric-mean across benchmarks.  The secondary table scales with the
    primary (one quarter), as in the paper.
    """
    length = length or sweep_length()
    benchmarks = benchmarks or experiment_benchmarks()
    prefetch([SweepJob("w16", bench, length) for bench in benchmarks]
             + [SweepJob(config, bench, length, predictor_entries=entries)
                for config in configs for entries in entries_grid
                for bench in benchmarks])
    baseline = {bench: run_cached("w16", bench, length).ipc
                for bench in benchmarks}
    series: Dict[str, List[float]] = {}
    for config in configs:
        series[config] = []
        for entries in entries_grid:
            product = 1.0
            for bench in benchmarks:
                result = run_cached(config, bench, length,
                                    predictor_entries=entries)
                product *= result.ipc / baseline[bench]
            series[config].append(product ** (1.0 / len(benchmarks)))
    return {"entries": list(entries_grid), "speedup": series}


def format_figure10(data: Dict) -> str:
    """Render Figure 10 (predictor size sensitivity) as a text table."""
    xs = [e // 1024 for e in data["entries"]]
    text = series_table(
        "Figure 10: Sensitivity to fragment-predictor size "
        "(speedup over W16 @ 64K entries)",
        "K entries", xs, data["speedup"])
    gains = []
    for config, values in data["speedup"].items():
        doublings = len(values) - 1
        if values[0] > 0 and doublings:
            per_doubling = ((values[-1] / values[0])
                            ** (1.0 / doublings) - 1.0) * 100
        else:
            per_doubling = 0.0
        gains.append([config, per_doubling])
    return (text + "\n\nGain per predictor doubling "
            "(paper: ~1.25%)\n"
            + format_table(["Mechanism", "%/doubling"], gains,
                           float_fmt="{:.2f}"))
