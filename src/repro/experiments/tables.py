"""Table 1 (simulation parameters) and Table 2 (benchmark characteristics)."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.config import ProcessorConfig
from repro.experiments.common import experiment_benchmarks, experiment_length
from repro.experiments.runner import parallel_map
from repro.stats import format_table
from repro.workloads.suite import characterize

#: Average fragment sizes reported in the paper's Table 2.
PAPER_TABLE2 = {
    "bzip2": 12.79, "crafty": 11.99, "eon": 10.98, "gap": 10.69,
    "gcc": 11.15, "gzip": 12.06, "mcf": 9.04, "parser": 10.35,
    "perl": 11.32, "twolf": 12.16, "vortex": 11.20, "vpr": 12.33,
}


def table1(config: Optional[ProcessorConfig] = None) -> str:
    """Render the Table 1 simulation parameters from the live config."""
    config = config or ProcessorConfig()
    memory, backend = config.memory, config.backend
    predictor, liveout = config.trace_predictor, config.liveout_predictor
    fe = config.frontend
    rows = [
        ["Width", f"fetch/decode/commit {backend.commit_width}/cycle"],
        ["Functional units",
         f"{backend.fu_counts['ialu']} int adders, "
         f"{backend.fu_counts['imul']} int multipliers, "
         f"{backend.fu_counts['fadd']} FP adders, "
         f"{backend.fu_counts['fmul']} FP multiplier, "
         f"{backend.fu_counts['mem']} load/store units"],
        ["Window", f"{backend.window_size}-entry instruction window"],
        ["L1 caches",
         f"{memory.l1i.size_bytes // 1024} KB, {memory.l1i.assoc}-way, "
         f"{memory.l1i.latency}-cycle, {memory.l1i.line_bytes} B blocks "
         f"({memory.l1i.line_bytes // 4} instructions/block)"],
        ["L2 cache",
         f"{memory.l2.size_bytes // 1024} KB, {memory.l2.assoc}-way, "
         f"{memory.l2.latency}-cycle, {memory.l2.line_bytes} B blocks"],
        ["Memory", f"{memory.memory_latency}-cycle access"],
        ["Trace/fragment predictor",
         f"DOLC {predictor.depth}-{predictor.older_bits}-"
         f"{predictor.last_bits}-{predictor.current_bits}, "
         f"{predictor.primary_entries // 1024}K primary, "
         f"{predictor.secondary_entries // 1024}K secondary"],
        ["Parallel fetch & rename",
         f"{fe.num_fragment_buffers} fragment buffers x "
         f"{fe.fragment_buffer_size} instructions; "
         f"{liveout.assoc}-way {liveout.entries // 1024}K-entry "
         f"live-out predictor"],
    ]
    return "Table 1: Simulation Parameters\n" + format_table(
        ["Parameter", "Value"], rows)


def _characterize_job(args):
    name, length = args
    return characterize(name, length)


def table2(length: Optional[int] = None,
           benchmarks: Optional[List[str]] = None) -> Dict[str, Dict]:
    """Measure Table 2: benchmark characteristics of the synthetic suite.

    Characterization of each benchmark is independent, so the suite fans
    out over the runner's worker pool.
    """
    length = length or experiment_length()
    benchmarks = benchmarks or experiment_benchmarks()
    characteristics = parallel_map(
        _characterize_job, [(name, length) for name in benchmarks])
    rows = {}
    for name, measured in zip(benchmarks, characteristics):
        rows[name] = {
            "avg_fragment_length": measured.avg_fragment_length,
            "paper_avg_fragment_length": PAPER_TABLE2.get(name),
            "static_kb": measured.text_bytes / 1024,
            "dynamic_instructions": measured.dynamic_instructions,
        }
    return rows


def format_table2(rows: Dict[str, Dict]) -> str:
    """Render Table 2 (benchmark characteristics) as a text table."""
    table_rows = []
    for name, row in rows.items():
        table_rows.append([
            name, "synthetic", row["avg_fragment_length"],
            row["paper_avg_fragment_length"] or float("nan"),
            row["static_kb"],
        ])
    return "Table 2: Benchmark Characteristics\n" + format_table(
        ["Benchmark", "Input", "Avg frag size", "Paper avg", "Text KB"],
        table_rows, float_fmt="{:.2f}")
