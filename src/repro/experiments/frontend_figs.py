"""Figures 4, 5, 6 and 8 plus the in-text front-end statistics.

These all run over the same (configuration x benchmark) simulation matrix
(shared through :mod:`repro.experiments.common`'s memoization).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.common import (
    experiment_benchmarks,
    experiment_length,
    prefetch,
    run_cached,
    run_matrix,
)
from repro.experiments.runner import SweepJob
from repro.stats import format_table, harmonic_mean, percent_speedup

#: Mechanisms shown in Figure 4 (fetch-slot utilization).
FIG4_CONFIGS = ["w16", "tc", "tc2x", "pf-2x8w", "pf-4x4w"]
#: Paper's harmonic-mean utilizations (Section 5.1).
PAPER_FIG4 = {"w16": 0.40, "tc": 0.60, "tc2x": 0.60,
              "pf-2x8w": 0.70, "pf-4x4w": 0.80}

#: Mechanisms shown in Figure 5 (fetch & rename rates).
FIG5_CONFIGS = ["w16", "tc", "tc2x", "pf-2x8w", "pf-4x4w",
                "pr-2x8w", "pr-4x4w"]

#: Mechanisms shown in Figure 8 (percent speedup over W16).
FIG8_CONFIGS = ["tc", "tc2x", "pf-2x8w", "pf-4x4w", "pr-2x8w", "pr-4x4w"]


def figure4(length: Optional[int] = None,
            benchmarks: Optional[List[str]] = None) -> Dict:
    """Fetch-slot utilization per mechanism (harmonic mean across the
    suite), the Figure 4 experiment."""
    length = length or experiment_length()
    benchmarks = benchmarks or experiment_benchmarks()
    matrix = run_matrix(FIG4_CONFIGS, benchmarks, length)
    per_bench = {cfg: {b: r.slot_utilization for b, r in row.items()}
                 for cfg, row in matrix.items()}
    means = {cfg: harmonic_mean(list(values.values()))
             for cfg, values in per_bench.items()}
    return {"per_benchmark": per_bench, "hmean": means,
            "paper_hmean": PAPER_FIG4}


def format_figure4(data: Dict) -> str:
    """Render Figure 4 (fetch slot utilization) as a text table."""
    rows = [[cfg, data["hmean"][cfg], data["paper_hmean"][cfg]]
            for cfg in FIG4_CONFIGS]
    return ("Figure 4: Fetch Slot Utilization (harmonic mean)\n"
            + format_table(["Mechanism", "Measured", "Paper"], rows))


def figure5(length: Optional[int] = None,
            benchmarks: Optional[List[str]] = None) -> Dict:
    """Average fetch and rename rates per cycle, including wrong-path
    instructions — the Figure 5 experiment."""
    length = length or experiment_length()
    benchmarks = benchmarks or experiment_benchmarks()
    matrix = run_matrix(FIG5_CONFIGS, benchmarks, length)
    fetch = {}
    rename = {}
    for cfg, row in matrix.items():
        fetch[cfg] = harmonic_mean([r.fetch_rate for r in row.values()])
        rename[cfg] = harmonic_mean([r.rename_rate for r in row.values()])
    return {"fetch_rate": fetch, "rename_rate": rename,
            "per_benchmark": {
                cfg: {b: (r.fetch_rate, r.rename_rate)
                      for b, r in row.items()}
                for cfg, row in matrix.items()}}


def format_figure5(data: Dict) -> str:
    """Render Figure 5 (fetch/rename rates) as a text table."""
    rows = [[cfg, data["fetch_rate"][cfg], data["rename_rate"][cfg]]
            for cfg in FIG5_CONFIGS]
    return ("Figure 5: Instructions fetched & renamed per cycle "
            "(incl. wrong path)\n"
            + format_table(["Mechanism", "Fetch/cyc", "Rename/cyc"], rows))


def figure6(length: Optional[int] = None,
            benchmarks: Optional[List[str]] = None) -> Dict:
    """Performance penalty of a parallel renamer behind a trace cache
    (Figure 6), plus the renamed-before-source statistic of Section 5.2."""
    length = length or experiment_length()
    benchmarks = benchmarks or experiment_benchmarks()
    matrix = run_matrix(["tc", "tc+pr-2x8w", "tc+pr-4x4w"], benchmarks,
                        length)
    penalties = {}
    for cfg in ("tc+pr-2x8w", "tc+pr-4x4w"):
        slowdowns = []
        for bench in benchmarks:
            base = matrix["tc"][bench].ipc
            slowdowns.append((1.0 - matrix[cfg][bench].ipc / base) * 100.0)
        penalties[cfg] = sum(slowdowns) / len(slowdowns)
    before_source = {
        cfg: harmonic_mean([
            max(1e-9, matrix[cfg][b].renamed_before_source_fraction)
            for b in benchmarks])
        for cfg in ("tc+pr-2x8w", "tc+pr-4x4w")}
    return {"penalty_percent": penalties,
            "renamed_before_source": before_source,
            "paper_penalty": {"tc+pr-2x8w": 1.0, "tc+pr-4x4w": 3.5}}


def format_figure6(data: Dict) -> str:
    """Render Figure 6 (serial rename penalty) as a text table."""
    rows = [[cfg, data["penalty_percent"][cfg],
             data["paper_penalty"][cfg],
             100 * data["renamed_before_source"][cfg]]
            for cfg in ("tc+pr-2x8w", "tc+pr-4x4w")]
    return ("Figure 6: Parallel renaming with a trace cache — "
            "% slowdown vs monolithic rename\n"
            + format_table(["Renamer", "Slowdown %", "Paper %",
                            "Renamed-before-source %"], rows))


def figure8(length: Optional[int] = None,
            benchmarks: Optional[List[str]] = None) -> Dict:
    """Per-benchmark percent speedup over W16 (Figure 8)."""
    length = length or experiment_length()
    benchmarks = benchmarks or experiment_benchmarks()
    matrix = run_matrix(["w16"] + FIG8_CONFIGS, benchmarks, length)
    speedups: Dict[str, Dict[str, float]] = {}
    for cfg in FIG8_CONFIGS:
        speedups[cfg] = {}
        for bench in benchmarks:
            base = matrix["w16"][bench].ipc
            speedups[cfg][bench] = percent_speedup(matrix[cfg][bench].ipc,
                                                   base)
    means = {cfg: sum(values.values()) / len(values)
             for cfg, values in speedups.items()}
    return {"speedup_percent": speedups, "mean": means}


def format_figure8(data: Dict) -> str:
    """Render Figure 8 (per-benchmark speedups) as a text table."""
    benchmarks = sorted(next(iter(data["speedup_percent"].values())))
    rows = []
    for bench in benchmarks:
        rows.append([bench] + [data["speedup_percent"][cfg][bench]
                               for cfg in FIG8_CONFIGS])
    rows.append(["MEAN"] + [data["mean"][cfg] for cfg in FIG8_CONFIGS])
    return ("Figure 8: % speedup over W16\n"
            + format_table(["Benchmark"] + FIG8_CONFIGS, rows,
                           float_fmt="{:+.1f}"))


def text_statistics(length: Optional[int] = None,
                    benchmarks: Optional[List[str]] = None) -> Dict:
    """The in-text statistics of Sections 3.2, 3.3 and 5.3: fragment-buffer
    reuse, just-in-time fragment construction, and trace-cache hit rate."""
    length = length or experiment_length()
    benchmarks = benchmarks or experiment_benchmarks()
    prefetch([SweepJob(config, bench, length)
              for config in ("pf-2x8w", "tc") for bench in benchmarks])
    reuse = {}
    precon = {}
    tc_hit = {}
    for bench in benchmarks:
        pf = run_cached("pf-2x8w", bench, length)
        tc = run_cached("tc", bench, length)
        reuse[bench] = pf.fragment_reuse_rate
        precon[bench] = pf.preconstructed_fraction
        tc_hit[bench] = tc.trace_cache_hit_rate
    return {
        "fragment_reuse": reuse,
        "preconstructed": precon,
        "tc_hit_rate": tc_hit,
        "reuse_range": (min(reuse.values()), max(reuse.values())),
        "mean_preconstructed": sum(precon.values()) / len(precon),
        "mean_tc_hit_rate": sum(tc_hit.values()) / len(tc_hit),
        "paper": {"reuse_range": (0.20, 0.70), "preconstructed": 0.84,
                  "tc_hit_rate": 0.87},
    }


def format_text_statistics(data: Dict) -> str:
    """Render the Section 4 text statistics as a table."""
    rows = [[bench, data["fragment_reuse"][bench],
             data["preconstructed"][bench], data["tc_hit_rate"][bench]]
            for bench in sorted(data["fragment_reuse"])]
    header = format_table(
        ["Benchmark", "Frag reuse", "Constructed-before-rename",
         "TC hit rate"], rows)
    paper = data["paper"]
    summary = (
        f"\nreuse range: {data['reuse_range'][0]:.2f}-"
        f"{data['reuse_range'][1]:.2f} (paper {paper['reuse_range'][0]:.2f}-"
        f"{paper['reuse_range'][1]:.2f}); "
        f"mean constructed-before-rename: "
        f"{data['mean_preconstructed']:.2f} "
        f"(paper {paper['preconstructed']:.2f}); "
        f"mean TC hit rate: {data['mean_tc_hit_rate']:.2f} "
        f"(paper {paper['tc_hit_rate']:.2f})")
    return "In-text statistics (Sections 3.2/3.3/5.3)\n" + header + summary
