"""Two-level memory hierarchy with miss-status holding registers.

The hierarchy is shared plumbing for both instruction fetch and data
access.  A request returns the cycle at which the data becomes available;
requests to a line that is already in flight merge into the existing MSHR
and observe the same ready time, so overlapping misses to one line cost a
single memory round trip — the behaviour the parallel fetch unit exploits
to overlap cache misses (Section 2.2 and 5.5 of the paper).
"""

from __future__ import annotations

from typing import Dict

from repro.config import MemoryConfig
from repro.memory.cache import Cache
from repro.stats import StatsCollector


class MemoryPort:
    """One cache (L1) backed by a shared L2 and main memory.

    The port is deliberately simple: fills happen eagerly at request time
    (tag state updates immediately) while the *latency* of the miss is
    reported through the returned ready cycle and enforced by the
    requester.  MSHRs make concurrent requests to an in-flight line share
    one ready time.
    """

    def __init__(self, l1: Cache, l2: Cache, memory_latency: int,
                 stats: StatsCollector, name: str):
        self.l1 = l1
        self.l2 = l2
        self.memory_latency = memory_latency
        self.stats = stats
        self.name = name
        #: line address -> cycle at which the in-flight fill completes.
        self._mshrs: Dict[int, int] = {}
        # Hot-path precomputes: access() runs once per modelled memory
        # request and the f-string stat keys plus config chasing showed
        # up in profiles.
        self._merges_key = f"{name}.mshr_merges"
        self._miss_key = f"{name}.miss_requests"
        self._line_shift = l1.config.line_bytes.bit_length() - 1
        self._l1_latency = l1.config.latency

    def access(self, addr: int, now: int) -> int:
        """Request the line containing *addr* at cycle *now*.

        Returns the cycle at which the data is available.  A ready cycle
        equal to ``now + l1.latency - 1`` means "available this cycle" for
        1-cycle L1s.
        """
        mshrs = self._mshrs
        if len(mshrs) > 64:
            self._expire_mshrs(now)
            mshrs = self._mshrs
        line = addr >> self._line_shift
        if mshrs.get(line, -1) > now:
            # Merge with the in-flight miss; no new tag activity.
            self.stats.add(self._merges_key)
            return mshrs[line]

        if self.l1.lookup(addr):
            return now + self._l1_latency - 1

        # L1 miss: probe L2, then memory.
        latency = self._l1_latency
        if self.l2.lookup(addr):
            latency += self.l2.config.latency
        else:
            latency += self.l2.config.latency + self.memory_latency
            self.l2.fill(addr)
        self.l1.fill(addr)
        ready = now + latency - 1
        mshrs[line] = ready
        self.stats.add(self._miss_key)
        return ready

    def is_hit(self, addr: int) -> bool:
        """Non-destructive L1 residence check (no stats, no LRU)."""
        return self.l1.probe(addr)

    def _expire_mshrs(self, now: int) -> None:
        if len(self._mshrs) > 64:
            self._mshrs = {line: ready for line, ready in self._mshrs.items()
                           if ready > now}

    @property
    def l1_latency(self) -> int:
        """Hit latency of the port's L1 cache, in cycles."""
        return self.l1.config.latency


class MemoryHierarchy:
    """The full Table 1 hierarchy: split L1 I/D over a unified L2."""

    def __init__(self, config: MemoryConfig, stats: StatsCollector):
        self.config = config
        self.stats = stats
        self.l1i = Cache(config.l1i, "l1i", stats)
        self.l1d = Cache(config.l1d, "l1d", stats)
        self.l2 = Cache(config.l2, "l2", stats)
        self.iport = MemoryPort(self.l1i, self.l2, config.memory_latency,
                                stats, "imem")
        self.dport = MemoryPort(self.l1d, self.l2, config.memory_latency,
                                stats, "dmem")

    def ibank_of(self, addr: int) -> int:
        """Instruction-cache bank serving byte address *addr*."""
        return self.l1i.bank_of(addr)

    @property
    def num_ibanks(self) -> int:
        """Number of L1 instruction-cache banks."""
        return self.config.l1i.banks

    def fetch_line(self, addr: int, now: int) -> int:
        """Instruction fetch request; returns the ready cycle."""
        return self.iport.access(addr, now)

    def data_access(self, addr: int, now: int) -> int:
        """Data load/store request; returns the ready cycle."""
        return self.dport.access(addr, now)
