"""Set-associative cache model with true-LRU replacement.

This is a tag-array-only model: caches track which lines are resident, not
their contents (the functional emulator owns all values).  That is exactly
what a timing simulator needs and matches how SimpleScalar-derived models
work.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from repro.config import CacheConfig
from repro.stats import StatsCollector


class Cache:
    """One level of set-associative cache (tags only, true LRU)."""

    def __init__(self, config: CacheConfig, name: str,
                 stats: Optional[StatsCollector] = None):
        self.config = config
        self.name = name
        self.stats = stats if stats is not None else StatsCollector()
        self._line_shift = config.line_bytes.bit_length() - 1
        self._num_sets = config.num_sets
        # Each set maps line-address -> None in LRU order (oldest first).
        self._sets: List[OrderedDict] = [OrderedDict()
                                         for _ in range(self._num_sets)]
        # Stat keys, precomputed: lookup/fill run once per modelled cache
        # access and the f-string formatting dominated their cost.
        self._hits_key = f"{name}.hits"
        self._misses_key = f"{name}.misses"
        self._evictions_key = f"{name}.evictions"
        self._fills_key = f"{name}.fills"

    # -- address helpers ---------------------------------------------------

    def line_addr(self, addr: int) -> int:
        """Line-aligned address containing byte *addr*."""
        return addr >> self._line_shift

    def set_index(self, line: int) -> int:
        """Set index serving line-address *line*."""
        return line % self._num_sets

    def bank_of(self, addr: int) -> int:
        """Bank serving byte *addr* (lines interleave across banks)."""
        return self.line_addr(addr) % self.config.banks

    # -- operations ----------------------------------------------------------

    def lookup(self, addr: int, update_lru: bool = True) -> bool:
        """Tag check for the line containing *addr*.

        Counts a hit or miss.  On a hit the line is promoted to MRU unless
        *update_lru* is false.
        """
        line = addr >> self._line_shift
        cache_set = self._sets[line % self._num_sets]
        if line in cache_set:
            if update_lru:
                cache_set.move_to_end(line)
            self.stats.add(self._hits_key)
            return True
        self.stats.add(self._misses_key)
        return False

    def probe(self, addr: int) -> bool:
        """Tag check with no statistics and no LRU update."""
        line = addr >> self._line_shift
        return line in self._sets[line % self._num_sets]

    def fill(self, addr: int) -> Optional[int]:
        """Install the line containing *addr*; return the evicted line
        address (or None).  Filling a resident line just promotes it."""
        line = addr >> self._line_shift
        cache_set = self._sets[line % self._num_sets]
        if line in cache_set:
            cache_set.move_to_end(line)
            return None
        victim = None
        if len(cache_set) >= self.config.assoc:
            victim, _ = cache_set.popitem(last=False)
            self.stats.add(self._evictions_key)
        cache_set[line] = None
        self.stats.add(self._fills_key)
        return victim

    def adopt_state(self, donor: "Cache") -> None:
        """Clone *donor*'s resident lines and LRU order (tags only, so a
        shallow per-set copy is a full state clone)."""
        if donor.config != self.config:
            raise ValueError(f"{self.name}: cache geometry mismatch "
                             "in adopt_state")
        self._sets = [OrderedDict(s) for s in donor._sets]

    def invalidate_all(self) -> None:
        """Empty every set (used between warming and timed runs)."""
        for cache_set in self._sets:
            cache_set.clear()

    # -- reporting --------------------------------------------------------

    @property
    def miss_rate(self) -> float:
        """Misses over accesses so far."""
        hits = self.stats.get(f"{self.name}.hits")
        misses = self.stats.get(f"{self.name}.misses")
        total = hits + misses
        return misses / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cfg = self.config
        return (f"Cache({self.name}, {cfg.size_bytes // 1024}KB, "
                f"{cfg.assoc}-way, {cfg.line_bytes}B lines)")
