"""Cache and memory-hierarchy models."""

from repro.memory.cache import Cache
from repro.memory.hierarchy import MemoryHierarchy, MemoryPort

__all__ = ["Cache", "MemoryHierarchy", "MemoryPort"]
