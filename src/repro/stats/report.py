"""Aggregation and presentation helpers for experiment results.

The paper reports harmonic means across benchmarks for rate-like metrics
(fetch-slot utilization, IPC-relative speedups use the same convention);
these helpers implement the means plus simple fixed-width text tables so
benchmark harnesses can print rows directly comparable with the paper's
figures.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Sequence


def arithmetic_mean(values: Iterable[float]) -> float:
    """Arithmetic mean; raises ValueError on an empty sequence."""
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean; raises on empty input or non-positive values."""
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("harmonic mean requires positive values")
    return len(values) / sum(1.0 / v for v in values)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; requires a non-empty, all-positive sequence."""
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def speedup(value: float, baseline: float) -> float:
    """Relative speedup of *value* over *baseline* (1.0 = equal)."""
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return value / baseline


def percent_speedup(value: float, baseline: float) -> float:
    """Percent speedup over a baseline, as plotted in Figure 8."""
    return (speedup(value, baseline) - 1.0) * 100.0


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 float_fmt: str = "{:.3f}") -> str:
    """Render a fixed-width text table.

    Floats are formatted with *float_fmt*; everything else with ``str``.
    """
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    text_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(row) for row in text_rows)
    return "\n".join(out)


def summarize_by_benchmark(results: Mapping[str, Mapping[str, float]],
                           metric: str) -> Dict[str, float]:
    """Extract one metric per benchmark from a nested result mapping."""
    return {bench: metrics[metric] for bench, metrics in results.items()}


def series_table(title: str, x_label: str, xs: Sequence[object],
                 series: Mapping[str, Sequence[float]]) -> str:
    """Render a figure-like table: one row per x value, one column per
    named series — the textual equivalent of a line chart."""
    headers: List[str] = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [series[name][i] for name in series])
    return f"{title}\n{format_table(headers, rows)}"
