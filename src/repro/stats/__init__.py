"""Statistics collection and reporting."""

from repro.stats.counters import StatsCollector, ThreadSafeStatsCollector
from repro.stats.report import (
    arithmetic_mean,
    format_table,
    geometric_mean,
    harmonic_mean,
    percent_speedup,
    series_table,
    speedup,
    summarize_by_benchmark,
)

__all__ = [
    "StatsCollector",
    "ThreadSafeStatsCollector",
    "arithmetic_mean",
    "harmonic_mean",
    "geometric_mean",
    "speedup",
    "percent_speedup",
    "format_table",
    "series_table",
    "summarize_by_benchmark",
]
