"""Event counting for the timing model.

Every hardware model in the simulator shares one :class:`StatsCollector`
and bumps named counters on events.  Counters are created on first use;
reading a counter that was never bumped returns 0, which keeps reporting
code independent of which mechanisms were actually instantiated.

Thread-safety: :class:`StatsCollector` is deliberately lock-free — every
per-simulation collector is confined to the thread (or pool worker
process) running that simulation, and a lock in ``add`` would tax the
simulator's hottest path.  Collectors that *are* shared across threads —
the process-wide ``SWEEP_STATS`` accumulator, the job server's service
counters — must use :class:`ThreadSafeStatsCollector`, whose mutators
and snapshot reads hold a lock (``value += amount`` is a read-modify-
write, so concurrent ``add`` calls on the plain class lose updates).
"""

from __future__ import annotations

import threading
from collections import defaultdict
from typing import Dict, Iterator, Tuple


class StatsCollector:
    """A bag of named event counters.

    Counter names are dotted paths by convention, e.g. ``fetch.slots``,
    ``l1i.misses``, ``rename.insts``.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, float] = defaultdict(float)
        #: Names written through :meth:`set` — point-in-time gauges
        #: (worker counts, wall-clock seconds, utilization).  Merging a
        #: gauge overwrites (last writer wins) instead of summing.
        self._gauges: set = set()
        #: Names written through :meth:`maximum` — high-water marks.
        #: Merging takes the max of both sides.
        self._highwater: set = set()

    def add(self, name: str, amount: float = 1.0) -> None:
        """Increment counter *name* by *amount*."""
        self._counters[name] += amount

    def set(self, name: str, value: float) -> None:
        """Set gauge *name* to an absolute value.

        ``set`` marks the name as a gauge: :meth:`merge` overwrites it
        (last writer wins) rather than summing, so point-in-time values
        like ``sweep.workers`` or ``sweep.utilization`` stay meaningful
        when sweeps accumulate into a process-wide collector.
        """
        self._counters[name] = value
        self._gauges.add(name)

    def maximum(self, name: str, value: float) -> None:
        """Raise high-water mark *name* to *value* if currently lower.

        ``maximum`` marks the name as a high-water mark: :meth:`merge`
        takes the larger of both sides instead of summing.
        """
        self._highwater.add(name)
        if value > self._counters.get(name, float("-inf")):
            self._counters[name] = value

    def get(self, name: str) -> float:
        """Current value of *name* (0 if never touched)."""
        return self._counters.get(name, 0.0)

    def __getitem__(self, name: str) -> float:
        return self.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._counters

    def ratio(self, numerator: str, denominator: str) -> float:
        """``numerator / denominator``, or 0.0 if the denominator is 0."""
        denom = self.get(denominator)
        return self.get(numerator) / denom if denom else 0.0

    def items(self) -> Iterator[Tuple[str, float]]:
        """(name, value) pairs in sorted name order."""
        return iter(sorted(self._counters.items()))

    def with_prefix(self, prefix: str) -> Dict[str, float]:
        """All counters whose name starts with ``prefix.``."""
        dot = prefix if prefix.endswith(".") else prefix + "."
        return {k: v for k, v in self._counters.items() if k.startswith(dot)}

    def as_dict(self) -> Dict[str, float]:
        """A plain-dict copy of every counter."""
        return dict(self._counters)

    def merge(self, other: "StatsCollector") -> None:
        """Fold every counter from *other* into this collector.

        Plain event counters (written with :meth:`add`) sum.  Gauges
        (written with :meth:`set`) overwrite — last writer wins — and
        high-water marks (written with :meth:`maximum`) take the max,
        in both cases as classified by *other*.  Summing a gauge like
        ``sweep.workers`` across merges would turn "8 workers" into
        "24 workers after three sweeps", which is never the question
        being asked.
        """
        for name, value in other._counters.items():
            if name in other._gauges:
                self._counters[name] = value
                self._gauges.add(name)
            elif name in other._highwater:
                self._highwater.add(name)
                if value > self._counters.get(name, float("-inf")):
                    self._counters[name] = value
            else:
                self._counters[name] += value

    def reset(self) -> None:
        """Forget every counter (no phantom zero-valued entries remain).

        Unlike ``set(name, 0.0)`` per counter, names disappear entirely,
        so ``__contains__``, :meth:`as_dict` and :meth:`with_prefix` see a
        collector indistinguishable from a fresh one.
        """
        self._counters.clear()
        self._gauges.clear()
        self._highwater.clear()

    # ``clear`` mirrors the dict/set vocabulary.
    clear = reset

    def state(self) -> Tuple[Dict[str, float], frozenset, frozenset]:
        """A picklable snapshot of the collector's complete state.

        Unlike :meth:`as_dict`, the snapshot preserves the gauge /
        high-water classification, so :meth:`restore_state` rebuilds a
        collector whose future :meth:`merge` behaviour is identical —
        the contract checkpoint/restore depends on.
        """
        return (dict(self._counters), frozenset(self._gauges),
                frozenset(self._highwater))

    def restore_state(
        self, state: Tuple[Dict[str, float], frozenset, frozenset],
    ) -> None:
        """Replace all state with a snapshot taken by :meth:`state`."""
        counters, gauges, highwater = state
        self._counters.clear()
        self._counters.update(counters)
        self._gauges = set(gauges)
        self._highwater = set(highwater)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StatsCollector({len(self._counters)} counters)"


class ThreadSafeStatsCollector(StatsCollector):
    """A :class:`StatsCollector` safe to mutate from multiple threads.

    Every mutator (``add``/``set``/``maximum``/``merge``/``reset``) and
    every multi-item snapshot (``items``/``as_dict``/``with_prefix``)
    runs under one reentrant lock, so concurrent increments never lose
    updates and snapshots never observe a half-applied ``merge``.
    Single-value reads (:meth:`StatsCollector.get`) stay lock-free —
    reading one float is atomic under the GIL.

    Use this for collectors shared across threads (the sweep runner's
    process-wide ``SWEEP_STATS``, the job server's service counters);
    per-simulation collectors stay on the lock-free base class because
    they are thread-confined and ``add`` sits on the simulator hot path.
    """

    def __init__(self) -> None:
        super().__init__()
        self._lock = threading.RLock()

    def add(self, name: str, amount: float = 1.0) -> None:
        """Increment counter *name* by *amount* (atomically)."""
        with self._lock:
            super().add(name, amount)

    def set(self, name: str, value: float) -> None:
        """Set gauge *name* to an absolute value (atomically)."""
        with self._lock:
            super().set(name, value)

    def maximum(self, name: str, value: float) -> None:
        """Raise high-water mark *name* to *value* (atomically)."""
        with self._lock:
            super().maximum(name, value)

    def merge(self, other: "StatsCollector") -> None:
        """Fold *other* in under the lock (one atomic batch).

        *other* is typically a thread-confined per-sweep collector, so
        only this side needs the lock.
        """
        with self._lock:
            super().merge(other)

    def reset(self) -> None:
        """Forget every counter (atomically)."""
        with self._lock:
            super().reset()

    clear = reset

    def items(self) -> Iterator[Tuple[str, float]]:
        """(name, value) pairs from one consistent snapshot."""
        with self._lock:
            return iter(sorted(self._counters.items()))

    def as_dict(self) -> Dict[str, float]:
        """A consistent plain-dict copy of every counter."""
        with self._lock:
            return dict(self._counters)

    def with_prefix(self, prefix: str) -> Dict[str, float]:
        """All counters under ``prefix.`` from one consistent snapshot."""
        with self._lock:
            return super().with_prefix(prefix)

    def state(self) -> Tuple[Dict[str, float], frozenset, frozenset]:
        """One consistent picklable snapshot of the complete state."""
        with self._lock:
            return super().state()

    def restore_state(
        self, state: Tuple[Dict[str, float], frozenset, frozenset],
    ) -> None:
        """Replace all state with a snapshot (atomically)."""
        with self._lock:
            super().restore_state(state)
