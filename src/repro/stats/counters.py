"""Event counting for the timing model.

Every hardware model in the simulator shares one :class:`StatsCollector`
and bumps named counters on events.  Counters are created on first use;
reading a counter that was never bumped returns 0, which keeps reporting
code independent of which mechanisms were actually instantiated.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, Tuple


class StatsCollector:
    """A bag of named event counters.

    Counter names are dotted paths by convention, e.g. ``fetch.slots``,
    ``l1i.misses``, ``rename.insts``.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, float] = defaultdict(float)

    def add(self, name: str, amount: float = 1.0) -> None:
        """Increment counter *name* by *amount*."""
        self._counters[name] += amount

    def set(self, name: str, value: float) -> None:
        """Set counter *name* to an absolute value."""
        self._counters[name] = value

    def maximum(self, name: str, value: float) -> None:
        """Raise counter *name* to *value* if it is currently lower.

        Used for high-water marks (e.g. the sweep runner's worst-case
        attempt count) that must survive :meth:`merge` sensibly — merging
        adds, so high-water marks should be read per collection; this
        helper just keeps the update race-free and self-documenting.
        """
        if value > self._counters.get(name, float("-inf")):
            self._counters[name] = value

    def get(self, name: str) -> float:
        """Current value of *name* (0 if never touched)."""
        return self._counters.get(name, 0.0)

    def __getitem__(self, name: str) -> float:
        return self.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._counters

    def ratio(self, numerator: str, denominator: str) -> float:
        """``numerator / denominator``, or 0.0 if the denominator is 0."""
        denom = self.get(denominator)
        return self.get(numerator) / denom if denom else 0.0

    def items(self) -> Iterator[Tuple[str, float]]:
        return iter(sorted(self._counters.items()))

    def with_prefix(self, prefix: str) -> Dict[str, float]:
        """All counters whose name starts with ``prefix.``."""
        dot = prefix if prefix.endswith(".") else prefix + "."
        return {k: v for k, v in self._counters.items() if k.startswith(dot)}

    def as_dict(self) -> Dict[str, float]:
        return dict(self._counters)

    def merge(self, other: "StatsCollector") -> None:
        """Accumulate every counter from *other* into this collector."""
        for name, value in other._counters.items():
            self._counters[name] += value

    def reset(self) -> None:
        """Forget every counter (no phantom zero-valued entries remain).

        Unlike ``set(name, 0.0)`` per counter, names disappear entirely,
        so ``__contains__``, :meth:`as_dict` and :meth:`with_prefix` see a
        collector indistinguishable from a fresh one.
        """
        self._counters.clear()

    # ``clear`` mirrors the dict/set vocabulary.
    clear = reset

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StatsCollector({len(self._counters)} counters)"
