"""Pipeline tracing: per-instruction lifecycle records and "pipeview"
rendering.

Collects the rename/dispatch/issue/complete/commit timestamps of every
*committed* instruction from a simulation and renders the classic
pipeline diagram — one row per instruction, one column per cycle:

.. code-block:: text

    seq     pc      instruction        cycles 100..140
    612     0x12a4  add  t0, t1, t2    R.DIEC
    613     0x12a8  ld   t3, 0(t0)     R.D..IE....C

Legend: ``R`` renamed, ``D`` entered the window (dispatched), ``I``
issued, ``E`` completed execution, ``C`` committed, ``.`` waiting.

This is a debugging/teaching tool, not a measurement path: it re-runs
the simulation with the processor's commit log enabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Union

from repro.config import ProcessorConfig, frontend_config
from repro.core.processor import Processor
from repro.core.uop import MicroOp
from repro.core.warming import warm_processor
from repro.emulator.machine import Machine
from repro.isa.disassembler import format_instruction
from repro.isa.program import Program
from repro.workloads import suite


@dataclass
class UopTrace:
    """Lifecycle of one committed instruction."""

    seq: int
    pc: int
    text: str
    renamed: int
    dispatched: int
    issued: int
    completed: int
    committed: int

    @classmethod
    def from_uop(cls, uop: MicroOp) -> "UopTrace":
        """Snapshot one committed uop's pipeline timestamps."""
        return cls(seq=uop.seq, pc=uop.pc,
                   text=format_instruction(uop.inst),
                   renamed=uop.renamed_cycle,
                   dispatched=uop.dispatch_ready_cycle,
                   issued=uop.issue_cycle,
                   completed=uop.complete_cycle,
                   committed=uop.commit_cycle)


def trace_simulation(config: Union[str, ProcessorConfig],
                     benchmark: Union[str, Program],
                     max_instructions: int = 2000,
                     warm: bool = True) -> List[UopTrace]:
    """Run a simulation collecting the lifecycle of every committed uop."""
    if isinstance(config, str):
        config = frontend_config(config)
    if isinstance(benchmark, str):
        program = suite.get_benchmark(benchmark)
        oracle = suite.oracle_stream(benchmark, max_instructions).stream
    else:
        program = benchmark
        oracle = Machine(program).run(max_instructions).stream
    processor = Processor(config, program, oracle)
    processor.uop_log = []
    if warm:
        warm_processor(processor, oracle)
    processor.run()
    return [UopTrace.from_uop(uop) for uop in processor.uop_log]


def format_pipeview(traces: List[UopTrace], start: int = 0,
                    count: int = 32,
                    max_width: int = 72) -> str:
    """Render a window of the trace as a pipeline diagram."""
    window = traces[start:start + count]
    if not window:
        return "(empty trace window)"
    first_cycle = min(t.renamed for t in window)
    last_cycle = min(max(t.committed for t in window),
                     first_cycle + max_width - 1)

    lines = [f"cycles {first_cycle}..{last_cycle} "
             f"(R=rename D=dispatch I=issue E=execute-done C=commit)"]
    for t in window:
        row = []
        for cycle in range(first_cycle, last_cycle + 1):
            if cycle == t.renamed:
                mark = "R"
            elif cycle == t.dispatched:
                mark = "D"
            elif cycle == t.issued:
                mark = "I"
            elif cycle == t.completed:
                mark = "E"
            elif cycle == t.committed:
                mark = "C"
            elif t.renamed < cycle < t.committed:
                mark = "."
            else:
                mark = " "
            row.append(mark)
        lines.append(f"{t.pc:#08x}  {t.text:<24.24} |{''.join(row)}|")
    return "\n".join(lines)


def pipeline_summary(traces: List[UopTrace]) -> dict:
    """Aggregate latency statistics over a trace."""
    if not traces:
        return {}
    waits = [t.issued - t.dispatched for t in traces if t.issued >= 0]
    lifetimes = [t.committed - t.renamed for t in traces
                 if t.committed >= 0]
    return {
        "instructions": len(traces),
        "avg_wait_cycles": sum(waits) / len(waits) if waits else 0.0,
        "avg_lifetime_cycles": (sum(lifetimes) / len(lifetimes)
                                if lifetimes else 0.0),
        "max_lifetime_cycles": max(lifetimes) if lifetimes else 0,
    }
