"""The simulated processor: pipeline driver tying every model together.

Per cycle, in reverse pipeline order:

1. **execute/writeback** (:class:`~repro.backend.core.OutOfOrderCore`) —
   completions may resolve control mispredictions and redirect fetch;
2. **commit** — in-order retirement, predictor training via the
   commit-side fragment carver;
3. **rename** — monolithic or parallel, producing uops dispatched into
   the window after a short dispatch pipeline;
4. **fetch** — the fill engine advances its sequencers/trace cache, then
   at most one new fragment is predicted and allocated a buffer.

The oracle dynamic stream defines the correct path.  Fragments are tagged
against it at creation: the first fetched instruction that diverges from
the oracle pins the misprediction on the preceding (control) instruction,
and when that uop executes the processor squashes younger work, restores
front-end checkpoints and redirects fetch — so wrong-path instructions
occupy fetch slots, buffers, rename bandwidth and window entries for
exactly the mis-speculation window, as in an execution-driven simulator.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs import Observability
    from repro.obs.live import LiveTelemetry
    from repro.obs.profiling import PhaseProfiler

from repro.config import ProcessorConfig
from repro.core.invariants import InvariantChecker, PipelineWatchdog
from repro.core.uop import DecodeCache, MicroOp, PlaceholderProducer, UopState
from repro.perf import PerfConfig
from repro.perf.soa import SharedStream, SoAState
from repro.backend.core import OutOfOrderCore
from repro.emulator.stream import DynamicInstruction
from repro.errors import ConfigError, SimulationError
from repro.frontend.buffers import FragmentBufferArray, FragmentInFlight
from repro.frontend.control import FrontEndControl
from repro.frontend.engines import (
    FillEngine,
    ParallelFillEngine,
    SequentialFillEngine,
    TraceCacheFillEngine,
)
from repro.frontend.fragments import FragmentKey, should_terminate
from repro.frontend.trace_cache import TraceCache
from repro.isa.program import Program
from repro.isa.registers import ZERO_REG
from repro.memory.hierarchy import MemoryHierarchy
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.liveout import LiveOutPredictor, compute_liveouts
from repro.predictors.return_stack import ReturnAddressStack
from repro.predictors.trace_predictor import TracePredictor
from repro.rename.monolithic import MonolithicRenamer
from repro.rename.parallel import ParallelRenamer
from repro.stats import StatsCollector


#: Sentinel for "resolve from the environment" (None means "disabled").
_FROM_ENV = object()


class Processor:
    """One simulated processor instance (one benchmark run)."""

    def __init__(self, config: ProcessorConfig, program: Program,
                 oracle: List[DynamicInstruction],
                 watchdog=_FROM_ENV, invariants=_FROM_ENV,
                 obs: Optional["Observability"] = None,
                 live: Optional["LiveTelemetry"] = None,
                 perf: Optional[PerfConfig] = None,
                 shared: Optional[SharedStream] = None):
        self.config = config
        self.program = program
        self.stats = StatsCollector()
        #: Speed-tier selection (``REPRO_FAST``); never affects results.
        self.perf = perf if perf is not None else PerfConfig.from_env()

        #: Opt-in observability (see :mod:`repro.obs`); None = disabled.
        self.obs = obs
        self._tracer = obs.tracer if obs is not None else None
        #: Opt-in live telemetry publisher (read-only snapshots of this
        #: processor to a status file; see :mod:`repro.obs.live`).
        self.live = live

        if config.frontend.fragment_buffer_size < config.fragment.max_length:
            raise ConfigError(
                f"fragment buffers hold {config.frontend.fragment_buffer_size}"
                f" instructions but fragments may reach "
                f"{config.fragment.max_length}")

        # NOPs are eliminated before they reach any pipeline statistic.
        self._oracle = [r for r in oracle if not r.inst.is_nop]
        if not self._oracle:
            raise SimulationError("empty oracle stream")

        self.memory = MemoryHierarchy(config.memory, self.stats)
        self.trace_predictor = TracePredictor(config.trace_predictor,
                                              self.stats)
        self.liveout_predictor = LiveOutPredictor(config.liveout_predictor,
                                                  self.stats)
        self.ras = ReturnAddressStack()
        self.bimodal = BimodalPredictor(stats=self.stats)
        self.control = FrontEndControl(program, config.fragment,
                                       self.trace_predictor, self.ras,
                                       self.stats, self._oracle[0].pc,
                                       direction_fallback=self.bimodal.predict,
                                       walk_cache=self.perf.fast,
                                       walk_memo=self.perf.soa)
        self.buffers = FragmentBufferArray(
            config.frontend.num_fragment_buffers, self.stats)
        self.trace_cache: Optional[TraceCache] = None
        self.engine = self._build_engine()
        self.core = OutOfOrderCore(config.backend, self.memory, self.stats)
        self.renamer = self._build_renamer()
        # Co-simulation (repro.perf.cosim) injects one SharedStream per
        # stream group: the decode cache and SoA tables below are pure
        # per (stream, fragment config), so sibling processors on the
        # same stream share them without perturbing result identity.
        # Ignored at tier 0, where the reference loop has neither.
        if shared is not None and self.perf.fast:
            if len(shared.oracle_pcs) != len(self._oracle):
                raise SimulationError(
                    "shared stream does not match this oracle stream")
            self.decode_cache = shared.decode_cache
            self._soa = (
                SoAState(self._oracle, self.decode_cache,
                         oracle_pcs=shared.oracle_pcs,
                         meta=shared.meta_for(config.fragment))
                if self.perf.soa else None)
        else:
            #: Decoded-uop cache: recurring fragments reuse one immutable
            #: :class:`~repro.core.uop.DecodedUop` per static instruction
            #: instead of re-deriving operands/pool/latency every rename.
            #: None under ``REPRO_FAST=0`` (the golden-parity reference
            #: loop).
            self.decode_cache = DecodeCache() if self.perf.fast else None
            #: Tier-2 batched state (``REPRO_FAST=2``): flat oracle PCs
            #: plus per-static-fragment metadata; None below tier 2.
            self._soa = (
                SoAState(self._oracle, self.decode_cache)
                if self.perf.soa and self.decode_cache is not None else None)
        #: Fetch-time oracle tagger (the SoA tier swaps in the batched
        #: slice-compare variant; both produce identical ``records``).
        self._tagger = (self._tag_fragment_soa if self._soa is not None
                        else self._tag_fragment)

        #: In-flight fragments, oldest first (committed ones are removed).
        self.fragments: List[FragmentInFlight] = []
        self.now = 0
        self._oracle_pos = 0
        self._diverged = False
        self._committed = 0
        #: Oracle record count at which the run stops (the whole stream by
        #: default; :meth:`run_until` moves it for sampled windows).
        self._stop_at = len(self._oracle)
        self._done = False
        self._deferred_redirects: List[MicroOp] = []
        #: Fragments awaiting selective re-execution fix-up (their rename
        #: must finish before actual mappings are known).
        self._pending_reexec: set = set()
        #: When set (by tracing tools), every committed uop is appended.
        self.uop_log: Optional[List[MicroOp]] = None

        #: Forward-progress watchdog (None = disabled) and opt-in
        #: per-cycle state audits (see :mod:`repro.core.invariants`).
        self.watchdog: Optional[PipelineWatchdog] = (
            PipelineWatchdog.from_env() if watchdog is _FROM_ENV
            else watchdog)
        self.invariants: Optional[InvariantChecker] = (
            InvariantChecker.from_env() if invariants is _FROM_ENV
            else invariants)

        # Commit-side fragment carver (predictor training).
        self._carve_records: List[DynamicInstruction] = []
        self._carve_dirs: List[bool] = []
        #: Memoised ground-truth live-outs per carved fragment, keyed by
        #: ``(key, length)``.  A carve's instruction path is fully
        #: determined by its start PC, direction bits and length (an
        #: indirect always terminates a carve), and ``LiveOutInfo`` is an
        #: immutable tuple, so replaying the memo is exact.  Off under
        #: ``REPRO_FAST=0`` to keep the reference loop memo-free.
        self._liveout_memo: Optional[Dict] = {} if self.perf.fast else None
        #: Live-out recovery policy, hoisted for the SoA step.
        self._squash_mode = config.frontend.liveout_recovery == "squash"
        #: Whether the renamer exposes live-out misprediction queues
        #: (only :class:`ParallelRenamer` does), hoisted for the SoA step.
        self._renamer_parallel = isinstance(self.renamer, ParallelRenamer)

    # -- construction ---------------------------------------------------------

    def _build_engine(self) -> FillEngine:
        fe = self.config.frontend
        if fe.fetch_kind == "w16":
            return SequentialFillEngine(self.program, self.memory,
                                        self.stats, width=fe.width)
        if fe.fetch_kind == "tc":
            # Keep an existing trace cache across restart_at() rebuilds —
            # its contents are warmed state, not transient pipeline state.
            if self.trace_cache is None:
                self.trace_cache = TraceCache(fe.trace_cache, self.stats)
            return TraceCacheFillEngine(self.program, self.memory,
                                        self.trace_cache, self.stats,
                                        width=fe.width)
        if fe.fetch_kind == "pf":
            return ParallelFillEngine(self.program, self.memory, self.stats,
                                      sequencers=fe.sequencers,
                                      sequencer_width=fe.sequencer_width)
        raise ConfigError(f"unknown fetch kind {fe.fetch_kind!r}")

    def _build_renamer(self):
        fe = self.config.frontend
        delay = self.config.backend.dispatch_latency
        if fe.rename_kind == "monolithic":
            return MonolithicRenamer(fe.width, self.core, self.stats,
                                     dispatch_delay=delay)
        return ParallelRenamer(
            fe.renamers, fe.renamer_width, self.core,
            self.liveout_predictor, self.stats,
            use_liveout_prediction=(fe.rename_kind == "parallel"),
            dispatch_delay=delay)

    # -- main loop ---------------------------------------------------------

    def run(self, max_cycles: Optional[int] = None) -> "Processor":
        """Simulate until the oracle stream is fully committed.

        Raises :class:`~repro.errors.DeadlockError` if the pipeline stops
        committing (livelock) and :class:`~repro.errors.InvariantError`
        if the opt-in per-cycle audits find inconsistent state.
        """
        # max_cycles=0 must mean "run zero cycles", not "use the default".
        limit = (len(self._oracle) * 30 + 20_000) if max_cycles is None \
            else max_cycles
        watchdog, invariants = self.watchdog, self.invariants
        obs, live = self.obs, self.live
        metrics = obs.metrics if obs is not None else None
        profiler = obs.profiler if obs is not None else None
        step = self._step_soa if self._soa is not None else self.step
        if profiler is None:
            while not self._done and self.now < limit:
                step()
                if metrics is not None:
                    metrics.maybe_sample(self)
                if live is not None:
                    live.maybe_publish(self)
                if watchdog is not None:
                    watchdog.observe(self)
                if invariants is not None:
                    invariants.check(self)
        else:
            step_profiled = (self._step_soa_profiled
                             if self._soa is not None
                             else self._step_profiled)
            while not self._done and self.now < limit:
                step_profiled(profiler)
                t0 = profiler.start()
                if metrics is not None:
                    metrics.maybe_sample(self)
                if live is not None:
                    live.maybe_publish(self)
                if watchdog is not None:
                    watchdog.observe(self)
                if invariants is not None:
                    invariants.check(self)
                profiler.stop("observe", t0)
        self.stamp_summary(timed_out=not self._done)
        if obs is not None:
            obs.finalize(self)
        return self

    # -- sampled-simulation seam (see repro.sampling) -----------------------

    def run_until(self, stop_at: int,
                  max_cycles: Optional[int] = None) -> bool:
        """Run the timed loop until *stop_at* oracle records have committed.

        The thin seam :mod:`repro.sampling` drives detailed measurement
        windows through: unlike :meth:`run` it neither finalises
        observability nor stamps the ``sim.*`` summary counters, so a
        window's counter deltas stay clean.  ``self.now`` keeps
        accumulating across windows.  A :class:`PhaseProfiler` attached
        via ``obs`` does stay live here (the instrumented step is
        swapped in, exactly as in :meth:`run`), so sampled-mode host
        time is attributable too; the metrics recorder stays idle so
        windows see no mid-window gauge work.  Returns True when the
        commit target was reached, False on hitting the cycle bound
        (the caller decides whether that poisons the sample).
        """
        self._stop_at = min(stop_at, len(self._oracle))
        if self._committed >= self._stop_at:
            self._done = True
            return True
        self._done = False
        budget = ((self._stop_at - self._committed) * 30 + 20_000
                  if max_cycles is None else max_cycles)
        limit = self.now + budget
        watchdog, invariants = self.watchdog, self.invariants
        live = self.live
        profiler = self.obs.profiler if self.obs is not None else None
        step = self._step_soa if self._soa is not None else self.step
        if profiler is None:
            while not self._done and self.now < limit:
                step()
                if live is not None:
                    live.maybe_publish(self)
                if watchdog is not None:
                    watchdog.observe(self)
                if invariants is not None:
                    invariants.check(self)
        else:
            step_profiled = (self._step_soa_profiled
                             if self._soa is not None
                             else self._step_profiled)
            while not self._done and self.now < limit:
                step_profiled(profiler)
                t0 = profiler.start()
                if live is not None:
                    live.maybe_publish(self)
                if watchdog is not None:
                    watchdog.observe(self)
                if invariants is not None:
                    invariants.check(self)
                profiler.stop("observe", t0)
        return self._done

    def restart_at(self, index: int) -> None:
        """Restart timing from the architectural checkpoint at oracle
        record *index* (PC, retire index, clean speculative history).

        Rebuilds the *transient* pipeline state — in-flight fragments,
        buffers, fill engine, out-of-order core, renamer, RAS and
        front-end control — while deliberately keeping everything a long
        functional fast-forward would have left warm: predictors, caches,
        the trace cache and the decode cache.  ``self.now`` is not reset;
        callers measure cycle deltas.
        """
        if not 0 <= index < len(self._oracle):
            raise SimulationError(
                f"restart index {index} outside oracle stream "
                f"(0..{len(self._oracle) - 1})")
        self._oracle_pos = index
        self._diverged = False
        self._committed = index
        self._stop_at = len(self._oracle)
        self._done = False
        self._deferred_redirects = []
        self._pending_reexec = set()
        self._carve_records = []
        self._carve_dirs = []
        self.fragments = []
        fe = self.config.frontend
        self.buffers = FragmentBufferArray(fe.num_fragment_buffers,
                                           self.stats)
        self.ras = ReturnAddressStack()
        self.control = FrontEndControl(
            self.program, self.config.fragment, self.trace_predictor,
            self.ras, self.stats, self._oracle[index].pc,
            direction_fallback=self.bimodal.predict,
            walk_cache=self.perf.fast, walk_memo=self.perf.soa)
        self.engine = self._build_engine()
        self.core = OutOfOrderCore(self.config.backend, self.memory,
                                   self.stats)
        self.renamer = self._build_renamer()
        # History registers: speculative history restarts clean (exactly
        # as after warming); retire history keeps its trained state.
        self.trace_predictor.restore_history(())

    def step(self) -> None:
        """Advance the processor by one cycle."""
        self.now += 1
        completed = self.core.cycle(self.now)
        self._handle_completions(completed)
        self._commit()
        renamed = self.renamer.cycle(self.now, self.fragments,
                                     self._make_uop)
        if renamed:
            wrong = sum(1 for u in renamed if u.record is None)
            if wrong:
                self.stats.add("rename.wrongpath_insts", wrong)
            self.core.dispatch(renamed, self.now)
        if self.config.frontend.liveout_recovery == "squash":
            mispredict = getattr(self.renamer,
                                 "pending_liveout_mispredict", None)
            if mispredict is not None:
                self._liveout_squash(mispredict)
        else:
            for mispredict in getattr(self.renamer,
                                      "pending_liveout_mispredicts", ()):
                self._pending_reexec.add(mispredict.seq)
        if self._pending_reexec:
            self._drain_pending_reexec()
        self._release_renamed_buffers()
        self._fetch()

    def _step_profiled(self, prof: "PhaseProfiler") -> None:
        """:meth:`step` with per-phase wall-clock attribution.

        A verbatim copy of :meth:`step` bracketed with profiler probes —
        the default path must contain no timing calls at all, and the
        parity test in tests/test_obs.py fails if the two ever diverge.
        """
        self.now += 1
        t0 = prof.start()
        completed = self.core.cycle(self.now)
        self._handle_completions(completed)
        prof.stop("execute", t0)
        t0 = prof.start()
        self._commit()
        prof.stop("commit", t0)
        t0 = prof.start()
        renamed = self.renamer.cycle(self.now, self.fragments,
                                     self._make_uop)
        if renamed:
            wrong = sum(1 for u in renamed if u.record is None)
            if wrong:
                self.stats.add("rename.wrongpath_insts", wrong)
            self.core.dispatch(renamed, self.now)
        if self.config.frontend.liveout_recovery == "squash":
            mispredict = getattr(self.renamer,
                                 "pending_liveout_mispredict", None)
            if mispredict is not None:
                self._liveout_squash(mispredict)
        else:
            for mispredict in getattr(self.renamer,
                                      "pending_liveout_mispredicts", ()):
                self._pending_reexec.add(mispredict.seq)
        if self._pending_reexec:
            self._drain_pending_reexec()
        self._release_renamed_buffers()
        prof.stop("rename", t0)
        t0 = prof.start()
        self._fetch()
        prof.stop("fetch", t0)

    def _step_soa(self) -> None:
        """The tier-2 (``REPRO_FAST=2``) cycle step: batched commit and
        rename over the :mod:`repro.perf.soa` metadata.

        Semantically a verbatim twin of :meth:`step` — every phase runs
        in the same order with the same observable effects (the
        golden-parity matrix in tests/test_perf_soa.py holds the two
        bit-identical); only the inner loops are batched.
        """
        self.now += 1
        completed = self.core.cycle_soa(self.now)
        if completed or self._deferred_redirects:
            self._handle_completions(completed)
        self._commit_soa()
        renamed, wrong = self.renamer.cycle_soa(self.now, self.fragments)
        if renamed:
            if wrong:
                self.stats.add("rename.wrongpath_insts", wrong)
            # dispatch_ready_cycle was stamped in the rename build loop.
            self.core.queue_dispatched(renamed)
        if self._renamer_parallel:
            if self._squash_mode:
                mispredict = self.renamer.pending_liveout_mispredict
                if mispredict is not None:
                    self._liveout_squash(mispredict)
            else:
                for mispredict in self.renamer.pending_liveout_mispredicts:
                    self._pending_reexec.add(mispredict.seq)
        if self._pending_reexec:
            self._drain_pending_reexec()
        if self.renamer.finished_any:
            self._release_renamed_buffers()
        self._fetch()

    def _step_soa_profiled(self, prof: "PhaseProfiler") -> None:
        """:meth:`_step_soa` with per-phase wall-clock attribution (the
        tier-2 twin of :meth:`_step_profiled`; verbatim copy rule applies
        here too)."""
        self.now += 1
        t0 = prof.start()
        completed = self.core.cycle_soa(self.now)
        if completed or self._deferred_redirects:
            self._handle_completions(completed)
        prof.stop("execute", t0)
        t0 = prof.start()
        self._commit_soa()
        prof.stop("commit", t0)
        t0 = prof.start()
        renamed, wrong = self.renamer.cycle_soa(self.now, self.fragments)
        if renamed:
            if wrong:
                self.stats.add("rename.wrongpath_insts", wrong)
            # dispatch_ready_cycle was stamped in the rename build loop.
            self.core.queue_dispatched(renamed)
        if self._renamer_parallel:
            if self._squash_mode:
                mispredict = self.renamer.pending_liveout_mispredict
                if mispredict is not None:
                    self._liveout_squash(mispredict)
            else:
                for mispredict in self.renamer.pending_liveout_mispredicts:
                    self._pending_reexec.add(mispredict.seq)
        if self._pending_reexec:
            self._drain_pending_reexec()
        if self.renamer.finished_any:
            self._release_renamed_buffers()
        prof.stop("rename", t0)
        t0 = prof.start()
        self._fetch()
        prof.stop("fetch", t0)

    # -- fetch stage -------------------------------------------------------

    def _fetch(self) -> None:
        self.engine.cycle(self.now)
        if not self.engine.can_accept() or self.buffers.free_count() == 0:
            self.stats.add("frontend.alloc_blocked_cycles")
            return
        fragment = self.control.try_next_fragment()
        if fragment is None:
            return
        self._tagger(fragment)
        if not self.buffers.allocate(fragment, self.now):
            raise SimulationError("buffer allocation failed despite check")
        self.fragments.append(fragment)
        if self._tracer is not None:
            self._tracer.fragment_predicted(fragment, self.now)
        if fragment.reused:
            self.stats.add("fetch.reused_insts", fragment.static_frag.length)
        else:
            self.engine.accept(fragment)

    # -- oracle tagging ------------------------------------------------------

    def _tag_fragment(self, fragment: FragmentInFlight) -> None:
        """Bind fragment instructions to oracle records; detect divergence."""
        records: List[Optional[Tuple[DynamicInstruction, int]]] = []
        append = records.append
        oracle = self._oracle
        limit = len(oracle)
        pos = self._oracle_pos
        diverged = self._diverged
        for i, inst in enumerate(fragment.static_frag.instructions):
            if not diverged and pos < limit and oracle[pos].pc == inst.addr:
                append((oracle[pos], pos))
                pos += 1
            else:
                if not diverged:
                    self._oracle_pos = pos
                    self._mark_divergence(fragment, i, records)
                    diverged = True
                append(None)
        self._oracle_pos = pos
        fragment.records = records

    def _mark_divergence(self, fragment: FragmentInFlight, position: int,
                         records: List) -> None:
        self._diverged = True
        if self._oracle_pos >= len(self._oracle):
            return  # end of simulated stream, not a misprediction
        if position > 0:
            source_frag, source_pos = fragment, position - 1
            source_entry = records[position - 1]
        else:
            if not self.fragments:
                raise SimulationError("divergence with no prior fragment")
            source_frag = self.fragments[-1]
            source_pos = len(source_frag.records) - 1
            source_entry = source_frag.records[source_pos]
            if source_entry is None:  # pragma: no cover - defensive
                raise SimulationError("divergence source on wrong path")
        target = source_entry[0].next_pc
        source_frag.mispredict_position = source_pos
        source_frag.mispredict_target = target
        self.stats.add("frontend.control_mispredicts")
        source_inst = source_frag.static_frag.instructions[source_pos]
        if source_inst.is_cond_branch:
            self.stats.add("frontend.mispredict_direction")
        elif source_inst.is_return:
            self.stats.add("frontend.mispredict_return")
        elif source_inst.is_indirect:
            self.stats.add("frontend.mispredict_indirect")
        else:
            self.stats.add("frontend.mispredict_other")
        if source_pos < len(source_frag.uops):
            uop = source_frag.uops[source_pos]
            uop.redirect_target = target
            if uop.state in (UopState.DONE, UopState.COMMITTED):
                self._deferred_redirects.append(uop)

    def _tag_fragment_soa(self, fragment: FragmentInFlight) -> None:
        """Tier-2 tagging: one slice comparison against the flat oracle
        PC array covers the fragment's overwhelmingly common case (on
        the correct path, fully matched); anything else — divergence,
        stream end, an already-wrong path — falls back to the reference
        walk, which starts from the same untouched ``_oracle_pos``."""
        soa = self._soa
        assert soa is not None
        meta = soa.meta_for(fragment.static_frag)
        fragment.soa_meta = meta
        n = len(meta.pcs)
        if self._diverged:
            fragment.records = [None] * n
            return
        pos = self._oracle_pos
        end = pos + n
        if end <= len(soa.oracle_pcs) \
                and soa.oracle_pcs[pos:end] == meta.pcs:
            fragment.records = list(zip(self._oracle[pos:end],
                                        range(pos, end)))
            self._oracle_pos = end
            return
        self._tag_fragment(fragment)

    def prewarm_fragment_key(self, key: FragmentKey) -> None:
        """Pre-populate the pure per-fragment caches for one carved key.

        Called by functional warming (:mod:`repro.core.warming`) once
        per carved fragment: the walk caches, decode cache, SoA metadata
        and fetch chunk tables are all keyed pure functions, so building
        them before the first timed cycle changes no simulation result —
        it only moves steady-state cache construction out of the timed
        region, the same rationale as warming the predictors themselves.
        No-op at ``REPRO_FAST=0`` (the reference loop has no caches).
        """
        if not self.perf.fast:
            return
        static = self.control.prewarm(key.start_pc, key.directions)
        if static is None:
            return
        if self._soa is not None:
            meta = self._soa.meta_for(static)
            self.engine.prewarm_chunks(meta, static.traversed_pcs)
        elif self.decode_cache is not None:
            lookup = self.decode_cache.lookup
            for inst in static.instructions:
                lookup(inst.addr, inst)

    # -- rename support ---------------------------------------------------

    def _make_uop(self, fragment: FragmentInFlight,
                  position: int) -> MicroOp:
        inst = fragment.static_frag.instructions[position]
        entry = (fragment.records[position]
                 if position < len(fragment.records) else None)
        record = entry[0] if entry is not None else None
        cache = self.decode_cache
        uop = MicroOp(seq=(fragment.seq << 8) | position, inst=inst,
                      pc=inst.addr, fragment_seq=fragment.seq,
                      position=position, record=record,
                      decoded=(cache.lookup(inst.addr, inst)
                               if cache is not None else None))
        uop.renamed_cycle = self.now
        if entry is not None:
            uop.oracle_idx = entry[1]
        if (fragment.mispredict_position == position
                and fragment.mispredict_target is not None):
            uop.redirect_target = fragment.mispredict_target
        return uop

    def _release_renamed_buffers(self) -> None:
        for fragment in self.fragments:
            if fragment.rename_done and fragment.buffer_index is not None:
                self.buffers.release(fragment, self.now, retain=True)

    # -- completion / misprediction handling --------------------------------

    def _handle_completions(self, completed: List[MicroOp]) -> None:
        redirect_uop: Optional[MicroOp] = None
        for uop in self._deferred_redirects:
            if uop.state is not UopState.SQUASHED \
                    and uop.redirect_target is not None:
                if redirect_uop is None or uop.seq < redirect_uop.seq:
                    redirect_uop = uop
        self._deferred_redirects = []

        for uop in completed:
            if uop.record is None:
                continue  # wrong-path completion: no architectural effect
            if uop.redirect_target is not None:
                if redirect_uop is None or uop.seq < redirect_uop.seq:
                    redirect_uop = uop
            elif uop.inst.is_indirect:
                self._maybe_resolve_indirect(uop)

        if redirect_uop is not None:
            self._recover(redirect_uop)

    def _maybe_resolve_indirect(self, uop: MicroOp) -> None:
        """A correctly-fetched indirect completed; if fetch is stalled
        waiting for its target, supply it (no squash needed)."""
        if not self.fragments:
            return
        youngest = self.fragments[-1]
        if youngest.seq != uop.fragment_seq:
            return
        if uop.position != youngest.length - 1:
            return
        assert uop.record is not None
        self.control.redirect(uop.record.next_pc)
        self.stats.add("frontend.indirect_resolutions")

    def _recover(self, uop: MicroOp) -> None:
        """Control-misprediction recovery: truncate the source fragment,
        squash everything younger, restore front-end checkpoints."""
        fragment = self._fragment_by_seq(uop.fragment_seq)
        if fragment is None or fragment.squashed:
            uop.redirect_target = None
            return
        position = uop.position
        target = uop.redirect_target
        uop.redirect_target = None
        self.stats.add("frontend.recoveries")
        if self._tracer is not None:
            self._tracer.recovery(fragment, position, target, self.now)

        # Truncate the source fragment after the mispredicted instruction.
        for younger in fragment.uops[position + 1:]:
            younger.state = UopState.SQUASHED
        fragment.uops = fragment.uops[:position + 1]
        fragment.truncated_at = position + 1
        fragment.read_count = position + 1
        fragment.complete = True
        if fragment.construct_cycle < 0:
            fragment.construct_cycle = self.now
        fragment.rename_done = True
        if fragment.rename_done_cycle < 0:
            fragment.rename_done_cycle = self.now
        fragment.internal_writers = {}
        for survivor in fragment.uops:
            dest = survivor.inst.dest_reg()
            if dest is not None and dest != ZERO_REG:
                fragment.internal_writers[dest] = survivor
        if fragment.incoming_map is not None:
            outgoing = dict(fragment.incoming_map)
            outgoing.update(fragment.internal_writers)
            fragment.outgoing_actual = outgoing
        for placeholder in fragment.placeholders.values():
            placeholder.invalidated = True
        uncommitted = fragment.truncated_at - fragment.committed_count
        self.core.set_reservation(fragment.seq, max(0, uncommitted))

        # Squash all younger fragments.
        survivors: List[FragmentInFlight] = []
        for candidate in self.fragments:
            if candidate.seq > fragment.seq:
                self._squash_fragment(candidate)
            else:
                survivors.append(candidate)
        self.fragments = survivors

        self.engine.squash()
        self.renamer.rebuild(self.fragments)
        self.core.drop_squashed_dispatch()
        self.buffers.release(fragment, self.now, retain=False)

        self.control.redirect(target, fragment=fragment,
                              valid_prefix=position + 1)
        # Keep speculative path history aligned with the retired fragment
        # sequence: the truncated fragment (with its *actual* direction
        # bits) is what retire-side training will see next.
        truncated_dirs = tuple(
            entry[0].taken for entry in fragment.records[:position + 1]
            if entry is not None and entry[0].inst.is_cond_branch)
        self.trace_predictor.push_history(
            FragmentKey(fragment.key.start_pc, truncated_dirs))
        self._oracle_pos = uop.oracle_idx + 1
        self._diverged = False
        self._deferred_redirects = []

    def _squash_fragment(self, fragment: FragmentInFlight) -> None:
        fragment.squashed = True
        for uop in fragment.uops:
            uop.state = UopState.SQUASHED
        for placeholder in fragment.placeholders.values():
            placeholder.invalidated = True
        self.core.release_all(fragment.seq)
        self.buffers.release(fragment, self.now,
                             retain=fragment.complete
                             and fragment.truncated_at is None)
        self.stats.add("frontend.fragments_squashed")
        if self._tracer is not None:
            self._tracer.fragment_squashed(fragment, self.now)

    def _liveout_squash(self, fragment: FragmentInFlight) -> None:
        """Live-out misprediction: younger fragments re-rename from their
        buffers (Section 4.3 — "all future fragments are squashed")."""
        self.stats.add("rename.liveout_squashes")
        if self._tracer is not None:
            self._tracer.liveout_mispredict(fragment, self.now, "squash")
        for candidate in self.fragments:
            if candidate.seq <= fragment.seq or candidate.squashed:
                continue
            for uop in candidate.uops:
                uop.state = UopState.SQUASHED
            self.core.release_all(candidate.seq)
            if candidate.buffer_index is None and candidate.read_count:
                # Buffer already released; hardware would refetch.  The
                # contents are still architecturally identical, so we model
                # the re-rename and count the event.
                self.stats.add("rename.liveout_squash_refetches")
            candidate.reset_rename()
        self.renamer.rebuild(self.fragments)
        self.core.drop_squashed_dispatch()

    # -- selective re-execution (Section 4.3's alternative) ----------------

    def _drain_pending_reexec(self) -> None:
        """Apply re-execution fix-ups for mispredicted fragments whose
        rename has completed (their actual mappings are now known)."""
        ready = []
        for fragment in self.fragments:
            if fragment.seq in self._pending_reexec and fragment.rename_done:
                ready.append(fragment)
        for fragment in ready:
            self._pending_reexec.discard(fragment.seq)
            self._liveout_reexecute(fragment)
        # Squashed/retired fragments no longer need fix-up.
        live = {f.seq for f in self.fragments}
        self._pending_reexec &= live

    def _liveout_reexecute(self, fragment: FragmentInFlight) -> None:
        """Selectively repair the renames that used *fragment*'s wrong
        live-out predictions and re-execute only the affected uops.

        Replays the architecturally-correct register maps forward from the
        fragment's actual outgoing map through every younger fragment,
        relinking each existing uop's sources.  Any uop whose sources
        changed — or which transitively consumes one that did — is reset
        and re-dispatched (paying the dispatch/issue pipeline again, the
        cost of selective re-execution).
        """
        self.stats.add("rename.liveout_reexec_events")
        if self._tracer is not None:
            self._tracer.liveout_mispredict(fragment, self.now, "reexecute")
        map_state: dict = dict(fragment.outgoing_actual or {})

        # Rebind the fragment's placeholders to the true final producers
        # so future (not-yet-renamed) consumers resolve correctly.
        for reg, placeholder in fragment.placeholders.items():
            actual = map_state.get(reg)
            if actual is None:
                self.core.bind_placeholder(placeholder, ready=True)
            elif placeholder.producer is not actual:
                self.core.bind_placeholder(placeholder, producer=actual)
        fragment.liveout_mispredicted = False

        dirty: set = set()
        to_redispatch: List[MicroOp] = []
        for younger in self.fragments:
            if younger.seq <= fragment.seq or younger.squashed:
                continue
            incoming_snapshot = dict(map_state)
            if younger.incoming_map is not None:
                younger.incoming_map.clear()
                younger.incoming_map.update(incoming_snapshot)
            writers: dict = {}
            for uop in younger.uops:
                if uop.state is UopState.SQUASHED:
                    continue
                correct_sources = []
                for src in uop.inst.src_regs():
                    if src == ZERO_REG:
                        continue
                    producer = writers.get(src)
                    if producer is None:
                        producer = incoming_snapshot.get(src)
                    if producer is not None:
                        correct_sources.append(producer)
                is_dirty = correct_sources != uop.sources or any(
                    self._resolves_to_dirty(src, dirty)
                    for src in correct_sources)
                if is_dirty:
                    dirty.add(id(uop))
                    uop.sources = correct_sources
                    if uop.state is not UopState.RENAMED:
                        uop.state = UopState.RENAMED
                        uop.pending = 0
                        uop.consumers = []
                        to_redispatch.append(uop)
                dest = uop.inst.dest_reg()
                if dest is not None and dest != ZERO_REG:
                    writers[dest] = uop
            # Advance the map past this fragment: its own predicted
            # live-outs stay represented by its placeholders (they bind as
            # it renames); everything else by its writers so far.
            for reg, writer in writers.items():
                if reg not in younger.placeholders:
                    map_state[reg] = writer
            for reg, placeholder in younger.placeholders.items():
                if not placeholder.invalidated:
                    map_state[reg] = placeholder
            if younger.rename_done:
                # outgoing_actual must reflect the corrected maps.
                outgoing = dict(incoming_snapshot)
                outgoing.update(younger.internal_writers)
                younger.outgoing_actual = outgoing

        if to_redispatch:
            self.stats.add("rename.reexecuted_uops", len(to_redispatch))
            self.core.dispatch(to_redispatch, self.now)

    @staticmethod
    def _resolves_to_dirty(source, dirty: set) -> bool:
        node = source
        while isinstance(node, PlaceholderProducer):
            if node.producer is None:
                return False
            node = node.producer
        return id(node) in dirty

    def _fragment_by_seq(self, seq: int) -> Optional[FragmentInFlight]:
        for fragment in self.fragments:
            if fragment.seq == seq:
                return fragment
        return None

    # -- commit stage ------------------------------------------------------

    def _commit(self) -> None:
        budget = self.config.backend.commit_width
        committed = 0
        while budget > 0 and self.fragments:
            fragment = self.fragments[0]
            limit = fragment.length
            if fragment.committed_count >= limit and fragment.rename_done:
                self._retire_fragment(fragment)
                continue
            position = fragment.committed_count
            if position >= len(fragment.uops):
                break
            uop = fragment.uops[position]
            if uop.state is not UopState.DONE:
                break
            if uop.record is None:  # pragma: no cover - invariant
                raise SimulationError("attempted to commit wrong-path uop")
            uop.state = UopState.COMMITTED
            uop.commit_cycle = self.now
            if self.uop_log is not None:
                self.uop_log.append(uop)
            self.core.release(fragment.seq, 1)
            fragment.committed_count += 1
            self._committed += 1
            budget -= 1
            committed += 1
            self._carve_feed(uop.record)
            if (fragment.truncated_at is not None
                    and fragment.committed_count == fragment.truncated_at):
                # A control misprediction truncated this fragment here; the
                # fill/carve sequence restarts at the corrected PC, so the
                # partial fragment is finalised as its own trace to keep
                # predictor training aligned with what fetch sees.
                self._carve_flush()
            if self._committed >= self._stop_at:
                self._done = True
                break
        if committed:
            self.stats.add("commit.insts", committed)

    def _commit_soa(self) -> None:
        """Tier-2 commit: stamp each contiguous run of DONE uops in one
        batch and release its window slots with a single call.

        Equivalent to :meth:`_commit` because (a) ``release(seq, k)``
        clamps exactly like k single releases, (b) the carver only
        consumes records in order, and (c) a truncated fragment's flush
        point is always its last uop, so it can only land at a batch end.
        """
        budget = self.config.backend.commit_width
        committed = 0
        now = self.now
        uop_log = self.uop_log
        frag_cfg = self.config.fragment
        cond_limit = frag_cfg.cond_branch_limit
        max_len = frag_cfg.max_length
        bimodal_train = self.bimodal.train
        done_state = UopState.DONE
        committed_state = UopState.COMMITTED
        while budget > 0 and self.fragments:
            fragment = self.fragments[0]
            limit = fragment.length
            pos = fragment.committed_count
            if pos >= limit and fragment.rename_done:
                self._retire_fragment(fragment)
                continue
            uops = fragment.uops
            end = pos + budget
            if end > len(uops):
                end = len(uops)
            remaining = self._stop_at - self._committed
            if end - pos > remaining:
                end = pos + remaining
            # One fused pass: scan for DONE and commit in the same loop
            # (the pre-scan and the processing loop walked the identical
            # contiguous run).  Carve state is kept in locals and only
            # re-fetched after a flush rebinds the lists.
            take = 0
            carve_records = self._carve_records
            carve_dirs = self._carve_dirs
            for i in range(pos, end):
                uop = uops[i]
                if uop.state is not done_state:
                    break
                record = uop.record
                if record is None:  # pragma: no cover - invariant
                    raise SimulationError(
                        "attempted to commit wrong-path uop")
                uop.state = committed_state
                uop.commit_cycle = now
                if uop_log is not None:
                    uop_log.append(uop)
                carve_records.append(record)
                inst = record.inst
                if inst.is_cond_branch:
                    carve_dirs.append(record.taken)
                    bimodal_train(record.pc, record.taken)
                # Inlined should_terminate predicate (HALT / INDIRECT /
                # COND_LIMIT / MAX_LENGTH, reason discarded).
                n = len(carve_records)
                if (inst.is_halt or inst.is_indirect
                        or (inst.is_cond_branch and n > cond_limit)
                        or n >= max_len):
                    self._carve_flush()
                    carve_records = self._carve_records
                    carve_dirs = self._carve_dirs
                take += 1
            if take == 0:
                break
            self.core.release(fragment.seq, take)
            fragment.committed_count = pos + take
            self._committed += take
            budget -= take
            committed += take
            if (fragment.truncated_at is not None
                    and fragment.committed_count == fragment.truncated_at):
                self._carve_flush()
            if self._committed >= self._stop_at:
                self._done = True
                break
            if pos + take < end:
                break  # hit a not-yet-DONE uop mid-batch
        if committed:
            self.stats.add("commit.insts", committed)

    def _retire_fragment(self, fragment: FragmentInFlight) -> None:
        self.fragments.pop(0)
        self.core.set_reservation(fragment.seq, 0)
        if isinstance(self.renamer, ParallelRenamer):
            self.renamer.retire_fragment(fragment)
        if fragment.buffer_index is not None:
            self.buffers.release(fragment, self.now, retain=True)
        self.stats.add("commit.fragments")
        if self._tracer is not None:
            self._tracer.fragment_retired(fragment, self.now)

    # -- commit-side carver (predictor training) ----------------------------

    def _carve_feed(self, record: DynamicInstruction) -> None:
        self._carve_records.append(record)
        if record.inst.is_cond_branch:
            self._carve_dirs.append(record.taken)
            self.bimodal.train(record.pc, record.taken)
        reason = should_terminate(record.inst, len(self._carve_records),
                                  self.config.fragment)
        if reason is not None:
            self._carve_flush()

    def _carve_flush(self) -> None:
        """Finalise the in-progress retired fragment and train predictors."""
        if not self._carve_records:
            return
        records = self._carve_records
        key = FragmentKey(records[0].pc, tuple(self._carve_dirs))
        self.trace_predictor.train(key)
        memo = self._liveout_memo
        if memo is None:
            info = compute_liveouts([r.inst for r in records])
        else:
            memo_key = (key, len(records))
            info = memo.get(memo_key)
            if info is None:
                if len(memo) >= 8192:
                    memo.clear()
                info = compute_liveouts([r.inst for r in records])
                memo[memo_key] = info
        self.liveout_predictor.train(key, info)
        self.stats.add("commit.trained_fragments")
        self._carve_records = []
        self._carve_dirs = []

    # -- results -----------------------------------------------------------

    @property
    def finished(self) -> bool:
        """Whether the timed run has reached its stop condition."""
        return self._done

    @property
    def committed(self) -> int:
        """Architecturally committed instructions so far."""
        return self._committed

    @property
    def stream_length(self) -> int:
        """Total oracle records to commit (NOPs already eliminated)."""
        return len(self._oracle)

    def stamp_summary(self, timed_out: bool = False) -> None:
        """Stamp the ``sim.*`` summary counters.

        Factored out of :meth:`run` so drivers that steer the loop
        through :meth:`run_until` segments (checkpointed runs, see
        :mod:`repro.checkpoint`) finish with the same counter contract.
        """
        if timed_out:
            self.stats.set("sim.timeout", 1)
        self.stats.set("sim.cycles", self.now)
        self.stats.set("sim.committed", self._committed)

    def adopt_warm_state(self, donor) -> None:
        """Adopt every *warm* structure from a duck-typed donor.

        The donor exposes ``bimodal``, ``trace_predictor``,
        ``liveout_predictor``, ``memory`` (or bare ``l1i``/``l1d``/``l2``
        caches) and ``trace_cache``; each structure's ``adopt_state``
        enforces geometry equality.  This is the single seam both warm-
        snapshot cloning (:mod:`repro.sampling.prep`) and checkpoint
        restore (:mod:`repro.checkpoint`) go through.  Transient pipeline
        state is untouched — callers pair this with :meth:`restart_at`.
        """
        self.bimodal.adopt_state(donor.bimodal)
        self.trace_predictor.adopt_state(donor.trace_predictor)
        self.liveout_predictor.adopt_state(donor.liveout_predictor)
        memory = getattr(donor, "memory", donor)
        self.memory.l1i.adopt_state(memory.l1i)
        self.memory.l1d.adopt_state(memory.l1d)
        self.memory.l2.adopt_state(memory.l2)
        if self.trace_cache is not None:
            self.trace_cache.adopt_state(donor.trace_cache)
