"""High-level simulation entry points and result objects.

This is the main public API::

    from repro import run_simulation

    result = run_simulation("pr-2x8w", "gcc", max_instructions=30_000)
    print(result.ipc, result.fetch_rate, result.slot_utilization)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.config import LiveConfig, ProcessorConfig, frontend_config
from repro.core.invariants import InvariantChecker
from repro.core.processor import Processor
from repro.core.uop import MicroOp
from repro.isa.program import Program
from repro.obs import Observability
from repro.obs.live import LiveTelemetry
from repro.workloads import suite


@dataclass
class SimulationResult:
    """Metrics of one (configuration, benchmark) simulation."""

    benchmark: str
    config_name: str
    cycles: int
    committed: int
    counters: Dict[str, float] = field(default_factory=dict)

    def counter(self, name: str) -> float:
        """A raw counter value by name (0.0 when absent)."""
        return self.counters.get(name, 0.0)

    # -- headline metrics -------------------------------------------------

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def fetch_rate(self) -> float:
        """Instructions supplied by fetch per cycle, including wrong-path
        and buffer-reused instructions (the Figure 5 metric)."""
        supplied = (self.counter("fetch.insts")
                    + self.counter("fetch.reused_insts"))
        return supplied / self.cycles if self.cycles else 0.0

    @property
    def rename_rate(self) -> float:
        """Instructions renamed per cycle, including wrong path (Fig. 5)."""
        return (self.counter("rename.insts") / self.cycles
                if self.cycles else 0.0)

    @property
    def slot_utilization(self) -> float:
        """Fetched instructions / available fetch slots (Figure 4)."""
        slots = self.counter("fetch.slots")
        return self.counter("fetch.insts") / slots if slots else 0.0

    @property
    def trace_cache_hit_rate(self) -> float:
        """Trace-cache hits over trace-cache accesses."""
        hits = self.counter("tc.hits")
        total = hits + self.counter("tc.misses")
        return hits / total if total else 0.0

    @property
    def fragment_reuse_rate(self) -> float:
        """Fraction of allocated fragments served from retained buffers
        (Section 3.2's 20-70% statistic)."""
        allocations = self.counter("fragbuf.allocations")
        return (self.counter("fragbuf.reuses") / allocations
                if allocations else 0.0)

    @property
    def preconstructed_fraction(self) -> float:
        """Fraction of fragments fully constructed before rename first
        touched them (Section 3.3's 84% statistic)."""
        started = self.counter("rename.fragments_started")
        return (self.counter("rename.fragments_preconstructed") / started
                if started else 0.0)

    @property
    def liveout_accuracy(self) -> float:
        """Fraction of live-out predictions that were fully correct."""
        lookups = self.counter("rename.liveout_lookups")
        if not lookups:
            return 1.0
        wrong = (self.counter("rename.liveout_mispredicts")
                 + self.counter("rename.liveout_cold"))
        return max(0.0, 1.0 - wrong / lookups)

    @property
    def renamed_before_source_fraction(self) -> float:
        """Fraction of renamed instructions renamed before a producer
        (Section 5.2's 4-12% statistic)."""
        renamed = self.counter("rename.insts")
        return (self.counter("rename.before_source") / renamed
                if renamed else 0.0)

    @property
    def l1i_miss_rate(self) -> float:
        """L1 instruction-cache misses over accesses."""
        hits = self.counter("l1i.hits")
        misses = self.counter("l1i.misses")
        total = hits + misses
        return misses / total if total else 0.0

    @property
    def timed_out(self) -> bool:
        """Whether the run hit its cycle bound before finishing."""
        return bool(self.counter("sim.timeout"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SimulationResult({self.config_name}/{self.benchmark}: "
                f"IPC={self.ipc:.2f}, fetch={self.fetch_rate:.2f}/cyc, "
                f"{self.cycles} cycles)")


def _resolve_config(config: Union[str, ProcessorConfig]
                    ) -> Tuple[str, ProcessorConfig]:
    if isinstance(config, str):
        return config, frontend_config(config)
    return config.frontend.fetch_kind, config


def _resolve_live(live: Union[None, bool, LiveConfig, LiveTelemetry],
                  benchmark: str, config_name: str,
                  mode: str) -> Optional[LiveTelemetry]:
    """Build the live telemetry publisher for one run (or None).

    ``None`` defers to the ``REPRO_LIVE*`` environment knobs, ``False``
    forces off, ``True`` publishes with default settings, a
    :class:`~repro.config.LiveConfig` gives full control, and a
    ready-made :class:`~repro.obs.live.LiveTelemetry` is used as-is.
    """
    if live is None:
        config = LiveConfig.from_env()
    elif live is True:
        config = LiveConfig()
    elif live is False:
        config = None
    elif isinstance(live, LiveConfig):
        config = live
    else:
        return live
    if config is None:
        return None
    return LiveTelemetry(config, benchmark=benchmark,
                         config_name=config_name, mode=mode)


def run_simulation(config: Union[str, ProcessorConfig],
                   benchmark: Union[str, Program],
                   max_instructions: Optional[int] = None,
                   max_cycles: Optional[int] = None,
                   config_name: Optional[str] = None,
                   warm: bool = True,
                   invariant_checks: Optional[bool] = None,
                   observability: Optional[Observability] = None,
                   uop_log: Optional[List[MicroOp]] = None,
                   sampling: Union[None, bool, int,
                                   "SamplingConfig"] = None,
                   checkpoint_every: Union[None, bool, int] = None,
                   live: Union[None, bool, LiveConfig, LiveTelemetry] = None
                   ) -> SimulationResult:
    """Simulate *benchmark* on the given front-end configuration.

    Args:
        config: a named paper configuration (``w16``, ``tc``, ``tc2x``,
            ``pf-2x8w``, ``pf-4x4w``, ``pr-2x8w``, ``pr-4x4w``,
            ``tc+pr-2x8w``, ``tc+pr-4x4w``) or a full
            :class:`~repro.config.ProcessorConfig`.
        benchmark: a suite benchmark name or an assembled
            :class:`~repro.isa.program.Program`.
        max_instructions: dynamic instructions to simulate (defaults to the
            suite default, overridable via ``REPRO_SIM_INSTRUCTIONS``).
        max_cycles: optional safety bound on simulated cycles.
        warm: functionally warm predictors and caches with the stream
            before the timed run (steady-state methodology; see
            :mod:`repro.core.warming`).  Default True.
        invariant_checks: force the per-cycle pipeline audits on (True)
            or off (False); None defers to ``REPRO_INVARIANT_CHECKS``.
            The forward-progress watchdog is independent of this flag and
            controlled by ``REPRO_WATCHDOG_CYCLES`` (0 disables).
        observability: an :class:`~repro.obs.Observability` bundle
            (metrics sampling / event tracing / self-profiling); None
            defers to the ``REPRO_OBS_*`` environment knobs, which all
            default to off.  Summaries are folded into the result's
            counters under ``obs.*``.
        uop_log: when a list is supplied, every committed
            :class:`~repro.core.uop.MicroOp` is appended to it (the
            pipeview path; see :mod:`repro.core.trace`).
        sampling: interval-sampled simulation (SMARTS-style; see
            :mod:`repro.sampling`).  ``None`` defers to ``REPRO_SAMPLE``
            (unset or 0 = full detail), ``False`` forces full detail,
            ``True`` samples with default/env parameters, an int sets
            the sampling period, and a
            :class:`~repro.sampling.SamplingConfig` gives full control.
            Sampled results are extrapolated estimates carrying
            ``sampling.*`` confidence counters; ``uop_log`` is ignored
            in sampled mode, and of the observability pillars the
            profiler and tracer stay live (``obs.*`` summaries land in
            the counters) while metrics sampling is idle.
        checkpoint_every: durable checkpoint/restore (see
            :mod:`repro.checkpoint`).  ``None`` defers to
            ``REPRO_CHECKPOINT`` (unset or 0 = off), ``0``/``False``
            force off, and a positive int snapshots the warmed processor
            state to disk every N committed instructions; an interrupted
            run automatically resumes from the newest valid snapshot and
            is bit-identical to an uninterrupted run with the same
            cadence.  Checkpoint boundaries drain the pipeline, so the
            cadence is part of the run's identity (and of sweep cache
            keys).  ``observability`` and ``uop_log`` are ignored in
            checkpointed full-detail mode.
        live: live telemetry (see :mod:`repro.obs.live`): snapshot the
            running pipeline to a status file ``repro attach`` can
            watch.  ``None`` defers to ``REPRO_LIVE*`` (default off),
            ``False`` forces off, ``True`` publishes with defaults, a
            :class:`~repro.config.LiveConfig` gives full control, and
            a :class:`~repro.obs.live.LiveTelemetry` is used directly.
            Works in every mode (full detail, sampled, checkpointed)
            and never changes the result: publishing is read-only and
            results are bit-identical with it on or off.

    Returns:
        A :class:`SimulationResult` with every counter the models emit.

    Raises:
        DeadlockError: the pipeline livelocked (no commits for the
            watchdog's stall window) — a simulator bug, not a property
            of the program.
        InvariantError: an enabled per-cycle audit found inconsistent
            pipeline state.
    """
    from repro import checkpoint
    from repro.sampling import engine as sampling_engine
    from repro.sampling import prep

    resolved_name, processor_config = _resolve_config(config)
    config_name = config_name or resolved_name
    length = (suite.default_sim_instructions() if max_instructions is None
              else max_instructions)
    program, execution, stream_key = prep.get_oracle(benchmark, length)
    oracle = execution.stream
    bench_name = benchmark if isinstance(benchmark, str) else program.name

    sampling_config = sampling_engine.resolve_sampling(sampling)
    every = checkpoint.resolve_checkpoint_every(checkpoint_every)
    manager = None
    if every is not None:
        stream_fp = prep.stream_fingerprint(stream_key, program)
        sampling_tuple = (sampling_config.as_tuple()
                          if sampling_config is not None else None)
        manager = checkpoint.CheckpointManager(
            checkpoint.run_fingerprint(processor_config, stream_fp, warm,
                                       sampling_tuple, every),
            description=f"{config_name}/{bench_name}")

    if sampling_config is not None:
        return sampling_engine.run_sampled(
            processor_config, program, oracle, sampling_config,
            config_name=config_name, benchmark=bench_name, warm=warm,
            stream_key=stream_key, pin=program,
            checkpoint_every=every, checkpoint_manager=manager,
            observability=(observability if observability is not None
                           else Observability.from_env()),
            live=_resolve_live(live, bench_name, config_name, "sampled"))

    if manager is not None:
        # Checkpointed full-detail run: observability and the uop log
        # are ignored (the segment driver steers run_until directly,
        # like sampled windows do); live telemetry still publishes.
        live_pub = _resolve_live(live, bench_name, config_name,
                                 "checkpointed")
        processor = Processor(processor_config, program, oracle,
                              live=live_pub)
        warm_cb = None
        if warm:
            warm_cb = lambda: prep.warm_from_snapshot(  # noqa: E731
                processor, oracle, stream_key, pin=program)
        checkpoint.run_checkpointed(processor, every, manager,
                                    max_cycles=max_cycles,
                                    warm_cb=warm_cb, live=live_pub)
        if live_pub is not None:
            live_pub.publish_final(processor)
        return SimulationResult(
            benchmark=bench_name,
            config_name=config_name,
            cycles=processor.now,
            committed=processor.committed,
            counters=processor.stats.as_dict(),
        )

    live_pub = _resolve_live(live, bench_name, config_name, "full")
    if observability is None:
        observability = Observability.from_env()
    if invariant_checks is None:
        processor = Processor(processor_config, program, oracle,
                              obs=observability, live=live_pub)
    else:
        checker = InvariantChecker() if invariant_checks else None
        processor = Processor(processor_config, program, oracle,
                              invariants=checker, obs=observability,
                              live=live_pub)
    if uop_log is not None:
        processor.uop_log = uop_log
    if warm:
        # Snapshot-clone warming: bit-identical to warm_processor() but
        # the training cost is paid once per (stream, warm config).
        prep.warm_from_snapshot(processor, oracle, stream_key, pin=program)
    processor.run(max_cycles=max_cycles)
    if live_pub is not None:
        live_pub.publish_final(processor)
    return SimulationResult(
        benchmark=bench_name,
        config_name=config_name,
        cycles=processor.now,
        committed=processor.committed,
        counters=processor.stats.as_dict(),
    )
