"""Pipeline driver, micro-ops, and the simulation entry point."""

from repro.core.processor import Processor
from repro.core.simulation import SimulationResult, run_simulation
from repro.core.trace import (
    UopTrace,
    format_pipeview,
    pipeline_summary,
    trace_simulation,
)
from repro.core.uop import MicroOp, PlaceholderProducer, UopState

__all__ = [
    "Processor",
    "SimulationResult",
    "run_simulation",
    "MicroOp",
    "PlaceholderProducer",
    "UopState",
    "UopTrace",
    "trace_simulation",
    "format_pipeview",
    "pipeline_summary",
]
