"""Pipeline self-checking: forward-progress watchdog and state audits.

The simulator's only livelock defence used to be the ``max_cycles`` bound
in :meth:`Processor.run`, which turns a wedged pipeline into a silent
``sim.timeout`` statistic tens of thousands of cycles later.  This module
gives the timing model two layers of self-checking:

* :class:`PipelineWatchdog` — always on (disable with
  ``REPRO_WATCHDOG_CYCLES=0``): if no instruction commits for
  ``stall_limit`` consecutive cycles, raises
  :class:`~repro.errors.DeadlockError` carrying a cycle-stamped dump of
  the pipeline state, long before the ``max_cycles`` bound.
* :class:`InvariantChecker` — opt-in (``REPRO_INVARIANT_CHECKS=1``, or a
  cycle interval): per-cycle structural audits of uop accounting across
  fetch/rename/commit, fragment-buffer occupancy/refcount consistency,
  and rename map-table consistency, raising
  :class:`~repro.errors.InvariantError` at the first inconsistent cycle
  instead of letting corruption surface as wrong counters much later.

Both are cheap to construct and attached to every
:class:`~repro.core.processor.Processor`; the audits cost one pipeline
walk per checked cycle and are therefore opt-in.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Optional

from repro.config import env_flag
from repro.core.uop import UopState
from repro.errors import DeadlockError, InvariantError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.processor import Processor

WATCHDOG_ENV = "REPRO_WATCHDOG_CYCLES"
INVARIANTS_ENV = "REPRO_INVARIANT_CHECKS"

#: Cycles without a single commit before the watchdog declares livelock.
#: Healthy no-commit stretches (pipeline refill after a squash, a memory
#: round trip) are two orders of magnitude shorter than this.
DEFAULT_STALL_CYCLES = 2_000


def dump_pipeline_state(processor: "Processor") -> str:
    """A cycle-stamped, human-readable dump of the pipeline state."""
    lines = [
        f"=== pipeline state @ cycle {processor.now} ===",
        f"committed {processor.committed}"
        f"/{len(processor._oracle)} oracle insts"
        f" (oracle_pos={processor._oracle_pos},"
        f" diverged={processor._diverged})",
        f"fragments in flight: {len(processor.fragments)}",
    ]
    for fragment in processor.fragments:
        flags = []
        if fragment.reused:
            flags.append("reused")
        if fragment.complete:
            flags.append("complete")
        if fragment.rename_done:
            flags.append("rename_done")
        if fragment.squashed:
            flags.append("squashed")
        if fragment.truncated_at is not None:
            flags.append(f"truncated@{fragment.truncated_at}")
        if fragment.mispredict_position is not None:
            flags.append(f"mispredict@{fragment.mispredict_position}")
        if fragment.stalled_for_indirect:
            flags.append("stalled_for_indirect")
        lines.append(
            f"  frag#{fragment.seq} pc=0x{fragment.key.start_pc:x}"
            f" buf={fragment.buffer_index}"
            f" fetched={fragment.fetched_count}/{fragment.static_frag.length}"
            f" renamed={fragment.read_count} uops={len(fragment.uops)}"
            f" committed={fragment.committed_count}"
            + (f" [{','.join(flags)}]" if flags else ""))
    buffers = processor.buffers._buffers
    occupied = [f"#{b.occupant.seq}@{b.index}" for b in buffers if b.occupant]
    lines.append(f"buffers: {len(buffers) - len(occupied)}/{len(buffers)}"
                 f" free; occupied: {' '.join(occupied) or '-'}")
    if processor._pending_reexec:
        lines.append(
            f"pending re-execution: {sorted(processor._pending_reexec)}")
    for counter in ("fetch.insts", "rename.insts", "commit.insts",
                    "frontend.recoveries", "frontend.alloc_blocked_cycles"):
        lines.append(f"  {counter:35} {processor.stats.get(counter):12.0f}")
    return "\n".join(lines)


class PipelineWatchdog:
    """Detects no-commit livelock long before the ``max_cycles`` bound."""

    def __init__(self, stall_limit: int = DEFAULT_STALL_CYCLES):
        self.stall_limit = stall_limit
        self._last_committed = -1
        self._last_progress_cycle = 0
        self._stalled = 0

    @classmethod
    def from_env(cls) -> Optional["PipelineWatchdog"]:
        """Default watchdog; ``REPRO_WATCHDOG_CYCLES=0`` disables it."""
        raw = os.environ.get(WATCHDOG_ENV)
        limit = DEFAULT_STALL_CYCLES if not raw else int(raw)
        return cls(stall_limit=limit) if limit > 0 else None

    @property
    def stalled_cycles(self) -> int:
        """Consecutive commit-free cycles observed so far."""
        return self._stalled

    def observe(self, processor: "Processor") -> None:
        """Record this cycle's progress; raise on a stalled pipeline."""
        if processor.committed != self._last_committed:
            self._last_committed = processor.committed
            self._last_progress_cycle = processor.now
            self._stalled = 0
            return
        self._stalled = processor.now - self._last_progress_cycle
        if self._stalled >= self.stall_limit:
            raise DeadlockError(
                f"no instruction committed for {self._stalled} cycles "
                f"(watchdog limit {self.stall_limit}); "
                f"the pipeline is livelocked",
                cycle=processor.now,
                dump=dump_pipeline_state(processor))


class InvariantChecker:
    """Opt-in per-cycle structural audits of the pipeline state."""

    def __init__(self, interval: int = 1):
        if interval < 1:
            raise ValueError("interval must be >= 1")
        self.interval = interval

    @classmethod
    def from_env(cls) -> Optional["InvariantChecker"]:
        """Checker per ``REPRO_INVARIANT_CHECKS`` (unset/falsy = off).

        A value > 1 audits every N-th cycle, trading detection latency
        for speed.
        """
        if not env_flag(INVARIANTS_ENV):
            return None
        raw = os.environ.get(INVARIANTS_ENV, "").strip()
        interval = int(raw) if raw.isdigit() else 1
        return cls(interval=max(1, interval))

    def check(self, processor: "Processor") -> None:
        """Audit *processor*; raises :class:`InvariantError` on failure."""
        if processor.now % self.interval:
            return
        self._audit_fragment_order(processor)
        self._audit_uop_accounting(processor)
        self._audit_buffers(processor)
        self._audit_rename_maps(processor)

    @staticmethod
    def _fail(processor: "Processor", message: str) -> None:
        raise InvariantError(message, cycle=processor.now,
                             dump=dump_pipeline_state(processor))

    def _audit_fragment_order(self, processor: "Processor") -> None:
        previous = -1
        for fragment in processor.fragments:
            if fragment.seq <= previous:
                self._fail(processor,
                           f"fragment order violated: frag#{fragment.seq} "
                           f"follows frag#{previous}")
            previous = fragment.seq
            if fragment.squashed:
                self._fail(processor,
                           f"squashed frag#{fragment.seq} still in the "
                           f"in-flight list")

    def _audit_uop_accounting(self, processor: "Processor") -> None:
        """Fetch/rename/commit cursors must stay mutually consistent."""
        for i, fragment in enumerate(processor.fragments):
            limit = fragment.length
            if fragment.committed_count > limit:
                self._fail(processor,
                           f"frag#{fragment.seq} committed "
                           f"{fragment.committed_count} of {limit} insts")
            if fragment.read_count > limit:
                self._fail(processor,
                           f"frag#{fragment.seq} renamed "
                           f"{fragment.read_count} of {limit} insts")
            if fragment.fetched_count > fragment.static_frag.length:
                self._fail(processor,
                           f"frag#{fragment.seq} fetched "
                           f"{fragment.fetched_count} insts of a "
                           f"{fragment.static_frag.length}-inst fragment")
            if fragment.committed_count > len(fragment.uops):
                self._fail(processor,
                           f"frag#{fragment.seq} committed "
                           f"{fragment.committed_count} uops but only "
                           f"{len(fragment.uops)} were renamed")
            if i > 0 and fragment.committed_count:
                self._fail(processor,
                           f"non-head frag#{fragment.seq} has "
                           f"{fragment.committed_count} committed insts")
            for position, uop in enumerate(fragment.uops):
                committed = uop.state is UopState.COMMITTED
                if committed and position >= fragment.committed_count:
                    self._fail(processor,
                               f"frag#{fragment.seq} uop {position} is "
                               f"committed beyond the commit cursor "
                               f"{fragment.committed_count}")
                if committed and uop.record is None:
                    self._fail(processor,
                               f"frag#{fragment.seq} committed wrong-path "
                               f"uop at position {position}")

    def _audit_buffers(self, processor: "Processor") -> None:
        """Buffer array and fragment back-pointers must agree 1:1."""
        live = {fragment.seq: fragment for fragment in processor.fragments}
        for buffer in processor.buffers._buffers:
            occupant = buffer.occupant
            if occupant is None:
                continue
            if occupant.buffer_index != buffer.index:
                self._fail(processor,
                           f"buffer {buffer.index} holds frag"
                           f"#{occupant.seq} whose back-pointer is "
                           f"{occupant.buffer_index}")
            if live.get(occupant.seq) is not occupant:
                self._fail(processor,
                           f"buffer {buffer.index} holds frag"
                           f"#{occupant.seq} which is no longer in flight")
        for fragment in processor.fragments:
            if fragment.buffer_index is None:
                continue
            buffers = processor.buffers._buffers
            if not 0 <= fragment.buffer_index < len(buffers):
                self._fail(processor,
                           f"frag#{fragment.seq} points at nonexistent "
                           f"buffer {fragment.buffer_index}")
            if buffers[fragment.buffer_index].occupant is not fragment:
                self._fail(processor,
                           f"frag#{fragment.seq} points at buffer "
                           f"{fragment.buffer_index} occupied by someone "
                           f"else")

    def _audit_rename_maps(self, processor: "Processor") -> None:
        """Rename map tables must be self-consistent per fragment."""
        for fragment in processor.fragments:
            uops = set(map(id, fragment.uops))
            for reg, writer in fragment.internal_writers.items():
                if id(writer) not in uops:
                    self._fail(processor,
                               f"frag#{fragment.seq} internal writer for "
                               f"r{reg} is not one of its uops")
                if writer.inst.dest_reg() != reg:
                    self._fail(processor,
                               f"frag#{fragment.seq} internal writer for "
                               f"r{reg} writes r{writer.inst.dest_reg()}")
            if (fragment.rename_done
                    and fragment.incoming_map is not None
                    and fragment.outgoing_actual is not None):
                expected = dict(fragment.incoming_map)
                expected.update(fragment.internal_writers)
                if fragment.outgoing_actual != expected:
                    self._fail(processor,
                               f"frag#{fragment.seq} outgoing map is not "
                               f"incoming map + internal writers")
