"""In-flight micro-operations.

A :class:`MicroOp` is one dynamic instance of an instruction travelling
through the timing pipeline.  Dataflow is modelled by linking each source
operand to its *producer* (another MicroOp, or a
:class:`PlaceholderProducer` created by parallel rename's phase 1 for a
predicted live-out that has not been renamed yet).
"""

from __future__ import annotations

import enum
from typing import List, Optional, Union

from repro.emulator.stream import DynamicInstruction
from repro.isa.instructions import Instruction, OpClass


class UopState(enum.Enum):
    RENAMED = "renamed"      # renamed, waiting to enter the window
    WAITING = "waiting"      # in window, sources not ready
    READY = "ready"          # in window, sources ready, waiting for issue
    EXECUTING = "executing"  # issued to a functional unit
    DONE = "done"            # result available
    COMMITTED = "committed"
    SQUASHED = "squashed"


class PlaceholderProducer:
    """Phase-1 token for a predicted live-out of a fragment.

    Younger fragments rename their cross-fragment sources to these tokens
    before the producing instruction itself has been renamed.  When the
    producer is renamed (phase 2) the token is *bound*; the consumer then
    tracks the real producer's completion.
    """

    __slots__ = ("arch_reg", "fragment_seq", "producer", "invalidated",
                 "consumers", "ready")

    def __init__(self, arch_reg: int, fragment_seq: int):
        self.arch_reg = arch_reg
        self.fragment_seq = fragment_seq
        #: The real producer once bound: a MicroOp, or another (older)
        #: placeholder when a cold fragment passes a mapping through.
        self.producer: Optional[object] = None
        self.invalidated = False
        #: Uops waiting on this mapping before the producer is known.
        self.consumers: List["MicroOp"] = []
        #: True when the mapping resolved to architectural (committed)
        #: state — the value is available immediately.
        self.ready = False

    def bind(self, producer: "MicroOp") -> None:
        """Attach the real producer; waiting consumers follow it now.

        Only valid while the producer has not completed; late bindings
        must go through ``OutOfOrderCore.bind_placeholder`` so waiting
        consumers are woken.
        """
        self.producer = producer
        if self.consumers:
            producer.consumers.extend(self.consumers)
            self.consumers = []

    @property
    def done(self) -> bool:
        """Ready only once resolved to architectural state or bound to a
        completed producer.  Iterative: pass-through chains can span many
        fragments for rarely-written registers."""
        node = self
        while isinstance(node, PlaceholderProducer):
            if node.ready:
                return True
            if node.producer is None:
                return False
            node = node.producer
        return node.state in (UopState.DONE, UopState.COMMITTED)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "bound" if self.producer else "unbound"
        return (f"<Placeholder r{self.arch_reg} "
                f"frag={self.fragment_seq} {status}>")


Producer = Union["MicroOp", PlaceholderProducer]


class MicroOp:
    """One in-flight dynamic instruction."""

    __slots__ = (
        "seq", "inst", "pc", "fragment_seq", "position", "record",
        "state", "sources", "complete_cycle", "renamed_cycle",
        "dispatch_ready_cycle", "consumers", "pending", "oracle_idx",
        "redirect_target", "issue_cycle", "commit_cycle",
    )

    def __init__(self, seq: int, inst: Instruction, pc: int,
                 fragment_seq: int, position: int,
                 record: Optional[DynamicInstruction]):
        self.seq = seq
        self.inst = inst
        self.pc = pc
        self.fragment_seq = fragment_seq
        #: Index of this uop within its fragment (0-based, non-NOP).
        self.position = position
        #: Oracle record when on the correct path, else None (wrong path).
        self.record = record
        self.state = UopState.RENAMED
        #: Producers of each source operand (filled in by rename).
        self.sources: List[Producer] = []
        self.complete_cycle = -1
        self.renamed_cycle = -1
        self.dispatch_ready_cycle = -1
        #: Uops whose sources include this one (window wakeup links).
        self.consumers: List["MicroOp"] = []
        #: Number of source producers not yet complete (window state).
        self.pending = 0
        #: Position in the processor's non-NOP oracle stream, or -1.
        self.oracle_idx = -1
        #: When set, completing this uop redirects fetch to this PC
        #: (control misprediction resolution).
        self.redirect_target: Optional[int] = None
        #: Lifecycle timestamps for tracing (set by the core/commit).
        self.issue_cycle = -1
        self.commit_cycle = -1

    # -- classification ----------------------------------------------------

    @property
    def on_correct_path(self) -> bool:
        return self.record is not None

    @property
    def op_class(self) -> OpClass:
        return self.inst.op_class

    @property
    def is_control(self) -> bool:
        return self.inst.is_control

    def sources_ready(self) -> bool:
        """True when every source's producer has completed."""
        for producer in self.sources:
            if isinstance(producer, PlaceholderProducer):
                if not producer.done:
                    return False
            elif producer.state not in (UopState.DONE, UopState.COMMITTED):
                return False
        return True

    def actual_next_pc(self) -> Optional[int]:
        """Architecturally-correct next PC (None on the wrong path)."""
        return self.record.next_pc if self.record is not None else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        path = "C" if self.on_correct_path else "W"
        return (f"<uop#{self.seq} {self.pc:#x} {self.inst.opcode.mnemonic} "
                f"{self.state.value} {path}>")
