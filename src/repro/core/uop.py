"""In-flight micro-operations and the decoded-uop cache.

A :class:`MicroOp` is one dynamic instance of an instruction travelling
through the timing pipeline.  Dataflow is modelled by linking each source
operand to its *producer* (another MicroOp, or a
:class:`PlaceholderProducer` created by parallel rename's phase 1 for a
predicted live-out that has not been renamed yet).

The :class:`DecodeCache` holds one immutable :class:`DecodedUop` per
``(pc, instruction)``: the dataflow view (zero-register-filtered sources
and destination) plus the functional-unit pool and latency-table key the
scheduler needs.  Recurring fragments — the overwhelmingly common case,
since fetch walks the same loops over and over — reuse the cached entry
instead of re-deriving this metadata for every dynamic instance.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Tuple, Union

from repro.emulator.stream import DynamicInstruction
from repro.isa.instructions import Instruction, OpClass
from repro.isa.registers import ZERO_REG

#: OpClass -> functional-unit pool name (the Table 1 taxonomy; branches
#: and integer ALU ops share the integer adders, loads and stores the
#: load/store units).
FU_POOL: Dict[OpClass, str] = {
    OpClass.IALU: "ialu",
    OpClass.IMUL: "imul",
    OpClass.IDIV: "idiv",
    OpClass.FADD: "fadd",
    OpClass.FMUL: "fmul",
    OpClass.LOAD: "mem",
    OpClass.STORE: "mem",
    OpClass.BRANCH: "ialu",
    OpClass.JUMP: "ialu",
    OpClass.CALL: "ialu",
    OpClass.IJUMP: "ialu",
    OpClass.ICALL: "ialu",
    OpClass.RETURN: "ialu",
    OpClass.HALT: "ialu",
}

#: OpClass -> key into ``BackEndConfig.fu_latencies``.
LATENCY_KEY: Dict[OpClass, str] = {
    OpClass.IALU: "ialu",
    OpClass.IMUL: "imul",
    OpClass.IDIV: "idiv",
    OpClass.FADD: "fadd",
    OpClass.FMUL: "fmul",
    OpClass.LOAD: "load",
    OpClass.STORE: "store",
    OpClass.BRANCH: "branch",
    OpClass.JUMP: "branch",
    OpClass.CALL: "branch",
    OpClass.IJUMP: "branch",
    OpClass.ICALL: "branch",
    OpClass.RETURN: "branch",
    OpClass.HALT: "branch",
}


class DecodedUop:
    """Immutable decode/dependence metadata shared by every dynamic
    instance of one static instruction.

    Attributes:
        srcs: source architectural registers with ``r0`` filtered out —
            exactly the registers that create rename dependences.
        dest: destination architectural register, or ``None`` when the
            instruction writes nothing (or only ``r0``).
        pool: functional-unit pool name for issue arbitration.
        latency_key: key into the configured latency table.
    """

    __slots__ = ("srcs", "dest", "pool", "latency_key")

    def __init__(self, inst: Instruction):
        self.srcs: Tuple[int, ...] = tuple(
            r for r in inst.src_regs() if r != ZERO_REG)
        dest = inst.dest_reg()
        self.dest: Optional[int] = (dest if dest is not None
                                    and dest != ZERO_REG else None)
        self.pool: str = FU_POOL[inst.op_class]
        self.latency_key: str = LATENCY_KEY[inst.op_class]


class DecodeCache:
    """Bounded ``(pc, instruction) -> DecodedUop`` cache.

    One cache serves one processor instance.  Entries are stored under
    the PC with the instruction object kept alongside and verified by
    identity on every hit: hashing the PC (a small int) is far cheaper
    than hashing the instruction dataclass, and the identity check keeps
    the mapping honest if a different instruction object is ever
    presented for the same address (self-modifying test programs).

    Capacity bounds model the finite decoded-uop storage a hardware
    front-end would have; when the cache fills, the oldest entries are
    evicted FIFO (insertion order) in batches so eviction cost stays
    amortised.  Hits, misses and evictions are observable for tests and
    tuning.
    """

    __slots__ = ("capacity", "hits", "misses", "evictions", "_entries")

    #: Fraction of the cache evicted per overflow (amortised FIFO).
    _EVICT_FRACTION = 8

    def __init__(self, capacity: int = 65536):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: Dict[int, Tuple[Instruction, DecodedUop]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, pc: int, inst: Instruction) -> DecodedUop:
        """The decoded form of *inst* at *pc*, decoding on first use."""
        entry = self._entries.get(pc)
        if entry is not None and entry[0] is inst:
            self.hits += 1
            return entry[1]
        if entry is None and len(self._entries) >= self.capacity:
            drop = max(1, self.capacity // self._EVICT_FRACTION)
            for old in list(self._entries)[:drop]:
                del self._entries[old]
            self.evictions += drop
        self.misses += 1
        decoded = DecodedUop(inst)
        self._entries[pc] = (inst, decoded)
        return decoded


class UopState(enum.Enum):
    """Lifecycle of a renamed micro-op through the window."""
    RENAMED = "renamed"      # renamed, waiting to enter the window
    WAITING = "waiting"      # in window, sources not ready
    READY = "ready"          # in window, sources ready, waiting for issue
    EXECUTING = "executing"  # issued to a functional unit
    DONE = "done"            # result available
    COMMITTED = "committed"
    SQUASHED = "squashed"


class PlaceholderProducer:
    """Phase-1 token for a predicted live-out of a fragment.

    Younger fragments rename their cross-fragment sources to these tokens
    before the producing instruction itself has been renamed.  When the
    producer is renamed (phase 2) the token is *bound*; the consumer then
    tracks the real producer's completion.
    """

    __slots__ = ("arch_reg", "fragment_seq", "producer", "invalidated",
                 "consumers", "ready")

    def __init__(self, arch_reg: int, fragment_seq: int):
        self.arch_reg = arch_reg
        self.fragment_seq = fragment_seq
        #: The real producer once bound: a MicroOp, or another (older)
        #: placeholder when a cold fragment passes a mapping through.
        self.producer: Optional[object] = None
        self.invalidated = False
        #: Uops waiting on this mapping before the producer is known.
        self.consumers: List["MicroOp"] = []
        #: True when the mapping resolved to architectural (committed)
        #: state — the value is available immediately.
        self.ready = False

    def bind(self, producer: "MicroOp") -> None:
        """Attach the real producer; waiting consumers follow it now.

        Only valid while the producer has not completed; late bindings
        must go through ``OutOfOrderCore.bind_placeholder`` so waiting
        consumers are woken.
        """
        self.producer = producer
        if self.consumers:
            producer.consumers.extend(self.consumers)
            self.consumers = []

    @property
    def done(self) -> bool:
        """Ready only once resolved to architectural state or bound to a
        completed producer.  Iterative: pass-through chains can span many
        fragments for rarely-written registers."""
        node = self
        while isinstance(node, PlaceholderProducer):
            if node.ready:
                return True
            if node.producer is None:
                return False
            node = node.producer
        return node.state in (UopState.DONE, UopState.COMMITTED)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "bound" if self.producer else "unbound"
        return (f"<Placeholder r{self.arch_reg} "
                f"frag={self.fragment_seq} {status}>")


Producer = Union["MicroOp", PlaceholderProducer]


class MicroOp:
    """One in-flight dynamic instruction."""

    __slots__ = (
        "seq", "inst", "pc", "fragment_seq", "position", "record",
        "state", "sources", "complete_cycle", "renamed_cycle",
        "dispatch_ready_cycle", "consumers", "pending", "oracle_idx",
        "redirect_target", "issue_cycle", "commit_cycle", "decoded",
    )

    def __init__(self, seq: int, inst: Instruction, pc: int,
                 fragment_seq: int, position: int,
                 record: Optional[DynamicInstruction],
                 decoded: Optional[DecodedUop] = None):
        self.seq = seq
        self.inst = inst
        self.pc = pc
        self.fragment_seq = fragment_seq
        #: Index of this uop within its fragment (0-based, non-NOP).
        self.position = position
        #: Oracle record when on the correct path, else None (wrong path).
        self.record = record
        #: Cached decode metadata (see :class:`DecodeCache`); None when
        #: the uop was constructed outside the processor (tests).
        self.decoded = decoded
        self.state = UopState.RENAMED
        #: Producers of each source operand (filled in by rename).
        self.sources: List[Producer] = []
        self.complete_cycle = -1
        self.renamed_cycle = -1
        self.dispatch_ready_cycle = -1
        #: Uops whose sources include this one (window wakeup links).
        self.consumers: List["MicroOp"] = []
        #: Number of source producers not yet complete (window state).
        self.pending = 0
        #: Position in the processor's non-NOP oracle stream, or -1.
        self.oracle_idx = -1
        #: When set, completing this uop redirects fetch to this PC
        #: (control misprediction resolution).
        self.redirect_target: Optional[int] = None
        #: Lifecycle timestamps for tracing (set by the core/commit).
        self.issue_cycle = -1
        self.commit_cycle = -1

    # -- classification ----------------------------------------------------

    @property
    def on_correct_path(self) -> bool:
        """Whether this uop has an oracle record (correct-path)."""
        return self.record is not None

    @property
    def op_class(self) -> OpClass:
        """Functional-unit class of the underlying instruction."""
        return self.inst.op_class

    @property
    def is_control(self) -> bool:
        """Whether the underlying instruction is a control transfer."""
        return self.inst.is_control

    def sources_ready(self) -> bool:
        """True when every source's producer has completed."""
        for producer in self.sources:
            if isinstance(producer, PlaceholderProducer):
                if not producer.done:
                    return False
            elif producer.state not in (UopState.DONE, UopState.COMMITTED):
                return False
        return True

    def actual_next_pc(self) -> Optional[int]:
        """Architecturally-correct next PC (None on the wrong path)."""
        return self.record.next_pc if self.record is not None else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        path = "C" if self.on_correct_path else "W"
        return (f"<uop#{self.seq} {self.pc:#x} {self.inst.opcode.mnemonic} "
                f"{self.state.value} {path}>")
