"""Functional warming of predictors and caches.

The paper simulates one *billion* instructions per benchmark, so its
measurements reflect steady state: predictors trained, caches resident.
A pure-Python timing model cannot afford that, so — following standard
sampled-simulation methodology (functional warming, as in SMARTS) — the
large stateful structures are warmed architecturally before the timed
run: the trace/fragment predictor, bimodal fallback and live-out predictor
are trained on the benchmark's retired fragment sequence, and the caches
and trace cache are touched in reference order.  Warming is purely
functional (no timing) and therefore cheap.

Warming uses the same dynamic stream the timed run will execute, which is
the closest available approximation of "the program has been running for
a long time already" for looping workloads like this suite's.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence

from repro.emulator.stream import DynamicInstruction
from repro.frontend.fragments import carve_stream
from repro.predictors.liveout import compute_liveouts

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.processor import Processor


def warm_processor(processor: "Processor",
                   stream: Sequence[DynamicInstruction]) -> None:
    """Warm *processor*'s predictors and caches with *stream*.

    Must be called before the first timing cycle.  The speculative and
    retire history registers are left in their trained end state, then
    reset to empty speculative history for the run start (the first few
    fragments simply use the secondary table).
    """
    non_nop: List[DynamicInstruction] = [r for r in stream
                                         if not r.inst.is_nop]

    # Branch outcome predictor.
    bimodal = processor.bimodal
    for record in non_nop:
        if record.inst.is_cond_branch:
            bimodal.train(record.pc, record.taken)

    # Fragment-sequence predictors (trace predictor + live-outs), trained
    # exactly as the commit-side carver would.
    fragment_config = processor.config.fragment
    trace_cache = processor.trace_cache
    for fragment in carve_stream(non_nop, fragment_config):
        processor.trace_predictor.train(fragment.key)
        processor.liveout_predictor.train(
            fragment.key,
            compute_liveouts([r.inst for r in fragment.records]))
        if trace_cache is not None:
            trace_cache.insert(fragment.key)

    # Caches: touch lines in reference order so LRU state is realistic.
    memory = processor.memory
    seen_line = -1
    for record in stream:
        line = record.pc >> 6
        if line != seen_line:
            memory.l2.fill(record.pc)
            memory.l1i.fill(record.pc)
            seen_line = line
        if record.ea is not None:
            memory.l2.fill(record.ea)
            memory.l1d.fill(record.ea)

    # Warming trained the predictors but also counted hits/misses and
    # fills into the shared stats collector; reset it so the timed run
    # starts clean, with no phantom zero-valued entries left behind.
    processor.stats.reset()

    # Start the timed run with clean history registers; the retire-side
    # history rebuilds within a few fragments.
    processor.trace_predictor.restore_history(())
