"""Functional warming of predictors and caches.

The paper simulates one *billion* instructions per benchmark, so its
measurements reflect steady state: predictors trained, caches resident.
A pure-Python timing model cannot afford that, so — following standard
sampled-simulation methodology (functional warming, as in SMARTS) — the
large stateful structures are warmed architecturally before the timed
run: the trace/fragment predictor, bimodal fallback and live-out predictor
are trained on the benchmark's retired fragment sequence, and the caches
and trace cache are touched in reference order.  Warming is purely
functional (no timing) and therefore cheap.

Warming uses the same dynamic stream the timed run will execute, which is
the closest available approximation of "the program has been running for
a long time already" for looping workloads like this suite's.

:class:`WarmingState` is the resumable core: it consumes the stream in
arbitrary chunks, which is what lets the interval-sampling engine
(:mod:`repro.sampling`) keep structures functionally warm across
fast-forwarded gaps without replaying the whole stream.  Chunking is
invisible to the warmed structures — each one (bimodal counters, trace
and live-out predictor tables, trace cache, L1/L2 LRU state) observes
exactly the same update sequence regardless of chunk boundaries, so the
end state is bit-identical to a single whole-stream pass (the test suite
asserts this).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence

from repro.emulator.stream import DynamicInstruction
from repro.frontend.fragments import (
    DynamicFragment,
    FragmentKey,
    TerminationReason,
    should_terminate,
)
from repro.predictors.liveout import compute_liveouts

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.processor import Processor


class WarmingState:
    """Resumable functional warming over stream chunks.

    Feed the dynamic stream through :meth:`feed` in any number of chunks
    (one call with the whole stream is the classic pre-run warming), then
    :meth:`finish` exactly once before the first timed cycle.  The
    sampling engine instead interleaves :meth:`feed` calls with detailed
    measurement windows and never calls :meth:`finish` — it drops
    carve-in-progress state at window boundaries via
    :meth:`discard_partial` because the detailed window's commit-side
    carver takes over training from there.

    A fragment that spans a chunk boundary is carried, not truncated:
    only :meth:`flush` emits the trailing ``STREAM_END`` fragment.
    """

    def __init__(self, processor: "Processor"):
        self.processor = processor
        self._config = processor.config.fragment
        # Carve-in-progress state (records/directions of the pending,
        # not-yet-terminated fragment) — carried across feed() calls.
        self._records: List[DynamicInstruction] = []
        self._directions: List[bool] = []
        # Last I-line touched, carried so a fragment of straight-line
        # code split across chunks still fills each line exactly once.
        self._seen_line = -1
        self._finished = False

    # -- incremental warming ------------------------------------------------

    def feed(self, chunk: Iterable[DynamicInstruction]) -> None:
        """Warm all structures with the next *chunk* of the stream.

        Records must arrive in stream order across calls; NOPs are kept
        for cache touches and ignored everywhere else, exactly as in the
        whole-stream pass.
        """
        if self._finished:
            raise RuntimeError("WarmingState.feed() after finish()")
        processor = self.processor
        bimodal = processor.bimodal
        memory = processor.memory
        records = self._records
        directions = self._directions
        seen_line = self._seen_line
        config = self._config

        for record in chunk:
            # Caches: touch lines in reference order so LRU is realistic.
            line = record.pc >> 6
            if line != seen_line:
                memory.l2.fill(record.pc)
                memory.l1i.fill(record.pc)
                seen_line = line
            if record.ea is not None:
                memory.l2.fill(record.ea)
                memory.l1d.fill(record.ea)

            inst = record.inst
            if inst.is_nop:
                continue

            # Branch outcome predictor.
            if inst.is_cond_branch:
                bimodal.train(record.pc, record.taken)
                directions.append(record.taken)

            # Fragment carving (same termination rules as carve_stream).
            records.append(record)
            reason = should_terminate(inst, len(records), config)
            if reason is not None:
                key = FragmentKey(records[0].pc, tuple(directions))
                next_pc = (None if reason in (TerminationReason.INDIRECT,
                                              TerminationReason.HALT)
                           else record.next_pc)
                self._train(DynamicFragment(key, records, reason, next_pc))
                records = self._records = []
                directions = self._directions = []

        self._seen_line = seen_line

    def feed_caches(self, chunk: Iterable[DynamicInstruction]) -> None:
        """Touch caches in reference order for *chunk*, training nothing.

        The cheap gap-maintenance mode for sampled runs that pre-warmed
        every predictor on the whole stream: the predictors are already
        at steady state, so re-training them through the gaps buys no
        accuracy, but cache LRU recency still has to track the skipped
        references or measured windows would see phantom-cold lines.
        Uses the same I-line carry as :meth:`feed`, so the two modes can
        be interleaved (they never are in practice).
        """
        if self._finished:
            raise RuntimeError("WarmingState.feed_caches() after finish()")
        memory = self.processor.memory
        seen_line = self._seen_line
        l2_fill = memory.l2.fill
        l1i_fill = memory.l1i.fill
        l1d_fill = memory.l1d.fill
        for record in chunk:
            line = record.pc >> 6
            if line != seen_line:
                l2_fill(record.pc)
                l1i_fill(record.pc)
                seen_line = line
            if record.ea is not None:
                l2_fill(record.ea)
                l1d_fill(record.ea)
        self._seen_line = seen_line

    def _train(self, fragment: DynamicFragment) -> None:
        """Train the fragment-sequence predictors on a carved fragment,
        exactly as the commit-side carver would."""
        processor = self.processor
        processor.trace_predictor.train(fragment.key)
        processor.liveout_predictor.train(
            fragment.key,
            compute_liveouts([r.inst for r in fragment.records]))
        if processor.trace_cache is not None:
            processor.trace_cache.insert(fragment.key)
        # Pure-cache prewarm: walk caches, decode cache, SoA metadata and
        # chunk tables for the key the predictors just trained on — these
        # are keyed pure functions, so prebuilding them is as invisible
        # to the timed run as the predictor training above (repeat keys
        # cost only a memo probe).  getattr: warming also runs against
        # snapshot donors (sampling/prep.py) that expose only the
        # predictor/cache surface, not the full Processor API.
        prewarm = getattr(processor, "prewarm_fragment_key", None)
        if prewarm is not None:
            prewarm(fragment.key)

    def flush(self) -> None:
        """Train the trailing truncated fragment, if one is pending.

        Matches :func:`repro.frontend.fragments.carve_stream`, which
        emits the final partial fragment with ``STREAM_END``.
        """
        if self._records:
            key = FragmentKey(self._records[0].pc, tuple(self._directions))
            self._train(DynamicFragment(key, self._records,
                                        TerminationReason.STREAM_END,
                                        self._records[-1].next_pc))
            self._records = []
            self._directions = []

    def discard_partial(self) -> int:
        """Drop the carve-in-progress fragment without training it.

        Used at gap → detailed-window boundaries in sampled simulation:
        the window's commit carver re-carves from the window start, so
        training the artificial boundary fragment here would either
        double-train or train a fragment the full-detail run never sees.
        Returns the number of records dropped.
        """
        dropped = len(self._records)
        self._records = []
        self._directions = []
        return dropped

    def finish(self) -> None:
        """Complete pre-run warming: flush the trailing fragment, clear
        warming side effects on stats, and reset speculative history.

        Call exactly once, before the first timed cycle.  The retire-side
        history keeps its trained end state; the speculative history
        starts empty (the first few fragments use the secondary table).
        """
        self.flush()
        self._finished = True
        # Warming trained the predictors but also counted hits/misses and
        # fills into the shared stats collector; reset it so the timed
        # run starts clean, with no phantom zero-valued entries.
        self.processor.stats.reset()
        self.processor.trace_predictor.restore_history(())


def warm_donor_group(donors: Sequence["Processor"],
                     stream: Sequence[DynamicInstruction]) -> None:
    """Warm every donor in *donors* with one pass over *stream*.

    The co-simulation path's warming amortization: N warm-snapshot
    builds over the same stream share the stream walk, fragment carving
    and live-out computation, which depend only on the stream and the
    (shared) fragment config — never on the donor.  Each donor's own
    structures (bimodal counters, predictor tables, cache LRU state,
    trace cache) observe exactly the update sequence a solo
    :func:`warm_processor` pass would apply, so the end state is
    bit-identical per donor (asserted by the parity tests).

    All donors must share one :class:`~repro.config.FragmentConfig`;
    callers group by it (:func:`repro.sampling.prep.warm_group_snapshots`).
    Like :meth:`WarmingState.finish`, this resets each donor's stats and
    speculative history afterwards.
    """
    if not donors:
        return
    config = donors[0].config.fragment
    for donor in donors[1:]:
        if donor.config.fragment != config:
            raise ValueError(
                "warm_donor_group requires one shared fragment config")

    def train_group(fragment: DynamicFragment) -> None:
        liveouts = compute_liveouts([r.inst for r in fragment.records])
        for donor in donors:
            donor.trace_predictor.train(fragment.key)
            donor.liveout_predictor.train(fragment.key, liveouts)
            if donor.trace_cache is not None:
                donor.trace_cache.insert(fragment.key)
            prewarm = getattr(donor, "prewarm_fragment_key", None)
            if prewarm is not None:
                prewarm(fragment.key)

    memories = [donor.memory for donor in donors]
    bimodals = [donor.bimodal for donor in donors]
    records: List[DynamicInstruction] = []
    directions: List[bool] = []
    seen_line = -1
    for record in stream:
        line = record.pc >> 6
        if line != seen_line:
            for memory in memories:
                memory.l2.fill(record.pc)
                memory.l1i.fill(record.pc)
            seen_line = line
        if record.ea is not None:
            for memory in memories:
                memory.l2.fill(record.ea)
                memory.l1d.fill(record.ea)

        inst = record.inst
        if inst.is_nop:
            continue
        if inst.is_cond_branch:
            for bimodal in bimodals:
                bimodal.train(record.pc, record.taken)
            directions.append(record.taken)

        records.append(record)
        reason = should_terminate(inst, len(records), config)
        if reason is not None:
            key = FragmentKey(records[0].pc, tuple(directions))
            next_pc = (None if reason in (TerminationReason.INDIRECT,
                                          TerminationReason.HALT)
                       else record.next_pc)
            train_group(DynamicFragment(key, records, reason, next_pc))
            records = []
            directions = []

    if records:
        key = FragmentKey(records[0].pc, tuple(directions))
        train_group(DynamicFragment(key, records,
                                    TerminationReason.STREAM_END,
                                    records[-1].next_pc))

    for donor in donors:
        donor.stats.reset()
        donor.trace_predictor.restore_history(())


def warm_processor(processor: "Processor",
                   stream: Sequence[DynamicInstruction],
                   chunk_size: Optional[int] = None) -> None:
    """Warm *processor*'s predictors and caches with *stream*.

    Must be called before the first timing cycle.  *chunk_size* feeds the
    stream through :class:`WarmingState` in slices of that many records —
    the result is bit-identical to the default whole-stream pass; the
    parameter exists for parity testing and has no behavioural effect.
    """
    state = WarmingState(processor)
    if chunk_size is None:
        state.feed(stream)
    else:
        for start in range(0, len(stream), chunk_size):
            state.feed(stream[start:start + chunk_size])
    state.finish()
