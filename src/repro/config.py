"""Simulator configuration.

Defaults reproduce Table 1 of the paper:

* 16-wide fetch/decode/commit, 256-entry instruction window;
* 16 int adders, 4 int multipliers, 4 FP adders, 1 FP multiplier,
  4 load/store units;
* 64 KB 2-way L1 caches (64-byte blocks, 1-cycle), 1 MB 4-way L2
  (10-cycle), 100-cycle memory;
* DOLC next-trace predictor with a 64K-entry primary and 16K-entry
  secondary table, D=9 O=4 L=7 C=9;
* 16 fragment buffers of 16 instructions, 2-way 4K-entry live-out
  predictor.

Named front-end configurations (``w16``, ``tc``, ``tc2x``, ``pf-2x8w``,
``pf-4x4w``, ``pr-2x8w``, ``pr-4x4w``) are constructed by
:func:`frontend_config`.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import ConfigError

KB = 1024


def _positive(name: str, value: int) -> None:
    if value <= 0:
        raise ConfigError(f"{name} must be positive, got {value}")


def _power_of_two(name: str, value: int) -> None:
    _positive(name, value)
    if value & (value - 1):
        raise ConfigError(f"{name} must be a power of two, got {value}")


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    size_bytes: int
    assoc: int
    line_bytes: int
    latency: int
    banks: int = 1

    def __post_init__(self) -> None:
        _power_of_two("cache size", self.size_bytes)
        _positive("associativity", self.assoc)
        _power_of_two("line size", self.line_bytes)
        _positive("latency", self.latency)
        _power_of_two("banks", self.banks)
        if self.size_bytes < self.line_bytes * self.assoc:
            raise ConfigError("cache smaller than one set")

    @property
    def num_sets(self) -> int:
        """Number of sets implied by size, line size and associativity."""
        return self.size_bytes // (self.line_bytes * self.assoc)


@dataclass(frozen=True)
class MemoryConfig:
    """The full memory hierarchy (Table 1)."""

    l1i: CacheConfig = CacheConfig(64 * KB, 2, 64, 1, banks=16)
    l1d: CacheConfig = CacheConfig(64 * KB, 2, 64, 1)
    l2: CacheConfig = CacheConfig(1024 * KB, 4, 128, 10)
    memory_latency: int = 100

    def __post_init__(self) -> None:
        _positive("memory latency", self.memory_latency)


@dataclass(frozen=True)
class TracePredictorConfig:
    """Path-based next-trace predictor (Jacobson/Rotenberg/Smith DOLC)."""

    primary_entries: int = 64 * 1024
    secondary_entries: int = 16 * 1024
    #: DOLC parameters: history Depth, bits from Older ids, bits from the
    #: Last id, bits from the Current id.
    depth: int = 9
    older_bits: int = 4
    last_bits: int = 7
    current_bits: int = 9

    def __post_init__(self) -> None:
        _power_of_two("primary predictor entries", self.primary_entries)
        _power_of_two("secondary predictor entries", self.secondary_entries)
        for name in ("depth", "older_bits", "last_bits", "current_bits"):
            _positive(name, getattr(self, name))

    def scaled(self, primary_entries: int) -> "TracePredictorConfig":
        """A copy with a different primary table size; the secondary table
        is kept at one quarter of the primary, as in Figure 10."""
        return dataclasses.replace(
            self, primary_entries=primary_entries,
            secondary_entries=max(1, primary_entries // 4))


@dataclass(frozen=True)
class LiveOutPredictorConfig:
    """Live-out predictor for parallel renaming (Section 4.1)."""

    entries: int = 4096
    assoc: int = 2
    tag_bits: int = 4

    def __post_init__(self) -> None:
        _power_of_two("live-out predictor entries", self.entries)
        _positive("live-out predictor associativity", self.assoc)
        _positive("live-out predictor tag bits", self.tag_bits)


@dataclass(frozen=True)
class FragmentConfig:
    """Fragment/trace selection heuristics (Section 3.1).

    Fragments terminate at indirect branches, at any conditional branch
    after ``cond_branch_limit`` instructions, or at ``max_length``
    instructions.
    """

    max_length: int = 16
    cond_branch_limit: int = 8

    def __post_init__(self) -> None:
        _positive("max fragment length", self.max_length)
        _positive("conditional branch limit", self.cond_branch_limit)
        if self.cond_branch_limit > self.max_length:
            raise ConfigError("cond_branch_limit cannot exceed max_length")


@dataclass(frozen=True)
class TraceCacheConfig:
    """Trace cache geometry (mechanism TC in the paper)."""

    size_bytes: int = 32 * KB
    assoc: int = 2
    max_trace_length: int = 16
    #: Bytes of storage one trace line occupies (16 insts x 4 B).
    line_bytes: int = 64

    def __post_init__(self) -> None:
        _power_of_two("trace cache size", self.size_bytes)
        _positive("trace cache associativity", self.assoc)
        _positive("max trace length", self.max_trace_length)

    @property
    def num_sets(self) -> int:
        """Number of sets implied by entry count and associativity."""
        return self.size_bytes // (self.line_bytes * self.assoc)


#: Recognised fetch mechanisms.
FETCH_KINDS = ("w16", "tc", "pf")
#: Recognised rename mechanisms.  ``parallel`` is the paper's proposed
#: scheme (solution 2: live-out prediction); ``delay`` is the paper's
#: solution 1 (Multiscalar-style: consumers wait until the producing
#: fragment's mappings become available, no prediction).
RENAME_KINDS = ("monolithic", "parallel", "delay")


@dataclass(frozen=True)
class FrontEndConfig:
    """Which fetch and rename mechanisms to build, and their widths."""

    fetch_kind: str = "w16"
    rename_kind: str = "monolithic"
    #: Aggregate front-end width (instructions/cycle) for fetch and rename.
    width: int = 16
    #: Parallel fetch: number of sequencers (width is split evenly).
    sequencers: int = 1
    #: Parallel rename: number of renamers (width is split evenly).
    renamers: int = 1
    num_fragment_buffers: int = 16
    fragment_buffer_size: int = 16
    trace_cache: Optional[TraceCacheConfig] = None
    #: Live-out misprediction recovery policy (Section 4.3): ``squash``
    #: discards all younger fragments' renames (the paper's default);
    #: ``reexecute`` selectively repairs and re-executes only the
    #: incorrectly renamed instructions (the paper's costlier alternative).
    liveout_recovery: str = "squash"

    def __post_init__(self) -> None:
        if self.fetch_kind not in FETCH_KINDS:
            raise ConfigError(f"unknown fetch kind {self.fetch_kind!r}")
        if self.rename_kind not in RENAME_KINDS:
            raise ConfigError(f"unknown rename kind {self.rename_kind!r}")
        if self.liveout_recovery not in ("squash", "reexecute"):
            raise ConfigError(
                f"unknown live-out recovery {self.liveout_recovery!r}")
        _positive("front-end width", self.width)
        _positive("sequencers", self.sequencers)
        _positive("renamers", self.renamers)
        _positive("fragment buffers", self.num_fragment_buffers)
        _positive("fragment buffer size", self.fragment_buffer_size)
        if self.width % self.sequencers:
            raise ConfigError("width must divide evenly among sequencers")
        if self.width % self.renamers:
            raise ConfigError("width must divide evenly among renamers")
        if self.fetch_kind == "tc" and self.trace_cache is None:
            raise ConfigError("trace-cache fetch requires a TraceCacheConfig")

    @property
    def sequencer_width(self) -> int:
        """Fetch width of each individual sequencer."""
        return self.width // self.sequencers

    @property
    def renamer_width(self) -> int:
        """Rename width of each individual rename unit."""
        return self.width // self.renamers


#: Execution latencies per functional-unit class.
DEFAULT_FU_LATENCIES: Dict[str, int] = {
    "ialu": 1,
    "imul": 3,
    "idiv": 12,
    "fadd": 2,
    "fmul": 4,
    "load": 1,   # address generation; cache latency is added on top
    "store": 1,
    "branch": 1,
}

#: Functional-unit counts from Table 1.  Branches and int ALU ops share
#: the integer adders; loads and stores share the load/store units.
DEFAULT_FU_COUNTS: Dict[str, int] = {
    "ialu": 16,
    "imul": 4,
    "idiv": 4,   # divides share the multiplier ports
    "fadd": 4,
    "fmul": 1,
    "mem": 4,
}


@dataclass(frozen=True)
class BackEndConfig:
    """Out-of-order execution core (Table 1)."""

    window_size: int = 256
    commit_width: int = 16
    issue_width: int = 16
    fu_counts: Dict[str, int] = field(
        default_factory=lambda: dict(DEFAULT_FU_COUNTS))
    fu_latencies: Dict[str, int] = field(
        default_factory=lambda: dict(DEFAULT_FU_LATENCIES))
    #: Extra pipeline stages between rename and execute (dispatch depth);
    #: contributes to the branch misprediction penalty.
    dispatch_latency: int = 2

    def __post_init__(self) -> None:
        _positive("window size", self.window_size)
        _positive("commit width", self.commit_width)
        _positive("issue width", self.issue_width)
        if self.dispatch_latency < 0:
            raise ConfigError("dispatch latency cannot be negative")


#: Spellings of an environment value that mean "off".  Shared by every
#: boolean knob via :func:`env_flag` so ``REPRO_FOO=0`` can never mean
#: "on" again (the ``REPRO_SAMPLE=0`` crash class fixed in PR 9, and the
#: ``bool("0")`` bugs this registry's test guards against).
FALSY_ENV_VALUES: Tuple[str, ...] = ("0", "false", "no", "off")


def env_flag(name: str, default: bool = False) -> bool:
    """Parse the boolean environment knob *name*.

    Unset or blank yields *default*.  ``0``/``false``/``no``/``off``
    (any case, surrounding whitespace ignored) yield ``False``; any
    other value yields ``True``.  Every on/off ``REPRO_*`` knob must go
    through this helper — ``bool(os.environ.get(...))`` treats the
    string ``"0"`` as true.
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    text = raw.strip().lower()
    if not text:
        return default
    return text not in FALSY_ENV_VALUES


#: Environment knobs for :class:`ObservabilityConfig.from_env`.
OBS_SAMPLE_ENV = "REPRO_OBS_SAMPLE"
OBS_RING_ENV = "REPRO_OBS_RING"
OBS_TRACE_ENV = "REPRO_OBS_TRACE"
OBS_TRACE_LIMIT_ENV = "REPRO_OBS_TRACE_LIMIT"
OBS_PROFILE_ENV = "REPRO_OBS_PROFILE"

#: Environment knobs for :class:`LiveConfig.from_env` (live telemetry).
LIVE_ENV = "REPRO_LIVE"
LIVE_PATH_ENV = "REPRO_LIVE_PATH"
LIVE_EVERY_ENV = "REPRO_LIVE_EVERY"

#: Speed-tier switch; see :mod:`repro.perf`.  ``0`` selects the
#: reference loop the golden-parity tests compare against, ``1`` (the
#: default) the behaviour-preserving hot-path caches, ``2`` the batched
#: structure-of-arrays cycle step.
PERF_FAST_ENV = "REPRO_FAST"

#: Every ``REPRO_*`` environment knob the simulator understands, with a
#: one-line summary.  This registry is the source of truth the
#: documentation-drift test checks README/EXPERIMENTS/docs against: a
#: knob documented but absent here (or vice versa) fails the build.
ENV_KNOBS: Dict[str, str] = {
    "REPRO_SIM_INSTRUCTIONS": "dynamic instruction budget per simulation",
    "REPRO_SWEEP_INSTRUCTIONS": "instruction budget for sweep jobs",
    "REPRO_EXPERIMENT_BENCHMARKS": "benchmark subset for experiments",
    "REPRO_SWEEP_WORKERS": "sweep runner worker processes",
    "REPRO_SWEEP_GROUP": "group stream-sharing sweep jobs per worker "
                         "(0 = scatter)",
    "REPRO_COSIM": "co-simulate grouped sweep jobs over one shared "
                   "stream (0 = per-config serial)",
    "REPRO_SWEEP_RETRIES": "sweep job retry attempts",
    "REPRO_SWEEP_BACKOFF": "base delay between sweep job retries",
    "REPRO_JOB_TIMEOUT": "per-job wall-clock timeout in sweeps",
    "REPRO_CACHE_DIR": "persistent sweep result-cache directory",
    "REPRO_CACHE_BUDGET": "result-cache size budget (bytes or K/M/G)",
    "REPRO_CACHE_TMP_TTL": "age gate for reaping orphaned cache tmp files",
    "REPRO_NO_CACHE": "disable the sweep result cache",
    "REPRO_WATCHDOG_CYCLES": "pipeline forward-progress watchdog window",
    "REPRO_INVARIANT_CHECKS": "per-cycle pipeline state audits",
    "REPRO_FAULTS": "deterministic fault-injection plan",
    "REPRO_OBS_SAMPLE": "metrics sampling interval in cycles",
    "REPRO_OBS_RING": "metrics ring-buffer capacity",
    "REPRO_OBS_TRACE": "pipeline event trace (path or 1)",
    "REPRO_OBS_TRACE_LIMIT": "trace event cap",
    "REPRO_OBS_PROFILE": "per-phase wall-clock profiling",
    "REPRO_FAST": "speed tier: 0 reference loop, 1 hot-path caches, "
                  "2 batched SoA step",
    "REPRO_SAMPLE": "interval-sampling period (0/unset = full detail)",
    "REPRO_SAMPLE_UNIT": "instructions per sampling unit",
    "REPRO_SAMPLE_WARMUP": "detailed warm-up instructions per sample",
    "REPRO_CHECKPOINT": "durable checkpoint interval in instructions",
    "REPRO_CHECKPOINT_DIR": "checkpoint directory override",
    "REPRO_CHECKPOINT_KEEP": "checkpoints retained per run",
    "REPRO_LIVE": "live telemetry publisher (1 = on)",
    "REPRO_LIVE_PATH": "live telemetry status-file path override",
    "REPRO_LIVE_EVERY": "live telemetry snapshot cadence in cycles",
}

#: The subset of :data:`ENV_KNOBS` with on/off semantics.  Every name
#: here is parsed through :func:`env_flag` (or a falsy-aware equivalent),
#: so the spellings in :data:`FALSY_ENV_VALUES` disable the feature
#: exactly like unsetting the variable.  The registry-driven test
#: (``tests/test_env_flags.py``) probes each entry both ways; new
#: boolean knobs must be added here to inherit that coverage.
FLAG_ENV_KNOBS: Tuple[str, ...] = (
    "REPRO_SWEEP_GROUP",
    "REPRO_COSIM",
    "REPRO_NO_CACHE",
    "REPRO_CHECKPOINT",
    "REPRO_INVARIANT_CHECKS",
    "REPRO_OBS_TRACE",
    "REPRO_OBS_PROFILE",
    "REPRO_LIVE",
)


@dataclass(frozen=True)
class ObservabilityConfig:
    """Opt-in observability for one simulation (:mod:`repro.obs`).

    Deliberately *not* part of :class:`ProcessorConfig`: observability
    never changes simulated behaviour, so it must not perturb result
    identity or the sweep runner's content-addressed cache keys.
    Everything defaults to off; the default path costs nothing.
    """

    #: Sample gauges every N cycles into ring-buffered time series
    #: (0 disables the metrics recorder).
    sample_interval: int = 0
    #: Samples retained per time series (older samples are evicted but
    #: stay in the running min/mean/max/histogram summaries).
    ring_capacity: int = 4096
    #: Record pipeline lifecycle events for Chrome/Perfetto export.
    trace: bool = False
    #: Drop events beyond this count (counted in ``obs.trace.dropped``).
    trace_limit: int = 200_000
    #: Write the exported trace here when the simulation finishes
    #: (implies ``trace``); how ``REPRO_OBS_TRACE=t.json repro run ...``
    #: works without touching the CLI.
    trace_path: Optional[str] = None
    #: Attribute simulator wall-clock to pipeline phases.
    profile: bool = False

    def __post_init__(self) -> None:
        if self.sample_interval < 0:
            raise ConfigError("sample interval cannot be negative")
        _positive("ring capacity", self.ring_capacity)
        _positive("trace event limit", self.trace_limit)
        if self.trace_path and not self.trace:
            object.__setattr__(self, "trace", True)

    @property
    def enabled(self) -> bool:
        """Whether any observability pillar is switched on."""
        return bool(self.sample_interval or self.trace or self.profile)

    @classmethod
    def from_env(cls) -> "ObservabilityConfig":
        """Build from ``REPRO_OBS_*`` (all unset means disabled).

        ``REPRO_OBS_TRACE`` doubles as a path: falsy spellings disable
        tracing, truthy spellings (``1``/``true``/…) enable it without
        an export path, and anything else is the export destination.
        """
        trace_value = os.environ.get(OBS_TRACE_ENV, "").strip()
        trace = env_flag(OBS_TRACE_ENV)
        truthy = trace_value.lower() in ("1", "true", "yes", "on")
        return cls(
            sample_interval=int(os.environ.get(OBS_SAMPLE_ENV, 0) or 0),
            ring_capacity=int(
                os.environ.get(OBS_RING_ENV, 0) or 0) or 4096,
            trace=trace,
            trace_limit=int(
                os.environ.get(OBS_TRACE_LIMIT_ENV, 0) or 0) or 200_000,
            trace_path=trace_value if (trace and not truthy) else None,
            profile=env_flag(OBS_PROFILE_ENV),
        )


@dataclass(frozen=True)
class LiveConfig:
    """Live telemetry publisher settings (:mod:`repro.obs.live`).

    Like :class:`ObservabilityConfig`, this deliberately lives *outside*
    :class:`ProcessorConfig`: publishing read-only snapshots of a running
    simulation must never perturb result identity or cache keys.  The
    snapshot cadence is expressed in simulated cycles so the telemetry
    *content* is deterministic for a given run, even though emitting it
    is pure I/O with no effect on the simulation.
    """

    #: Status-file destination; ``None`` derives a per-process default
    #: under ``.repro_live/`` (see :func:`repro.obs.live.default_path`).
    path: Optional[str] = None
    #: Publish a snapshot every N simulated cycles.
    every: int = 1000
    #: Snapshot lines retained in the status file (NDJSON ring).
    history: int = 240

    def __post_init__(self) -> None:
        _positive("live publish cadence", self.every)
        _positive("live history depth", self.history)

    @classmethod
    def from_env(cls) -> Optional["LiveConfig"]:
        """Build from ``REPRO_LIVE*``; ``None`` unless switched on.

        ``REPRO_LIVE=1`` enables publishing to the default path;
        ``REPRO_LIVE_PATH`` both enables and overrides the destination.
        """
        enabled = env_flag(LIVE_ENV)
        path = os.environ.get(LIVE_PATH_ENV) or None
        if not enabled and not path:
            return None
        return cls(
            path=path,
            every=int(os.environ.get(LIVE_EVERY_ENV, 0) or 0) or 1000)


@dataclass(frozen=True)
class ProcessorConfig:
    """Everything needed to build one simulated processor."""

    frontend: FrontEndConfig = FrontEndConfig()
    backend: BackEndConfig = BackEndConfig()
    memory: MemoryConfig = MemoryConfig()
    trace_predictor: TracePredictorConfig = TracePredictorConfig()
    liveout_predictor: LiveOutPredictorConfig = LiveOutPredictorConfig()
    fragment: FragmentConfig = FragmentConfig()

    def replace(self, **kwargs) -> "ProcessorConfig":
        """Functional update (thin wrapper over dataclasses.replace)."""
        return dataclasses.replace(self, **kwargs)


def frontend_config(name: str,
                    total_l1_storage: Optional[int] = None) -> ProcessorConfig:
    """Build the named front-end configuration from the paper.

    Args:
        name: one of ``w16``, ``tc``, ``tc2x``, ``pf-2x8w``, ``pf-4x4w``,
            ``pr-2x8w``, ``pr-4x4w``, ``tc+pr-2x8w``, ``tc+pr-4x4w``.
        total_l1_storage: total L1 *instruction* storage in bytes.  For
            ``tc*`` configurations this is split equally between the
            instruction cache and the trace cache, as in Section 5.
            Defaults to 64 KB (128 KB for ``tc2x``).

    Returns:
        A complete :class:`ProcessorConfig`.
    """
    key = name.lower()
    default_storage = 128 * KB if key == "tc2x" else 64 * KB
    storage = total_l1_storage or default_storage
    _power_of_two("total L1 instruction storage", storage)

    base = ProcessorConfig()

    def with_l1i(size: int, banks: int) -> MemoryConfig:
        l1i = dataclasses.replace(base.memory.l1i, size_bytes=size,
                                  banks=banks)
        return dataclasses.replace(base.memory, l1i=l1i)

    if key == "w16":
        return base.replace(
            frontend=FrontEndConfig(fetch_kind="w16"),
            memory=with_l1i(storage, 1))
    if key in ("tc", "tc2x") or key.startswith("tc+pr"):
        icache = storage // 2
        tcache = TraceCacheConfig(size_bytes=storage // 2)
        rename_kind = "parallel" if "+pr" in key else "monolithic"
        renamers = 1
        if rename_kind == "parallel":
            renamers = 2 if key.endswith("2x8w") else 4
        return base.replace(
            frontend=FrontEndConfig(fetch_kind="tc", trace_cache=tcache,
                                    rename_kind=rename_kind,
                                    renamers=renamers),
            memory=with_l1i(icache, 1))
    if key.startswith(("pf", "pr", "pd")):
        if key.endswith("2x8w"):
            sequencers = 2
        elif key.endswith("4x4w"):
            sequencers = 4
        else:
            raise ConfigError(f"unknown parallel configuration {name!r}")
        rename_kind = {"pf": "monolithic", "pr": "parallel",
                       "pd": "delay"}[key[:2]]
        return base.replace(
            frontend=FrontEndConfig(fetch_kind="pf", rename_kind=rename_kind,
                                    sequencers=sequencers,
                                    renamers=sequencers),
            memory=with_l1i(storage, 16))
    raise ConfigError(f"unknown front-end configuration {name!r}")


#: The named configurations evaluated in the paper, in presentation order.
PAPER_CONFIGS: Tuple[str, ...] = (
    "w16", "tc", "tc2x", "pf-2x8w", "pf-4x4w", "pr-2x8w", "pr-4x4w",
)
