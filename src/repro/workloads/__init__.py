"""Workloads: synthetic SPECint2000-like suite plus hand-written kernels."""

from repro.workloads.characteristics import (
    MeasuredCharacteristics,
    WorkloadSpec,
)
from repro.workloads.generator import ProgramGenerator, generate_program
from repro.workloads.kernels import (
    ALL_KERNELS,
    bubble_sort,
    fibonacci,
    hash_kernel,
    linked_list_walk,
    matrix_multiply,
    state_machine,
    vector_sum,
)
from repro.workloads.kernels_extra import (
    bfs,
    binary_search,
    crc32_kernel,
    quicksort,
    random_graph,
    sieve,
)
from repro.workloads.suite import (
    BENCHMARK_NAMES,
    DEFAULT_SIM_INSTRUCTIONS,
    SUITE_SPECS,
    characterize,
    clear_caches,
    default_sim_instructions,
    get_benchmark,
    get_spec,
    oracle_stream,
)

__all__ = [
    "WorkloadSpec",
    "MeasuredCharacteristics",
    "ProgramGenerator",
    "generate_program",
    "ALL_KERNELS",
    "vector_sum",
    "fibonacci",
    "bubble_sort",
    "hash_kernel",
    "linked_list_walk",
    "state_machine",
    "matrix_multiply",
    "binary_search",
    "sieve",
    "quicksort",
    "crc32_kernel",
    "bfs",
    "random_graph",
    "BENCHMARK_NAMES",
    "SUITE_SPECS",
    "DEFAULT_SIM_INSTRUCTIONS",
    "characterize",
    "clear_caches",
    "default_sim_instructions",
    "get_benchmark",
    "get_spec",
    "oracle_stream",
]
