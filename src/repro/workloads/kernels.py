"""Hand-written assembly kernels.

These are small, *verifiable* programs: each emits its result with ``out``
so tests can check functional correctness end-to-end, and the examples use
them as realistic inputs to the timing model.  The synthetic suite
(:mod:`repro.workloads.suite`) provides the scale; these provide ground
truth.
"""

from __future__ import annotations

from typing import List

from repro.isa.assembler import assemble
from repro.isa.program import Program


def vector_sum(n: int = 64) -> Program:
    """Sum the integers ``1..n`` from an array; outputs the sum."""
    words = ", ".join(str(i) for i in range(1, n + 1))
    source = f"""
        .text
    main:
        la   t0, arr
        li   t1, {n}
        li   s0, 0
    loop:
        ld   t2, 0(t0)
        add  s0, s0, t2
        addi t0, t0, 8
        addi t1, t1, -1
        bne  t1, zero, loop
        out  s0
        halt
        .data
    arr:
        .word {words}
    """
    return assemble(source, name=f"vector_sum_{n}")


def fibonacci(n: int = 30) -> Program:
    """Iteratively compute fib(n); outputs the result."""
    source = f"""
        .text
    main:
        li   t0, 0          # fib(0)
        li   t1, 1          # fib(1)
        li   t2, {n}
    loop:
        add  t3, t0, t1
        mv   t0, t1
        mv   t1, t3
        addi t2, t2, -1
        bne  t2, zero, loop
        out  t0
        halt
    """
    return assemble(source, name=f"fibonacci_{n}")


def bubble_sort(values: List[int]) -> Program:
    """Bubble-sort an array in memory; outputs each sorted element."""
    n = len(values)
    if n < 2:
        raise ValueError("need at least two values to sort")
    words = ", ".join(str(v) for v in values)
    source = f"""
        .text
    main:
        li   s1, {n - 1}        # outer counter
    outer:
        la   t0, arr
        li   t1, {n - 1}        # inner counter
    inner:
        ld   t2, 0(t0)
        ld   t3, 8(t0)
        bge  t3, t2, noswap     # already ordered
        st   t3, 0(t0)
        st   t2, 8(t0)
    noswap:
        addi t0, t0, 8
        addi t1, t1, -1
        bne  t1, zero, inner
        addi s1, s1, -1
        bne  s1, zero, outer
        # emit the sorted array
        la   t0, arr
        li   t1, {n}
    emit:
        ld   t2, 0(t0)
        out  t2
        addi t0, t0, 8
        addi t1, t1, -1
        bne  t1, zero, emit
        halt
        .data
    arr:
        .word {words}
    """
    return assemble(source, name=f"bubble_sort_{n}")


def hash_kernel(n: int = 128, rounds: int = 16) -> Program:
    """FNV-style hash over an array, repeated; outputs the final hash.

    Exercises multiply-heavy straight-line code with a tight loop, similar
    in flavour to compression inner loops (gzip/bzip2).
    """
    words = ", ".join(str((i * 2654435761) & 0xFFFF) for i in range(n))
    source = f"""
        .text
    main:
        li   s2, {rounds}
        li   s0, 40503          # hash state
        li   s3, 31             # multiplier
    round:
        la   t0, arr
        li   t1, {n}
    loop:
        ld   t2, 0(t0)
        mul  s0, s0, s3
        add  s0, s0, t2
        slli s0, s0, 32
        srli s0, s0, 32
        addi t0, t0, 8
        addi t1, t1, -1
        bne  t1, zero, loop
        addi s2, s2, -1
        bne  s2, zero, round
        out  s0
        halt
        .data
    arr:
        .word {words}
    """
    return assemble(source, name=f"hash_{n}x{rounds}")


def linked_list_walk(n: int = 64, walks: int = 8) -> Program:
    """Build a linked list in shuffled order, then repeatedly traverse it
    summing payloads; outputs the sum per walk.

    A pointer-chasing, load-dependent kernel in the spirit of mcf/parser.
    """
    source = f"""
        .text
    main:
        # Build list: node i at nodes + 16*i, payload i, next -> i+1.
        la   t0, nodes
        li   t1, 0
    build:
        st   t1, 0(t0)          # payload
        addi t2, t0, 16
        st   t2, 8(t0)          # next pointer
        addi t0, t0, 16
        addi t1, t1, 1
        li   t3, {n}
        bne  t1, t3, build
        # terminate the list
        addi t0, t0, -16
        st   zero, 8(t0)

        li   s1, {walks}
    walk:
        la   t0, nodes
        li   s0, 0
    chase:
        ld   t2, 0(t0)          # payload
        add  s0, s0, t2
        ld   t0, 8(t0)          # follow next
        bne  t0, zero, chase
        out  s0
        addi s1, s1, -1
        bne  s1, zero, walk
        halt
        .data
    nodes:
        .space {n * 16 + 16}
    """
    return assemble(source, name=f"list_walk_{n}x{walks}")


def state_machine(steps: int = 256) -> Program:
    """Table-driven finite state machine using indirect jumps.

    Each step reads the next state handler from a jump table indexed by
    the current state and an LCG bit — an indirect-branch-heavy kernel in
    the spirit of interpreters (perl/gap).  Outputs the visit counter.
    """
    source = f"""
        .text
    main:
        li   s6, 1103515245
        li   s7, 12345
        li   s1, {steps}        # steps remaining
        li   s0, 0              # visit counter
        li   s2, 0              # current state (0..3)
    step:
        mul  s7, s7, s6
        addi s7, s7, 12345
        slli s7, s7, 32
        srli s7, s7, 32
        srli t0, s7, 9
        andi t0, t0, 1
        slli t1, s2, 1
        or   t0, t0, t1         # table index = state*2 + bit
        slli t0, t0, 3
        la   t1, table
        add  t1, t1, t0
        ld   t1, 0(t1)
        jr   t1
    state0:
        addi s0, s0, 1
        li   s2, 1
        j    next
    state1:
        addi s0, s0, 2
        li   s2, 2
        j    next
    state2:
        addi s0, s0, 3
        li   s2, 3
        j    next
    state3:
        addi s0, s0, 5
        li   s2, 0
        j    next
    next:
        addi s1, s1, -1
        bne  s1, zero, step
        out  s0
        halt
        .data
    table:
        .word state0, state1, state1, state2
        .word state2, state3, state3, state0
    """
    return assemble(source, name=f"state_machine_{steps}")


def matrix_multiply(size: int = 8) -> Program:
    """Dense ``size x size`` integer matrix multiply; outputs the trace of
    the product matrix."""
    a_words = ", ".join(str((i % 7) + 1) for i in range(size * size))
    b_words = ", ".join(str((i % 5) + 1) for i in range(size * size))
    source = f"""
        .text
    main:
        li   s0, 0              # i
    iloop:
        li   s1, 0              # j
    jloop:
        li   s2, 0              # k
        li   t4, 0              # accumulator
    kloop:
        # a[i*size + k]
        li   t0, {size}
        mul  t1, s0, t0
        add  t1, t1, s2
        slli t1, t1, 3
        la   t2, mat_a
        add  t2, t2, t1
        ld   t2, 0(t2)
        # b[k*size + j]
        mul  t1, s2, t0
        add  t1, t1, s1
        slli t1, t1, 3
        la   t3, mat_b
        add  t3, t3, t1
        ld   t3, 0(t3)
        mul  t2, t2, t3
        add  t4, t4, t2
        addi s2, s2, 1
        li   t0, {size}
        bne  s2, t0, kloop
        # c[i*size + j] = t4
        li   t0, {size}
        mul  t1, s0, t0
        add  t1, t1, s1
        slli t1, t1, 3
        la   t2, mat_c
        add  t2, t2, t1
        st   t4, 0(t2)
        addi s1, s1, 1
        bne  s1, t0, jloop
        addi s0, s0, 1
        bne  s0, t0, iloop
        # trace(c)
        li   s0, 0
        li   s1, 0
    trloop:
        li   t0, {size}
        mul  t1, s1, t0
        add  t1, t1, s1
        slli t1, t1, 3
        la   t2, mat_c
        add  t2, t2, t1
        ld   t2, 0(t2)
        add  s0, s0, t2
        addi s1, s1, 1
        bne  s1, t0, trloop
        out  s0
        halt
        .data
    mat_a:
        .word {a_words}
    mat_b:
        .word {b_words}
    mat_c:
        .space {size * size * 8}
    """
    return assemble(source, name=f"matmul_{size}")


#: Name -> zero-argument constructor for every kernel, used by tests.
ALL_KERNELS = {
    "vector_sum": vector_sum,
    "fibonacci": fibonacci,
    "bubble_sort": lambda: bubble_sort([9, 3, 7, 1, 8, 2, 6, 4, 5, 0]),
    "hash": hash_kernel,
    "linked_list": linked_list_walk,
    "state_machine": state_machine,
    "matmul": matrix_multiply,
}
