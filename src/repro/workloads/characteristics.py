"""Workload characterisation: the knobs the synthetic suite is built from.

The paper evaluates SPECint2000 binaries; we cannot (Python, no SPEC, no
Alpha compiler), so each benchmark is replaced by a synthetic program whose
*front-end-relevant* characteristics are calibrated to play the same role
in each experiment:

* **code footprint** drives I-cache and trace-cache pressure (Figure 9's
  cache-size sensitivity and the crafty/gcc/perl/vortex split in Fig. 8);
* **branch predictability** (mix of counted loops, biased branches and
  data-dependent branches) drives fragment-predictor accuracy (Fig. 10);
* **indirect-branch density** (switch tables, virtual-call-like dispatch)
  terminates fragments and shortens traces (Table 2's fragment sizes);
* **basic-block length** sets where the after-8th-instruction conditional
  branch rule fires, the other determinant of fragment size;
* **data-access pattern** drives D-cache behaviour (mcf is memory-bound).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.errors import ConfigError


@dataclass(frozen=True)
class WorkloadSpec:
    """Generator parameters for one synthetic benchmark.

    Attributes:
        name: benchmark name (SPECint2000 names for the paper suite).
        seed: PRNG seed for deterministic generation.
        num_functions: functions in the program (beyond ``main``).
        hot_functions: size of the hot subset the dispatcher favours;
            smaller values concentrate execution and shrink the *dynamic*
            footprint relative to the static one.
        segments_per_function: body segments (straight-line runs, diamonds,
            loops, switches, calls) per function, as a (min, max) range.
        block_len: instructions per straight-line run, (min, max).
        diamond_prob: probability a segment is an if/else diamond.
        loop_prob: probability a segment is a counted inner loop.
        switch_prob: probability a segment is a jump-table switch
            (each switch executes one indirect jump).
        call_prob: probability a segment is a call to a higher-numbered
            function.
        mem_prob: probability a segment is a memory-access run.
        fp_prob: probability a segment is a small FP computation.
        nop_prob: probability of inserting a NOP after a segment
            (models padding/scheduling NOPs the front-end eliminates).
        biased_branch_fraction: fraction of diamond branches that are
            strongly biased (taken ~7/8) rather than data-dependent
            (taken ~1/2 on LCG bits).
        loop_trip_range: inner-loop trip counts, (min, max).
        switch_cases: jump-table size (power of two).
        array_words: per-function data array size in 8-byte words.
        random_access_fraction: fraction of memory runs using LCG-indexed
            (cache-hostile) accesses instead of sequential walks.
        call_span: a function may call functions up to this many indices
            above it (bounds static call depth).
    """

    name: str
    seed: int
    num_functions: int
    hot_functions: int
    segments_per_function: Tuple[int, int] = (6, 12)
    block_len: Tuple[int, int] = (4, 10)
    diamond_prob: float = 0.30
    loop_prob: float = 0.10
    switch_prob: float = 0.05
    call_prob: float = 0.10
    mem_prob: float = 0.25
    fp_prob: float = 0.02
    nop_prob: float = 0.02
    biased_branch_fraction: float = 0.6
    loop_trip_range: Tuple[int, int] = (8, 32)
    switch_cases: int = 8
    array_words: int = 1024
    random_access_fraction: float = 0.3
    call_span: int = 6

    def __post_init__(self) -> None:
        if self.num_functions <= 0:
            raise ConfigError("num_functions must be positive")
        if not 0 < self.hot_functions <= self.num_functions:
            raise ConfigError("hot_functions must be in 1..num_functions")
        if self.switch_cases & (self.switch_cases - 1):
            raise ConfigError("switch_cases must be a power of two")
        probs = (self.diamond_prob + self.loop_prob + self.switch_prob
                 + self.call_prob + self.mem_prob + self.fp_prob)
        if probs > 1.0 + 1e-9:
            raise ConfigError("segment probabilities exceed 1.0")
        for prob_name in ("diamond_prob", "loop_prob", "switch_prob",
                          "call_prob", "mem_prob", "fp_prob", "nop_prob",
                          "biased_branch_fraction",
                          "random_access_fraction"):
            value = getattr(self, prob_name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{prob_name} must be a probability")


@dataclass
class MeasuredCharacteristics:
    """What a generated benchmark actually looks like, measured post-hoc.

    Produced by :func:`repro.workloads.suite.characterize`; used by tests
    to check calibration and by EXPERIMENTS.md's Table 2 reproduction.
    """

    name: str
    static_instructions: int
    text_bytes: int
    dynamic_instructions: int
    avg_fragment_length: float
    cond_branch_fraction: float
    indirect_fraction: float
    taken_fraction: float
    load_fraction: float
    store_fraction: float
    extras: Dict[str, float] = field(default_factory=dict)
