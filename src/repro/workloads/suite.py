"""The 12-benchmark suite standing in for SPECint2000.

Each benchmark keeps its SPEC name and plays the same qualitative role as
the original (see Table 2 of the paper and DESIGN.md §2): mcf is
short-fragment and memory-bound, gcc/crafty/perl/vortex have large code
footprints and stress the caches, gzip/bzip2 are small-footprint and
highly predictable, eon/perl are indirect-branch-heavy, and so on.

Programs and oracle streams are deterministic per (name, seed) and cached
module-wide because generation and functional emulation are pure.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from repro.config import FragmentConfig
from repro.emulator.machine import Machine
from repro.emulator.stream import DynamicInstruction, ExecutionResult
from repro.errors import ReproError
from repro.frontend.fragments import average_fragment_length
from repro.isa.program import Program
from repro.workloads.characteristics import (
    MeasuredCharacteristics,
    WorkloadSpec,
)
from repro.workloads.generator import generate_program

#: Environment variable overriding the default experiment length.
SIM_LENGTH_ENV = "REPRO_SIM_INSTRUCTIONS"
#: Default dynamic instructions per benchmark for experiments.
DEFAULT_SIM_INSTRUCTIONS = 30_000


def default_sim_instructions() -> int:
    """Experiment length: env override or the library default."""
    value = os.environ.get(SIM_LENGTH_ENV)
    if value is None:
        return DEFAULT_SIM_INSTRUCTIONS
    length = int(value)
    if length <= 0:
        raise ReproError(f"{SIM_LENGTH_ENV} must be positive")
    return length


SUITE_SPECS: Dict[str, WorkloadSpec] = {
    # Small footprint, highly predictable, sequential memory.
    "bzip2": WorkloadSpec(
        name="bzip2", seed=101, num_functions=110, hot_functions=70,
        segments_per_function=(5, 10), block_len=(5, 10),
        diamond_prob=0.26, loop_prob=0.14, switch_prob=0.02,
        call_prob=0.08, mem_prob=0.30, biased_branch_fraction=0.80,
        array_words=8192, random_access_fraction=0.15),
    # Large footprint, mixed predictability (chess search).
    "crafty": WorkloadSpec(
        name="crafty", seed=102, num_functions=260, hot_functions=150,
        segments_per_function=(4, 9), block_len=(4, 8),
        diamond_prob=0.32, loop_prob=0.08, switch_prob=0.05,
        call_prob=0.12, mem_prob=0.22, biased_branch_fraction=0.60,
        array_words=4096, random_access_fraction=0.40),
    # Indirect-branch heavy (C++ virtual dispatch).
    "eon": WorkloadSpec(
        name="eon", seed=103, num_functions=190, hot_functions=115,
        segments_per_function=(2, 5), block_len=(2, 5),
        diamond_prob=0.28, loop_prob=0.05, switch_prob=0.16,
        call_prob=0.16, mem_prob=0.18, biased_branch_fraction=0.70,
        array_words=2048, random_access_fraction=0.30),
    # Interpreter-like with moderate footprint.
    "gap": WorkloadSpec(
        name="gap", seed=104, num_functions=210, hot_functions=130,
        segments_per_function=(2, 5), block_len=(2, 5),
        diamond_prob=0.32, loop_prob=0.05, switch_prob=0.10,
        call_prob=0.14, mem_prob=0.22, biased_branch_fraction=0.60,
        array_words=4096, random_access_fraction=0.35),
    # Very large footprint, hard-to-predict control flow.
    "gcc": WorkloadSpec(
        name="gcc", seed=105, num_functions=550, hot_functions=420,
        segments_per_function=(3, 7), block_len=(3, 6),
        diamond_prob=0.35, loop_prob=0.05, switch_prob=0.08,
        call_prob=0.12, mem_prob=0.20, biased_branch_fraction=0.50,
        array_words=2048, random_access_fraction=0.40),
    # Small footprint, predictable, sequential (compression).
    "gzip": WorkloadSpec(
        name="gzip", seed=106, num_functions=100, hot_functions=60,
        segments_per_function=(5, 10), block_len=(5, 11),
        diamond_prob=0.25, loop_prob=0.15, switch_prob=0.01,
        call_prob=0.08, mem_prob=0.30, biased_branch_fraction=0.80,
        array_words=8192, random_access_fraction=0.10),
    # Short fragments, memory-bound pointer chasing.
    "mcf": WorkloadSpec(
        name="mcf", seed=107, num_functions=24, hot_functions=12,
        segments_per_function=(1, 2), block_len=(1, 2),
        diamond_prob=0.30, loop_prob=0.02, switch_prob=0.25,
        call_prob=0.18, mem_prob=0.20, biased_branch_fraction=0.55,
        switch_cases=4, array_words=262144,
        random_access_fraction=0.80),
    # Moderate footprint, data-dependent branches.
    "parser": WorkloadSpec(
        name="parser", seed=108, num_functions=230, hot_functions=145,
        segments_per_function=(2, 4), block_len=(2, 4),
        diamond_prob=0.35, loop_prob=0.04, switch_prob=0.10,
        call_prob=0.14, mem_prob=0.24, biased_branch_fraction=0.50,
        array_words=8192, random_access_fraction=0.45),
    # Large footprint, indirect-heavy interpreter.
    "perl": WorkloadSpec(
        name="perl", seed=109, num_functions=340, hot_functions=215,
        segments_per_function=(2, 6), block_len=(3, 6),
        diamond_prob=0.28, loop_prob=0.04, switch_prob=0.12,
        call_prob=0.14, mem_prob=0.22, biased_branch_fraction=0.55,
        array_words=2048, random_access_fraction=0.35),
    # Placement/annealing: data-dependent branches, random access.
    "twolf": WorkloadSpec(
        name="twolf", seed=110, num_functions=140, hot_functions=85,
        segments_per_function=(4, 9), block_len=(4, 9),
        diamond_prob=0.33, loop_prob=0.10, switch_prob=0.02,
        call_prob=0.10, mem_prob=0.28, biased_branch_fraction=0.50,
        array_words=16384, random_access_fraction=0.50),
    # Large footprint, well-predicted branches (OO database).
    "vortex": WorkloadSpec(
        name="vortex", seed=111, num_functions=420, hot_functions=300,
        segments_per_function=(3, 6), block_len=(3, 7),
        diamond_prob=0.28, loop_prob=0.05, switch_prob=0.08,
        call_prob=0.15, mem_prob=0.24, biased_branch_fraction=0.75,
        array_words=2048, random_access_fraction=0.30),
    # Small-moderate footprint, mixed behaviour.
    "vpr": WorkloadSpec(
        name="vpr", seed=112, num_functions=125, hot_functions=75,
        segments_per_function=(4, 9), block_len=(4, 9),
        diamond_prob=0.30, loop_prob=0.12, switch_prob=0.02,
        call_prob=0.10, mem_prob=0.28, biased_branch_fraction=0.60,
        array_words=16384, random_access_fraction=0.50),
}

#: Suite order used in every report (matches Table 2).
BENCHMARK_NAMES: Tuple[str, ...] = tuple(sorted(SUITE_SPECS))

_program_cache: Dict[str, Program] = {}
#: name -> (longest requested length, its ExecutionResult).  Keyed by
#: benchmark name alone — the longest stream serves every shorter request
#: (emulation is deterministic, so shorter streams are exact prefixes).
_stream_cache: Dict[str, Tuple[int, ExecutionResult]] = {}
#: (name, length) -> memoized sliced view of the longest stream, so sweep
#: jobs stop re-allocating a 30k-element list on every call.
_slice_cache: Dict[Tuple[str, int], ExecutionResult] = {}


def get_spec(name: str) -> WorkloadSpec:
    """The workload spec for *name*; raises ReproError when unknown."""
    try:
        return SUITE_SPECS[name]
    except KeyError:
        raise ReproError(
            f"unknown benchmark {name!r}; choose from {BENCHMARK_NAMES}"
        ) from None


def get_benchmark(name: str) -> Program:
    """The (cached) generated program for benchmark *name*."""
    if name not in _program_cache:
        _program_cache[name] = generate_program(get_spec(name))
    return _program_cache[name]


def cached_program(name: str) -> Optional[Program]:
    """The in-process cached program for *name*, or None (never
    generates — used by the prep layer to decide whether the on-disk
    program+stream bundle is worth loading)."""
    return _program_cache.get(name)


def seed_program(name: str, program: Program) -> None:
    """Install an externally-obtained program (the on-disk prep cache)
    unless one is already cached — the stream cache and program cache
    must stay identity-consistent (stream records reference the
    program's instruction objects)."""
    _program_cache.setdefault(name, program)


def oracle_stream(name: str,
                  max_instructions: Optional[int] = None) -> ExecutionResult:
    """The (cached) functional-execution stream for benchmark *name*.

    The cache keeps the longest stream requested so far per benchmark and
    serves shorter requests by slicing it.
    """
    length = (default_sim_instructions() if max_instructions is None
              else max_instructions)
    entry = _stream_cache.get(name)
    if entry is None or entry[0] < length:
        entry = (length, Machine(get_benchmark(name)).run(length))
        _install_stream(name, entry)
    cached = entry[1]
    if len(cached.stream) <= length:
        return cached
    key = (name, length)
    sliced = _slice_cache.get(key)
    if sliced is None:
        sliced = ExecutionResult(cached.stream[:length], cached.outputs,
                                 cached.halted)
        _slice_cache[key] = sliced
    return sliced


def _install_stream(name: str,
                    entry: Tuple[int, ExecutionResult]) -> None:
    """Replace *name*'s cached stream, dropping its memoized slices —
    they were built from the superseded stream, and serving them would
    break record identity against the new one."""
    _stream_cache[name] = entry
    for key in [k for k in _slice_cache if k[0] == name]:
        del _slice_cache[key]


def seed_stream(name: str, requested_length: int,
                result: ExecutionResult) -> None:
    """Install an externally-obtained stream (e.g. the on-disk stream
    cache) as benchmark *name*'s cached stream, if it is the longest seen.

    *requested_length* is the emulation length the stream was produced
    with — it can exceed ``len(result.stream)`` when the program halted.
    """
    entry = _stream_cache.get(name)
    if entry is None or entry[0] < requested_length:
        _install_stream(name, (requested_length, result))


def cached_stream_length(name: str) -> int:
    """Longest emulation length cached in-process for *name* (0 if none)."""
    entry = _stream_cache.get(name)
    return entry[0] if entry is not None else 0


def peek_stream(name: str) -> Optional[Tuple[int, ExecutionResult]]:
    """The longest cached ``(requested length, stream)`` for *name*,
    without triggering emulation (None when nothing is cached)."""
    return _stream_cache.get(name)


def clear_caches() -> None:
    """Drop all cached programs and streams (mostly for tests)."""
    _program_cache.clear()
    _stream_cache.clear()
    _slice_cache.clear()


def characterize(name: str, max_instructions: Optional[int] = None,
                 fragment_config: Optional[FragmentConfig] = None
                 ) -> MeasuredCharacteristics:
    """Measure the Table 2-style characteristics of benchmark *name*."""
    program = get_benchmark(name)
    result = oracle_stream(name, max_instructions)
    config = fragment_config or FragmentConfig()
    stream: List[DynamicInstruction] = result.stream
    total = len(stream)
    if total == 0:
        raise ReproError(f"benchmark {name!r} produced no instructions")

    cond = sum(1 for r in stream if r.inst.is_cond_branch)
    indirect = sum(1 for r in stream if r.inst.is_indirect)
    taken = sum(1 for r in stream if r.taken)
    loads = sum(1 for r in stream if r.inst.is_load)
    stores = sum(1 for r in stream if r.inst.is_store)

    return MeasuredCharacteristics(
        name=name,
        static_instructions=len(program),
        text_bytes=program.text_size,
        dynamic_instructions=total,
        avg_fragment_length=average_fragment_length(stream, config),
        cond_branch_fraction=cond / total,
        indirect_fraction=indirect / total,
        taken_fraction=taken / total,
        load_fraction=loads / total,
        store_fraction=stores / total,
    )
