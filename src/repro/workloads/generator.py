"""Synthetic benchmark generator.

Generates *real programs* in the repro ISA from a :class:`WorkloadSpec`:
a set of functions whose bodies are built from parameterised segments
(straight-line ALU runs, if/else diamonds, counted loops, jump-table
switches, calls, memory runs, rare FP runs), plus a ``main`` dispatcher
that drives execution through an in-program linear congruential generator.
Because the LCG lives *inside* the generated program, control flow is
data-dependent and deterministic — re-running the same program yields the
same dynamic instruction stream.

Register conventions inside generated code:

* ``s7`` — LCG state, ``s6`` — LCG multiplier (reserved globally);
* ``s0`` — inner-loop counter (callee-saved when used);
* ``t0``–``t7`` — scratch, never live across calls;
* ``ra``/``sp`` — standard link/stack discipline.
"""

from __future__ import annotations

import random
from typing import List

from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.workloads.characteristics import WorkloadSpec

#: 32-bit LCG constants (numerical recipes).
_LCG_MUL = 1103515245
_LCG_ADD = 12345

_ALU_OPS = ("add", "sub", "and", "or", "xor")


class _AsmBuilder:
    """Accumulates assembly lines with label management."""

    def __init__(self) -> None:
        self.text: List[str] = ["    .text"]
        self.data: List[str] = ["    .data"]
        self._label_counter = 0

    def label(self, prefix: str) -> str:
        self._label_counter += 1
        return f"{prefix}_{self._label_counter}"

    def emit(self, line: str) -> None:
        self.text.append(f"    {line}")

    def emit_label(self, label: str) -> None:
        self.text.append(f"{label}:")

    def emit_data(self, line: str) -> None:
        self.data.append(f"    {line}")

    def emit_data_label(self, label: str) -> None:
        self.data.append(f"{label}:")

    def source(self) -> str:
        return "\n".join(self.text + self.data) + "\n"


def _pow2_floor(value: int) -> int:
    return 1 << (max(1, value).bit_length() - 1)


class ProgramGenerator:
    """Generates one synthetic program from a :class:`WorkloadSpec`."""

    def __init__(self, spec: WorkloadSpec):
        self.spec = spec
        self.rng = random.Random(spec.seed)
        self.asm = _AsmBuilder()
        self._array_words = _pow2_floor(spec.array_words)
        # Functions share a bounded pool of arrays so huge per-benchmark
        # working sets don't multiply by the function count.
        self._num_arrays = min(spec.num_functions, 16)

    # -- top level ---------------------------------------------------------

    def generate_source(self) -> str:
        """Emit the full assembly source for the workload."""
        self._emit_main()
        for index in range(self.spec.num_functions):
            self._emit_function(index)
        self._emit_arrays()
        return self.asm.source()

    def generate(self) -> Program:
        """Generate and assemble the workload."""
        return assemble(self.generate_source(), name=self.spec.name)

    # -- main dispatcher ------------------------------------------------------

    def _dispatch_schedule(self) -> List[int]:
        """The cyclic function-call schedule driven by ``main``.

        One full permutation of the hot set guarantees every hot function
        runs each period (cyclically re-referencing the whole hot code
        footprint — the I-cache capacity pressure Figure 9 measures); the
        remaining slots skew toward the hottest functions, with occasional
        cold-code excursions.
        """
        spec = self.spec
        hot_set = list(range(spec.hot_functions))
        sweep = hot_set[:]
        self.rng.shuffle(sweep)
        # Interleave draws from geometrically-sized hot tiers between the
        # sweep elements so reuse distances span multiple scales — small
        # tiers recur within a few calls, larger tiers within tens, the
        # full sweep once per period.  A pure cyclic sweep is a worst-case
        # LRU pattern whose miss rate falls off an unrealistic cliff at
        # cache size == footprint; real programs' reuse-distance profiles
        # are smooth, and so are their Figure 9 curves.
        tiers = [hot_set[:max(1, spec.hot_functions // divisor)]
                 for divisor in (64, 16, 4, 2)]
        schedule: List[int] = []
        for target in sweep:
            schedule.append(target)
            for _ in range(2):
                roll = self.rng.random()
                if (roll < 0.04
                        and spec.hot_functions < spec.num_functions):
                    schedule.append(self.rng.randrange(
                        spec.hot_functions, spec.num_functions))
                elif roll < 0.22:
                    schedule.append(self.rng.choice(tiers[0]))
                elif roll < 0.40:
                    schedule.append(self.rng.choice(tiers[1]))
                elif roll < 0.55:
                    schedule.append(self.rng.choice(tiers[2]))
                elif roll < 0.68:
                    schedule.append(self.rng.choice(tiers[3]))
        return schedule

    def _emit_main(self) -> None:
        spec, asm = self.spec, self.asm
        seed32 = (spec.seed * 2654435761 + 1) & 0x7FFFFFFF

        # The dispatcher is a loop over *direct* calls: the schedule is
        # static code, as in a real program's main loop, so the hard
        # control flow lives where it should — in the functions' diamonds,
        # loops and switch statements — not in an artificial indirect
        # dispatch.  The LCG advances before every call so the interior
        # data-dependent branches vary between invocations.
        asm.emit_label("main")
        asm.emit(f"li   s6, {_LCG_MUL}")
        asm.emit(f"li   s7, {seed32 or 1}")
        asm.emit_label("outer_loop")
        for target in self._dispatch_schedule():
            self._emit_rng_advance()
            asm.emit(f"jal  func_{target}")
        asm.emit("j    outer_loop")
        asm.emit("halt")

    # -- functions ----------------------------------------------------------

    def _emit_function(self, index: int) -> None:
        spec, asm, rng = self.spec, self.asm, self.rng
        lo, hi = spec.segments_per_function
        num_segments = rng.randint(lo, hi)
        segment_kinds = [self._pick_segment_kind() for _ in range(num_segments)]
        has_calls = ("call" in segment_kinds
                     and index + 1 < spec.num_functions)
        has_loops = "loop" in segment_kinds

        asm.emit_label(f"func_{index}")
        frame = 0
        if has_calls or has_loops:
            frame = 16
            asm.emit(f"addi sp, sp, -{frame}")
            if has_calls:
                asm.emit("st   ra, 0(sp)")
            if has_loops:
                asm.emit("st   s0, 8(sp)")

        for kind in segment_kinds:
            self._emit_segment(kind, index)
            if rng.random() < spec.nop_prob:
                asm.emit("nop")

        if frame:
            if has_calls:
                asm.emit("ld   ra, 0(sp)")
            if has_loops:
                asm.emit("ld   s0, 8(sp)")
            asm.emit(f"addi sp, sp, {frame}")
        asm.emit("ret")

    def _pick_segment_kind(self) -> str:
        spec, point = self.spec, self.rng.random()
        cumulative = 0.0
        for kind, prob in (("diamond", spec.diamond_prob),
                           ("loop", spec.loop_prob),
                           ("switch", spec.switch_prob),
                           ("call", spec.call_prob),
                           ("mem", spec.mem_prob),
                           ("fp", spec.fp_prob)):
            cumulative += prob
            if point < cumulative:
                return kind
        return "alu"

    def _emit_segment(self, kind: str, func_index: int) -> None:
        if kind == "alu":
            self._emit_alu_run()
        elif kind == "diamond":
            self._emit_diamond()
        elif kind == "loop":
            self._emit_loop(func_index)
        elif kind == "switch":
            self._emit_switch()
        elif kind == "call":
            self._emit_call(func_index)
        elif kind == "mem":
            self._emit_mem_run(func_index)
        elif kind == "fp":
            self._emit_fp_run()
        else:  # pragma: no cover - exhaustive
            raise AssertionError(kind)

    # -- segment emitters --------------------------------------------------

    def _emit_rng_advance(self) -> None:
        asm = self.asm
        asm.emit("mul  s7, s7, s6")
        asm.emit(f"addi s7, s7, {_LCG_ADD}")
        asm.emit("slli s7, s7, 32")
        asm.emit("srli s7, s7, 32")

    def _emit_rng_bits(self, dest: str, mask: int) -> None:
        """Extract pseudo-random bits of ``s7`` into *dest* (mask <= 0x7FFF)."""
        shift = self.rng.randrange(0, 17)
        self.asm.emit(f"srli {dest}, s7, {shift}")
        self.asm.emit(f"andi {dest}, {dest}, {mask}")

    def _emit_alu_run(self, length: int = 0) -> None:
        rng, asm = self.rng, self.asm
        lo, hi = self.spec.block_len
        length = length or rng.randint(lo, hi)
        regs = ["t0", "t1", "t2", "t3", "t4"]
        for _ in range(length):
            choice = rng.random()
            rd = rng.choice(regs)
            rs1 = rng.choice(regs)
            if choice < 0.15:
                asm.emit(f"addi {rd}, {rs1}, {rng.randint(-128, 127)}")
            elif choice < 0.20:
                asm.emit(f"slli {rd}, {rs1}, {rng.randint(1, 7)}")
            elif choice < 0.24:
                asm.emit(f"srli {rd}, {rs1}, {rng.randint(1, 7)}")
            elif choice < 0.28:
                asm.emit(f"mul  {rd}, {rs1}, {rng.choice(regs)}")
            elif choice < 0.30:
                rs2 = rng.choice(regs)
                asm.emit(f"ori  {rs2}, {rs2}, 1")
                asm.emit(f"div  {rd}, {rs1}, {rs2}")
            else:
                op = rng.choice(_ALU_OPS)
                asm.emit(f"{op:4} {rd}, {rs1}, {rng.choice(regs)}")

    def _emit_diamond(self) -> None:
        spec, rng, asm = self.spec, self.rng, self.asm
        else_label = asm.label("else")
        join_label = asm.label("join")
        if rng.random() < spec.biased_branch_fraction:
            threshold = rng.choice((1, 15))  # strongly biased (~6% flip)
        else:
            threshold = rng.choice((4, 12))  # data-dependent (~25% flip)
        self._emit_rng_bits("t6", 15)
        asm.emit(f"slti t5, t6, {threshold}")
        asm.emit(f"beq  t5, zero, {else_label}")
        self._emit_alu_run(rng.randint(1, 4))
        asm.emit(f"j    {join_label}")
        asm.emit_label(else_label)
        self._emit_alu_run(rng.randint(1, 4))
        asm.emit_label(join_label)

    def _emit_loop(self, func_index: int) -> None:
        rng, asm = self.rng, self.asm
        lo, hi = self.spec.loop_trip_range
        trips = rng.randint(lo, hi)
        loop_label = asm.label("loop")
        asm.emit(f"li   s0, {trips}")
        asm.emit_label(loop_label)
        body = rng.random()
        if body < 0.5:
            self._emit_alu_run(rng.randint(2, 5))
        else:
            self._emit_mem_run(func_index, sequential=True)
        asm.emit("addi s0, s0, -1")
        asm.emit(f"bne  s0, zero, {loop_label}")

    def _emit_switch(self) -> None:
        spec, rng, asm = self.spec, self.rng, self.asm
        cases = spec.switch_cases
        table_label = asm.label("swtab")
        join_label = asm.label("swjoin")
        case_labels = [asm.label("case") for _ in range(cases)]

        self._emit_rng_bits("t6", cases - 1)
        asm.emit("slli t6, t6, 3")
        asm.emit(f"la   t5, {table_label}")
        asm.emit("add  t5, t5, t6")
        asm.emit("ld   t5, 0(t5)")
        asm.emit("jr   t5")
        for label in case_labels:
            asm.emit_label(label)
            self._emit_alu_run(rng.randint(2, 6))
            asm.emit(f"j    {join_label}")
        asm.emit_label(join_label)

        # Skew the table toward a dominant case, as real switch statements
        # are: a uniform table would make every switch an unpredictable
        # indirect branch, far harder than SPEC code behaves.
        weights = [1.0 / (rank + 1) ** 2 for rank in range(cases)]
        asm.emit_data_label(table_label)
        for label in rng.choices(case_labels, weights=weights, k=cases):
            asm.emit_data(f".word {label}")

    def _emit_call(self, func_index: int) -> None:
        spec, rng = self.spec, self.rng
        first = func_index + 1
        last = min(func_index + spec.call_span, spec.num_functions - 1)
        if first > last:
            self._emit_alu_run()
            return
        self.asm.emit(f"jal  func_{rng.randint(first, last)}")

    def _emit_mem_run(self, func_index: int, sequential: bool = False) -> None:
        spec, rng, asm = self.spec, self.rng, self.asm
        array = f"array_{func_index % self._num_arrays}"
        if sequential or rng.random() >= spec.random_access_fraction:
            # Offsets must fit the 16-bit immediate; sequential runs stay
            # near the front of the array anyway (that's their point).
            base_word = rng.randrange(0, min(self._array_words - 8, 4000))
            offset = base_word * 8
            asm.emit(f"la   t4, {array}")
            for i in range(rng.randint(1, 3)):
                asm.emit(f"ld   t{i}, {offset + i * 8}(t4)")
            asm.emit("add  t0, t0, t1")
            if rng.random() < 0.5:
                asm.emit(f"st   t0, {offset}(t4)")
        else:
            mask = self._array_words - 1
            shift = rng.randrange(0, 13)
            asm.emit(f"srli t6, s7, {shift}")
            if mask <= 0x7FFF:
                asm.emit(f"andi t6, t6, {mask}")
            else:
                asm.emit(f"li   t5, {mask}")
                asm.emit("and  t6, t6, t5")
            asm.emit("slli t6, t6, 3")
            asm.emit(f"la   t4, {array}")
            asm.emit("add  t4, t4, t6")
            asm.emit("ld   t3, 0(t4)")
            asm.emit("add  t2, t2, t3")
            if rng.random() < 0.4:
                asm.emit("st   t2, 0(t4)")

    def _emit_fp_run(self) -> None:
        asm = self.asm
        asm.emit("fcvt f1, t0")
        asm.emit("fcvt f2, t1")
        asm.emit("fadd f3, f1, f2")
        asm.emit("fmul f4, f3, f3")
        asm.emit("fadd f4, f4, f1")

    # -- data ------------------------------------------------------------

    def _emit_arrays(self) -> None:
        for index in range(self._num_arrays):
            self.asm.emit_data_label(f"array_{index}")
            self.asm.emit_data(f".space {self._array_words * 8}")


def generate_program(spec: WorkloadSpec) -> Program:
    """Generate the synthetic program described by *spec*."""
    return ProgramGenerator(spec).generate()
