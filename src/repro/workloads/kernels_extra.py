"""Additional hand-written kernels: search, sort, graph and bit kernels.

Like :mod:`repro.workloads.kernels`, every kernel emits verifiable
results with ``out`` so functional tests can check it end-to-end, and
each stresses a distinct front-end behaviour:

* :func:`binary_search` — short data-dependent branch chains;
* :func:`sieve` — nested loops with long predictable bodies;
* :func:`quicksort` — an explicit-stack iterative quicksort: deep
  data-dependent control flow and pointer-ish memory traffic;
* :func:`crc32_kernel` — bit-serial loop, dense short branches (the
  hardest kind of fragment to predict);
* :func:`bfs` — queue-driven breadth-first search over an adjacency
  matrix: indirect-ish data-dependent behaviour without indirect jumps.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.isa.assembler import assemble
from repro.isa.program import Program


def binary_search(values: Sequence[int], queries: Sequence[int]) -> Program:
    """Binary-search each query in a sorted array; outputs found indices
    (or -1)."""
    values = sorted(values)
    n = len(values)
    if n == 0:
        raise ValueError("need a non-empty array")
    word_list = ", ".join(str(v) for v in values)
    query_list = ", ".join(str(q) for q in queries)
    source = f"""
        .text
    main:
        la   s1, queries
        li   s2, {len(queries)}
    next_query:
        ld   a0, 0(s1)
        li   t0, 0              # lo
        li   t1, {n - 1}        # hi
        li   a1, -1             # result
    search:
        bgt  t0, t1, done_one
        add  t2, t0, t1
        srli t2, t2, 1          # mid
        slli t3, t2, 3
        la   t4, arr
        add  t4, t4, t3
        ld   t5, 0(t4)
        beq  t5, a0, found
        blt  t5, a0, go_right
        addi t1, t2, -1
        j    search
    go_right:
        addi t0, t2, 1
        j    search
    found:
        mv   a1, t2
    done_one:
        out  a1
        addi s1, s1, 8
        addi s2, s2, -1
        bne  s2, zero, next_query
        halt

        .data
    arr:
        .word {word_list}
    queries:
        .word {query_list}
    """
    return assemble(source, name=f"binary_search_{n}x{len(queries)}")


def sieve(limit: int = 100) -> Program:
    """Sieve of Eratosthenes; outputs the number of primes <= limit."""
    if limit < 2:
        raise ValueError("limit must be >= 2")
    source = f"""
        .text
    main:
        # flags[i] = 1 initially (candidate prime), for 2..limit
        la   t0, flags
        li   t1, {limit + 1}
        li   t2, 1
    init:
        st   t2, 0(t0)
        addi t0, t0, 8
        addi t1, t1, -1
        bne  t1, zero, init

        li   s0, 2              # p
    outer:
        mul  t0, s0, s0
        li   t1, {limit}
        bgt  t0, t1, count      # p*p > limit: done sieving
        # skip if flags[p] == 0
        slli t2, s0, 3
        la   t3, flags
        add  t3, t3, t2
        ld   t4, 0(t3)
        beq  t4, zero, next_p
        # strike multiples starting at p*p
        mv   t5, t0             # m = p*p
    strike:
        li   t1, {limit}
        bgt  t5, t1, next_p
        slli t2, t5, 3
        la   t3, flags
        add  t3, t3, t2
        st   zero, 0(t3)
        add  t5, t5, s0
        j    strike
    next_p:
        addi s0, s0, 1
        j    outer
    count:
        li   s1, 0              # prime count
        li   s2, 2              # i
    tally:
        li   t1, {limit}
        bgt  s2, t1, report
        slli t2, s2, 3
        la   t3, flags
        add  t3, t3, t2
        ld   t4, 0(t3)
        add  s1, s1, t4
        addi s2, s2, 1
        j    tally
    report:
        out  s1
        halt

        .data
    flags:
        .space {8 * (limit + 1)}
    """
    return assemble(source, name=f"sieve_{limit}")


def quicksort(values: Sequence[int]) -> Program:
    """Iterative quicksort with an explicit range stack; outputs the
    sorted array."""
    n = len(values)
    if n < 2:
        raise ValueError("need at least two values")
    word_list = ", ".join(str(v) for v in values)
    source = f"""
        .text
    main:
        # push (0, n-1) onto the range stack at `ranges`
        la   s0, ranges         # stack pointer (grows up, 16B frames)
        li   t0, 0
        st   t0, 0(s0)
        li   t0, {n - 1}
        st   t0, 8(s0)
        addi s0, s0, 16

    pop_range:
        la   t0, ranges
        beq  s0, t0, emit       # stack empty -> done
        addi s0, s0, -16
        ld   s1, 0(s0)          # lo
        ld   s2, 8(s0)          # hi
        bge  s1, s2, pop_range  # trivial range

        # partition around pivot = arr[hi] (Lomuto)
        slli t0, s2, 3
        la   t1, arr
        add  t0, t0, t1
        ld   s3, 0(t0)          # pivot value
        addi s4, s1, -1         # i
        mv   s5, s1             # j
    part_loop:
        bge  s5, s2, part_done
        slli t0, s5, 3
        la   t1, arr
        add  t0, t0, t1
        ld   t2, 0(t0)          # arr[j]
        bgt  t2, s3, no_swap
        addi s4, s4, 1          # ++i
        # swap arr[i], arr[j]
        slli t3, s4, 3
        la   t4, arr
        add  t3, t3, t4
        ld   t5, 0(t3)
        st   t2, 0(t3)
        st   t5, 0(t0)
    no_swap:
        addi s5, s5, 1
        j    part_loop
    part_done:
        # move pivot into place: swap arr[i+1], arr[hi]
        addi s4, s4, 1
        slli t0, s4, 3
        la   t1, arr
        add  t0, t0, t1
        ld   t2, 0(t0)
        slli t3, s2, 3
        la   t4, arr
        add  t3, t3, t4
        ld   t5, 0(t3)
        st   t5, 0(t0)
        st   t2, 0(t3)

        # push (lo, i-1) and (i+1, hi)
        addi t6, s4, -1
        st   s1, 0(s0)
        st   t6, 8(s0)
        addi s0, s0, 16
        addi t6, s4, 1
        st   t6, 0(s0)
        st   s2, 8(s0)
        addi s0, s0, 16
        j    pop_range

    emit:
        la   t0, arr
        li   t1, {n}
    emit_loop:
        ld   t2, 0(t0)
        out  t2
        addi t0, t0, 8
        addi t1, t1, -1
        bne  t1, zero, emit_loop
        halt

        .data
    arr:
        .word {word_list}
    ranges:
        .space {16 * (n + 4)}
    """
    return assemble(source, name=f"quicksort_{n}")


def crc32_kernel(data: Sequence[int], rounds: int = 2) -> Program:
    """Bit-serial CRC-32 (reflected, polynomial 0xEDB88320) over 8-bit
    data values; outputs the final CRC once per round."""
    if not data:
        raise ValueError("need data")
    byte_list = ", ".join(str(v & 0xFF) for v in data)
    source = f"""
        .text
    main:
        li   s5, {rounds}
        # poly = 0xEDB88320
        lui  s4, 0xEDB8
        ori  s4, s4, 0x8320
    round:
        # crc = 0xFFFFFFFF
        lui  s0, 0xFFFF
        ori  s0, s0, 0xFFFF
        la   s1, data
        li   s2, {len(data)}
    per_byte:
        ld   t0, 0(s1)
        xor  s0, s0, t0
        li   s3, 8              # bit counter
    per_bit:
        andi t1, s0, 1
        srli s0, s0, 1
        beq  t1, zero, no_poly
        xor  s0, s0, s4
    no_poly:
        addi s3, s3, -1
        bne  s3, zero, per_bit
        addi s1, s1, 8
        addi s2, s2, -1
        bne  s2, zero, per_byte
        # crc = crc ^ 0xFFFFFFFF
        lui  t2, 0xFFFF
        ori  t2, t2, 0xFFFF
        xor  s0, s0, t2
        out  s0
        addi s5, s5, -1
        bne  s5, zero, round
        halt

        .data
    data:
        .word {byte_list}
    """
    return assemble(source, name=f"crc32_{len(data)}x{rounds}")


def bfs(adjacency: Sequence[Sequence[int]], start: int = 0) -> Program:
    """Breadth-first search over an adjacency matrix; outputs the visit
    order."""
    n = len(adjacency)
    if n == 0 or any(len(row) != n for row in adjacency):
        raise ValueError("need a square adjacency matrix")
    flat = ", ".join(str(int(bool(v))) for row in adjacency for v in row)
    source = f"""
        .text
    main:
        # queue <- start; visited[start] = 1
        la   t0, queue
        li   t1, {start}
        st   t1, 0(t0)
        slli t2, t1, 3
        la   t3, visited
        add  t3, t3, t2
        li   t4, 1
        st   t4, 0(t3)
        li   s0, 0              # head
        li   s1, 1              # tail
    drain:
        beq  s0, s1, done
        # u = queue[head++]
        slli t0, s0, 3
        la   t1, queue
        add  t1, t1, t0
        ld   s2, 0(t1)
        addi s0, s0, 1
        out  s2
        # scan u's row
        li   s3, 0              # v
    scan:
        li   t0, {n}
        bge  s3, t0, drain
        # adj[u*n + v]?
        li   t1, {n}
        mul  t2, s2, t1
        add  t2, t2, s3
        slli t2, t2, 3
        la   t3, adj
        add  t3, t3, t2
        ld   t4, 0(t3)
        beq  t4, zero, next_v
        # unvisited?
        slli t5, s3, 3
        la   t6, visited
        add  t6, t6, t5
        ld   t7, 0(t6)
        bne  t7, zero, next_v
        # mark + enqueue
        li   t7, 1
        st   t7, 0(t6)
        slli t5, s1, 3
        la   t6, queue
        add  t6, t6, t5
        st   s3, 0(t6)
        addi s1, s1, 1
    next_v:
        addi s3, s3, 1
        j    scan
    done:
        halt

        .data
    adj:
        .word {flat}
    visited:
        .space {8 * n}
    queue:
        .space {8 * (n + 1)}
    """
    return assemble(source, name=f"bfs_{n}")


def reference_crc32(data: Sequence[int]) -> int:
    """Reference CRC-32 matching :func:`crc32_kernel`."""
    crc = 0xFFFFFFFF
    for value in data:
        crc ^= value & 0xFF
        for _ in range(8):
            low = crc & 1
            crc >>= 1
            if low:
                crc ^= 0xEDB88320
    return crc ^ 0xFFFFFFFF


def random_graph(n: int, density: float = 0.25,
                 seed: int = 7) -> List[List[int]]:
    """A reproducible undirected random graph as an adjacency matrix."""
    rng = random.Random(seed)
    matrix = [[0] * n for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < density:
                matrix[i][j] = matrix[j][i] = 1
    return matrix


def reference_bfs(adjacency: Sequence[Sequence[int]],
                  start: int = 0) -> List[int]:
    """Reference BFS visit order matching :func:`bfs`."""
    n = len(adjacency)
    visited = [False] * n
    visited[start] = True
    queue = [start]
    order = []
    head = 0
    while head < len(queue):
        u = queue[head]
        head += 1
        order.append(u)
        for v in range(n):
            if adjacency[u][v] and not visited[v]:
                visited[v] = True
                queue.append(v)
    return order
