"""Functional (architectural) emulation of repro-ISA programs."""

from repro.emulator.machine import Machine, execute, to_signed, to_unsigned
from repro.emulator.stream import DynamicInstruction, ExecutionResult

__all__ = [
    "Machine",
    "execute",
    "DynamicInstruction",
    "ExecutionResult",
    "to_signed",
    "to_unsigned",
]
