"""Functional emulator for the repro ISA.

The emulator executes a :class:`~repro.isa.program.Program` at the
architectural level only — no timing.  Its job is to produce the *oracle
dynamic instruction stream* that drives and checks the timing model, the
same role the functional layer of SimpleScalar's ``sim-outorder`` plays.

Arithmetic is 64-bit two's complement.  FP registers hold Python floats;
the integer benchmarks the paper evaluates barely touch them, so bit-exact
IEEE behaviour is not required.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import EmulationError
from repro.emulator.stream import DynamicInstruction, ExecutionResult
from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import STACK_BASE, WORD_BYTES, Program
from repro.isa.registers import (
    GLOBAL_REG,
    NUM_ARCH_REGS,
    STACK_REG,
    ZERO_REG,
)

_MASK64 = (1 << 64) - 1
_SIGN_BIT = 1 << 63


def to_signed(value: int) -> int:
    """Interpret a 64-bit value as signed."""
    value &= _MASK64
    return value - (1 << 64) if value & _SIGN_BIT else value


def to_unsigned(value: int) -> int:
    """Wrap a Python int into the 64-bit unsigned range."""
    return value & _MASK64


class Machine:
    """Architectural machine state plus instruction semantics."""

    def __init__(self, program: Program):
        self.program = program
        self.regs: List = [0] * NUM_ARCH_REGS
        #: Sparse word-addressed memory: {aligned byte address: value}.
        self.memory: Dict[int, object] = dict(program.data)
        self.pc = program.entry
        self.halted = False
        self.outputs: List[int] = []
        self.instructions_executed = 0
        # Software conventions the workload generator relies on.
        self.regs[STACK_REG] = STACK_BASE
        self.regs[GLOBAL_REG] = program.data_base

    # -- memory ------------------------------------------------------------

    def load_word(self, addr: int):
        """Read the word at *addr* (zero when untouched); checks alignment."""
        if addr % WORD_BYTES:
            raise EmulationError(f"unaligned load at {addr:#x} "
                                 f"(pc={self.pc:#x})")
        return self.memory.get(addr, 0)

    def store_word(self, addr: int, value) -> None:
        """Write *value* to the word at *addr*; checks alignment."""
        if addr % WORD_BYTES:
            raise EmulationError(f"unaligned store at {addr:#x} "
                                 f"(pc={self.pc:#x})")
        self.memory[addr] = value

    # -- execution -----------------------------------------------------------

    def step(self) -> DynamicInstruction:
        """Execute one instruction; return its dynamic record."""
        if self.halted:
            raise EmulationError("machine is halted")
        pc = self.pc
        inst = self.program.inst_at(pc)
        record = self._execute(inst, pc)
        self.instructions_executed += 1
        return record

    def run(self, max_instructions: int) -> ExecutionResult:
        """Execute up to *max_instructions*; return the dynamic stream.

        Stops early if the program executes a ``halt``.  Programs used for
        experiments typically loop far longer than any simulation length,
        so truncation (not halting) is the normal outcome.
        """
        stream: List[DynamicInstruction] = []
        append = stream.append
        step = self.step
        for _ in range(max_instructions):
            if self.halted:
                break
            append(step())
        return ExecutionResult(stream, list(self.outputs), self.halted)

    # -- semantics -----------------------------------------------------------

    def _execute(self, inst: Instruction, pc: int) -> DynamicInstruction:
        regs = self.regs
        op = inst.opcode
        next_pc = pc + 4
        taken = False
        ea: Optional[int] = None

        if op is Opcode.ADDI:
            value = to_unsigned(regs[inst.rs1] + inst.imm)
        elif op is Opcode.ADD:
            value = to_unsigned(regs[inst.rs1] + regs[inst.rs2])
        elif op is Opcode.SUB:
            value = to_unsigned(regs[inst.rs1] - regs[inst.rs2])
        elif op is Opcode.AND:
            value = regs[inst.rs1] & regs[inst.rs2]
        elif op is Opcode.OR:
            value = regs[inst.rs1] | regs[inst.rs2]
        elif op is Opcode.XOR:
            value = regs[inst.rs1] ^ regs[inst.rs2]
        elif op is Opcode.SLL:
            value = to_unsigned(regs[inst.rs1] << (regs[inst.rs2] & 63))
        elif op is Opcode.SRL:
            value = to_unsigned(regs[inst.rs1]) >> (regs[inst.rs2] & 63)
        elif op is Opcode.SRA:
            value = to_unsigned(to_signed(regs[inst.rs1])
                                >> (regs[inst.rs2] & 63))
        elif op is Opcode.SLT:
            value = int(to_signed(regs[inst.rs1]) < to_signed(regs[inst.rs2]))
        elif op is Opcode.SLTU:
            value = int(to_unsigned(regs[inst.rs1])
                        < to_unsigned(regs[inst.rs2]))
        elif op is Opcode.MUL:
            value = to_unsigned(to_signed(regs[inst.rs1])
                                * to_signed(regs[inst.rs2]))
        elif op is Opcode.DIV:
            divisor = to_signed(regs[inst.rs2])
            if divisor == 0:
                value = _MASK64  # RISC-V convention: div by zero -> -1
            else:
                quotient = abs(to_signed(regs[inst.rs1])) // abs(divisor)
                if (to_signed(regs[inst.rs1]) < 0) != (divisor < 0):
                    quotient = -quotient
                value = to_unsigned(quotient)
        elif op is Opcode.REM:
            divisor = to_signed(regs[inst.rs2])
            if divisor == 0:
                value = regs[inst.rs1]
            else:
                dividend = to_signed(regs[inst.rs1])
                quotient = abs(dividend) // abs(divisor)
                if (dividend < 0) != (divisor < 0):
                    quotient = -quotient
                value = to_unsigned(dividend - quotient * divisor)
        elif op is Opcode.ANDI:
            value = regs[inst.rs1] & (inst.imm & 0xFFFF)
        elif op is Opcode.ORI:
            value = regs[inst.rs1] | (inst.imm & 0xFFFF)
        elif op is Opcode.XORI:
            value = regs[inst.rs1] ^ (inst.imm & 0xFFFF)
        elif op is Opcode.SLLI:
            value = to_unsigned(regs[inst.rs1] << (inst.imm & 63))
        elif op is Opcode.SRLI:
            value = to_unsigned(regs[inst.rs1]) >> (inst.imm & 63)
        elif op is Opcode.SLTI:
            value = int(to_signed(regs[inst.rs1]) < inst.imm)
        elif op is Opcode.LUI:
            value = (inst.imm & 0xFFFF) << 16
        elif op is Opcode.LD:
            ea = to_unsigned(regs[inst.rs1] + inst.imm)
            value = self.load_word(ea)
            if isinstance(value, float):
                # Integer view of an FP-stored word: truncate (the model
                # stores numbers, not bit patterns; see module docstring).
                value = to_unsigned(int(value))
        elif op is Opcode.ST:
            ea = to_unsigned(regs[inst.rs1] + inst.imm)
            self.store_word(ea, regs[inst.rs2])
            value = None
        elif op is Opcode.FLD:
            ea = to_unsigned(regs[inst.rs1] + inst.imm)
            value = float(to_signed(self.load_word(ea))
                          if isinstance(self.load_word(ea), int)
                          else self.load_word(ea))
        elif op is Opcode.FST:
            ea = to_unsigned(regs[inst.rs1] + inst.imm)
            self.store_word(ea, float(regs[inst.rs2]))
            value = None
        elif op is Opcode.FADD:
            value = float(regs[inst.rs1]) + float(regs[inst.rs2])
        elif op is Opcode.FSUB:
            value = float(regs[inst.rs1]) - float(regs[inst.rs2])
        elif op is Opcode.FMUL:
            value = float(regs[inst.rs1]) * float(regs[inst.rs2])
        elif op is Opcode.FDIV:
            divisor = float(regs[inst.rs2])
            value = float(regs[inst.rs1]) / divisor if divisor else 0.0
        elif op is Opcode.FCVT:
            value = float(to_signed(regs[inst.rs1]))
        elif op is Opcode.BEQ:
            taken = regs[inst.rs1] == regs[inst.rs2]
            value = None
        elif op is Opcode.BNE:
            taken = regs[inst.rs1] != regs[inst.rs2]
            value = None
        elif op is Opcode.BLT:
            taken = to_signed(regs[inst.rs1]) < to_signed(regs[inst.rs2])
            value = None
        elif op is Opcode.BGE:
            taken = to_signed(regs[inst.rs1]) >= to_signed(regs[inst.rs2])
            value = None
        elif op is Opcode.J:
            taken = True
            value = None
        elif op is Opcode.JAL:
            taken = True
            value = pc + 4
        elif op is Opcode.JR:
            taken = True
            next_pc = to_unsigned(regs[inst.rs1])
            value = None
        elif op is Opcode.JALR:
            taken = True
            next_pc = to_unsigned(regs[inst.rs1])
            value = pc + 4
        elif op is Opcode.RET:
            taken = True
            next_pc = to_unsigned(regs[inst.rs1])
            value = None
        elif op is Opcode.NOP:
            value = None
        elif op is Opcode.HALT:
            self.halted = True
            value = None
        elif op is Opcode.OUT:
            self.outputs.append(to_signed(regs[inst.rs1]))
            value = None
        else:  # pragma: no cover - exhaustive over Opcode
            raise EmulationError(f"unimplemented opcode {op}")

        if taken and inst.target is not None:
            next_pc = inst.target

        dest = inst.dest_reg()
        if dest is not None and value is not None and dest != ZERO_REG:
            regs[dest] = value

        self.pc = next_pc
        record = DynamicInstruction(self.instructions_executed, inst, pc,
                                    next_pc, taken, ea)
        return record


def execute(program: Program, max_instructions: int = 1_000_000) -> ExecutionResult:
    """Run *program* functionally and return its dynamic stream."""
    return Machine(program).run(max_instructions)
