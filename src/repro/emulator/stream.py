"""Dynamic instruction stream records.

The functional emulator (:mod:`repro.emulator.machine`) produces a sequence
of :class:`DynamicInstruction` records — the *oracle stream*.  The timing
model consumes this stream as the definition of the correct execution path
and uses the per-record ``next_pc`` to redirect fetch after branch
mispredictions resolve.
"""

from __future__ import annotations

from typing import List, Optional

from repro.isa.instructions import Instruction


class DynamicInstruction:
    """One dynamic execution of a static instruction.

    Attributes:
        index: position in the dynamic stream (0-based).
        inst: the static :class:`Instruction` executed.
        pc: byte address of the instruction.
        next_pc: byte address of the dynamically-next instruction.
        taken: for control instructions, whether control transferred away
            from the fall-through path; ``False`` for everything else.
        ea: effective address for loads/stores, else ``None``.
    """

    __slots__ = ("index", "inst", "pc", "next_pc", "taken", "ea")

    def __init__(self, index: int, inst: Instruction, pc: int, next_pc: int,
                 taken: bool = False, ea: Optional[int] = None):
        self.index = index
        self.inst = inst
        self.pc = pc
        self.next_pc = next_pc
        self.taken = taken
        self.ea = ea

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = " taken" if self.taken else ""
        return f"<#{self.index} {self.pc:#x}: {self.inst}{flags}>"


class ExecutionResult:
    """Outcome of a functional-emulation run."""

    __slots__ = ("stream", "outputs", "halted", "instructions_executed")

    def __init__(self, stream: List[DynamicInstruction], outputs: List[int],
                 halted: bool):
        self.stream = stream
        self.outputs = outputs
        self.halted = halted
        self.instructions_executed = len(stream)

    def __len__(self) -> int:
        return len(self.stream)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "halted" if self.halted else "truncated"
        return (f"ExecutionResult({len(self.stream)} insts, "
                f"{len(self.outputs)} outputs, {status})")
