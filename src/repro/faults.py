"""Deterministic fault injection for exercising recovery paths.

The robustness layer (fault-tolerant sweep runner, cache quarantine,
pipeline watchdog) is only trustworthy if every recovery path is
exercised regularly, so this module provides *deterministic, seeded*
injection points that tests and the CI smoke job flip on:

* ``worker_exception`` — the job raises :class:`InjectedFault` instead of
  simulating (exercises retry / structured-failure handling);
* ``worker_crash`` — the worker process dies with ``os._exit`` mid-job
  (exercises crash detection and inline re-execution);
* ``slow_job`` — the job sleeps before simulating (exercises per-job
  wall-clock timeouts);
* ``truncated_write`` — :class:`~repro.experiments.runner.ResultCache`
  writes only a prefix of the entry (exercises corrupt-entry quarantine);
* ``checkpoint_corrupt`` — :class:`~repro.checkpoint.CheckpointManager`
  persists only a prefix of a snapshot (exercises checkpoint quarantine
  and fall-back to the previous snapshot);
* ``kill_mid_unit`` — the process dies with ``os._exit`` immediately
  after durably storing its Nth checkpoint (exercises kill-and-resume;
  ``attempts`` selects checkpoint ordinals here).

Faults are configured through the ``REPRO_FAULTS`` environment variable
so they propagate to ``multiprocessing`` pool workers without any shared
state.  The spec is a semicolon-separated list of directives::

    REPRO_FAULTS="worker_exception match=gzip attempts=0; slow_job seconds=0.5 attempts=*"

Each directive is a fault kind followed by ``key=value`` options:

``match``
    Substring of the job description (:meth:`SweepJob.describe`) the
    fault applies to.  Empty (default) matches every job.
``attempts``
    Comma-separated attempt numbers to fail (default ``0``: only the
    first attempt, so a retry succeeds), or ``*`` for every attempt.
    Attempt numbers are passed in by the runner, which makes the
    behaviour deterministic across processes — no hidden counters.
``rate`` / ``seed``
    Probabilistic gate: the fault fires only for the fraction ``rate``
    of matching jobs, selected by hashing ``(seed, kind, description)``.
    Fully deterministic and stable across processes and runs.
``seconds``
    ``slow_job`` sleep duration (default 1.0).
``keep``
    ``truncated_write`` / ``checkpoint_corrupt`` fraction of the payload
    kept (default 0.5).

Everything here is inert unless ``REPRO_FAULTS`` is set (or a plan is
installed programmatically via :func:`install`), so production sweeps
pay a single cached environment lookup per job.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional

from repro.errors import ReproError

FAULTS_ENV = "REPRO_FAULTS"

KNOWN_KINDS = frozenset({
    "worker_exception", "worker_crash", "slow_job", "truncated_write",
    "checkpoint_corrupt", "kill_mid_unit",
})


class InjectedFault(ReproError):
    """An artificial failure raised by an active fault plan."""


class FaultSpecError(ReproError):
    """Raised for an unparseable ``REPRO_FAULTS`` directive."""


def _seeded_gate(seed: int, kind: str, description: str, rate: float) -> bool:
    """Deterministically select ``rate`` of the (kind, description) space."""
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    digest = hashlib.sha256(
        f"{seed}|{kind}|{description}".encode()).digest()
    fraction = int.from_bytes(digest[:8], "big") / float(1 << 64)
    return fraction < rate


@dataclass(frozen=True)
class FaultSpec:
    """One parsed fault directive."""

    kind: str
    match: str = ""
    #: Attempt numbers the fault fires on; ``None`` means every attempt.
    attempts: Optional[FrozenSet[int]] = frozenset({0})
    seconds: float = 1.0
    rate: float = 1.0
    seed: int = 0
    keep: float = 0.5

    def applies(self, description: str, attempt: Optional[int] = None) -> bool:
        """Whether this spec fires for *description* on *attempt*."""
        if self.match and self.match not in description:
            return False
        if (attempt is not None and self.attempts is not None
                and attempt not in self.attempts):
            return False
        return _seeded_gate(self.seed, self.kind, description, self.rate)


@dataclass
class FaultPlan:
    """The set of active fault directives."""

    specs: List[FaultSpec] = field(default_factory=list)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse a ``REPRO_FAULTS`` directive string into a plan."""
        specs: List[FaultSpec] = []
        for directive in text.split(";"):
            directive = directive.strip()
            if not directive:
                continue
            tokens = directive.split()
            kind = tokens[0]
            if kind not in KNOWN_KINDS:
                raise FaultSpecError(
                    f"unknown fault kind {kind!r} "
                    f"(known: {', '.join(sorted(KNOWN_KINDS))})")
            options = {}
            for token in tokens[1:]:
                if "=" not in token:
                    raise FaultSpecError(
                        f"malformed option {token!r} in {directive!r}")
                key, value = token.split("=", 1)
                options[key] = value
            specs.append(cls._build_spec(kind, options, directive))
        return cls(specs)

    @staticmethod
    def _build_spec(kind: str, options: dict, directive: str) -> FaultSpec:
        known = {"match", "attempts", "seconds", "rate", "seed", "keep"}
        unknown = set(options) - known
        if unknown:
            raise FaultSpecError(
                f"unknown option(s) {sorted(unknown)} in {directive!r}")
        attempts: Optional[FrozenSet[int]] = frozenset({0})
        if "attempts" in options:
            raw = options["attempts"]
            attempts = None if raw == "*" else frozenset(
                int(n) for n in raw.split(",") if n != "")
        try:
            return FaultSpec(
                kind=kind,
                match=options.get("match", ""),
                attempts=attempts,
                seconds=float(options.get("seconds", 1.0)),
                rate=float(options.get("rate", 1.0)),
                seed=int(options.get("seed", 0)),
                keep=float(options.get("keep", 0.5)),
            )
        except ValueError as exc:
            raise FaultSpecError(f"bad option value in {directive!r}: {exc}")

    # -- injection points --------------------------------------------------

    def on_execute(self, description: str, attempt: int) -> None:
        """Fire execution-side faults for a job attempt (worker or inline)."""
        for spec in self.specs:
            if not spec.applies(description, attempt):
                continue
            if spec.kind == "slow_job":
                time.sleep(spec.seconds)
            elif spec.kind == "worker_exception":
                raise InjectedFault(
                    f"injected worker exception for {description!r} "
                    f"(attempt {attempt})")
            elif spec.kind == "worker_crash":
                # Hard process death: no exception, no cleanup — exactly
                # what a segfaulting or OOM-killed worker looks like.
                os._exit(23)

    def on_cache_write(self, description: str, text: str) -> str:
        """Possibly mutate a cache entry's serialized payload."""
        for spec in self.specs:
            if spec.kind == "truncated_write" and spec.applies(description):
                return text[:max(1, int(len(text) * spec.keep))]
        return text

    def on_checkpoint_write(self, description: str, data: bytes) -> bytes:
        """Possibly mutate a checkpoint snapshot's pickled payload."""
        for spec in self.specs:
            if (spec.kind == "checkpoint_corrupt"
                    and spec.applies(description)):
                return data[:max(1, int(len(data) * spec.keep))]
        return data

    def on_checkpoint_stored(self, description: str, ordinal: int) -> None:
        """Fire post-store faults after checkpoint *ordinal* is durable.

        ``kill_mid_unit`` reuses the ``attempts`` selector as checkpoint
        ordinals (the absolute store count for this run), so a resumed
        run — whose next stores carry higher ordinals — does not
        re-trigger the same kill.
        """
        for spec in self.specs:
            if (spec.kind == "kill_mid_unit"
                    and spec.applies(description, ordinal)):
                # Same hard death as worker_crash: the snapshot just
                # written is durable, nothing else gets flushed.
                os._exit(23)


#: Parsed-plan cache keyed by the raw env value (workers inherit the env).
_cached: tuple = ("", None)


def active_plan() -> Optional[FaultPlan]:
    """The plan configured via ``REPRO_FAULTS``, or None when inert."""
    global _cached
    text = os.environ.get(FAULTS_ENV, "")
    if text != _cached[0]:
        _cached = (text, FaultPlan.parse(text) if text.strip() else None)
    return _cached[1]


def install(spec: str) -> FaultPlan:
    """Install *spec* process-wide (and for future pool workers)."""
    plan = FaultPlan.parse(spec)  # validate before exporting
    os.environ[FAULTS_ENV] = spec
    return plan


def uninstall() -> None:
    """Remove any installed fault plan."""
    os.environ.pop(FAULTS_ENV, None)


def corrupt_entry(cache, job) -> Optional[os.PathLike]:
    """Overwrite *job*'s cache entry with garbage; returns its path.

    Test/CI helper for the quarantine path: the next
    :meth:`ResultCache.load` of this key must quarantine the file and
    report a miss.  Returns None when no entry exists.
    """
    path = cache._path(job.cache_key())
    if not path.is_file():
        return None
    path.write_text("{corrupt json" + path.read_text()[:32])
    return path
