"""Simulation-as-a-service: an async HTTP job API over the sweep engine.

The sweep runner (:mod:`repro.experiments.runner`) already has the hard
parts of a job service — a content-addressed result cache, per-job
retries and timeouts, structured failure records, fault injection.  This
package wraps it in a long-running stdlib-``asyncio`` HTTP server so
many clients can share one warm cache and one worker pool instead of
each paying full CLI startup cost:

* :mod:`repro.service.protocol` — the wire format: :class:`SweepJob` as
  JSON, job-record states, result payloads;
* :mod:`repro.service.server` — :class:`SweepService`, the asyncio HTTP
  server (submit / poll / stream / fetch-results endpoints, execution
  delegated to the sweep runner's multiprocessing pool off the event
  loop, cache hits served straight from an in-process memo over the
  disk :class:`~repro.experiments.runner.ResultCache`);
* :mod:`repro.service.client` — :class:`ServiceClient`, a stdlib
  ``asyncio`` HTTP client speaking the same protocol;
* :mod:`repro.service.loadgen` — an async load generator that fires
  thousands of concurrent requests (cache hits, misses, submissions,
  status polls) and verifies zero server errors plus bit-identical
  results against a serial in-process sweep.

``repro serve``, ``repro submit`` and ``repro loadgen`` are the CLI
entry points (see :mod:`repro.__main__`).
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.protocol import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    ProtocolError,
    job_from_wire,
    job_to_wire,
)
from repro.service.server import ServiceConfig, SweepService

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "ProtocolError",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "SweepService",
    "job_from_wire",
    "job_to_wire",
]
