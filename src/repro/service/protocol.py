"""Wire format shared by the sweep job server and its clients.

The protocol deliberately reuses the sweep engine's own vocabulary
instead of inventing a parallel one:

* a submitted job *is* a :class:`~repro.experiments.runner.SweepJob`,
  serialized field-for-field (:func:`job_to_wire` / :func:`job_from_wire`);
* a job's identity on the read path *is* its content-addressed cache key
  (:meth:`SweepJob.cache_key`), so any client holding a job can compute
  the key locally and fetch the result with a single GET;
* results travel as the same payload dict the
  :class:`~repro.experiments.runner.ResultCache` persists, and failures
  mirror :class:`~repro.experiments.runner.JobFailure`.

Everything is JSON over HTTP/1.1; the status-streaming endpoint emits
newline-delimited JSON events.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.experiments.runner import SweepJob

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8023

#: Bump when the wire format changes incompatibly; echoed by /healthz.
PROTOCOL_VERSION = 1

# Submission lifecycle states, in order.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
ERROR = "error"
#: The server went down with this submission in flight; a restarted
#: server re-queues it (journal recovery), at which point it leaves
#: this state again — so it is *not* terminal.
INTERRUPTED = "interrupted"

#: States a submission can never leave.
TERMINAL_STATES = frozenset({DONE, ERROR})


class ProtocolError(ReproError):
    """Raised for a request or job description the protocol rejects."""


_SCALAR = (str, int, float, bool)


def job_to_wire(job: SweepJob) -> Dict[str, Any]:
    """Serialize one :class:`SweepJob` to its JSON wire form."""
    payload: Dict[str, Any] = {
        "config_name": job.config_name,
        "benchmark": job.benchmark,
        "length": job.length,
    }
    if job.total_l1_storage is not None:
        payload["total_l1_storage"] = job.total_l1_storage
    if job.predictor_entries is not None:
        payload["predictor_entries"] = job.predictor_entries
    if job.overrides:
        payload["overrides"] = [[path, value]
                                for path, value in job.overrides]
    if not job.warm:
        payload["warm"] = False
    if job.label is not None:
        payload["label"] = job.label
    if job.sampling is not None:
        payload["sampling"] = list(job.sampling)
    if job.checkpoint is not None:
        payload["checkpoint"] = job.checkpoint
    return payload


def _require(payload: Dict[str, Any], field: str, kinds) -> Any:
    value = payload.get(field)
    if not isinstance(value, kinds) or isinstance(value, bool):
        raise ProtocolError(
            f"job field {field!r} missing or mistyped: {value!r}")
    return value


def job_from_wire(payload: Any) -> SweepJob:
    """Deserialize and validate one job from its JSON wire form.

    Raises :class:`ProtocolError` on anything malformed — the server
    turns that into a 400 rather than executing a half-parsed job.
    """
    if not isinstance(payload, dict):
        raise ProtocolError(f"job must be an object, got {type(payload).__name__}")
    unknown = set(payload) - {
        "config_name", "benchmark", "length", "total_l1_storage",
        "predictor_entries", "overrides", "warm", "label", "sampling",
        "checkpoint"}
    if unknown:
        raise ProtocolError(f"unknown job field(s) {sorted(unknown)}")
    config_name = _require(payload, "config_name", str)
    benchmark = _require(payload, "benchmark", str)
    length = _require(payload, "length", int)
    if length <= 0:
        raise ProtocolError(f"job length must be positive, got {length}")

    def optional_int(field: str) -> Optional[int]:
        value = payload.get(field)
        if value is None:
            return None
        if not isinstance(value, int) or isinstance(value, bool):
            raise ProtocolError(f"job field {field!r} must be an int")
        return value

    overrides: List[Tuple[str, Any]] = []
    for entry in payload.get("overrides") or []:
        if (not isinstance(entry, (list, tuple)) or len(entry) != 2
                or not isinstance(entry[0], str)
                or not isinstance(entry[1], _SCALAR)):
            raise ProtocolError(f"malformed override {entry!r} "
                                "(expected [dotted.path, scalar])")
        overrides.append((entry[0], entry[1]))

    sampling = payload.get("sampling")
    if sampling is not None:
        if (not isinstance(sampling, (list, tuple)) or len(sampling) != 3
                or not all(isinstance(n, int) and not isinstance(n, bool)
                           for n in sampling)):
            raise ProtocolError(f"malformed sampling {sampling!r} "
                                "(expected [period, unit, warmup])")
        sampling = tuple(sampling)

    checkpoint = optional_int("checkpoint")
    if checkpoint is not None and checkpoint <= 0:
        raise ProtocolError(
            f"job checkpoint interval must be positive, got {checkpoint}")

    warm = payload.get("warm", True)
    if not isinstance(warm, bool):
        raise ProtocolError("job field 'warm' must be a boolean")
    label = payload.get("label")
    if label is not None and not isinstance(label, str):
        raise ProtocolError("job field 'label' must be a string")

    return SweepJob(
        config_name=config_name,
        benchmark=benchmark,
        length=length,
        total_l1_storage=optional_int("total_l1_storage"),
        predictor_entries=optional_int("predictor_entries"),
        overrides=tuple(overrides),
        warm=warm,
        label=label,
        sampling=sampling,
        checkpoint=checkpoint,
    )


def jobs_from_wire(payload: Any) -> List[SweepJob]:
    """Deserialize a submission's job list, bounding obvious abuse."""
    if isinstance(payload, dict):
        payload = [payload]
    if not isinstance(payload, list) or not payload:
        raise ProtocolError("submission needs a non-empty 'jobs' list")
    return [job_from_wire(entry) for entry in payload]


def jobs_to_wire(jobs: Sequence[SweepJob]) -> List[Dict[str, Any]]:
    """Serialize a job list for submission."""
    return [job_to_wire(job) for job in jobs]
