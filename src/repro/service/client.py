"""Async HTTP client for the sweep job server (stdlib only).

:class:`ServiceClient` speaks the protocol in
:mod:`repro.service.protocol` over plain ``asyncio`` streams — one
request per connection, matching the server's connection model, which
keeps both ends trivial and lets a load generator hold thousands of
concurrent requests in flight without connection-pool bookkeeping.

The client is what ``repro submit`` and the load generator are built
on; it also works as a library::

    client = ServiceClient(port=8023)
    record = await client.submit(jobs)
    record = await client.wait(record["id"])
    results = [r and result_from_wire(r) for r in record["results"]]
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, AsyncIterator, Dict, List, Optional, Sequence

from repro.core.simulation import SimulationResult
from repro.errors import ReproError
from repro.experiments.runner import SweepJob, _result_from_payload
from repro.service import protocol


class ServiceError(ReproError):
    """Raised for transport failures or server-reported errors."""

    def __init__(self, message: str, status: Optional[int] = None):
        self.status = status
        super().__init__(message)


class Response:
    """One parsed HTTP response."""

    __slots__ = ("status", "payload")

    def __init__(self, status: int, payload: Any):
        self.status = status
        self.payload = payload


def result_from_wire(payload: Dict[str, Any]) -> SimulationResult:
    """Rebuild a :class:`SimulationResult` from its wire payload."""
    return _result_from_payload(payload)


class ServiceClient:
    """Async client for one :class:`~repro.service.server.SweepService`."""

    def __init__(self, host: str = protocol.DEFAULT_HOST,
                 port: int = protocol.DEFAULT_PORT,
                 timeout: float = 120.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport

    async def _request(self, method: str, path: str,
                       payload: Optional[dict] = None) -> Response:
        body = b"" if payload is None else json.dumps(payload).encode()
        head = (f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n")
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port),
                timeout=self.timeout)
        except (OSError, asyncio.TimeoutError) as exc:
            raise ServiceError(
                f"cannot reach {self.host}:{self.port}: {exc}")
        try:
            writer.write(head.encode("ascii") + body)
            await writer.drain()
            status, data = await asyncio.wait_for(
                self._read_response(reader), timeout=self.timeout)
        except (OSError, asyncio.TimeoutError,
                asyncio.IncompleteReadError) as exc:
            raise ServiceError(f"request {method} {path} failed: {exc}")
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass
        try:
            parsed = json.loads(data.decode() or "null")
        except ValueError:
            parsed = None
        return Response(status, parsed)

    @staticmethod
    async def _read_response(reader: asyncio.StreamReader):
        head = await reader.readuntil(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split()[1])
        length: Optional[int] = None
        for line in lines[1:]:
            if line.lower().startswith("content-length:"):
                length = int(line.split(":", 1)[1].strip())
        if length is not None:
            data = await reader.readexactly(length)
        else:  # close-delimited (the streaming endpoint)
            data = await reader.read(-1)
        return status, data

    def _expect(self, response: Response, *statuses: int) -> Any:
        if response.status not in statuses:
            detail = ""
            if isinstance(response.payload, dict):
                detail = f": {response.payload.get('error', '')}"
            raise ServiceError(
                f"server returned HTTP {response.status}{detail}",
                status=response.status)
        return response.payload

    # ------------------------------------------------------------------
    # Endpoints

    async def health(self) -> dict:
        """GET /healthz — liveness probe."""
        return self._expect(await self._request("GET", "/healthz"), 200)

    async def stats(self) -> dict:
        """GET /stats — service/sweep/cache counters."""
        return self._expect(await self._request("GET", "/stats"), 200)

    async def submit(self, jobs: Sequence[SweepJob],
                     workers: Optional[int] = None,
                     retries: Optional[int] = None,
                     timeout: Optional[float] = None,
                     tag: Optional[str] = None) -> dict:
        """POST /jobs — submit a sweep; returns the acceptance record."""
        payload: Dict[str, Any] = {"jobs": protocol.jobs_to_wire(jobs)}
        if workers is not None:
            payload["workers"] = workers
        if retries is not None:
            payload["retries"] = retries
        if timeout is not None:
            payload["timeout"] = timeout
        if tag is not None:
            payload["tag"] = tag
        return self._expect(
            await self._request("POST", "/jobs", payload), 202)

    async def status(self, record_id: str, wait: float = 0.0,
                     results: bool = False) -> dict:
        """GET /jobs/<id> — status snapshot; *wait* long-polls."""
        path = f"/jobs/{record_id}"
        params = []
        if wait:
            params.append(f"wait={wait:g}")
        if results:
            params.append("results=1")
        if params:
            path += "?" + "&".join(params)
        return self._expect(await self._request("GET", path), 200)

    async def wait(self, record_id: str, deadline: Optional[float] = None,
                   poll: float = 10.0) -> dict:
        """Long-poll until the submission reaches a terminal state.

        Returns the final snapshot with results embedded.  Raises
        :class:`ServiceError` if *deadline* seconds elapse first.
        """
        start = time.monotonic()
        while True:
            snapshot = await self.status(record_id, wait=poll,
                                         results=True)
            if snapshot["state"] in protocol.TERMINAL_STATES:
                return snapshot
            if (deadline is not None
                    and time.monotonic() - start > deadline):
                raise ServiceError(
                    f"job {record_id} still {snapshot['state']} after "
                    f"{deadline:g}s")

    async def events(self, record_id: str) -> AsyncIterator[dict]:
        """GET /jobs/<id>/events — yield streamed NDJSON events."""
        async for event in self._stream(f"/jobs/{record_id}/events"):
            yield event

    async def metrics(self, record_id: str) -> AsyncIterator[dict]:
        """GET /jobs/<id>/metrics — yield streamed telemetry snapshots.

        Each snapshot carries fleet progress (``jobs_done``,
        ``jobs_failed``, ``cache_hits``, ``retries``) plus the
        submission's monotonically increasing ``committed`` instruction
        count; the stream ends when the submission reaches a terminal
        state.
        """
        async for snapshot in self._stream(f"/jobs/{record_id}/metrics"):
            yield snapshot

    async def _stream(self, path: str) -> AsyncIterator[dict]:
        """Follow one close-delimited NDJSON streaming endpoint."""
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port),
                timeout=self.timeout)
        except (OSError, asyncio.TimeoutError) as exc:
            raise ServiceError(
                f"cannot reach {self.host}:{self.port}: {exc}")
        head = (f"GET {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                "Connection: close\r\n\r\n")
        try:
            writer.write(head.encode("ascii"))
            await writer.drain()
            header = await reader.readuntil(b"\r\n\r\n")
            status = int(header.decode("latin-1").split()[1])
            if status != 200:
                data = await reader.read(-1)
                try:
                    error = json.loads(data.decode())["error"]
                except Exception:
                    error = data.decode(errors="replace")
                raise ServiceError(error, status=status)
            while True:
                line = await reader.readline()
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line.decode())
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def result_for_key(self, key: str
                             ) -> Optional[SimulationResult]:
        """GET /results/<key> — a cached result, or None on a miss."""
        response = await self._request("GET", f"/results/{key}")
        if response.status == 404:
            return None
        payload = self._expect(response, 200)
        return result_from_wire(payload["result"])

    async def result_for(self, job: SweepJob
                         ) -> Optional[SimulationResult]:
        """Fetch *job*'s result by its locally computed cache key."""
        return await self.result_for_key(job.cache_key())

    async def run_jobs(self, jobs: Sequence[SweepJob],
                       workers: Optional[int] = None,
                       deadline: Optional[float] = None
                       ) -> List[Optional[SimulationResult]]:
        """Submit, wait, and decode results (None per failed job)."""
        record = await self.submit(jobs, workers=workers)
        final = await self.wait(record["id"], deadline=deadline)
        if final["state"] != protocol.DONE:
            raise ServiceError(
                f"job {record['id']} ended {final['state']}: "
                f"{final.get('error', '')}")
        return [None if payload is None else result_from_wire(payload)
                for payload in final["results"]]

    async def shutdown(self) -> dict:
        """POST /shutdown — ask the server to stop gracefully."""
        return self._expect(
            await self._request("POST", "/shutdown"), 200)
