"""Async load generator for the sweep job server.

Proves the serving story end to end: after seeding the server's cache
with one real sweep, it fires a large number of concurrent requests —
a deterministic seeded mix of cache-hit result fetches, guaranteed
misses, status polls, event-stream replays, duplicate submissions and
stats scrapes — then verifies the three acceptance properties:

* **zero server errors**: no 5xx response and no transport failure
  across the whole run (a 404 for a key that was never computed is a
  correct answer, not an error);
* **bit-identical results**: every payload the server returned equals a
  serial in-process :func:`~repro.experiments.runner.run_sweep` of the
  same jobs, executed with caching disabled (and any ambient fault plan
  cleared) in the load-generator process;
* **cache budget honoured** (when the server's cache directory is
  local and a budget is configured): live entries stay under it.

Run via ``repro loadgen`` or programmatically via :func:`run_loadgen`.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import faults
from repro.experiments.runner import ResultCache, SweepJob, run_sweep
from repro.service.client import ServiceClient, ServiceError
from repro.service import protocol

#: Relative weights of the request mix (normalized at build time).
MIX = (
    ("result_hit", 50),   # GET /results/<known key>   (the hot path)
    ("result_miss", 10),  # GET /results/<unknown key> (clean 404)
    ("status", 15),       # GET /jobs/<id>
    ("submit_dup", 10),   # POST /jobs re-submitting cached jobs
    ("events", 5),        # GET /jobs/<id>/events replay
    ("metrics", 5),       # GET /jobs/<id>/metrics replay
    ("stats", 10),        # GET /stats
)


@dataclass
class LoadReport:
    """Outcome of one load-generator run."""

    requests: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)
    server_errors: int = 0          # any HTTP 5xx
    transport_errors: int = 0       # refused/reset/timeout
    unexpected_status: int = 0      # e.g. 400 where 200/404 was due
    mismatches: int = 0             # server result != serial result
    seed_failures: int = 0          # structured job failures on seeding
    verified_jobs: int = 0
    wall_seconds: float = 0.0
    latencies: List[float] = field(default_factory=list)
    cache_bytes: Optional[int] = None
    cache_budget: Optional[int] = None
    errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every acceptance property held."""
        return (self.server_errors == 0 and self.transport_errors == 0
                and self.unexpected_status == 0 and self.mismatches == 0
                and self.seed_failures == 0 and self.budget_ok)

    @property
    def budget_ok(self) -> bool:
        """Cache stayed under budget (vacuously true when unchecked)."""
        if self.cache_bytes is None or self.cache_budget is None:
            return True
        return self.cache_bytes <= self.cache_budget

    def _percentile(self, fraction: float) -> float:
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        index = min(len(ordered) - 1,
                    int(fraction * (len(ordered) - 1)))
        return ordered[index]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready summary (latencies collapsed to percentiles)."""
        return {
            "ok": self.ok,
            "requests": self.requests,
            "by_kind": dict(sorted(self.by_kind.items())),
            "server_errors_5xx": self.server_errors,
            "transport_errors": self.transport_errors,
            "unexpected_status": self.unexpected_status,
            "mismatches": self.mismatches,
            "seed_failures": self.seed_failures,
            "verified_jobs": self.verified_jobs,
            "wall_seconds": round(self.wall_seconds, 3),
            "requests_per_second": round(
                self.requests / self.wall_seconds, 1)
                if self.wall_seconds else 0.0,
            "latency_p50_ms": round(1e3 * self._percentile(0.50), 2),
            "latency_p95_ms": round(1e3 * self._percentile(0.95), 2),
            "latency_p99_ms": round(1e3 * self._percentile(0.99), 2),
            "latency_max_ms": round(1e3 * self._percentile(1.0), 2),
            "cache_bytes": self.cache_bytes,
            "cache_budget": self.cache_budget,
            "budget_ok": self.budget_ok,
            "errors": self.errors[:20],
        }

    def format_text(self) -> str:
        """Human-readable multi-line summary."""
        data = self.to_dict()
        lines = [f"loadgen {'OK' if self.ok else 'FAILED'}"]
        for name in ("requests", "server_errors_5xx", "transport_errors",
                     "unexpected_status", "mismatches", "seed_failures",
                     "verified_jobs", "wall_seconds",
                     "requests_per_second", "latency_p50_ms",
                     "latency_p95_ms", "latency_p99_ms",
                     "latency_max_ms"):
            lines.append(f"  {name:22} {data[name]}")
        lines.append("  mix                    "
                     + " ".join(f"{k}={v}"
                                for k, v in data["by_kind"].items()))
        if self.cache_budget is not None:
            lines.append(f"  cache_bytes            {self.cache_bytes} "
                         f"(budget {self.cache_budget}, "
                         f"{'under' if self.budget_ok else 'OVER'})")
        for error in data["errors"]:
            lines.append(f"  ERROR {error}")
        return "\n".join(lines)


def build_jobs(configs: Sequence[str], benchmarks: Sequence[str],
               length: int,
               sampling: Optional[Tuple[int, int, int]] = None
               ) -> List[SweepJob]:
    """The (configs x benchmarks) job matrix the load run revolves on."""
    return [SweepJob(config_name=config, benchmark=bench, length=length,
                     sampling=sampling)
            for config in configs for bench in benchmarks]


def _normalize(payload: Any) -> Any:
    """Round-trip a payload through JSON so float/int representations
    compare equal between locally computed and wire-decoded dicts."""
    return json.loads(json.dumps(payload, sort_keys=True))


async def _seed(client: ServiceClient, jobs: List[SweepJob],
                workers: Optional[int], report: LoadReport,
                deadline: float) -> Tuple[str, Dict[str, dict]]:
    """Submit the matrix once; returns (record id, key -> payload)."""
    record = await client.submit(jobs, workers=workers, tag="loadgen-seed")
    final = await client.wait(record["id"], deadline=deadline)
    if final["state"] != protocol.DONE:
        raise ServiceError(f"seed sweep ended {final['state']}: "
                           f"{final.get('error', '')}")
    report.seed_failures = len(final.get("failures", []))
    for failure in final.get("failures", []):
        report.errors.append(f"seed failure: {failure}")
    by_key: Dict[str, dict] = {}
    for key, payload in zip(final["keys"], final["results"]):
        if payload is not None:
            by_key[key] = payload
    return record["id"], by_key


async def run_loadgen(host: str = protocol.DEFAULT_HOST,
                      port: int = protocol.DEFAULT_PORT,
                      requests: int = 1000,
                      concurrency: int = 64,
                      configs: Sequence[str] = ("w16", "tc", "pf-2x8w",
                                                "pr-2x8w"),
                      benchmarks: Sequence[str] = ("gzip", "mcf"),
                      length: int = 4000,
                      sampling: Optional[Tuple[int, int, int]] = None,
                      seed: int = 0,
                      workers: Optional[int] = None,
                      verify: bool = True,
                      cache_dir: Optional[str] = None,
                      seed_deadline: float = 900.0) -> LoadReport:
    """Hammer a live server with *requests* concurrent requests.

    See the module docstring for the request mix and the acceptance
    properties the returned :class:`LoadReport` asserts.
    """
    report = LoadReport()
    client = ServiceClient(host=host, port=port)
    await client.health()

    jobs = build_jobs(configs, benchmarks, length, sampling)
    record_id, expected = await _seed(client, jobs, workers, report,
                                      seed_deadline)
    keys = [job.cache_key() for job in jobs]
    # Only seeded-successful keys participate in the hit mix (a seed
    # failure is already reported; its key would legitimately 404).
    hit_keys = [key for key in keys if key in expected] or keys

    rng = random.Random(seed)
    kinds = [kind for kind, weight in MIX for _ in range(weight)]
    plan = [rng.choice(kinds) for _ in range(requests)]
    semaphore = asyncio.Semaphore(max(1, concurrency))

    async def one(index: int, kind: str) -> None:
        op_rng = random.Random(f"{seed}-{index}")
        async with semaphore:
            start = time.perf_counter()
            try:
                if kind == "result_hit":
                    key = op_rng.choice(hit_keys)
                    result = await client.result_for_key(key)
                    if result is None:
                        # The server must never forget a seeded result.
                        report.unexpected_status += 1
                        report.errors.append(
                            f"[{index}] seeded key {key[:12]}… missing")
                    elif key in expected and (_normalize(
                            {"benchmark": result.benchmark,
                             "config_name": result.config_name,
                             "cycles": result.cycles,
                             "committed": result.committed,
                             "counters": dict(result.counters)})
                          != _normalize(expected[key])):
                        report.mismatches += 1
                        report.errors.append(
                            f"[{index}] hit payload drifted for "
                            f"{key[:12]}…")
                elif kind == "result_miss":
                    fake = hashlib.sha256(
                        f"loadgen-miss-{seed}-{index}".encode()).hexdigest()
                    result = await client.result_for_key(fake)
                    if result is not None:
                        report.unexpected_status += 1
                        report.errors.append(
                            f"[{index}] phantom result for a miss key")
                elif kind == "status":
                    await client.status(record_id)
                elif kind == "submit_dup":
                    subset = op_rng.sample(jobs,
                                           op_rng.randint(1, len(jobs)))
                    accepted = await client.submit(subset,
                                                   tag=f"loadgen-{index}")
                    await client.wait(accepted["id"], deadline=300.0)
                elif kind == "events":
                    async for _ in client.events(record_id):
                        pass
                elif kind == "metrics":
                    last = -1
                    async for snap in client.metrics(record_id):
                        seq = snap.get("seq", 0)
                        if seq <= last:
                            report.unexpected_status += 1
                            report.errors.append(
                                f"[{index}] metrics seq not increasing")
                            break
                        last = seq
                elif kind == "stats":
                    await client.stats()
            except ServiceError as exc:
                if exc.status is not None and exc.status >= 500:
                    report.server_errors += 1
                elif exc.status is not None:
                    report.unexpected_status += 1
                else:
                    report.transport_errors += 1
                report.errors.append(f"[{index}] {kind}: {exc}")
            finally:
                report.latencies.append(time.perf_counter() - start)
                report.requests += 1
                report.by_kind[kind] = report.by_kind.get(kind, 0) + 1

    wall_start = time.perf_counter()
    await asyncio.gather(*(one(index, kind)
                           for index, kind in enumerate(plan)))
    report.wall_seconds = time.perf_counter() - wall_start

    if verify:
        _verify_serial(jobs, keys, expected, report)

    if cache_dir is not None:
        cache = ResultCache(directory=cache_dir)
        report.cache_bytes = cache.total_bytes()
        report.cache_budget = cache.budget
    return report


def _verify_serial(jobs: List[SweepJob], keys: List[str],
                   expected: Dict[str, dict], report: LoadReport) -> None:
    """Re-run the matrix serially in-process; compare bit-for-bit.

    Runs with the cache disabled (a fresh execution, not a read-back)
    and with any inherited fault plan cleared, so this is the ground
    truth the served payloads must match exactly.
    """
    from repro.experiments.runner import _result_to_payload

    ambient = os.environ.pop(faults.FAULTS_ENV, None)
    try:
        local = run_sweep(jobs, workers=1,
                          cache=ResultCache(enabled=False))
    finally:
        if ambient is not None:
            os.environ[faults.FAULTS_ENV] = ambient
    for job, key in zip(jobs, keys):
        served = expected.get(key)
        result = local.results.get(job)
        if served is None or result is None:
            report.mismatches += 1
            report.errors.append(f"verify: missing side for "
                                 f"{job.describe()}")
            continue
        if _normalize(_result_to_payload(result)) != _normalize(served):
            report.mismatches += 1
            report.errors.append(
                f"verify: served result diverges from serial run for "
                f"{job.describe()}")
        else:
            report.verified_jobs += 1
