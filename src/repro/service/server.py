"""The asyncio HTTP job server over the sweep engine.

:class:`SweepService` is a long-running, single-process server that
turns the one-shot sweep runner into a shared service: clients submit
sweeps (or single runs) as jobs, poll or stream their status, and fetch
results — which are served straight from an in-process memo layered
over the on-disk :class:`~repro.experiments.runner.ResultCache`, so the
read-heavy path never blocks on the event loop or touches a simulator.

Architecture:

* the **event loop** owns all bookkeeping (job records, the result
  memo) and serves every request; it never simulates;
* **execution** is delegated to a small :class:`ThreadPoolExecutor`
  (``max_active`` concurrent sweeps); each sweep thread drives the
  existing :func:`~repro.experiments.runner.run_sweep`, which fans jobs
  out over its own ``multiprocessing`` pool — so the simulator's
  per-job timeouts, retries, crash recovery and fault injection all
  apply unchanged;
* sweep threads report progress back to the loop exclusively through
  ``call_soon_threadsafe``, and every collector they share is a
  :class:`~repro.stats.ThreadSafeStatsCollector`.

The HTTP layer is a deliberately small stdlib implementation
(one request per connection, JSON bodies, NDJSON streaming for the
events endpoint) — no third-party dependency, no framework.

Endpoints::

    GET  /healthz               liveness + protocol version
    GET  /stats                 service/sweep/cache counters
    POST /jobs                  submit {"jobs": [...], options} -> 202
    GET  /jobs                  list submission summaries
    GET  /jobs/<id>             status snapshot; ?wait=S long-polls,
                                ?results=1 embeds results when done
    GET  /jobs/<id>/events      NDJSON stream of progress events
    GET  /jobs/<id>/metrics     NDJSON stream of telemetry snapshots
    GET  /results/<cache-key>   one result straight from memo/disk cache
    POST /shutdown              graceful stop (repro serve honours it)

Durability: every submission lifecycle event is appended to a journal
(``<cache dir>/service/journal.ndjson``, one flushed JSON line per
event).  A restarted — or ``kill -9``'d and restarted — server replays
the journal on :meth:`SweepService.start`: finished submissions keep
answering ``GET /jobs/<id>`` (their results re-hydrate from the disk
cache by key), and submissions that were queued, running, or marked
``interrupted`` by a graceful shutdown are re-queued under their
original ids — completed jobs come back from the cache and in-flight
simulations restart from their latest durable checkpoint when the jobs
carry one (see :mod:`repro.checkpoint`).  Result payloads are never
journaled; the content-addressed :class:`ResultCache` already persists
them, so the journal stays small and is compacted on every recovery.
"""

from __future__ import annotations

import asyncio
import functools
import json
import os
import tempfile
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.experiments.runner import (
    ResultCache,
    SweepJob,
    _result_to_payload,
    run_sweep,
)
from repro.service import protocol
from repro.service.protocol import ProtocolError
from repro.stats import ThreadSafeStatsCollector

#: Submissions larger than this are rejected with a 400 — one request
#: should not be able to queue unbounded work.
MAX_JOBS_PER_SUBMIT = 4096

#: Cap on retained finished submissions; the oldest are forgotten first
#: (their results stay fetchable by cache key).
MAX_RECORDS = 1024

#: Result payloads memoized by cache key for the hot read path.
RESULT_MEMO_CAP = 8192

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 500: "Internal Server Error",
}

_HEX = frozenset("0123456789abcdef")


@dataclass(frozen=True)
class ServiceConfig:
    """Static configuration for one :class:`SweepService`."""

    host: str = protocol.DEFAULT_HOST
    port: int = protocol.DEFAULT_PORT
    #: Worker processes per sweep (None = runner default).
    sweep_workers: Optional[int] = None
    #: Concurrent sweeps in flight (executor threads).
    max_active: int = 2
    #: Result-cache directory (None = runner default / env).
    cache_dir: Optional[str] = None
    #: Cache size budget in bytes (None = ``REPRO_CACHE_BUDGET``).
    cache_budget: Optional[int] = None
    #: Persist the job registry as an append-only journal and recover
    #: it on start (False = the pre-durability in-memory behaviour).
    journal: bool = True
    #: Journal file override (None = ``<cache dir>/service/journal.ndjson``).
    journal_path: Optional[str] = None


class _Journal:
    """Append-only NDJSON journal of submission lifecycle events.

    One flushed line per event, so a crash loses at most the event being
    written; replay tolerates a torn tail (and any unparseable line) by
    skipping it.  :meth:`rewrite` compacts the file atomically — used on
    recovery so the journal never grows across restarts.
    """

    def __init__(self, path: Path) -> None:
        self.path = path
        self._handle = None

    def open(self) -> None:
        """Open (creating parents) for appending."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")

    def append(self, event: dict) -> None:
        """Durably append one event (no-op before :meth:`open`)."""
        if self._handle is None:
            return
        self._handle.write(json.dumps(event, sort_keys=True) + "\n")
        self._handle.flush()

    def replay(self) -> List[dict]:
        """Every parseable event, in append order."""
        if not self.path.is_file():
            return []
        events = []
        with open(self.path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    events.append(json.loads(line))
                except ValueError:
                    continue  # torn tail / corruption: skip, keep rest
        return events

    def rewrite(self, events: List[dict]) -> None:
        """Atomically replace the journal's contents with *events*."""
        was_open = self._handle is not None
        self.close()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(self.path.parent),
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                for event in events:
                    handle.write(json.dumps(event, sort_keys=True) + "\n")
        except BaseException:
            os.unlink(tmp)
            raise
        os.replace(tmp, self.path)
        if was_open:
            self.open()

    def close(self) -> None:
        """Flush and release the append handle."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class JobRecord:
    """Mutable bookkeeping for one submission (loop-confined)."""

    __slots__ = ("id", "jobs", "workers", "retries", "timeout", "tag",
                 "state", "submitted", "started", "finished", "completed",
                 "cached", "keys", "payloads", "failures", "error",
                 "events", "stats", "metrics", "committed_insts",
                 "simulated_cycles")

    def __init__(self, record_id: str, jobs: List[SweepJob],
                 workers: Optional[int], retries: Optional[int],
                 timeout: Optional[float], tag: Optional[str]) -> None:
        self.id = record_id
        self.jobs = jobs
        self.workers = workers
        self.retries = retries
        self.timeout = timeout
        self.tag = tag
        self.state = protocol.QUEUED
        self.submitted = time.time()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self.completed = 0          # jobs actually executed so far
        self.cached: Optional[int] = None   # jobs served from cache
        self.keys: Optional[List[str]] = None
        self.payloads: Optional[List[Optional[dict]]] = None
        self.failures: List[dict] = []
        self.error: Optional[str] = None
        self.events: List[dict] = []
        self.stats: Dict[str, float] = {}
        #: Telemetry snapshots for GET /jobs/<id>/metrics, one per
        #: lifecycle/progress event (bounded by the per-submit job cap).
        self.metrics: List[dict] = []
        #: Cumulative simulated work across executed jobs — gives the
        #: metrics stream its monotonically increasing commit index.
        self.committed_insts = 0
        self.simulated_cycles = 0

    def snapshot(self, include_results: bool = False) -> dict:
        """JSON-ready status view of this submission."""
        view: Dict[str, Any] = {
            "id": self.id,
            "state": self.state,
            "total": len(self.jobs),
            "completed": self.completed,
            "cached": self.cached,
            "submitted": self.submitted,
            "started": self.started,
            "finished": self.finished,
            "failures": self.failures,
            "tag": self.tag,
        }
        if self.error is not None:
            view["error"] = self.error
        if self.keys is not None:
            view["keys"] = self.keys
        if include_results and self.payloads is not None:
            view["results"] = self.payloads
            view["stats"] = self.stats
        return view

    def metrics_snapshot(self) -> dict:
        """One telemetry line for the ``/jobs/<id>/metrics`` stream.

        Fleet-shaped (``jobs_done`` et al.) rather than pipeline-shaped:
        ``repro attach`` keys its renderer off that difference.  The
        ``committed`` index is the running total of instructions the
        submission's executed jobs have simulated, so it increases
        monotonically across the stream just like a single run's.
        """
        now = time.time()
        started = self.started or self.submitted
        end = self.finished if self.finished is not None else now
        return {
            "seq": len(self.metrics),
            "id": self.id,
            "state": self.state,
            "committed": self.committed_insts,
            "ipc": round(self.committed_insts / self.simulated_cycles, 6)
                   if self.simulated_cycles else 0.0,
            "jobs_done": self.completed,
            "jobs_total": len(self.jobs),
            "jobs_failed": len(self.failures),
            "cache_hits": self.cached or 0,
            "retries": int(self.stats.get("sweep.retries", 0)),
            "wall": round(max(0.0, end - started), 3),
        }


class SweepService:
    """The job server.  See the module docstring for the architecture."""

    def __init__(self, config: ServiceConfig = ServiceConfig()) -> None:
        self.config = config
        self.stats = ThreadSafeStatsCollector()
        self._cache = ResultCache(directory=config.cache_dir,
                                  budget=config.cache_budget)
        #: In-process L1 over the disk cache, shared across sweeps
        #: (plain dict: single-item ops are GIL-atomic).
        self._memo: Dict[SweepJob, Any] = {}
        #: Cache key -> result payload for the GET /results hot path.
        self._result_payloads: "OrderedDict[str, dict]" = OrderedDict()
        self._records: "OrderedDict[str, JobRecord]" = OrderedDict()
        self._seq = 0
        #: Wall time of the last successful journal append (gauges the
        #: journal's write lag on /stats; None until the first append).
        self._journal_written: Optional[float] = None
        self._journal: Optional[_Journal] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._changed: Optional[asyncio.Condition] = None
        self._stopping: Optional[asyncio.Event] = None
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, config.max_active),
            thread_name_prefix="repro-sweep")

    # ------------------------------------------------------------------
    # Lifecycle

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            return self.config.port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind and start accepting connections (non-blocking).

        When journaling is enabled this first replays the journal —
        recovering finished submissions and re-queueing interrupted
        ones — *before* the listener binds, so no request ever observes
        a half-recovered registry.
        """
        self._loop = asyncio.get_running_loop()
        self._changed = asyncio.Condition()
        self._stopping = asyncio.Event()
        if self.config.journal:
            path = (Path(self.config.journal_path)
                    if self.config.journal_path is not None
                    else Path(self._cache.directory)
                    / "service" / "journal.ndjson")
            self._journal = _Journal(path)
            self._recover()
            self._journal.open()
        self._server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port,
            limit=1 << 20)

    async def serve_forever(self) -> None:
        """Serve until :meth:`request_shutdown` (or POST /shutdown)."""
        assert self._stopping is not None
        await self._stopping.wait()
        await self.close()

    def request_shutdown(self) -> None:
        """Ask the serve loop to stop (thread/signal-handler safe)."""
        if self._loop is not None and self._stopping is not None:
            self._loop.call_soon_threadsafe(self._stopping.set)

    async def close(self) -> None:
        """Stop accepting, flush durable state, release the pool.

        Live submissions are journaled as ``interrupted`` *before* the
        executor drains, so a SIGTERM that outruns a long sweep still
        leaves a durable record the next server re-queues.  A sweep
        that does finish during the drain supersedes its interruption
        with a ``done`` event (journal replay keeps the last word).
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for record in self._records.values():
            if record.state not in protocol.TERMINAL_STATES:
                record.state = protocol.INTERRUPTED
                record.events.append({"type": "state", "state": record.state})
                self._journal_append({"event": "interrupted",
                                      "id": record.id, "t": time.time()})
                self.stats.add("service.interrupted")
        # Let running sweeps finish (they hold mp pools) but drop any
        # still-queued submissions; nothing new can be submitted once
        # the listener is down.
        await asyncio.get_running_loop().run_in_executor(
            None, functools.partial(self._executor.shutdown, wait=True,
                                    cancel_futures=True))
        await asyncio.sleep(0)  # drain completion callbacks just posted
        if self._journal is not None:
            self._journal.close()

    # ------------------------------------------------------------------
    # Journal + recovery

    def _journal_append(self, event: dict) -> None:
        """Best-effort durable append (a full disk must not kill jobs)."""
        if self._journal is None:
            return
        try:
            self._journal.append(event)
            self._journal_written = time.time()
            self.stats.add("service.journal_appends")
        except OSError:
            self.stats.add("service.journal_errors")

    def _submit_event(self, record: JobRecord) -> dict:
        return {
            "event": "submit",
            "id": record.id,
            "t": record.submitted,
            "jobs": protocol.jobs_to_wire(record.jobs),
            "workers": record.workers,
            "retries": record.retries,
            "timeout": record.timeout,
            "tag": record.tag,
        }

    def _done_event(self, record: JobRecord) -> dict:
        return {
            "event": "done",
            "id": record.id,
            "t": record.finished,
            "executed": record.completed,
            "cached": record.cached,
            "failures": record.failures,
            "stats": record.stats,
        }

    def _recover(self) -> None:
        """Rebuild the registry from the journal, then re-queue live work.

        Runs before the listener binds.  Terminal submissions come back
        answering ``GET /jobs/<id>`` (payloads re-hydrate lazily from
        the disk cache by key — the journal never stores results);
        queued/running/interrupted ones are re-submitted to the
        executor under their original ids, where completed jobs return
        from the result cache and in-flight simulations resume from
        their latest durable checkpoint.  The journal is compacted to
        one summary per retained record so it never grows across
        restarts.
        """
        assert self._journal is not None
        for event in self._journal.replay():
            kind = event.get("event")
            record_id = event.get("id")
            if not isinstance(record_id, str):
                continue
            if kind == "submit":
                try:
                    jobs = protocol.jobs_from_wire(event.get("jobs"))
                except ProtocolError:
                    continue  # unreadable job list: drop the record
                record = JobRecord(
                    record_id, jobs,
                    event.get("workers"), event.get("retries"),
                    event.get("timeout"), event.get("tag"))
                record.submitted = float(event.get("t") or record.submitted)
                self._records[record_id] = record
                self._records.move_to_end(record_id)
                continue
            record = self._records.get(record_id)
            if record is None:
                continue
            if kind == "running":
                record.state = protocol.RUNNING
                record.started = float(event.get("t") or 0) or None
            elif kind == "done":
                record.state = protocol.DONE
                record.finished = float(event.get("t") or 0) or None
                record.completed = int(event.get("executed") or 0)
                record.cached = event.get("cached")
                record.failures = list(event.get("failures") or [])
                record.stats = dict(event.get("stats") or {})
                record.keys = [job.cache_key() for job in record.jobs]
                record.events.append({
                    "type": "done",
                    "total": len(record.jobs),
                    "executed": record.completed,
                    "cached": record.cached,
                    "failures": len(record.failures),
                })
            elif kind == "error":
                record.state = protocol.ERROR
                record.finished = float(event.get("t") or 0) or None
                record.error = str(event.get("message") or "sweep failed")
                record.events.append({"type": "error",
                                      "error": record.error})
            elif kind == "interrupted":
                record.state = protocol.INTERRUPTED
        if not self._records:
            return
        if len(self._records) > MAX_RECORDS:
            for stale_id in [rid for rid, rec in self._records.items()
                             if rec.state in protocol.TERMINAL_STATES]:
                if len(self._records) <= MAX_RECORDS:
                    break
                del self._records[stale_id]
        for record_id in self._records:
            prefix = record_id.split("-", 1)[0]
            if prefix.isdigit():
                self._seq = max(self._seq, int(prefix))
        compacted = []
        requeue = []
        for record in self._records.values():
            compacted.append(self._submit_event(record))
            if record.state == protocol.DONE:
                compacted.append(self._done_event(record))
            elif record.state == protocol.ERROR:
                compacted.append({"event": "error", "id": record.id,
                                  "t": record.finished,
                                  "message": record.error})
            else:
                record.state = protocol.QUEUED
                record.started = None
                record.finished = None
                record.completed = 0
                record.keys = None
                record.events = [{"type": "state", "state": "requeued"}]
                requeue.append(record)
        try:
            self._journal.rewrite(compacted)
        except OSError:
            self.stats.add("service.journal_errors")
        self.stats.add("service.recovered_records", len(self._records))
        assert self._loop is not None
        for record in requeue:
            self.stats.add("service.requeued")
            self._loop.run_in_executor(self._executor,
                                       self._run_record, record)

    # ------------------------------------------------------------------
    # HTTP plumbing

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        self.stats.add("service.connections")
        try:
            request = await self._read_request(reader)
            if request is not None:
                method, path, query, body = request
                await self._dispatch(method, path, query, body, writer)
        except (ConnectionError, asyncio.TimeoutError):
            self.stats.add("service.dropped_connections")
        except Exception as exc:  # defensive: a handler bug is a 500
            self.stats.add("service.http_5xx")
            try:
                await self._respond(writer, 500, {
                    "error": f"{type(exc).__name__}: {exc}"})
            except Exception:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader
                            ) -> Optional[Tuple[str, str, dict, bytes]]:
        """Parse one HTTP/1.1 request; None on empty/garbled input."""
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=30.0)
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            return None
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3:
            return None
        method, target = parts[0].upper(), parts[1]
        headers = {}
        for line in lines[1:]:
            if ":" in line:
                name, value = line.split(":", 1)
                headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            return None
        body = b""
        if length > 0:
            body = await asyncio.wait_for(
                reader.readexactly(min(length, 1 << 24)), timeout=60.0)
        split = urlsplit(target)
        query = {name: values[-1]
                 for name, values in parse_qs(split.query).items()}
        return method, split.path, query, body

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: Any) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        head = (f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n")
        writer.write(head.encode("ascii") + body)
        await writer.drain()
        self.stats.add(f"service.http_{status // 100}xx")

    # ------------------------------------------------------------------
    # Routing

    async def _dispatch(self, method: str, path: str, query: dict,
                        body: bytes, writer: asyncio.StreamWriter) -> None:
        self.stats.add("service.requests")
        segments = [s for s in path.split("/") if s]
        try:
            if path == "/healthz" and method == "GET":
                await self._respond(writer, 200, {
                    "ok": True,
                    "protocol": protocol.PROTOCOL_VERSION,
                    "pid": os.getpid(),
                    "active": self._active_count(),
                })
            elif path == "/stats" and method == "GET":
                await self._handle_stats(writer)
            elif path == "/jobs" and method == "POST":
                await self._handle_submit(body, writer)
            elif path == "/jobs" and method == "GET":
                await self._respond(writer, 200, {
                    "jobs": [record.snapshot()
                             for record in self._records.values()]})
            elif (len(segments) == 2 and segments[0] == "jobs"
                    and method == "GET"):
                await self._handle_status(segments[1], query, writer)
            elif (len(segments) == 3 and segments[0] == "jobs"
                    and segments[2] == "events" and method == "GET"):
                await self._handle_events(segments[1], writer)
            elif (len(segments) == 3 and segments[0] == "jobs"
                    and segments[2] == "metrics" and method == "GET"):
                await self._handle_metrics(segments[1], writer)
            elif (len(segments) == 2 and segments[0] == "results"
                    and method == "GET"):
                await self._handle_result(segments[1], writer)
            elif path == "/shutdown" and method == "POST":
                await self._respond(writer, 200, {"stopping": True})
                assert self._stopping is not None
                self._stopping.set()
            elif path in ("/healthz", "/stats", "/jobs", "/shutdown"):
                await self._respond(writer, 405, {
                    "error": f"method {method} not allowed on {path}"})
            else:
                await self._respond(writer, 404, {
                    "error": f"unknown endpoint {method} {path}"})
        except ProtocolError as exc:
            self.stats.add("service.bad_requests")
            await self._respond(writer, 400, {"error": str(exc)})

    # ------------------------------------------------------------------
    # Submission + execution

    def _active_count(self) -> int:
        return sum(1 for record in self._records.values()
                   if record.state in (protocol.QUEUED, protocol.RUNNING))

    async def _handle_submit(self, body: bytes,
                             writer: asyncio.StreamWriter) -> None:
        try:
            payload = json.loads(body.decode() or "{}")
        except (ValueError, UnicodeDecodeError):
            raise ProtocolError("request body is not valid JSON")
        if not isinstance(payload, dict):
            raise ProtocolError("request body must be a JSON object")
        jobs = protocol.jobs_from_wire(payload.get("jobs"))
        if len(jobs) > MAX_JOBS_PER_SUBMIT:
            raise ProtocolError(
                f"submission of {len(jobs)} jobs exceeds the per-request "
                f"cap of {MAX_JOBS_PER_SUBMIT}")
        workers = payload.get("workers", self.config.sweep_workers)
        retries = payload.get("retries")
        timeout = payload.get("timeout")
        tag = payload.get("tag")
        for name, value, kinds in (("workers", workers, int),
                                   ("retries", retries, int),
                                   ("timeout", timeout, (int, float)),
                                   ("tag", tag, str)):
            if value is not None and (not isinstance(value, kinds)
                                      or isinstance(value, bool)):
                raise ProtocolError(f"option {name!r} mistyped: {value!r}")

        self._seq += 1
        record_id = f"{self._seq:06d}-{os.urandom(3).hex()}"
        record = JobRecord(record_id, jobs, workers, retries,
                           None if timeout is None else float(timeout), tag)
        self._records[record_id] = record
        while len(self._records) > MAX_RECORDS:
            stale_id, stale = next(iter(self._records.items()))
            if stale.state not in protocol.TERMINAL_STATES:
                break  # never forget live work
            del self._records[stale_id]
        self.stats.add("service.submissions")
        self.stats.add("service.jobs_submitted", len(jobs))
        self._journal_append(self._submit_event(record))
        assert self._loop is not None
        self._loop.run_in_executor(self._executor, self._run_record, record)
        await self._respond(writer, 202, {
            "id": record_id, "state": record.state, "total": len(jobs),
            "url": f"/jobs/{record_id}"})

    def _run_record(self, record: JobRecord) -> None:
        """Execute one submission (runs in an executor thread)."""
        try:
            keys = [job.cache_key() for job in record.jobs]
            self._post(self._mark_running, record, keys)
            progress = functools.partial(self._progress_from_thread, record)
            report = run_sweep(record.jobs, workers=record.workers,
                               cache=self._cache, memo=self._memo,
                               progress=progress, retries=record.retries,
                               timeout=record.timeout)
            payloads: List[Optional[dict]] = []
            for job in record.jobs:
                result = report.results.get(job)
                payloads.append(None if result is None
                                else _result_to_payload(result))
            failures = [{
                "job": failure.job.describe(),
                "error_type": failure.error_type,
                "message": failure.message,
                "attempts": failure.attempts,
            } for failure in report.failures.values()]
            self._post(self._mark_done, record, payloads,
                       failures, report.stats.as_dict())
        except Exception as exc:  # pragma: no cover - run_sweep is total
            self._post(self._mark_error, record,
                       f"{type(exc).__name__}: {exc}")

    def _post(self, fn, *args) -> None:
        """Hand a state mutation to the event loop (thread-safe)."""
        assert self._loop is not None
        try:
            self._loop.call_soon_threadsafe(fn, *args)
        except RuntimeError:  # loop closed mid-shutdown: state is moot
            pass

    def _progress_from_thread(self, record: JobRecord, job, result,
                              seconds: float) -> None:
        event = {
            "type": "progress",
            "job": job.describe(),
            "key": None,  # filled on the loop side from record.keys
            "ipc": round(result.ipc, 6),
            "committed": result.committed,
            "cycles": result.cycles,
            "seconds": round(seconds, 3),
        }
        self._post(self._note_progress, record, event)

    # -- loop-side mutations (all run on the event loop thread) --------

    def _mark_running(self, record: JobRecord, keys: List[str]) -> None:
        record.state = protocol.RUNNING
        record.started = time.time()
        record.keys = keys
        record.events.append({"type": "state", "state": record.state})
        record.metrics.append(record.metrics_snapshot())
        self._journal_append({"event": "running", "id": record.id,
                              "t": record.started})
        self._broadcast()

    def _note_progress(self, record: JobRecord, event: dict) -> None:
        record.completed += 1
        record.committed_insts += int(event.get("committed") or 0)
        record.simulated_cycles += int(event.get("cycles") or 0)
        event["done"] = record.completed
        event["total"] = len(record.jobs)
        if record.keys is not None:
            # Map the described job back to its key (descriptions can
            # repeat across duplicate jobs; first match is correct
            # because duplicates share one key).
            for job, key in zip(record.jobs, record.keys):
                if job.describe() == event["job"]:
                    event["key"] = key
                    break
        record.events.append(event)
        record.metrics.append(record.metrics_snapshot())
        self.stats.add("service.jobs_executed")
        self._broadcast()

    def _mark_done(self, record: JobRecord,
                   payloads: List[Optional[dict]], failures: List[dict],
                   stats: Dict[str, float]) -> None:
        record.state = protocol.DONE
        record.finished = time.time()
        record.payloads = payloads
        record.failures = failures
        record.stats = stats
        executed = int(stats.get("sweep.executed", 0))
        record.cached = len(record.jobs) - executed - len(failures)
        if record.keys is not None:
            for key, payload in zip(record.keys, payloads):
                if payload is not None:
                    self._memoize_result(key, payload)
        record.events.append({
            "type": "done",
            "total": len(record.jobs),
            "executed": executed,
            "cached": record.cached,
            "failures": len(failures),
        })
        record.metrics.append(record.metrics_snapshot())
        self.stats.add("service.jobs_completed", len(record.jobs))
        if failures:
            self.stats.add("service.job_failures", len(failures))
        self._journal_append(self._done_event(record))
        self._broadcast()

    def _mark_error(self, record: JobRecord, message: str) -> None:
        record.state = protocol.ERROR
        record.finished = time.time()
        record.error = message
        record.events.append({"type": "error", "error": message})
        record.metrics.append(record.metrics_snapshot())
        self.stats.add("service.sweep_errors")
        self._journal_append({"event": "error", "id": record.id,
                              "t": record.finished, "message": message})
        self._broadcast()

    def _broadcast(self) -> None:
        assert self._loop is not None and self._changed is not None
        self._loop.create_task(self._notify_waiters())

    async def _notify_waiters(self) -> None:
        assert self._changed is not None
        async with self._changed:
            self._changed.notify_all()

    def _memoize_result(self, key: str, payload: dict) -> None:
        self._result_payloads[key] = payload
        self._result_payloads.move_to_end(key)
        while len(self._result_payloads) > RESULT_MEMO_CAP:
            self._result_payloads.popitem(last=False)

    # ------------------------------------------------------------------
    # Read paths

    def _record_or_404(self, record_id: str) -> Optional[JobRecord]:
        return self._records.get(record_id)

    async def _ensure_payloads(self, record: JobRecord) -> None:
        """Re-hydrate a finished submission's results from the cache.

        A journal-recovered record knows its cache keys but not its
        payloads (results are never journaled); load them memo-first,
        disk-second.  Jobs whose cached result was evicted stay None.
        """
        if (record.state != protocol.DONE or record.payloads is not None
                or record.keys is None):
            return
        assert self._loop is not None
        payloads: List[Optional[dict]] = []
        for key in record.keys:
            payload = self._result_payloads.get(key)
            if payload is None:
                result = await self._loop.run_in_executor(
                    None, functools.partial(self._cache.load, key))
                if result is not None:
                    payload = _result_to_payload(result)
                    self._memoize_result(key, payload)
            payloads.append(payload)
        record.payloads = payloads
        self.stats.add("service.results_recovered",
                       sum(1 for p in payloads if p is not None))

    async def _handle_status(self, record_id: str, query: dict,
                             writer: asyncio.StreamWriter) -> None:
        record = self._record_or_404(record_id)
        if record is None:
            # Unknown id (forgotten record, pre-journal restart) but a
            # well-formed cache key: fall back to the disk cache so a
            # client holding a job key is never stranded by a restart.
            if len(record_id) == 64 and set(record_id) <= _HEX:
                payload = self._result_payloads.get(record_id)
                if payload is None:
                    assert self._loop is not None
                    result = await self._loop.run_in_executor(
                        None, functools.partial(self._cache.load,
                                                record_id))
                    if result is not None:
                        payload = _result_to_payload(result)
                        self._memoize_result(record_id, payload)
                if payload is not None:
                    self.stats.add("service.status_cache_fallbacks")
                    await self._respond(writer, 200, {
                        "id": record_id,
                        "state": protocol.DONE,
                        "source": "cache",
                        "keys": [record_id],
                        "results": [payload],
                    })
                    return
            await self._respond(writer, 404, {
                "error": f"unknown job id {record_id!r}"})
            return
        wait = 0.0
        if "wait" in query:
            try:
                wait = min(60.0, max(0.0, float(query["wait"])))
            except ValueError:
                raise ProtocolError(f"bad wait value {query['wait']!r}")
        deadline = time.monotonic() + wait
        while (record.state not in protocol.TERMINAL_STATES
               and time.monotonic() < deadline):
            assert self._changed is not None
            async with self._changed:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    await asyncio.wait_for(self._changed.wait(),
                                           timeout=remaining)
                except asyncio.TimeoutError:
                    break
        include_results = query.get("results") in ("1", "true", "yes")
        if include_results:
            await self._ensure_payloads(record)
        await self._respond(writer, 200,
                            record.snapshot(include_results))

    async def _handle_events(self, record_id: str,
                             writer: asyncio.StreamWriter) -> None:
        """Stream a submission's progress as newline-delimited JSON.

        The stream replays events already recorded, then follows live
        ones, and ends (connection close) once the submission reaches a
        terminal state.
        """
        record = self._record_or_404(record_id)
        if record is None:
            await self._respond(writer, 404, {
                "error": f"unknown job id {record_id!r}"})
            return
        await self._stream_lines(record, writer, lambda rec: rec.events)

    async def _handle_metrics(self, record_id: str,
                              writer: asyncio.StreamWriter) -> None:
        """Stream a submission's telemetry snapshots as NDJSON.

        Same transport as ``/events`` but each line is a cumulative
        :meth:`JobRecord.metrics_snapshot` — fleet progress plus a
        monotonically increasing ``committed`` index — which is what
        ``repro attach <job-id> --server ...`` renders.
        """
        record = self._record_or_404(record_id)
        if record is None:
            await self._respond(writer, 404, {
                "error": f"unknown job id {record_id!r}"})
            return
        if not record.metrics and record.state in protocol.TERMINAL_STATES:
            # Journal-recovered submissions predate their metrics ring;
            # synthesize the terminal snapshot so attach always sees one.
            record.metrics.append(record.metrics_snapshot())
        await self._stream_lines(record, writer, lambda rec: rec.metrics)

    async def _stream_lines(self, record: JobRecord,
                            writer: asyncio.StreamWriter,
                            lines_of) -> None:
        """Replay-then-follow one of *record*'s line lists as NDJSON."""
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Connection: close\r\n\r\n")
        self.stats.add("service.streams")
        self.stats.add("service.http_2xx")
        cursor = 0
        while True:
            lines = lines_of(record)
            while cursor < len(lines):
                line = json.dumps(lines[cursor], sort_keys=True) + "\n"
                writer.write(line.encode())
                cursor += 1
            await writer.drain()
            if record.state in protocol.TERMINAL_STATES:
                return
            assert self._changed is not None
            async with self._changed:
                if (cursor >= len(lines_of(record))
                        and record.state not in protocol.TERMINAL_STATES):
                    try:
                        await asyncio.wait_for(self._changed.wait(),
                                               timeout=15.0)
                    except asyncio.TimeoutError:
                        pass  # heartbeat loop; re-check state

    async def _handle_result(self, key: str,
                             writer: asyncio.StreamWriter) -> None:
        """Serve one result by cache key: memo first, then disk."""
        if len(key) != 64 or not set(key) <= _HEX:
            raise ProtocolError(
                "result keys are 64-char lowercase hex digests")
        payload = self._result_payloads.get(key)
        if payload is not None:
            self._result_payloads.move_to_end(key)
            self.stats.add("service.results_memo_hits")
            await self._respond(writer, 200, {"key": key,
                                              "result": payload})
            return
        assert self._loop is not None
        result = await self._loop.run_in_executor(
            None, functools.partial(self._cache.load, key))
        if result is None:
            self.stats.add("service.results_misses")
            await self._respond(writer, 404, {
                "error": f"no cached result for key {key}"})
            return
        payload = _result_to_payload(result)
        self._memoize_result(key, payload)
        self.stats.add("service.results_disk_hits")
        await self._respond(writer, 200, {"key": key, "result": payload})

    def _gauges(self, sweep_stats: Dict[str, float]) -> Dict[str, Any]:
        """Point-in-time operational gauges for ``/stats``.

        Unlike the monotonic counters, these describe the server *now*:
        queued work, executor saturation, how well the result cache is
        absorbing jobs, and how recently the journal was written.
        """
        queued = sum(1 for record in self._records.values()
                     if record.state == protocol.QUEUED)
        running = sum(1 for record in self._records.values()
                      if record.state == protocol.RUNNING)
        slots = max(1, self.config.max_active)
        jobs = sweep_stats.get("sweep.jobs", 0.0)
        hits = (sweep_stats.get("sweep.memo_hits", 0.0)
                + sweep_stats.get("sweep.disk_hits", 0.0))
        return {
            "queue_depth": queued,
            "executor": {
                "active": running,
                "max": slots,
                "utilization": round(running / slots, 4),
            },
            "cache_hit_rate": round(hits / jobs, 4) if jobs else 0.0,
            "journal": {
                "appends": int(self.stats.get("service.journal_appends")),
                "errors": int(self.stats.get("service.journal_errors")),
                "lag_seconds":
                    None if self._journal_written is None
                    else round(time.time() - self._journal_written, 3),
            },
        }

    async def _handle_stats(self, writer: asyncio.StreamWriter) -> None:
        from repro.experiments.runner import SWEEP_STATS
        assert self._loop is not None
        entries, total = await self._loop.run_in_executor(
            None, lambda: (len(self._cache), self._cache.total_bytes()))
        sweep_stats = SWEEP_STATS.as_dict()
        await self._respond(writer, 200, {
            "service": self.stats.as_dict(),
            "sweep": sweep_stats,
            "cache": {
                "entries": entries,
                "bytes": total,
                "budget": self._cache.budget,
                "directory": str(self._cache.directory),
            },
            "gauges": self._gauges(sweep_stats),
            "records": len(self._records),
            "active": self._active_count(),
        })
