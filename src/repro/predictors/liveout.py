"""Live-out predictor for parallel renaming (Section 4.1 of the paper).

For each fragment the predictor supplies two bitmaps plus a length:

* ``liveout_regs`` — one bit per architectural register; bit *r* set means
  the fragment writes register *r* and later fragments may read it;
* ``last_writes`` — one bit per instruction in the fragment; bit *n* set
  means the fragment's *n*-th instruction is the last write of some
  live-out register;
* ``length`` — the fragment's instruction count (the paper assumes perfect
  length prediction; modelling it here lets experiments relax that).

The table is set-associative with small tags to detect aliasing, indexed
by a hash of the fragment's start address and branch directions —
Table 1's default is 4K entries, 2-way, 4-bit tags (84 bits/entry, 42 KB).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, NamedTuple, Optional, Sequence, Tuple

from repro.config import LiveOutPredictorConfig
from repro.frontend.fragments import FragmentKey
from repro.isa.instructions import Instruction
from repro.isa.registers import ZERO_REG
from repro.stats import StatsCollector


class LiveOutInfo(NamedTuple):
    """Ground truth or prediction of a fragment's live-outs."""

    liveout_regs: int   # bitmap over architectural registers
    last_writes: int    # bitmap over fragment instruction positions
    length: int

    def liveout_list(self) -> List[int]:
        """Architectural register numbers in the live-out bitmap."""
        regs, bits, reg = [], self.liveout_regs, 0
        while bits:
            if bits & 1:
                regs.append(reg)
            bits >>= 1
            reg += 1
        return regs

    def is_last_write(self, position: int) -> bool:
        """True if the instruction at 0-based *position* is a last write."""
        return bool(self.last_writes >> position & 1)


def compute_liveouts(instructions: Sequence[Instruction]) -> LiveOutInfo:
    """Ground-truth live-out computation for a fragment.

    Every register the fragment writes is treated as a live-out (the
    hardware cannot know whether a later fragment will read it, so it must
    expose the final value of each written register).  Writes to the
    hardwired zero register are ignored.
    """
    last_writer = {}
    for position, inst in enumerate(instructions):
        dest = inst.dest_reg()
        if dest is not None and dest != ZERO_REG:
            last_writer[dest] = position
    regs_bitmap = 0
    writes_bitmap = 0
    for reg, position in last_writer.items():
        regs_bitmap |= 1 << reg
        writes_bitmap |= 1 << position
    return LiveOutInfo(regs_bitmap, writes_bitmap, len(instructions))


class _SetEntry(NamedTuple):
    tag: int
    info: LiveOutInfo


class LiveOutPredictor:
    """Set-associative live-out prediction table."""

    def __init__(self, config: LiveOutPredictorConfig,
                 stats: Optional[StatsCollector] = None):
        self.config = config
        self.stats = stats if stats is not None else StatsCollector()
        self._num_sets = max(1, config.entries // config.assoc)
        self._tag_mask = (1 << config.tag_bits) - 1
        # set index -> OrderedDict {tag: LiveOutInfo} in LRU order.
        self._sets: List[OrderedDict] = [OrderedDict()
                                         for _ in range(self._num_sets)]

    def _locate(self, key: FragmentKey) -> Tuple[int, int]:
        """(set index, tag) for a fragment key."""
        hashed = key.hash_id()
        hashed ^= hashed >> 17
        return hashed % self._num_sets, (hashed // self._num_sets) & self._tag_mask

    def predict(self, key: FragmentKey) -> Optional[LiveOutInfo]:
        """Predicted live-outs for *key*, or None on a table miss."""
        index, tag = self._locate(key)
        cache_set = self._sets[index]
        info = cache_set.get(tag)
        if info is None:
            self.stats.add("liveout.table_misses")
            return None
        cache_set.move_to_end(tag)
        self.stats.add("liveout.table_hits")
        return info

    def train(self, key: FragmentKey, info: LiveOutInfo) -> None:
        """Record the observed live-outs of a committed fragment."""
        index, tag = self._locate(key)
        cache_set = self._sets[index]
        if tag in cache_set:
            cache_set.move_to_end(tag)
        elif len(cache_set) >= self.config.assoc:
            cache_set.popitem(last=False)
            self.stats.add("liveout.evictions")
        cache_set[tag] = info

    def adopt_state(self, donor: "LiveOutPredictor") -> None:
        """Clone *donor*'s trained table (entries are immutable
        :class:`LiveOutInfo` tuples; LRU order is preserved)."""
        if donor.config != self.config:
            raise ValueError("live-out config mismatch in adopt_state")
        self._sets = [OrderedDict(s) for s in donor._sets]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cfg = self.config
        return (f"LiveOutPredictor({cfg.entries} entries, {cfg.assoc}-way, "
                f"{cfg.tag_bits}-bit tags)")
