"""Prediction structures: next-trace/fragment, live-out, return stack."""

from repro.predictors.liveout import (
    LiveOutInfo,
    LiveOutPredictor,
    compute_liveouts,
)
from repro.predictors.return_stack import ReturnAddressStack
from repro.predictors.trace_predictor import TracePredictor

__all__ = [
    "TracePredictor",
    "LiveOutPredictor",
    "LiveOutInfo",
    "compute_liveouts",
    "ReturnAddressStack",
]
