"""Path-based next-trace predictor (Jacobson, Rotenberg & Smith, MICRO-30).

The predictor maintains a history of recently-seen fragment/trace IDs and
hashes them into a *primary* table; a *secondary* table indexed by only the
most recent ID serves as a fallback with faster learning.  Each entry
stores the predicted next fragment key and a 2-bit hysteresis counter.

The DOLC parameters (Table 1: D=9, O=4, L=7, C=9) control how many IDs
contribute to the primary index and how many bits each contributes:
``depth`` older IDs at ``older_bits`` each, the previous ID at
``last_bits``, and the newest ID at ``current_bits``.

History is speculative: the front-end pushes each predicted/fetched
fragment key as it goes and restores a snapshot on mispredictions.
Training happens at retire time against a separate architectural history
register, so wrong-path pollution never corrupts the tables.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

from repro.config import TracePredictorConfig
from repro.frontend.fragments import FragmentKey
from repro.stats import StatsCollector

#: Saturating-counter ceiling (2-bit hysteresis).
_COUNTER_MAX = 3

HistorySnapshot = Tuple[int, ...]


class _Entry:
    """One predictor-table entry."""

    __slots__ = ("key", "counter")

    def __init__(self, key: FragmentKey):
        self.key = key
        self.counter = 1


class TracePredictor:
    """Predicts the next fragment key from the fragment-ID path history."""

    def __init__(self, config: TracePredictorConfig,
                 stats: Optional[StatsCollector] = None):
        self.config = config
        self.stats = stats if stats is not None else StatsCollector()
        self._primary: Dict[int, _Entry] = {}
        self._secondary: Dict[int, _Entry] = {}
        self._primary_mask = config.primary_entries - 1
        self._secondary_mask = config.secondary_entries - 1
        # Index-hash constants, precomputed off the hot path.
        self._current_mask = (1 << config.current_bits) - 1
        self._last_mask = (1 << config.last_bits) - 1
        self._older_mask = (1 << config.older_bits) - 1
        shift_mod = max(1, config.current_bits + 4)
        self._older_shifts = tuple(
            (i * config.older_bits + 4) % shift_mod
            for i in range(config.depth))
        #: ``FragmentKey -> hash_id()`` memo: the same keys recur for the
        #: whole run and the mixing arithmetic is pure.
        self._id_cache: Dict[FragmentKey, int] = {}
        #: Speculative history used for prediction (front-end state).
        self._history: Deque[int] = deque(maxlen=config.depth + 1)
        #: Architectural history used for training (retire state).
        self._retire_history: Deque[int] = deque(maxlen=config.depth + 1)

    # -- index hashing -----------------------------------------------------

    def _index(self, history: HistorySnapshot) -> int:
        """Fold a history of fragment IDs into a primary-table index."""
        value = 0
        if history:
            value ^= history[-1] & self._current_mask
        if len(history) >= 2:
            value ^= (history[-2] & self._last_mask) << 2
        older = history[:-2][-self.config.depth:]
        older_mask = self._older_mask
        shifts = self._older_shifts
        for i, older_id in enumerate(older):
            value ^= (older_id & older_mask) << shifts[i]
        return value & self._primary_mask

    def _secondary_index(self, history: HistorySnapshot) -> int:
        last = history[-1] if history else 0
        return (last ^ (last >> 16)) & self._secondary_mask

    # -- speculative history (prediction path) -----------------------------

    def snapshot_history(self) -> HistorySnapshot:
        """Capture speculative history for later recovery."""
        return tuple(self._history)

    def restore_history(self, snapshot: HistorySnapshot) -> None:
        """Roll speculative history back after a squash."""
        self._history = deque(snapshot, maxlen=self.config.depth + 1)

    def _hash_id(self, key: FragmentKey) -> int:
        """Memoised ``key.hash_id()`` (pure, and keys recur all run)."""
        cached = self._id_cache.get(key)
        if cached is None:
            if len(self._id_cache) >= 131072:
                self._id_cache.clear()
            cached = self._id_cache[key] = key.hash_id()
        return cached

    def push_history(self, key: FragmentKey) -> None:
        """Record a fetched fragment in speculative history."""
        self._history.append(self._hash_id(key))

    def predict(self) -> Optional[FragmentKey]:
        """Predict the next fragment key, or None on a cold miss."""
        history = tuple(self._history)
        entry = self._primary.get(self._index(history))
        if entry is not None:
            self.stats.add("tracepred.predictions_primary")
            return entry.key
        entry = self._secondary.get(self._secondary_index(history))
        if entry is not None:
            self.stats.add("tracepred.predictions_secondary")
            return entry.key
        self.stats.add("tracepred.cold_misses")
        return None

    # -- training (retire path) ------------------------------------------

    def train(self, actual: FragmentKey) -> None:
        """Tell the predictor the architecturally-next fragment was
        *actual*; updates tables against retire history, then advances it.
        """
        history = tuple(self._retire_history)
        self._train_table(self._primary, self._index(history), actual)
        self._train_table(self._secondary, self._secondary_index(history),
                          actual)
        self._retire_history.append(self._hash_id(actual))

    def _train_table(self, table: Dict[int, _Entry], index: int,
                     actual: FragmentKey) -> None:
        entry = table.get(index)
        if entry is None:
            table[index] = _Entry(actual)
            return
        if entry.key == actual:
            if entry.counter < _COUNTER_MAX:
                entry.counter += 1
            return
        entry.counter -= 1
        if entry.counter < 0:
            table[index] = _Entry(actual)
        else:
            self.stats.add("tracepred.hysteresis_holds")

    def adopt_state(self, donor: "TracePredictor") -> None:
        """Clone *donor*'s trained tables and histories into this
        predictor.

        Table entries are mutable (hysteresis counters), so each one is
        copied rather than shared; the ID memo is shared-value-safe
        (ints) and copied wholesale.  Requires identical geometry.
        """
        if donor.config != self.config:
            raise ValueError("trace-predictor config mismatch in adopt_state")
        self._primary = {index: self._copy_entry(entry)
                         for index, entry in donor._primary.items()}
        self._secondary = {index: self._copy_entry(entry)
                           for index, entry in donor._secondary.items()}
        self._id_cache = dict(donor._id_cache)
        self._history = deque(donor._history, maxlen=self.config.depth + 1)
        self._retire_history = deque(donor._retire_history,
                                     maxlen=self.config.depth + 1)

    @staticmethod
    def _copy_entry(entry: _Entry) -> _Entry:
        clone = _Entry(entry.key)
        clone.counter = entry.counter
        return clone

    # -- introspection ---------------------------------------------------

    @property
    def primary_occupancy(self) -> int:
        """Populated primary-table entries."""
        return len(self._primary)

    @property
    def secondary_occupancy(self) -> int:
        """Populated secondary-table entries."""
        return len(self._secondary)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cfg = self.config
        return (f"TracePredictor(primary={cfg.primary_entries}, "
                f"secondary={cfg.secondary_entries}, "
                f"DOLC={cfg.depth}-{cfg.older_bits}-"
                f"{cfg.last_bits}-{cfg.current_bits})")
