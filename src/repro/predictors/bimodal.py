"""Bimodal (2-bit saturating counter) branch direction predictor.

Used by the front-end as the *fallback* direction source when a fragment
must be walked without trace-predictor direction bits — cold fragments,
and fragments whose start was overridden by the statically-known
fall-through address.  Real front-ends always have an outcome predictor
underneath the trace predictor; without one, every unpredicted fragment
would implicitly predict not-taken everywhere.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.stats import StatsCollector

#: 2-bit counter bounds; >= _TAKEN_THRESHOLD predicts taken.
_COUNTER_MAX = 3
_TAKEN_THRESHOLD = 2


class BimodalPredictor:
    """PC-indexed table of 2-bit saturating counters."""

    def __init__(self, entries: int = 16384,
                 stats: Optional[StatsCollector] = None):
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("bimodal entries must be a power of two")
        self.entries = entries
        self.stats = stats if stats is not None else StatsCollector()
        self._mask = entries - 1
        #: index -> counter; unset entries weakly predict not-taken.
        self._counters: Dict[int, int] = {}

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def predict(self, pc: int) -> bool:
        """Predicted direction for the conditional branch at *pc*."""
        return self._counters.get(self._index(pc), 1) >= _TAKEN_THRESHOLD

    def train(self, pc: int, taken: bool) -> None:
        """Update with a retired branch outcome."""
        index = self._index(pc)
        counter = self._counters.get(index, 1)
        if taken:
            if counter < _COUNTER_MAX:
                self._counters[index] = counter + 1
        elif counter > 0:
            self._counters[index] = counter - 1

    def adopt_state(self, donor: "BimodalPredictor") -> None:
        """Clone *donor*'s trained counters into this predictor.

        Training is deterministic, so adopting a donor trained on a
        stream is bit-identical to training on that stream directly —
        the basis of the warm-snapshot cache in :mod:`repro.sampling`.
        """
        if donor.entries != self.entries:
            raise ValueError("bimodal geometry mismatch in adopt_state")
        self._counters = dict(donor._counters)

    def __len__(self) -> int:
        return len(self._counters)
