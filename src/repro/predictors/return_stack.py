"""Speculative return-address stack.

Used by the front-end as a fallback target source when a fragment ends in
a ``ret`` and the trace predictor has no prediction yet (cold misses).
Snapshots are cheap immutable tuples so the front-end can checkpoint the
stack per fragment and restore it on squashes.
"""

from __future__ import annotations

from typing import Optional, Tuple

RasSnapshot = Tuple[int, ...]


class ReturnAddressStack:
    """Fixed-depth LIFO of predicted return addresses."""

    def __init__(self, depth: int = 32):
        if depth <= 0:
            raise ValueError("RAS depth must be positive")
        self.depth = depth
        self._stack: Tuple[int, ...] = ()

    def push(self, return_addr: int) -> None:
        """Record a call; oldest entry falls off when full."""
        stack = self._stack + (return_addr,)
        if len(stack) > self.depth:
            stack = stack[1:]
        self._stack = stack

    def pop(self) -> Optional[int]:
        """Predict a return target; None when empty."""
        if not self._stack:
            return None
        top = self._stack[-1]
        self._stack = self._stack[:-1]
        return top

    def snapshot(self) -> RasSnapshot:
        """Capture the stack for later recovery (persistent tuple)."""
        return self._stack

    def restore(self, snapshot: RasSnapshot) -> None:
        """Roll the stack back to *snapshot* after a squash."""
        self._stack = snapshot

    def __len__(self) -> int:
        return len(self._stack)
