"""Durable checkpoint/restore for long simulations.

PR 5 built the in-memory checkpoint seam — ``Processor.run_until`` /
``restart_at`` plus warm-snapshot cloning via ``adopt_state`` — so
sampled runs could hop between measurement windows.  This module
generalizes that seam into *durable* simulation state: a complete warmed
processor snapshot (predictor tables, cache and trace-cache tags, MSHR
state, commit index, ``now``, stats — RNG-free by construction) is
pickled to disk under ``.repro_cache/checkpoints/`` every N committed
instructions, and an interrupted run resumes from the nearest valid
snapshot instead of from zero.

Determinism contract
--------------------

A checkpoint is taken at a *drained* pipeline boundary: the driver runs
to the boundary with :meth:`~repro.core.processor.Processor.run_until`,
stores the snapshot, then re-enters via ``restart_at`` — exactly the
discipline sampled windows use.  Draining at boundaries is part of the
run's schedule, so the checkpoint cadence is part of the run's identity:
a run checkpointed every N instructions, killed, and resumed is
**bit-identical** (counters included) to an uninterrupted run *with the
same cadence* — and that cadence therefore joins the sweep cache key
(see :meth:`repro.experiments.runner.SweepJob.cache_key`).  Sampled runs
already restart at every window, so checkpointing adds no perturbation
there at all: sampled results are bit-identical with checkpointing on or
off.

Durability discipline
---------------------

Snapshots are written atomically (unique tmp + ``os.replace``) and
validated on load; a corrupt snapshot (torn write, pickle drift,
injected ``checkpoint_corrupt`` fault) is quarantined to
``*.ckpt.corrupt`` and resume falls back to the previous snapshot — or
to zero — instead of failing.  This mirrors ``ResultCache``'s quarantine
policy exactly.

Checkpoint bookkeeping (stores, loads, resumes, corruption, fallbacks)
is counted on the module-level :data:`CHECKPOINT_STATS` collector, never
on the processor's own stats — polluting ``processor.stats`` would break
the bit-identity contract the counters are asserting.

Knobs: ``REPRO_CHECKPOINT`` (interval in committed instructions; unset
or 0 disables), ``REPRO_CHECKPOINT_DIR`` (store location, default
``<cache dir>/checkpoints``), ``REPRO_CHECKPOINT_KEEP`` (snapshots
retained per run, default 2 so one corrupt tail still leaves a fallback).
"""

from __future__ import annotations

import hashlib
import itertools
import os
import pickle
import time
from pathlib import Path
from typing import Callable, List, Optional, Tuple

from repro import faults
from repro.config import ConfigError, ProcessorConfig, env_flag
from repro.frontend.trace_cache import TraceCache
from repro.memory.hierarchy import MemoryHierarchy
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.liveout import LiveOutPredictor
from repro.predictors.trace_predictor import TracePredictor
from repro.sampling.prep import CACHE_DIR_ENV, DEFAULT_CACHE_DIR
from repro.stats import StatsCollector, ThreadSafeStatsCollector

#: Interval, in committed instructions, between snapshots (0/unset: off).
CHECKPOINT_ENV = "REPRO_CHECKPOINT"
#: Override for the snapshot directory (default ``<cache dir>/checkpoints``).
CHECKPOINT_DIR_ENV = "REPRO_CHECKPOINT_DIR"
#: Snapshots retained per run fingerprint (default 2).
CHECKPOINT_KEEP_ENV = "REPRO_CHECKPOINT_KEEP"

DEFAULT_KEEP = 2

#: Bump to invalidate on-disk snapshots when captured state changes shape.
CHECKPOINT_VERSION = 1

#: Process-wide checkpoint observability (thread-safe: the job server's
#: executor threads run checkpointed simulations concurrently).  Counts
#: ``checkpoint.stored`` / ``loaded`` / ``resumed`` / ``corrupt`` /
#: ``fallback`` / ``pruned`` plus the overhead gauges
#: ``checkpoint.store_seconds`` / ``load_seconds`` / ``bytes`` (so
#: durable-run cost shows up in sweep reports) — deliberately *not* on
#: ``processor.stats``, which must stay bit-identical across
#: kill/resume.
CHECKPOINT_STATS = ThreadSafeStatsCollector()

#: Unique tmp-name sequence (same discipline as ``ResultCache``).
_TMP_SEQ = itertools.count()


def resolve_checkpoint_every(value: object = None) -> Optional[int]:
    """Resolve a checkpoint interval to a positive int or None (off).

    ``None`` defers to ``REPRO_CHECKPOINT``; ``0``/``False`` force off
    (sweep workers pass the job's explicit value through this so worker
    environments cannot skew result identity).
    """
    if value is None:
        raw = os.environ.get(CHECKPOINT_ENV, "").strip()
        if not raw or not env_flag(CHECKPOINT_ENV):
            return None
        try:
            every = int(raw)
        except ValueError:
            raise ConfigError(
                f"{CHECKPOINT_ENV} must be an integer, got {raw!r}")
    else:
        every = int(value)
    return every if every > 0 else None


def resolve_keep() -> int:
    """Snapshots retained per run (``REPRO_CHECKPOINT_KEEP``, min 1)."""
    raw = os.environ.get(CHECKPOINT_KEEP_ENV, "")
    if not raw.strip():
        return DEFAULT_KEEP
    try:
        keep = int(raw)
    except ValueError:
        raise ConfigError(
            f"{CHECKPOINT_KEEP_ENV} must be an integer, got {raw!r}")
    return max(1, keep)


def default_checkpoint_dir() -> Path:
    """The snapshot directory: explicit override or ``<cache dir>/checkpoints``."""
    explicit = os.environ.get(CHECKPOINT_DIR_ENV)
    if explicit:
        return Path(explicit)
    root = Path(os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR)
    return root / "checkpoints"


def run_fingerprint(config: ProcessorConfig, stream_fp: str, warm: bool,
                    sampling: Optional[Tuple[int, ...]],
                    every: int) -> str:
    """Identity of one checkpointable run.

    Everything that shapes the deterministic execution joins the digest:
    the resolved config (``repr`` covers every field, the same content
    key the result cache uses), the stream's cross-process fingerprint,
    warming, the sampling parameters, the checkpoint cadence itself
    (boundaries drain the pipeline, so cadence changes the schedule) and
    the snapshot format version.  A snapshot is only ever restored into
    a run with the same fingerprint.
    """
    payload = "|".join((
        f"v{CHECKPOINT_VERSION}",
        stream_fp,
        repr(config),
        f"warm={bool(warm)}",
        f"sampling={tuple(sampling) if sampling else None}",
        f"every={every}",
    ))
    digest = hashlib.sha256(payload.encode()).hexdigest()[:16]
    return f"{stream_fp}-{digest}"


class ProcessorSnapshot:
    """A complete warmed processor state at a drained commit boundary.

    Captured structures are *clones* (fresh structures built from the
    config, then ``adopt_state``'d from the live processor), so the
    snapshot shares no mutable state with the running simulation and
    pickles without dragging the oracle stream or program along.  The
    decode cache is deliberately not captured: it is a pure memo whose
    contents never affect results (golden-parity tested), so a resumed
    run simply re-fills it cold.
    """

    __slots__ = ("version", "fingerprint", "index", "now", "stats_state",
                 "bimodal", "trace_predictor", "liveout_predictor",
                 "memory", "trace_cache", "imshrs", "dmshrs", "extra")

    @classmethod
    def capture(cls, processor, fingerprint: str,
                extra: Optional[dict] = None) -> "ProcessorSnapshot":
        """Snapshot *processor* (which must sit at a drained boundary).

        *extra* carries driver-level loop state (the sampled engine's
        accumulators); it must be plain picklable data.
        """
        config = processor.config
        stats = StatsCollector()
        snap = cls()
        snap.version = CHECKPOINT_VERSION
        snap.fingerprint = fingerprint
        snap.index = processor.committed
        snap.now = processor.now
        snap.stats_state = processor.stats.state()
        snap.bimodal = BimodalPredictor(stats=stats)
        snap.bimodal.adopt_state(processor.bimodal)
        snap.trace_predictor = TracePredictor(config.trace_predictor, stats)
        snap.trace_predictor.adopt_state(processor.trace_predictor)
        snap.liveout_predictor = LiveOutPredictor(config.liveout_predictor,
                                                  stats)
        snap.liveout_predictor.adopt_state(processor.liveout_predictor)
        snap.memory = MemoryHierarchy(config.memory, stats)
        snap.memory.l1i.adopt_state(processor.memory.l1i)
        snap.memory.l1d.adopt_state(processor.memory.l1d)
        snap.memory.l2.adopt_state(processor.memory.l2)
        snap.trace_cache = None
        if processor.trace_cache is not None:
            snap.trace_cache = TraceCache(config.frontend.trace_cache, stats)
            snap.trace_cache.adopt_state(processor.trace_cache)
        # MSHRs survive restart_at (in-flight misses stay in flight
        # across windows), so they are warm state: dropping them would
        # make a resumed run diverge from the uninterrupted one.
        snap.imshrs = dict(processor.memory.iport._mshrs)
        snap.dmshrs = dict(processor.memory.dport._mshrs)
        snap.extra = extra
        return snap

    def restore(self, processor) -> None:
        """Restore this snapshot into *processor* (same config/stream).

        Leaves the processor exactly where the capturing run stood after
        storing: warm state adopted, stats and ``now`` rewound, pipeline
        re-entered at the snapshot's commit index.
        """
        processor.adopt_warm_state(self)
        processor.memory.iport._mshrs = dict(self.imshrs)
        processor.memory.dport._mshrs = dict(self.dmshrs)
        processor.stats.restore_state(self.stats_state)
        processor.now = self.now
        processor.restart_at(self.index)


class CheckpointManager:
    """Atomic on-disk store for one run's snapshots.

    Snapshot files are ``<fingerprint>-<index>.ckpt`` under the
    checkpoint directory; writes go through a unique tmp name and
    ``os.replace`` (crash leaves either the old file set or the new one,
    never a torn snapshot under the real name), and loads validate
    version/fingerprint/index before trusting a file.  A snapshot that
    fails to load is quarantined to ``*.ckpt.corrupt`` and
    :meth:`latest` falls back to the next-older one.
    """

    def __init__(self, fingerprint: str,
                 directory: Optional[os.PathLike] = None,
                 keep: Optional[int] = None,
                 description: str = ""):
        self.fingerprint = fingerprint
        self.directory = (Path(directory) if directory is not None
                          else default_checkpoint_dir())
        self.keep = keep if keep is not None else resolve_keep()
        #: Human-readable run label fault-plan ``match=`` selectors see.
        self.description = description or fingerprint

    def path_for(self, index: int) -> Path:
        """The snapshot file for commit *index*."""
        return self.directory / f"{self.fingerprint}-{index:010d}.ckpt"

    def store(self, snapshot: ProcessorSnapshot,
              ordinal: Optional[int] = None) -> Optional[Path]:
        """Durably persist *snapshot*; returns its path (None on I/O error).

        Best-effort: a full disk never kills the simulation, it only
        costs resumability.  *ordinal* is the absolute checkpoint number
        for this run (``index // every``) — the ``kill_mid_unit`` fault
        fires on it *after* the rename, so the snapshot an injected kill
        leaves behind is always durable.
        """
        t0 = time.perf_counter()
        data = pickle.dumps(snapshot, protocol=pickle.HIGHEST_PROTOCOL)
        plan = faults.active_plan()
        if plan is not None:
            data = plan.on_checkpoint_write(self.description, data)
        path = self.path_for(snapshot.index)
        tmp = path.with_suffix(f".tmp.{os.getpid()}-{next(_TMP_SEQ)}")
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            tmp.write_bytes(data)
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
            return None
        CHECKPOINT_STATS.add("checkpoint.stored")
        CHECKPOINT_STATS.add("checkpoint.bytes", len(data))
        CHECKPOINT_STATS.add("checkpoint.store_seconds",
                             time.perf_counter() - t0)
        self._prune()
        if plan is not None and ordinal is not None:
            plan.on_checkpoint_stored(self.description, ordinal)
        return path

    def latest(self) -> Optional[ProcessorSnapshot]:
        """The newest valid snapshot for this run, or None.

        Walks candidates newest-first; anything unreadable or failing
        validation is quarantined and the walk continues with the next-
        older snapshot — or, with nothing left, falls back to a from-
        zero run (either degradation counted as ``checkpoint.fallback``)
        — so a torn tail costs one interval, never the run.
        """
        newest = True
        for index, path in self._candidates():
            t0 = time.perf_counter()
            try:
                with open(path, "rb") as handle:
                    snap = pickle.load(handle)
                if not isinstance(snap, ProcessorSnapshot):
                    raise ValueError("not a ProcessorSnapshot")
                if (snap.version != CHECKPOINT_VERSION
                        or snap.fingerprint != self.fingerprint
                        or snap.index != index):
                    raise ValueError("snapshot metadata mismatch")
            except Exception:
                self._quarantine(path)
                newest = False
                continue
            CHECKPOINT_STATS.add("checkpoint.loaded")
            CHECKPOINT_STATS.add("checkpoint.load_seconds",
                                 time.perf_counter() - t0)
            if not newest:
                CHECKPOINT_STATS.add("checkpoint.fallback")
            return snap
        if not newest:
            CHECKPOINT_STATS.add("checkpoint.fallback")
        return None

    def clear(self) -> None:
        """Remove every snapshot (and stale tmp) for this run.

        Called when a run completes: its checkpoints have served their
        purpose, and leaving them would only cost disk against the cache
        budget.
        """
        for _, path in self._candidates():
            try:
                path.unlink()
            except OSError:
                pass
        if self.directory.is_dir():
            for tmp in self.directory.glob(f"{self.fingerprint}-*.tmp.*"):
                try:
                    tmp.unlink()
                except OSError:
                    pass

    def _candidates(self) -> List[Tuple[int, Path]]:
        """(index, path) for every snapshot file, newest first."""
        if not self.directory.is_dir():
            return []
        prefix_len = len(self.fingerprint) + 1
        found = []
        for path in self.directory.glob(f"{self.fingerprint}-*.ckpt"):
            try:
                index = int(path.name[prefix_len:-5])
            except ValueError:
                continue
            found.append((index, path))
        return sorted(found, reverse=True)

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt snapshot aside (``*.ckpt.corrupt``) and count it."""
        try:
            os.replace(path, path.with_name(path.name + ".corrupt"))
        except OSError:  # pragma: no cover - concurrent quarantine
            pass
        CHECKPOINT_STATS.add("checkpoint.corrupt")

    def _prune(self) -> None:
        """Drop snapshots beyond the newest ``keep``."""
        for _, path in self._candidates()[self.keep:]:
            try:
                path.unlink()
            except OSError:
                continue
            CHECKPOINT_STATS.add("checkpoint.pruned")


def run_checkpointed(processor, every: int, manager: CheckpointManager,
                     max_cycles: Optional[int] = None,
                     warm_cb: Optional[Callable[[], None]] = None,
                     live=None):
    """Drive a full-detail run in checkpointed segments.

    Resumes from the newest valid snapshot when one exists (skipping
    *warm_cb*, whose training the snapshot already contains), otherwise
    warms and starts from zero.  Each segment runs to the next multiple
    of *every* committed instructions, snapshots the drained state, and
    re-enters via ``restart_at`` — so an uninterrupted checkpointed run
    and a killed-and-resumed one execute the identical schedule.
    Finishes with the same ``sim.*`` counter contract as
    :meth:`~repro.core.processor.Processor.run`; *max_cycles* bounds
    each segment rather than the whole run.  On completion the run's
    snapshots are cleared.  A *live* publisher (usually the same one
    attached to the processor) is told each stored ordinal so attach
    clients see checkpoint progress.
    """
    snapshot = manager.latest()
    if snapshot is not None:
        snapshot.restore(processor)
        CHECKPOINT_STATS.add("checkpoint.resumed")
    elif warm_cb is not None:
        warm_cb()
    total = processor.stream_length
    timed_out = False
    while processor.committed < total:
        target = min(processor.committed + every, total)
        if not processor.run_until(target, max_cycles=max_cycles):
            timed_out = True
            break
        if processor.committed >= total:
            break
        manager.store(ProcessorSnapshot.capture(processor,
                                                manager.fingerprint),
                      ordinal=processor.committed // every)
        if live is not None:
            live.note_checkpoint(processor.committed // every)
        processor.restart_at(processor.committed)
    processor.stamp_summary(timed_out=timed_out)
    if not timed_out:
        manager.clear()
    return processor
