"""SMARTS-style interval sampling over the oracle stream.

The stream is split into fixed-size *units* (default ~1k instructions).
Every *k*-th unit is detail-simulated, preceded by a detailed warm-up
prefix whose cycles are discarded (it re-fills the pipeline and short
-lived structures after the fast-forward); the gaps between detailed
windows are fast-forwarded *functionally* — state keeps tracking the
skipped references through :class:`repro.core.warming.WarmingState` at
emulation speed, but no cycles are simulated.

Gap fast-forwarding has two modes.  When the run pre-warmed every
predictor on the whole stream (``warm=True``, the default, matching the
steady-state methodology of full-detail runs), gaps only maintain cache
LRU recency (:meth:`WarmingState.feed_caches`) — the predictors are
already at steady state and re-training them through the gaps measurably
buys nothing while costing most of the sampled run's wall clock.  In the
pure-SMARTS mode (``warm=False``) gaps do full functional warming, and
every oracle record then trains the predictors through exactly one path:
the functional warmer (gap records) or the commit-side carver
(detailed-window records) — never both.

The per-unit CPIs are aggregated per SMARTS (Wunderlich et al., ISCA
2003): the CPI estimate is the mean of per-unit CPIs and the result
carries a 95% CLT confidence half-width under ``sampling.*`` counters,
so callers can *measure* the sampling error instead of guessing it.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.config import ProcessorConfig
from repro.core.processor import Processor
from repro.core.simulation import SimulationResult
from repro.core.warming import WarmingState, warm_processor
from repro.emulator.stream import DynamicInstruction
from repro.errors import ReproError
from repro.isa.program import Program
from repro.sampling.prep import StreamKey, warm_from_snapshot
from repro.stats import StatsCollector

#: Environment knobs (registered in repro.config.ENV_KNOBS).
SAMPLE_ENV = "REPRO_SAMPLE"
UNIT_ENV = "REPRO_SAMPLE_UNIT"
WARMUP_ENV = "REPRO_SAMPLE_WARMUP"

DEFAULT_PERIOD = 16
DEFAULT_UNIT = 1000
DEFAULT_WARMUP = 1000


def _env_int(name: str, default: int, minimum: int) -> int:
    """An integer knob from the environment, or *default*.

    Unset, blank, and below-*minimum* values all fall back to the
    default.  The explicit minimum check matters: the natural
    ``int(os.environ.get(name) or default)`` treats the *string* ``"0"``
    as truthy, so ``REPRO_SAMPLE=0`` (every documented knob's "off"
    spelling) would parse to a literal 0 and crash config validation
    instead of deferring — the regression the test suite pins.
    """
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    value = int(raw)
    return value if value >= minimum else default

#: 95% two-sided normal quantile for the CLT confidence interval.
_Z_95 = 1.96


@dataclass(frozen=True)
class SamplingConfig:
    """Interval-sampling parameters.

    Attributes:
        period: measure every ``period``-th unit (1 = measure all).
        unit: oracle instructions (non-NOP) per sampling unit.
        warmup: detailed warm-up instructions run (and discarded) before
            each measured unit, re-filling pipeline-adjacent state after
            the functional fast-forward.
    """

    period: int = DEFAULT_PERIOD
    unit: int = DEFAULT_UNIT
    warmup: int = DEFAULT_WARMUP

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ReproError("sampling period must be >= 1")
        if self.unit < 1:
            raise ReproError("sampling unit must be >= 1")
        if self.warmup < 0:
            raise ReproError("sampling warmup must be >= 0")

    @classmethod
    def from_env(cls, period: Optional[int] = None) -> "SamplingConfig":
        """Build a config from ``REPRO_SAMPLE_UNIT`` / ``_WARMUP``,
        with *period* overriding ``REPRO_SAMPLE`` (default 16)."""
        if period is None:
            period = _env_int(SAMPLE_ENV, DEFAULT_PERIOD, 1)
        return cls(
            period=period,
            unit=_env_int(UNIT_ENV, DEFAULT_UNIT, 1),
            warmup=_env_int(WARMUP_ENV, DEFAULT_WARMUP, 0))

    def as_tuple(self) -> tuple:
        """``(period, unit, warmup)`` — the identity tuple cache keys
        and checkpoint fingerprints embed."""
        return (self.period, self.unit, self.warmup)


def resolve_sampling(value: Union[None, bool, int, SamplingConfig]
                     ) -> Optional[SamplingConfig]:
    """Normalise a ``run_simulation(sampling=...)`` argument.

    ``None`` defers to ``REPRO_SAMPLE`` (unset or 0 = off), ``False``/0
    forces full detail, ``True`` turns sampling on with env/default
    parameters, an int is a sampling period, and a
    :class:`SamplingConfig` passes through.
    """
    if isinstance(value, SamplingConfig):
        return value
    if value is None:
        period = _env_int(SAMPLE_ENV, 0, 1)
        return SamplingConfig.from_env(period) if period > 0 else None
    if value is True:
        return SamplingConfig.from_env()
    if value is False or value == 0:
        return None
    return SamplingConfig.from_env(int(value))


def _cpi_stats(unit_cycles: Sequence[int],
               unit_insts: Sequence[int]) -> Tuple[float, float, float]:
    """SMARTS aggregation: (CPI mean, std, 95% CLT half-width)."""
    cpis = [c / i for c, i in zip(unit_cycles, unit_insts)]
    k = len(cpis)
    cpi_mean = sum(cpis) / k
    if k > 1:
        variance = sum((c - cpi_mean) ** 2 for c in cpis) / (k - 1)
        cpi_std = math.sqrt(variance)
        halfwidth = _Z_95 * cpi_std / math.sqrt(k)
    else:
        cpi_std = 0.0
        halfwidth = 0.0
    return cpi_mean, cpi_std, halfwidth


def unit_geometry(oracle: Sequence[DynamicInstruction],
                  sampling: SamplingConfig
                  ) -> Tuple[List[int], int, int, List[int]]:
    """Sampling-unit geometry over *oracle*.

    Returns ``(raw_pos, total, total_units, measured_units)``: the
    non-NOP→raw index map, the non-NOP instruction count, the unit
    count, and the measured unit indices.  Pure per (stream, sampling
    config) — the co-simulation engine computes it once per group.
    """
    raw_pos = [i for i, record in enumerate(oracle)
               if not record.inst.is_nop]
    total = len(raw_pos)
    if total == 0:
        raise ReproError("cannot sample an empty oracle stream")
    unit = sampling.unit
    total_units = (total + unit - 1) // unit
    measured_units = [j for j in range(total_units)
                      if j % sampling.period == sampling.period - 1]
    if not measured_units:  # stream shorter than one period: measure last
        measured_units = [total_units - 1]
    return raw_pos, total, total_units, measured_units


class SampleAccum:
    """Mutable per-run sampling accumulators.

    One instance per simulated config; :func:`run_sampled` owns a single
    one, the co-simulation engine one per sibling.  Keeping the loop
    state in one object is what lets both engines share
    :func:`measure_unit` and :func:`finalize_sampled` — the bit-identity
    contract between them is enforced by running the same code.
    """

    __slots__ = ("cursor", "gap_insts", "warmup_cycles", "warmup_insts",
                 "timeouts", "unit_insts", "unit_cycles",
                 "measured_counters")

    def __init__(self) -> None:
        self.cursor = 0
        self.gap_insts = 0
        self.warmup_cycles = 0
        self.warmup_insts = 0
        self.timeouts = 0
        self.unit_insts: List[int] = []
        self.unit_cycles: List[int] = []
        self.measured_counters: Dict[str, float] = {}


def measure_unit(processor: Processor, acc: SampleAccum,
                 w_start: int, m_start: int, m_end: int) -> None:
    """One detailed window: warm-up prefix then the measured unit.

    Warm-up cycles are discarded; the measured unit's counter deltas
    bracket exactly ``[m_start, m_end)`` and accumulate into *acc*.
    """
    processor.restart_at(w_start)
    before = processor.now
    if not processor.run_until(m_start):
        acc.timeouts += 1
    acc.warmup_cycles += processor.now - before
    acc.warmup_insts += m_start - w_start

    before = processor.now
    snapshot = dict(processor.stats.as_dict())
    if not processor.run_until(m_end):
        acc.timeouts += 1
    cycles = processor.now - before
    measured = acc.measured_counters
    for name, value in processor.stats.as_dict().items():
        delta = value - snapshot.get(name, 0.0)
        if delta:
            measured[name] = measured.get(name, 0.0) + delta
    acc.unit_insts.append(m_end - m_start)
    acc.unit_cycles.append(cycles)
    acc.cursor = m_end


def finalize_sampled(processor: Processor, acc: SampleAccum,
                     sampling: SamplingConfig, total: int,
                     total_units: int, config_name: str, benchmark: str,
                     observability=None, live=None) -> SimulationResult:
    """Extrapolate a full-run :class:`SimulationResult` from *acc*.

    SMARTS aggregation (CPI = mean of per-unit CPIs, 95% CLT interval),
    counter scaling, ``sampling.*`` bookkeeping and the observability
    fold-in — shared verbatim by :func:`run_sampled` and the
    co-simulation engine.
    """
    k = len(acc.unit_cycles)
    cpi_mean, cpi_std, halfwidth = _cpi_stats(acc.unit_cycles,
                                              acc.unit_insts)
    est_cycles = max(1, round(cpi_mean * total))
    measured_insts = sum(acc.unit_insts)

    scale = total / measured_insts
    counters = {name: value * scale
                for name, value in acc.measured_counters.items()}
    counters["sim.cycles"] = float(est_cycles)
    counters["sim.committed"] = float(total)
    if acc.timeouts:
        counters["sim.timeout"] = 1.0
    counters.update({
        "sampling.enabled": 1.0,
        "sampling.period": float(sampling.period),
        "sampling.unit": float(sampling.unit),
        "sampling.warmup": float(sampling.warmup),
        "sampling.units_total": float(total_units),
        "sampling.units_measured": float(k),
        "sampling.units_skipped": float(total_units - k),
        "sampling.measured_insts": float(measured_insts),
        "sampling.measured_cycles": float(sum(acc.unit_cycles)),
        "sampling.warmup_insts": float(acc.warmup_insts),
        "sampling.warmup_cycles_discarded": float(acc.warmup_cycles),
        "sampling.gap_insts_warmed": float(acc.gap_insts),
        "sampling.window_timeouts": float(acc.timeouts),
        "sampling.cpi_mean": cpi_mean,
        "sampling.cpi_std": cpi_std,
        "sampling.cpi_halfwidth": halfwidth,
        "sampling.ipc_halfwidth_rel": (halfwidth / cpi_mean
                                       if cpi_mean else 0.0),
    })
    if observability is not None:
        # run_until never finalises obs; fold the host-side summaries
        # (exact measurements, not extrapolations) into the counters
        # here.  Auto-export mirrors Observability.finalize.
        obs_stats = StatsCollector()
        if observability.profiler is not None:
            observability.profiler.to_counters(obs_stats)
        if observability.tracer is not None:
            obs_stats.set("obs.trace.events",
                          len(observability.tracer.events))
            obs_stats.set("obs.trace.dropped", observability.tracer.dropped)
        counters.update(obs_stats.as_dict())
        if (observability.tracer is not None
                and observability.config.trace_path):
            observability.export_trace(
                observability.config.trace_path,
                process_name=processor.program.name,
                sequencers=processor.config.frontend.sequencers)
    if live is not None:
        live.publish_final(processor)
    return SimulationResult(
        benchmark=benchmark,
        config_name=config_name,
        cycles=est_cycles,
        committed=total,
        counters=counters,
    )


def run_sampled(processor_config: ProcessorConfig,
                program: Program,
                oracle: Sequence[DynamicInstruction],
                sampling: SamplingConfig,
                config_name: str,
                benchmark: str,
                warm: bool = True,
                stream_key: Optional[StreamKey] = None,
                pin: object = None,
                checkpoint_every: Optional[int] = None,
                checkpoint_manager=None,
                observability=None,
                live=None) -> SimulationResult:
    """Interval-sample *oracle* and extrapolate a full-run result.

    With ``warm=True`` the processor is first functionally warmed on the
    whole stream (through the snapshot cache when *stream_key* is
    given), matching the steady-state methodology of full-detail runs,
    and gaps then maintain cache recency only; ``warm=False`` is the
    pure-SMARTS mode where gap warming alone trains the structures.

    With a *checkpoint_manager* (see :mod:`repro.checkpoint`), the run
    snapshots its state at measured-unit boundaries roughly every
    *checkpoint_every* stream instructions and resumes from the newest
    valid snapshot.  Sampled runs already restart the pipeline at every
    window, so checkpointing is perturbation-free here: results are
    bit-identical with checkpointing on, off, or resumed mid-stream.

    The returned result's extrapolated counters are *estimates* scaled
    from the measured windows; ``sampling.*`` entries (units, discarded
    warm-up cycles, CPI confidence half-width) are exact measurements.

    An *observability* bundle attaches its profiler and tracer to the
    detailed windows (``obs.profile.*`` / ``obs.trace.*`` land in the
    returned counters, with gap fast-forwarding charged to a ``warm``
    phase); the metrics recorder stays idle in sampled mode since the
    run loop here is driven through ``run_until``.  A *live* publisher
    (:class:`~repro.obs.live.LiveTelemetry`) additionally snapshots
    window progress and per-unit confidence to its status file; both
    are read-only and leave the result bit-identical.
    """
    from repro import checkpoint as ckpt

    processor = Processor(processor_config, program, oracle,
                          obs=observability, live=live)
    profiler = (observability.profiler
                if observability is not None else None)
    snap = (checkpoint_manager.latest()
            if checkpoint_manager is not None else None)
    if snap is None and warm:
        if stream_key is not None:
            warm_from_snapshot(processor, oracle, stream_key, pin=pin)
        else:
            warm_processor(processor, oracle)

    # Unit geometry is over the non-NOP stream (the processor's commit
    # index space); raw_pos maps a non-NOP index back to the raw stream
    # so gap warming can still touch NOP fetch lines.
    raw_pos, total, total_units, measured_units = unit_geometry(oracle,
                                                                sampling)
    unit = sampling.unit

    warmer = WarmingState(processor)
    acc = SampleAccum()
    start_ui = 0
    last_ckpt = 0

    if snap is not None:
        # Resume: processor state (predictors, caches, MSHRs, stats,
        # now) comes from the snapshot; the loop accumulators ride in
        # its ``extra`` payload.  The next iteration's restart_at
        # supersedes the restore's re-entry point.
        snap.restore(processor)
        extra = snap.extra
        start_ui = extra["ui"]
        acc.cursor = extra["cursor"]
        acc.gap_insts = extra["gap_insts"]
        acc.warmup_cycles = extra["warmup_cycles"]
        acc.warmup_insts = extra["warmup_insts"]
        acc.timeouts = extra["timeouts"]
        acc.unit_insts = list(extra["unit_insts"])
        acc.unit_cycles = list(extra["unit_cycles"])
        acc.measured_counters = dict(extra["measured_counters"])
        warmer._seen_line = extra["seen_line"]
        last_ckpt = acc.cursor
        ckpt.CHECKPOINT_STATS.add("checkpoint.resumed")

    for ui in range(start_ui, len(measured_units)):
        j = measured_units[ui]
        m_start = j * unit
        m_end = min(m_start + unit, total)
        w_start = max(m_start - sampling.warmup, acc.cursor)

        # Functional fast-forward of the gap (raw slice: NOPs included
        # for cache touches, exactly as pre-run warming would see them).
        if w_start > acc.cursor:
            gap = oracle[raw_pos[acc.cursor]:raw_pos[w_start]]
            t0 = profiler.start() if profiler is not None else 0.0
            if warm:
                warmer.feed_caches(gap)
            else:
                warmer.feed(gap)
                warmer.discard_partial()
            if profiler is not None:
                profiler.stop("warm", t0)
            acc.gap_insts += w_start - acc.cursor

        # Detailed warm-up prefix (cycles discarded, structures trained
        # by the commit carver) then the measured unit: counter deltas
        # bracket exactly that window.
        measure_unit(processor, acc, w_start, m_start, m_end)

        if live is not None:
            # Unit boundaries are the natural progress ticks in sampled
            # mode; publish the rolling confidence alongside the gauges.
            mean, _, halfwidth = _cpi_stats(acc.unit_cycles, acc.unit_insts)
            live.note_sampling(
                unit=ui + 1,
                units_total=len(measured_units),
                measured_insts=sum(acc.unit_insts),
                cpi_mean=round(mean, 6),
                cpi_halfwidth=round(halfwidth, 6),
                ipc_halfwidth_rel=round(halfwidth / mean, 6) if mean
                else 0.0)
            live.publish(processor)

        # Measured-unit boundaries are drained checkpoint seams already;
        # capture is read-only, so storing perturbs nothing.
        if (checkpoint_manager is not None and checkpoint_every
                and ui + 1 < len(measured_units)
                and acc.cursor - last_ckpt >= checkpoint_every):
            extra = {
                "ui": ui + 1,
                "cursor": acc.cursor,
                "gap_insts": acc.gap_insts,
                "warmup_cycles": acc.warmup_cycles,
                "warmup_insts": acc.warmup_insts,
                "timeouts": acc.timeouts,
                "unit_insts": list(acc.unit_insts),
                "unit_cycles": list(acc.unit_cycles),
                "measured_counters": dict(acc.measured_counters),
                "seen_line": warmer._seen_line,
            }
            checkpoint_manager.store(
                ckpt.ProcessorSnapshot.capture(
                    processor, checkpoint_manager.fingerprint, extra=extra),
                ordinal=acc.cursor // checkpoint_every)
            last_ckpt = acc.cursor
            if live is not None:
                live.note_checkpoint(acc.cursor // checkpoint_every)
    # The trailing gap (after the last measured unit) warms nothing.
    if checkpoint_manager is not None:
        checkpoint_manager.clear()

    return finalize_sampled(processor, acc, sampling, total, total_units,
                            config_name, benchmark,
                            observability=observability, live=live)
