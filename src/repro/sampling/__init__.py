"""Interval-sampled simulation (SMARTS-style) and shared prep caching.

Two cooperating pieces live here:

* :mod:`repro.sampling.prep` — the per-benchmark preparation cache:
  decoded programs, oracle streams (in-process and on-disk under
  ``.repro_cache/streams/``), and trained-predictor snapshots that are
  cloned into each run instead of retrained from scratch.
* :mod:`repro.sampling.engine` — the interval-sampling engine:
  :func:`run_sampled` detail-simulates every *k*-th unit of the stream
  (each preceded by a detailed warm-up prefix), functionally
  fast-forwards the gaps via :class:`repro.core.warming.WarmingState`,
  and extrapolates a full :class:`~repro.core.simulation.SimulationResult`
  with ``sampling.*`` confidence metadata.

Sampling trades a bounded, *measured* statistical error for a large
constant-factor speedup, which is what lets experiments push instruction
counts toward paper scale.  See docs/PERFORMANCE.md for the methodology
and when to trust sampled numbers.
"""

from repro.sampling.engine import SamplingConfig, run_sampled
from repro.sampling.prep import (
    clear_prep_caches,
    get_oracle,
    warm_from_snapshot,
)

__all__ = [
    "SamplingConfig",
    "run_sampled",
    "get_oracle",
    "warm_from_snapshot",
    "clear_prep_caches",
]
