"""Per-benchmark preparation caches.

Every job sharing (benchmark, length, warm-relevant config) used to redo
the same work per run: functional emulation of the oracle stream,
fragment carving, and predictor training.  This module caches each stage
at process level and — for oracle streams of suite benchmarks — on disk
under the existing ``.repro_cache/`` directory, so fresh sweep worker
processes skip re-emulation entirely.

Three layers:

* :func:`get_oracle` — one entry point resolving a benchmark name *or* an
  ad-hoc :class:`~repro.isa.program.Program` to its decoded program and
  oracle stream, through the in-process caches (suite module / ad-hoc
  memo) and the on-disk stream cache.
* :func:`warm_from_snapshot` — functional warming via a cached
  *trained-predictor snapshot*: donor structures are trained once per
  (stream, warm-config) and cloned into each run's processor with the
  structures' ``adopt_state`` methods.  Training is deterministic, so
  the clone is bit-identical to retraining (the test suite asserts it).
* The disk layer shares ``REPRO_CACHE_DIR`` / ``REPRO_NO_CACHE``
  semantics with :mod:`repro.experiments.runner`'s result cache.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Optional, Tuple, Union

from repro.config import ProcessorConfig, env_flag
from repro.emulator.machine import Machine
from repro.emulator.stream import ExecutionResult
from repro.frontend.trace_cache import TraceCache
from repro.isa.program import Program
from repro.memory.hierarchy import MemoryHierarchy
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.liveout import LiveOutPredictor
from repro.predictors.trace_predictor import TracePredictor
from repro.stats import StatsCollector, ThreadSafeStatsCollector
from repro.workloads import suite

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.processor import Processor

#: Same knobs as the experiment result cache (repro.experiments.runner).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
NO_CACHE_ENV = "REPRO_NO_CACHE"
DEFAULT_CACHE_DIR = ".repro_cache"

#: Process-wide prep-cache observability (thread-safe: the job server's
#: executor threads run simulations — and therefore prep-cache loads —
#: concurrently).  ``prep.stream_corrupt`` counts quarantined bundles;
#: ``prep.snapshot_trains`` / ``prep.snapshot_hits`` count warm-snapshot
#: builds versus clones served from the in-process cache (grouped sweeps
#: drive the hit rate up — see ``REPRO_SWEEP_GROUP``).
PREP_STATS = ThreadSafeStatsCollector()

#: Bump to invalidate on-disk streams when the emulator/ISA changes shape.
STREAM_CACHE_VERSION = 1

#: A stream identity: ("bench", name, stream length) for suite
#: benchmarks, ("program", id, stream length) for ad-hoc programs.
StreamKey = Tuple[str, object, int]

#: Ad-hoc program -> (requested length, result).  Keyed by object id;
#: the entry pins the program so the id cannot be recycled.
_adhoc_streams: Dict[int, Tuple[Program, int, ExecutionResult]] = {}
#: (program id, length) -> memoized sliced view.
_adhoc_slices: Dict[Tuple[int, int], ExecutionResult] = {}

#: Trained warm-state snapshots, LRU-capped (each holds predictor tables
#: plus full L1/L2/trace-cache tag state — small, but not free).
_snapshots: "OrderedDict[Tuple[StreamKey, str], _WarmSnapshot]" = OrderedDict()
_SNAPSHOT_CAP = 8


def _disk_enabled() -> bool:
    return not env_flag(NO_CACHE_ENV)


def _stream_dir() -> Path:
    root = Path(os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR)
    return root / "streams"


def _stream_digest(name: str) -> str:
    """Content key for a suite benchmark's stream: the workload spec
    fully determines the program, and emulation is deterministic."""
    spec = suite.get_spec(name)
    payload = f"v{STREAM_CACHE_VERSION}|{name}|{spec!r}"
    return hashlib.sha256(payload.encode()).hexdigest()[:12]


def _load_stream_from_disk(name: str, length: int) -> Optional[int]:
    """Seed the suite's in-process caches from the on-disk prep cache.

    Each entry bundles the decoded program *with* its oracle stream —
    pickled together so the stream's records reference the program's
    own instruction objects, exactly as a fresh generate+emulate would.
    Returns the requested-length of the loaded entry (the shortest
    cached stream covering *length*), or None on a miss.  A corrupt
    bundle (torn write, pickle drift, hand-edit) is quarantined to
    ``<bundle>.pkl.corrupt`` and counted as ``prep.stream_corrupt`` —
    the same policy as the result cache, and unlike a silent unlink it
    leaves the evidence on disk for postmortems.
    """
    directory = _stream_dir()
    if not directory.is_dir():
        return None
    prefix = f"{name}-{_stream_digest(name)}-"
    best: Optional[Tuple[int, Path]] = None
    for path in directory.glob(f"{prefix}*.pkl"):
        try:
            cached_len = int(path.name[len(prefix):-4])
        except ValueError:
            continue
        if cached_len >= length and (best is None or cached_len < best[0]):
            best = (cached_len, path)
    if best is None:
        return None
    cached_len, path = best
    try:
        with open(path, "rb") as handle:
            program, result = pickle.load(handle)
        if not (isinstance(program, Program)
                and isinstance(result, ExecutionResult)):
            raise ValueError("not a (Program, ExecutionResult) bundle")
    except Exception:
        _quarantine_stream(path)
        return None
    suite.seed_program(name, program)
    suite.seed_stream(name, cached_len, result)
    return cached_len


def _quarantine_stream(path: Path) -> None:
    """Move a corrupt stream bundle aside and count it.

    Mirrors ``ResultCache``'s quarantine policy: the broken file stops
    shadowing the (re-emulated and re-stored) good entry, but stays on
    disk as ``*.pkl.corrupt`` for inspection.  The quarantined name no
    longer matches the loader's ``*.pkl`` glob, so it is never re-read.
    """
    quarantined = path.with_name(path.name + ".corrupt")
    try:
        os.replace(path, quarantined)
    except OSError:  # pragma: no cover - concurrent quarantine/unlink
        pass
    PREP_STATS.add("prep.stream_corrupt")


def _store_stream_to_disk(name: str) -> None:
    """Persist the decoded program plus the suite's longest in-process
    stream for *name*, dropping now-redundant shorter entries.
    Best-effort: I/O errors never fail the simulation."""
    entry = suite.peek_stream(name)
    program = suite.cached_program(name)
    if entry is None or program is None:
        return
    requested, result = entry
    directory = _stream_dir()
    prefix = f"{name}-{_stream_digest(name)}-"
    path = directory / f"{prefix}{requested}.pkl"
    try:
        if path.exists():
            return
        directory.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(directory), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump((program, result), handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            os.unlink(tmp)
            raise
        for stale in directory.glob(f"{prefix}*.pkl"):
            try:
                if int(stale.name[len(prefix):-4]) < requested:
                    stale.unlink(missing_ok=True)
            except ValueError:
                continue
    except OSError:
        return


def _suite_oracle(name: str, length: int) -> ExecutionResult:
    """Suite stream through all three layers: process, disk, emulate.

    The disk bundle is only loaded while the program is not yet
    generated in-process (fresh worker processes — the case the disk
    layer exists for); once a program is live, re-emulating against it
    is cheap and keeps stream/program instruction identity consistent.
    """
    if suite.cached_stream_length(name) >= length:
        return suite.oracle_stream(name, length)
    if (_disk_enabled() and suite.cached_program(name) is None
            and _load_stream_from_disk(name, length) is not None):
        return suite.oracle_stream(name, length)
    result = suite.oracle_stream(name, length)  # emulates and caches
    if _disk_enabled():
        _store_stream_to_disk(name)
    return result


def _program_oracle(program: Program, length: int) -> ExecutionResult:
    """Ad-hoc program stream, memoized by program identity so repeated
    ``run_simulation(config, program)`` calls stop re-emulating."""
    key = id(program)
    entry = _adhoc_streams.get(key)
    if entry is None or entry[0] is not program or entry[1] < length:
        result = Machine(program).run(length)
        entry = (program, length, result)
        _adhoc_streams[key] = entry
    cached = entry[2]
    if len(cached.stream) <= length:
        return cached
    slice_key = (key, length)
    sliced = _adhoc_slices.get(slice_key)
    if sliced is None:
        sliced = ExecutionResult(cached.stream[:length], cached.outputs,
                                 cached.halted)
        _adhoc_slices[slice_key] = sliced
    return sliced


def get_oracle(benchmark: Union[str, Program],
               length: int) -> Tuple[Program, ExecutionResult, StreamKey]:
    """Resolve *benchmark* to ``(program, oracle stream, stream key)``.

    The stream key identifies the stream for the warm-snapshot cache:
    suite streams by (name, stream length), ad-hoc programs by object
    identity (the prep caches pin the program, keeping ids stable).
    """
    if isinstance(benchmark, str):
        # Stream first: a disk hit seeds the program cache with the
        # bundled program, keeping instruction identity consistent.
        result = _suite_oracle(benchmark, length)
        program = suite.get_benchmark(benchmark)
        key: StreamKey = ("bench", benchmark, len(result.stream))
    else:
        program = benchmark
        result = _program_oracle(program, length)
        key = ("program", id(program), len(result.stream))
    return program, result, key


class _WarmSnapshot:
    """Donor structures trained on one (stream, warm config)."""

    __slots__ = ("bimodal", "trace_predictor", "liveout_predictor",
                 "memory", "trace_cache", "pin")

    def __init__(self, config: ProcessorConfig, pin: object):
        stats = StatsCollector()
        self.bimodal = BimodalPredictor(stats=stats)
        self.trace_predictor = TracePredictor(config.trace_predictor, stats)
        self.liveout_predictor = LiveOutPredictor(config.liveout_predictor,
                                                  stats)
        self.memory = MemoryHierarchy(config.memory, stats)
        self.trace_cache: Optional[TraceCache] = (
            TraceCache(config.frontend.trace_cache, stats)
            if config.frontend.fetch_kind == "tc" else None)
        # Keeps ad-hoc programs alive so identity-based keys stay valid.
        self.pin = pin


class _Donor:
    """Duck-typed stand-in for a Processor, warmed instead of one."""

    def __init__(self, config: ProcessorConfig, snapshot: _WarmSnapshot):
        self.config = config
        self.stats = snapshot.bimodal.stats
        self.bimodal = snapshot.bimodal
        self.trace_predictor = snapshot.trace_predictor
        self.liveout_predictor = snapshot.liveout_predictor
        self.memory = snapshot.memory
        self.trace_cache = snapshot.trace_cache


def _warm_digest(config: ProcessorConfig) -> str:
    """Digest of every config field that influences warmed state."""
    fe = config.frontend
    parts = (config.fragment, config.trace_predictor,
             config.liveout_predictor, config.memory,
             fe.trace_cache if fe.fetch_kind == "tc" else None,
             fe.fetch_kind == "tc")
    return hashlib.sha256(repr(parts).encode()).hexdigest()[:16]


def stream_fingerprint(key: StreamKey, program: Program) -> str:
    """Stable *cross-process* identity for an oracle stream.

    The in-process :data:`StreamKey` keys ad-hoc programs by object id,
    which is meaningless to another process; durable artifacts (the
    checkpoint store, see :mod:`repro.checkpoint`) need content identity
    instead.  Suite benchmarks reuse the workload-spec digest that keys
    the on-disk stream cache; ad-hoc programs hash their full text
    segment (programs are static and small, and the digest is computed
    once per run, not per instruction).
    """
    kind, ident, length = key
    if kind == "bench":
        return f"bench-{ident}-{_stream_digest(str(ident))}-{length}"
    text = "|".join(repr(inst) for inst in program.instructions)
    digest = hashlib.sha256(
        f"{program.name}|{text}".encode()).hexdigest()[:12]
    return f"program-{digest}-{length}"


def warm_from_snapshot(processor: "Processor", oracle,
                       key: StreamKey, pin: object = None) -> None:
    """Warm *processor* by cloning a cached trained snapshot.

    Equivalent to ``warm_processor(processor, oracle)`` — training is
    deterministic, so adopting the donor's end state is bit-identical to
    training in place — but the training cost is paid once per
    (stream, warm config) instead of once per run.
    """
    from repro.core.warming import WarmingState

    cache_key = (key, _warm_digest(processor.config))
    snapshot = _snapshots.get(cache_key)
    if snapshot is None:
        PREP_STATS.add("prep.snapshot_trains")
        snapshot = _WarmSnapshot(processor.config, pin)
        state = WarmingState(_Donor(processor.config, snapshot))
        state.feed(oracle)
        state.finish()
        _snapshots[cache_key] = snapshot
        if len(_snapshots) > _SNAPSHOT_CAP:
            _snapshots.popitem(last=False)
    else:
        PREP_STATS.add("prep.snapshot_hits")
        _snapshots.move_to_end(cache_key)

    processor.adopt_warm_state(snapshot)
    # Same post-warming contract as warm_processor: clean stats, empty
    # speculative history (the snapshot's history is already empty, but
    # the explicit reset keeps the invariant obvious).
    processor.stats.reset()
    processor.trace_predictor.restore_history(())


def warm_group_snapshots(configs, oracle, key: StreamKey,
                         pin: object = None) -> None:
    """Pre-train the warm snapshots for every config in one stream pass.

    The co-simulation warming amortization: distinct warm digests in
    *configs* that are not yet cached are trained together via
    :func:`repro.core.warming.warm_donor_group` — one walk of *oracle*
    per shared fragment config instead of one per digest.  Training is
    bit-identical to the on-demand :func:`warm_from_snapshot` build
    (each donor observes the same update sequence), so subsequent
    ``warm_from_snapshot`` calls serve exact clones from the cache.

    Counts ``prep.snapshot_trains`` per digest built (same as serial)
    plus ``prep.snapshot_group_shared`` for every stream pass *saved*
    by sharing (digests beyond the first in each group).
    """
    from repro.core.warming import warm_donor_group

    pending: "OrderedDict[Tuple[StreamKey, str], ProcessorConfig]" = (
        OrderedDict())
    for config in configs:
        cache_key = (key, _warm_digest(config))
        if cache_key in pending:
            continue
        if cache_key in _snapshots:
            _snapshots.move_to_end(cache_key)
            continue
        pending[cache_key] = config
    if not pending:
        return

    # Fragment carving is config-dependent only through FragmentConfig,
    # so only digests sharing one can share a stream pass.
    by_fragment: Dict[object, list] = {}
    for cache_key, config in pending.items():
        by_fragment.setdefault(config.fragment, []).append(
            (cache_key, config))

    for group in by_fragment.values():
        built = []
        for cache_key, config in group:
            PREP_STATS.add("prep.snapshot_trains")
            snapshot = _WarmSnapshot(config, pin)
            built.append((cache_key, snapshot, _Donor(config, snapshot)))
        if len(built) > 1:
            PREP_STATS.add("prep.snapshot_group_shared", len(built) - 1)
        warm_donor_group([donor for _, _, donor in built], oracle)
        for cache_key, snapshot, _ in built:
            _snapshots[cache_key] = snapshot
            if len(_snapshots) > _SNAPSHOT_CAP:
                _snapshots.popitem(last=False)


def clear_prep_caches() -> None:
    """Drop all prep caches (ad-hoc streams, warm snapshots).  The
    suite's own caches are cleared via ``suite.clear_caches()``."""
    _adhoc_streams.clear()
    _adhoc_slices.clear()
    _snapshots.clear()
