"""Disassembler: instructions (or binary images) back to assembly text.

The output is re-assemblable: ``assemble(disassemble_program(p))``
produces a program with identical instructions, which the test suite
checks for every workload.  Labels are synthesised for branch/jump
targets (``L_<hex>``) and data is emitted as ``.word``/``.space`` runs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from repro.isa.instructions import Instruction, OpClass, Opcode
from repro.isa.program import WORD_BYTES, Program
from repro.isa.registers import LINK_REG, reg_name


def _collect_targets(instructions: Iterable[Instruction]) -> Set[int]:
    targets = set()
    for inst in instructions:
        if inst.target is not None:
            targets.add(inst.target)
    return targets


def _label(addr: int) -> str:
    return f"L_{addr:x}"


def format_instruction(inst: Instruction,
                       labels: Dict[int, str] = None) -> str:
    """One instruction as assembler-ready text (without its label)."""
    labels = labels or {}
    op = inst.opcode

    def target_text() -> str:
        return labels.get(inst.target, str(inst.target))

    if op in (Opcode.NOP, Opcode.HALT):
        return op.mnemonic
    if op is Opcode.RET:
        return "ret"
    if op is Opcode.OUT:
        return f"out  {reg_name(inst.rs1)}"
    if op is Opcode.LUI:
        return f"lui  {reg_name(inst.rd)}, {inst.imm}"
    if op.op_class in (OpClass.LOAD,):
        return (f"{op.mnemonic:4} {reg_name(inst.rd)}, "
                f"{inst.imm}({reg_name(inst.rs1)})")
    if op.op_class is OpClass.STORE:
        return (f"{op.mnemonic:4} {reg_name(inst.rs2)}, "
                f"{inst.imm}({reg_name(inst.rs1)})")
    if op.op_class is OpClass.BRANCH:
        return (f"{op.mnemonic:4} {reg_name(inst.rs1)}, "
                f"{reg_name(inst.rs2)}, {target_text()}")
    if op is Opcode.J:
        return f"j    {target_text()}"
    if op is Opcode.JAL:
        if inst.rd == LINK_REG:
            return f"jal  {target_text()}"
        return f"jal  {reg_name(inst.rd)}, {target_text()}"
    if op is Opcode.JR:
        return f"jr   {reg_name(inst.rs1)}"
    if op is Opcode.JALR:
        if inst.rd == LINK_REG:
            return f"jalr {reg_name(inst.rs1)}"
        return f"jalr {reg_name(inst.rd)}, {reg_name(inst.rs1)}"
    if op is Opcode.FCVT:
        return f"fcvt {reg_name(inst.rd)}, {reg_name(inst.rs1)}"
    if inst.rs2 is not None:
        return (f"{op.mnemonic:4} {reg_name(inst.rd)}, "
                f"{reg_name(inst.rs1)}, {reg_name(inst.rs2)}")
    return (f"{op.mnemonic:4} {reg_name(inst.rd)}, "
            f"{reg_name(inst.rs1)}, {inst.imm}")


def disassemble(instructions: Iterable[Instruction]) -> str:
    """Disassemble a sequence of placed instructions (text section only)."""
    instructions = list(instructions)
    targets = _collect_targets(instructions)
    labels = {addr: _label(addr) for addr in sorted(targets)}
    lines: List[str] = []
    for inst in instructions:
        if inst.addr in labels:
            lines.append(f"{labels[inst.addr]}:")
        lines.append(f"    {format_instruction(inst, labels)}")
    return "\n".join(lines) + "\n"


def disassemble_program(program: Program) -> str:
    """Full re-assemblable source: text segment plus initialised data.

    Control-transfer targets get synthetic labels; the entry point is
    labelled ``main`` so re-assembly starts in the right place.  Data is
    rendered as ``.word`` values with ``.space`` runs for gaps.
    """
    targets = _collect_targets(program.instructions)
    labels = {addr: _label(addr) for addr in sorted(targets)}
    if program.entry is not None:
        labels[program.entry] = "main"

    lines: List[str] = ["    .text"]
    for inst in program.instructions:
        if inst.addr in labels:
            lines.append(f"{labels[inst.addr]}:")
        lines.append(f"    {format_instruction(inst, labels)}")

    if program.data_size or program.data:
        lines.append("    .data")
        cursor = program.data_base
        for addr in sorted(program.data):
            if addr < cursor:
                continue
            if addr > cursor:
                lines.append(f"    .space {addr - cursor}")
            lines.append(f"    .word {program.data[addr]}")
            cursor = addr + WORD_BYTES
        end = program.data_base + program.data_size
        if end > cursor:
            lines.append(f"    .space {end - cursor}")
    return "\n".join(lines) + "\n"
