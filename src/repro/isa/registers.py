"""Register file definition for the repro ISA.

The ISA has 32 integer registers (``r0`` .. ``r31``) and 32 floating-point
registers (``f0`` .. ``f31``).  ``r0`` is hardwired to zero, as in MIPS and
Alpha.  A handful of registers have conventional software roles which the
assembler exposes as aliases; nothing in the hardware model depends on the
aliases.

Integer and FP registers live in a single flat *architectural register
space* of 64 names so that the rename machinery can treat them uniformly:
architectural indices 0..31 are the integer registers and 32..63 are the FP
registers.
"""

from __future__ import annotations

NUM_INT_REGS = 32
NUM_FP_REGS = 32
NUM_ARCH_REGS = NUM_INT_REGS + NUM_FP_REGS

#: Architectural index of the hardwired-zero register.
ZERO_REG = 0

#: Conventional software roles (assembler aliases).
REG_ALIASES = {
    "zero": 0,
    "ra": 1,  # return address (link register for jal/call)
    "sp": 2,  # stack pointer
    "gp": 3,  # global pointer (base of the data segment)
    "a0": 4,
    "a1": 5,
    "a2": 6,
    "a3": 7,  # argument / result registers
    "t0": 8,
    "t1": 9,
    "t2": 10,
    "t3": 11,
    "t4": 12,
    "t5": 13,
    "t6": 14,
    "t7": 15,  # caller-saved temporaries
    "s0": 16,
    "s1": 17,
    "s2": 18,
    "s3": 19,
    "s4": 20,
    "s5": 21,
    "s6": 22,
    "s7": 23,  # callee-saved
}

#: Link register used by ``jal``/``call`` and read by ``ret``.
LINK_REG = REG_ALIASES["ra"]
STACK_REG = REG_ALIASES["sp"]
GLOBAL_REG = REG_ALIASES["gp"]


def is_int_reg(arch_index: int) -> bool:
    """Return True if *arch_index* names an integer register."""
    return 0 <= arch_index < NUM_INT_REGS


def is_fp_reg(arch_index: int) -> bool:
    """Return True if *arch_index* names a floating-point register."""
    return NUM_INT_REGS <= arch_index < NUM_ARCH_REGS


def fp_arch_index(fp_number: int) -> int:
    """Map an FP register number (0..31) to its architectural index."""
    if not 0 <= fp_number < NUM_FP_REGS:
        raise ValueError(f"FP register number out of range: {fp_number}")
    return NUM_INT_REGS + fp_number


def reg_name(arch_index: int) -> str:
    """Human-readable name for an architectural register index."""
    if is_int_reg(arch_index):
        return f"r{arch_index}"
    if is_fp_reg(arch_index):
        return f"f{arch_index - NUM_INT_REGS}"
    raise ValueError(f"architectural register index out of range: {arch_index}")


def parse_reg(name: str) -> int:
    """Parse a register name (``r7``, ``f3``, or an alias) to its
    architectural index.

    Raises ``ValueError`` for anything that is not a register name.
    """
    name = name.strip().lower()
    if name in REG_ALIASES:
        return REG_ALIASES[name]
    if len(name) >= 2 and name[0] in ("r", "f") and name[1:].isdigit():
        num = int(name[1:])
        if name[0] == "r":
            if num >= NUM_INT_REGS:
                raise ValueError(f"integer register out of range: {name}")
            return num
        if num >= NUM_FP_REGS:
            raise ValueError(f"FP register out of range: {name}")
        return fp_arch_index(num)
    raise ValueError(f"not a register name: {name!r}")
