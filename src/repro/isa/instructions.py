"""Instruction set definition.

The repro ISA is a small fixed-width RISC instruction set designed to be
easy to generate, emulate and fetch:

* every instruction is ``INSTRUCTION_BYTES`` (4) bytes long;
* 32 integer + 32 FP architectural registers (see :mod:`repro.isa.registers`);
* loads and stores move 8-byte words;
* control transfers carry their (absolute) target address once assembled,
  which keeps the fetch-unit models simple without changing any timing
  behaviour.

The class taxonomy (:class:`OpClass`) mirrors the functional-unit mix in
Table 1 of the paper: integer ALU, integer multiply, integer divide, FP
add, FP multiply, load, store, and the various flavours of control
transfer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.isa.registers import LINK_REG, ZERO_REG, reg_name

#: Size of every instruction in bytes.  A 64-byte cache block therefore
#: holds 16 instructions, matching Table 1.
INSTRUCTION_BYTES = 4


class OpClass(enum.Enum):
    """Functional-unit class of an instruction."""

    IALU = "ialu"  # integer add/sub/logic/shift/compare
    IMUL = "imul"  # integer multiply
    IDIV = "idiv"  # integer divide
    FADD = "fadd"  # FP add/sub/compare/convert
    FMUL = "fmul"  # FP multiply/divide
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"  # conditional direct branch
    JUMP = "jump"  # unconditional direct jump
    CALL = "call"  # direct call (writes link register)
    IJUMP = "ijump"  # indirect jump (jr)
    ICALL = "icall"  # indirect call (jalr)
    RETURN = "return"  # function return (indirect via link register)
    NOP = "nop"
    HALT = "halt"


#: Classes that transfer control.
CONTROL_CLASSES = frozenset(
    {
        OpClass.BRANCH,
        OpClass.JUMP,
        OpClass.CALL,
        OpClass.IJUMP,
        OpClass.ICALL,
        OpClass.RETURN,
        OpClass.HALT,
    }
)

#: Control classes whose target cannot be determined from the static
#: instruction alone.
INDIRECT_CLASSES = frozenset({OpClass.IJUMP, OpClass.ICALL, OpClass.RETURN})


class Opcode(enum.Enum):
    """Every opcode in the ISA.

    The value tuple is ``(mnemonic, op_class)``.
    """

    # Integer register-register.
    ADD = ("add", OpClass.IALU)
    SUB = ("sub", OpClass.IALU)
    AND = ("and", OpClass.IALU)
    OR = ("or", OpClass.IALU)
    XOR = ("xor", OpClass.IALU)
    SLL = ("sll", OpClass.IALU)
    SRL = ("srl", OpClass.IALU)
    SRA = ("sra", OpClass.IALU)
    SLT = ("slt", OpClass.IALU)
    SLTU = ("sltu", OpClass.IALU)
    MUL = ("mul", OpClass.IMUL)
    DIV = ("div", OpClass.IDIV)
    REM = ("rem", OpClass.IDIV)

    # Integer register-immediate.
    ADDI = ("addi", OpClass.IALU)
    ANDI = ("andi", OpClass.IALU)
    ORI = ("ori", OpClass.IALU)
    XORI = ("xori", OpClass.IALU)
    SLLI = ("slli", OpClass.IALU)
    SRLI = ("srli", OpClass.IALU)
    SLTI = ("slti", OpClass.IALU)
    LUI = ("lui", OpClass.IALU)

    # FP arithmetic (operates on the FP register file).
    FADD = ("fadd", OpClass.FADD)
    FSUB = ("fsub", OpClass.FADD)
    FCVT = ("fcvt", OpClass.FADD)  # int reg -> fp reg convert
    FMUL = ("fmul", OpClass.FMUL)
    FDIV = ("fdiv", OpClass.FMUL)

    # Memory.
    LD = ("ld", OpClass.LOAD)
    ST = ("st", OpClass.STORE)
    FLD = ("fld", OpClass.LOAD)
    FST = ("fst", OpClass.STORE)

    # Control.
    BEQ = ("beq", OpClass.BRANCH)
    BNE = ("bne", OpClass.BRANCH)
    BLT = ("blt", OpClass.BRANCH)
    BGE = ("bge", OpClass.BRANCH)
    J = ("j", OpClass.JUMP)
    JAL = ("jal", OpClass.CALL)
    JR = ("jr", OpClass.IJUMP)
    JALR = ("jalr", OpClass.ICALL)
    RET = ("ret", OpClass.RETURN)

    # Misc.
    NOP = ("nop", OpClass.NOP)
    HALT = ("halt", OpClass.HALT)
    OUT = ("out", OpClass.IALU)  # debug output of rs1; behaves as an ALU op

    def __init__(self, mnemonic: str, op_class: OpClass):
        self.mnemonic = mnemonic
        self.op_class = op_class


#: Mnemonic -> Opcode lookup used by the assembler.
MNEMONIC_TO_OPCODE = {op.mnemonic: op for op in Opcode}


@dataclass(frozen=True)
class Instruction:
    """A single static instruction.

    ``rd``/``rs1``/``rs2`` are architectural register indices (see
    :mod:`repro.isa.registers`); unused fields are ``None``.  ``imm`` holds
    the immediate operand; for direct control transfers ``target`` holds
    the absolute byte address of the destination once the program has been
    assembled/linked.

    Classification (``op_class``, ``is_control``, ``is_load``, ...) and
    dataflow (``src_regs()``/``dest_reg()``) are **precomputed once** in
    ``__post_init__`` and stored as plain attributes: the timing model
    consults them millions of times per simulation, and attribute loads
    are several times cheaper than property dispatch plus enum-membership
    hashing on that path.
    """

    opcode: Opcode
    rd: Optional[int] = None
    rs1: Optional[int] = None
    rs2: Optional[int] = None
    imm: int = 0
    target: Optional[int] = None
    #: Address the instruction was placed at; filled in by the assembler.
    addr: int = field(default=-1, compare=False)

    # Precomputed classification (plain attributes, not dataclass fields:
    # they are derived from ``opcode`` and must not affect eq/hash/repr).
    op_class: OpClass = field(init=False, repr=False, compare=False,
                              default=None)
    is_control: bool = field(init=False, repr=False, compare=False,
                             default=False)
    is_cond_branch: bool = field(init=False, repr=False, compare=False,
                                 default=False)
    is_indirect: bool = field(init=False, repr=False, compare=False,
                              default=False)
    is_call: bool = field(init=False, repr=False, compare=False,
                          default=False)
    is_return: bool = field(init=False, repr=False, compare=False,
                            default=False)
    is_nop: bool = field(init=False, repr=False, compare=False,
                         default=False)
    is_halt: bool = field(init=False, repr=False, compare=False,
                          default=False)
    is_load: bool = field(init=False, repr=False, compare=False,
                          default=False)
    is_store: bool = field(init=False, repr=False, compare=False,
                           default=False)
    is_mem: bool = field(init=False, repr=False, compare=False,
                         default=False)

    def __post_init__(self) -> None:
        set_attr = object.__setattr__  # frozen dataclass escape hatch
        op_class = self.opcode.op_class
        set_attr(self, "op_class", op_class)
        set_attr(self, "is_control", op_class in CONTROL_CLASSES)
        set_attr(self, "is_cond_branch", op_class is OpClass.BRANCH)
        set_attr(self, "is_indirect", op_class in INDIRECT_CLASSES)
        set_attr(self, "is_call",
                 op_class in (OpClass.CALL, OpClass.ICALL))
        set_attr(self, "is_return", op_class is OpClass.RETURN)
        set_attr(self, "is_nop", self.opcode is Opcode.NOP)
        set_attr(self, "is_halt", self.opcode is Opcode.HALT)
        set_attr(self, "is_load", op_class is OpClass.LOAD)
        set_attr(self, "is_store", op_class is OpClass.STORE)
        set_attr(self, "is_mem",
                 op_class in (OpClass.LOAD, OpClass.STORE))
        srcs = []
        if self.rs1 is not None:
            srcs.append(self.rs1)
        if self.rs2 is not None:
            srcs.append(self.rs2)
        if self.is_return:
            srcs.append(LINK_REG)
        set_attr(self, "_srcs", tuple(srcs))
        if op_class in (OpClass.CALL, OpClass.ICALL):
            dest = self.rd if self.rd is not None else LINK_REG
        else:
            dest = self.rd
        set_attr(self, "_dest", dest)

    # -- dataflow --------------------------------------------------------

    def src_regs(self) -> Tuple[int, ...]:
        """Architectural registers read by this instruction.

        ``r0`` reads are included (they rename to the permanent zero
        mapping); callers that want "real" dependences can filter it out.
        """
        return self._srcs

    def dest_reg(self) -> Optional[int]:
        """Architectural register written, or ``None``.

        Writes to ``r0`` are discarded by the emulator but still reported
        here so that the rename stage sees the same operand pattern the
        hardware decoder would.
        """
        return self._dest

    @property
    def next_addr(self) -> int:
        """Address of the sequentially-next instruction."""
        return self.addr + INSTRUCTION_BYTES

    # -- display ---------------------------------------------------------

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        parts = [self.opcode.mnemonic]
        operands = []
        if self.rd is not None:
            operands.append(reg_name(self.rd))
        if self.rs1 is not None:
            operands.append(reg_name(self.rs1))
        if self.rs2 is not None:
            operands.append(reg_name(self.rs2))
        if self.target is not None:
            operands.append(hex(self.target))
        elif self.imm:
            operands.append(str(self.imm))
        if operands:
            parts.append(", ".join(operands))
        return " ".join(parts)


def writes_zero_only(inst: Instruction) -> bool:
    """True if the instruction's only architectural effect is a write to
    ``r0`` (i.e. it is effectively a NOP for dataflow purposes)."""
    return inst.dest_reg() == ZERO_REG and not inst.is_control and not inst.is_mem
