"""Instruction set definition.

The repro ISA is a small fixed-width RISC instruction set designed to be
easy to generate, emulate and fetch:

* every instruction is ``INSTRUCTION_BYTES`` (4) bytes long;
* 32 integer + 32 FP architectural registers (see :mod:`repro.isa.registers`);
* loads and stores move 8-byte words;
* control transfers carry their (absolute) target address once assembled,
  which keeps the fetch-unit models simple without changing any timing
  behaviour.

The class taxonomy (:class:`OpClass`) mirrors the functional-unit mix in
Table 1 of the paper: integer ALU, integer multiply, integer divide, FP
add, FP multiply, load, store, and the various flavours of control
transfer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.isa.registers import LINK_REG, ZERO_REG, reg_name

#: Size of every instruction in bytes.  A 64-byte cache block therefore
#: holds 16 instructions, matching Table 1.
INSTRUCTION_BYTES = 4


class OpClass(enum.Enum):
    """Functional-unit class of an instruction."""

    IALU = "ialu"  # integer add/sub/logic/shift/compare
    IMUL = "imul"  # integer multiply
    IDIV = "idiv"  # integer divide
    FADD = "fadd"  # FP add/sub/compare/convert
    FMUL = "fmul"  # FP multiply/divide
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"  # conditional direct branch
    JUMP = "jump"  # unconditional direct jump
    CALL = "call"  # direct call (writes link register)
    IJUMP = "ijump"  # indirect jump (jr)
    ICALL = "icall"  # indirect call (jalr)
    RETURN = "return"  # function return (indirect via link register)
    NOP = "nop"
    HALT = "halt"


#: Classes that transfer control.
CONTROL_CLASSES = frozenset(
    {
        OpClass.BRANCH,
        OpClass.JUMP,
        OpClass.CALL,
        OpClass.IJUMP,
        OpClass.ICALL,
        OpClass.RETURN,
        OpClass.HALT,
    }
)

#: Control classes whose target cannot be determined from the static
#: instruction alone.
INDIRECT_CLASSES = frozenset({OpClass.IJUMP, OpClass.ICALL, OpClass.RETURN})


class Opcode(enum.Enum):
    """Every opcode in the ISA.

    The value tuple is ``(mnemonic, op_class)``.
    """

    # Integer register-register.
    ADD = ("add", OpClass.IALU)
    SUB = ("sub", OpClass.IALU)
    AND = ("and", OpClass.IALU)
    OR = ("or", OpClass.IALU)
    XOR = ("xor", OpClass.IALU)
    SLL = ("sll", OpClass.IALU)
    SRL = ("srl", OpClass.IALU)
    SRA = ("sra", OpClass.IALU)
    SLT = ("slt", OpClass.IALU)
    SLTU = ("sltu", OpClass.IALU)
    MUL = ("mul", OpClass.IMUL)
    DIV = ("div", OpClass.IDIV)
    REM = ("rem", OpClass.IDIV)

    # Integer register-immediate.
    ADDI = ("addi", OpClass.IALU)
    ANDI = ("andi", OpClass.IALU)
    ORI = ("ori", OpClass.IALU)
    XORI = ("xori", OpClass.IALU)
    SLLI = ("slli", OpClass.IALU)
    SRLI = ("srli", OpClass.IALU)
    SLTI = ("slti", OpClass.IALU)
    LUI = ("lui", OpClass.IALU)

    # FP arithmetic (operates on the FP register file).
    FADD = ("fadd", OpClass.FADD)
    FSUB = ("fsub", OpClass.FADD)
    FCVT = ("fcvt", OpClass.FADD)  # int reg -> fp reg convert
    FMUL = ("fmul", OpClass.FMUL)
    FDIV = ("fdiv", OpClass.FMUL)

    # Memory.
    LD = ("ld", OpClass.LOAD)
    ST = ("st", OpClass.STORE)
    FLD = ("fld", OpClass.LOAD)
    FST = ("fst", OpClass.STORE)

    # Control.
    BEQ = ("beq", OpClass.BRANCH)
    BNE = ("bne", OpClass.BRANCH)
    BLT = ("blt", OpClass.BRANCH)
    BGE = ("bge", OpClass.BRANCH)
    J = ("j", OpClass.JUMP)
    JAL = ("jal", OpClass.CALL)
    JR = ("jr", OpClass.IJUMP)
    JALR = ("jalr", OpClass.ICALL)
    RET = ("ret", OpClass.RETURN)

    # Misc.
    NOP = ("nop", OpClass.NOP)
    HALT = ("halt", OpClass.HALT)
    OUT = ("out", OpClass.IALU)  # debug output of rs1; behaves as an ALU op

    def __init__(self, mnemonic: str, op_class: OpClass):
        self.mnemonic = mnemonic
        self.op_class = op_class


#: Mnemonic -> Opcode lookup used by the assembler.
MNEMONIC_TO_OPCODE = {op.mnemonic: op for op in Opcode}


@dataclass(frozen=True)
class Instruction:
    """A single static instruction.

    ``rd``/``rs1``/``rs2`` are architectural register indices (see
    :mod:`repro.isa.registers`); unused fields are ``None``.  ``imm`` holds
    the immediate operand; for direct control transfers ``target`` holds
    the absolute byte address of the destination once the program has been
    assembled/linked.
    """

    opcode: Opcode
    rd: Optional[int] = None
    rs1: Optional[int] = None
    rs2: Optional[int] = None
    imm: int = 0
    target: Optional[int] = None
    #: Address the instruction was placed at; filled in by the assembler.
    addr: int = field(default=-1, compare=False)

    # -- classification -------------------------------------------------

    @property
    def op_class(self) -> OpClass:
        return self.opcode.op_class

    @property
    def is_control(self) -> bool:
        return self.opcode.op_class in CONTROL_CLASSES

    @property
    def is_cond_branch(self) -> bool:
        return self.opcode.op_class is OpClass.BRANCH

    @property
    def is_indirect(self) -> bool:
        return self.opcode.op_class in INDIRECT_CLASSES

    @property
    def is_call(self) -> bool:
        return self.opcode.op_class in (OpClass.CALL, OpClass.ICALL)

    @property
    def is_return(self) -> bool:
        return self.opcode.op_class is OpClass.RETURN

    @property
    def is_nop(self) -> bool:
        return self.opcode is Opcode.NOP

    @property
    def is_halt(self) -> bool:
        return self.opcode is Opcode.HALT

    @property
    def is_load(self) -> bool:
        return self.opcode.op_class is OpClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.opcode.op_class is OpClass.STORE

    @property
    def is_mem(self) -> bool:
        return self.opcode.op_class in (OpClass.LOAD, OpClass.STORE)

    # -- dataflow --------------------------------------------------------

    def src_regs(self) -> Tuple[int, ...]:
        """Architectural registers read by this instruction.

        ``r0`` reads are included (they rename to the permanent zero
        mapping); callers that want "real" dependences can filter it out.
        """
        srcs = []
        if self.rs1 is not None:
            srcs.append(self.rs1)
        if self.rs2 is not None:
            srcs.append(self.rs2)
        if self.is_return:
            srcs.append(LINK_REG)
        return tuple(srcs)

    def dest_reg(self) -> Optional[int]:
        """Architectural register written, or ``None``.

        Writes to ``r0`` are discarded by the emulator but still reported
        here so that the rename stage sees the same operand pattern the
        hardware decoder would.
        """
        if self.opcode.op_class in (OpClass.CALL, OpClass.ICALL):
            return self.rd if self.rd is not None else LINK_REG
        return self.rd

    @property
    def next_addr(self) -> int:
        """Address of the sequentially-next instruction."""
        return self.addr + INSTRUCTION_BYTES

    # -- display ---------------------------------------------------------

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        parts = [self.opcode.mnemonic]
        operands = []
        if self.rd is not None:
            operands.append(reg_name(self.rd))
        if self.rs1 is not None:
            operands.append(reg_name(self.rs1))
        if self.rs2 is not None:
            operands.append(reg_name(self.rs2))
        if self.target is not None:
            operands.append(hex(self.target))
        elif self.imm:
            operands.append(str(self.imm))
        if operands:
            parts.append(", ".join(operands))
        return " ".join(parts)


def writes_zero_only(inst: Instruction) -> bool:
    """True if the instruction's only architectural effect is a write to
    ``r0`` (i.e. it is effectively a NOP for dataflow purposes)."""
    return inst.dest_reg() == ZERO_REG and not inst.is_control and not inst.is_mem
