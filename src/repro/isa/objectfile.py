"""A simple object-file format for assembled programs.

``.rpo`` ("repro object") files package a program's binary text image
(via :mod:`repro.isa.encoding`), its initialised data words, its symbol
table and its entry point, so programs can be assembled once and
distributed/loaded without the assembler:

.. code-block:: text

    magic   "RPO1"
    header  little-endian u32s: text_base, text_words, data_base,
            data_size, data_entries, symbol_count, entry, name_len
    name    UTF-8 program name
    text    text_words * u32 encoded instructions
    data    data_entries * (u64 addr, i64 value)
    symbols symbol_count * (u16 len, UTF-8 name, u64 addr)

Everything is deterministic, so ``load(save(p))`` round-trips exactly —
the test suite checks instruction-for-instruction equality and identical
functional behaviour.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Union

from repro.errors import ReproError
from repro.isa.encoding import load_image, program_image
from repro.isa.program import Program

MAGIC = b"RPO1"
_HEADER = struct.Struct("<8I")
_DATA_ENTRY = struct.Struct("<Qq")
_SYMBOL_LEN = struct.Struct("<H")
_SYMBOL_ADDR = struct.Struct("<Q")


class ObjectFileError(ReproError):
    """Raised for malformed object files."""


def dumps(program: Program) -> bytes:
    """Serialise *program* to object-file bytes."""
    name_bytes = program.name.encode("utf-8")
    text = program_image(program)
    entry = program.entry if program.entry is not None else program.text_base
    out = [MAGIC,
           _HEADER.pack(program.text_base, len(program.instructions),
                        program.data_base, program.data_size,
                        len(program.data), len(program.symbols),
                        entry, len(name_bytes)),
           name_bytes, text]
    for addr in sorted(program.data):
        value = program.data[addr]
        if isinstance(value, float):
            raise ObjectFileError(
                "float data words are not serialisable; initialise FP "
                "data from integer words instead")
        out.append(_DATA_ENTRY.pack(addr, value))
    for symbol in sorted(program.symbols):
        encoded = symbol.encode("utf-8")
        out.append(_SYMBOL_LEN.pack(len(encoded)))
        out.append(encoded)
        out.append(_SYMBOL_ADDR.pack(program.symbols[symbol]))
    return b"".join(out)


def loads(blob: bytes, name: str = None) -> Program:
    """Deserialise object-file bytes back into a :class:`Program`."""
    if blob[:4] != MAGIC:
        raise ObjectFileError("not a repro object file (bad magic)")
    offset = 4
    try:
        (text_base, text_words, data_base, data_size, data_entries,
         symbol_count, entry, name_len) = _HEADER.unpack_from(blob, offset)
        offset += _HEADER.size
        file_name = blob[offset:offset + name_len].decode("utf-8")
        offset += name_len
        text_bytes = text_words * 4
        instructions = load_image(blob[offset:offset + text_bytes],
                                  text_base)
        offset += text_bytes
        data = {}
        for _ in range(data_entries):
            addr, value = _DATA_ENTRY.unpack_from(blob, offset)
            offset += _DATA_ENTRY.size
            data[addr] = value
        symbols = {}
        for _ in range(symbol_count):
            (length,) = _SYMBOL_LEN.unpack_from(blob, offset)
            offset += _SYMBOL_LEN.size
            symbol = blob[offset:offset + length].decode("utf-8")
            offset += length
            (addr,) = _SYMBOL_ADDR.unpack_from(blob, offset)
            offset += _SYMBOL_ADDR.size
            symbols[symbol] = addr
    except struct.error as exc:
        raise ObjectFileError(f"truncated object file: {exc}") from exc
    if offset != len(blob):
        raise ObjectFileError("trailing bytes after object file payload")
    return Program(instructions=instructions, text_base=text_base,
                   data=data, data_base=data_base, data_size=data_size,
                   symbols=symbols, entry=entry,
                   name=name or file_name)


def save(program: Program, path: Union[str, Path]) -> None:
    """Write *program* to an ``.rpo`` file."""
    Path(path).write_bytes(dumps(program))


def load(path: Union[str, Path]) -> Program:
    """Read a program from an ``.rpo`` file."""
    return loads(Path(path).read_bytes())
