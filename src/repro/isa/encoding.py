"""Binary encoding and decoding of instructions.

Every instruction encodes to one 32-bit word in one of four formats:

* **R-format** — ``opcode(6) rd(5) rs1(5) rs2(5) unused(11)`` for
  register-register operations;
* **I-format** — ``opcode(6) rd(5) rs1(5) imm(16)`` for immediates and
  loads/stores (the value register of a store travels in the ``rd``
  field) and conditional branches (``rd`` carries ``rs2``; ``imm`` is the
  signed word displacement);
* **J-format** — ``opcode(6) rd(5) target(21)`` for direct jumps/calls
  (word-addressed absolute target, so text may span 8 MiB);
* **N-format** — ``opcode(6) unused(26)`` for ``nop``/``halt``.

Register fields are 5 bits; floating-point operands encode their FP
register *number* with the bank implied by the opcode (as real ISAs do),
and the codec translates to/from the flat architectural index space used
everywhere else in the package.

The timing model works on decoded :class:`Instruction` objects, as all
software simulators do; the binary codec closes the loop for
storage-accurate tooling — :func:`program_image` produces the byte image
whose size the cache models assume (4 bytes/instruction) — and the
round-trip ``decode(encode(i)) == i`` is property-tested across every
generated workload.
"""

from __future__ import annotations

import struct
from typing import List, Tuple

from repro.errors import ReproError
from repro.isa.instructions import INSTRUCTION_BYTES, Instruction, Opcode
from repro.isa.program import Program
from repro.isa.registers import LINK_REG, NUM_INT_REGS

#: Stable opcode numbering (index in this table = 6-bit opcode field).
_OPCODE_TABLE: Tuple[Opcode, ...] = tuple(Opcode)
_OPCODE_INDEX = {op: i for i, op in enumerate(_OPCODE_TABLE)}
assert len(_OPCODE_TABLE) < 64, "opcode field overflow"

_IMM_BITS = 16
_IMM_MIN, _IMM_MAX = -(1 << 15), (1 << 15) - 1
_IMM_MASK = (1 << _IMM_BITS) - 1
_TARGET_BITS = 21

_R_FORMAT = frozenset({
    Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR,
    Opcode.SLL, Opcode.SRL, Opcode.SRA, Opcode.SLT, Opcode.SLTU,
    Opcode.MUL, Opcode.DIV, Opcode.REM, Opcode.FADD, Opcode.FSUB,
    Opcode.FMUL, Opcode.FDIV, Opcode.FCVT, Opcode.JR, Opcode.JALR,
    Opcode.RET, Opcode.OUT,
})
_J_FORMAT = frozenset({Opcode.J, Opcode.JAL})
_N_FORMAT = frozenset({Opcode.NOP, Opcode.HALT})
_BRANCHES = frozenset({Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE})
#: Zero-extended (logical) immediates; everything else sign-extends.
_LOGICAL_IMM = frozenset({Opcode.ANDI, Opcode.ORI, Opcode.XORI,
                          Opcode.LUI})

#: Per-opcode FP-bank flags for (rd, rs1, rs2).
_FP_OPERANDS = {
    Opcode.FADD: (True, True, True),
    Opcode.FSUB: (True, True, True),
    Opcode.FMUL: (True, True, True),
    Opcode.FDIV: (True, True, True),
    Opcode.FCVT: (True, False, False),
    Opcode.FLD: (True, False, False),
    Opcode.FST: (False, False, True),
}


class EncodingError(ReproError):
    """Raised when an instruction cannot be encoded in 32 bits, or a
    word cannot be decoded."""


def _reg_field(arch_index, fp_bank: bool, what: str) -> int:
    """Map an architectural register index to its 5-bit field value."""
    if arch_index is None:
        return 0
    value = arch_index - NUM_INT_REGS if fp_bank else arch_index
    if not 0 <= value < 32:
        raise EncodingError(f"{what} register {arch_index} not encodable "
                            f"(fp_bank={fp_bank})")
    return value


def _reg_unfield(value: int, fp_bank: bool) -> int:
    return value + NUM_INT_REGS if fp_bank else value


def _fp_banks(op: Opcode) -> Tuple[bool, bool, bool]:
    return _FP_OPERANDS.get(op, (False, False, False))


def encode(inst: Instruction) -> int:
    """Encode *inst* (placed at ``inst.addr``) into a 32-bit word."""
    op = inst.opcode
    word = _OPCODE_INDEX[op] << 26
    fp_rd, fp_rs1, fp_rs2 = _fp_banks(op)

    if op in _N_FORMAT:
        return word

    if op in _R_FORMAT:
        word |= _reg_field(inst.rd, fp_rd, "rd") << 21
        word |= _reg_field(inst.rs1, fp_rs1, "rs1") << 16
        word |= _reg_field(inst.rs2, fp_rs2, "rs2") << 11
        return word

    if op in _J_FORMAT:
        if inst.target is None:
            raise EncodingError(f"{op.mnemonic} without a target")
        if inst.target % INSTRUCTION_BYTES:
            raise EncodingError(f"unaligned target {inst.target:#x}")
        target = inst.target // INSTRUCTION_BYTES
        if not 0 <= target < (1 << _TARGET_BITS):
            raise EncodingError(f"jump target {inst.target:#x} "
                                "outside the 8 MiB encodable text region")
        word |= _reg_field(inst.rd, False, "rd") << 21
        return word | target

    # I-format.
    if op in _BRANCHES:
        if inst.target is None:
            raise EncodingError("branch without a target")
        if inst.addr < 0:
            raise EncodingError("cannot encode an unplaced branch "
                                "(PC-relative displacement needs addr)")
        displacement = (inst.target - inst.addr) // INSTRUCTION_BYTES
        if not _IMM_MIN <= displacement <= _IMM_MAX:
            raise EncodingError(
                f"branch displacement {displacement} out of range")
        word |= _reg_field(inst.rs2, False, "rs2") << 21
        word |= _reg_field(inst.rs1, False, "rs1") << 16
        return word | (displacement & _IMM_MASK)

    imm = inst.imm
    if op in _LOGICAL_IMM:
        if not 0 <= imm <= _IMM_MASK:
            raise EncodingError(f"logical immediate {imm} out of range")
    elif not _IMM_MIN <= imm <= _IMM_MAX:
        raise EncodingError(f"immediate {imm} out of range")

    if op in (Opcode.ST, Opcode.FST):
        word |= _reg_field(inst.rs2, fp_rs2, "rs2") << 21
    else:
        word |= _reg_field(inst.rd, fp_rd, "rd") << 21
    word |= _reg_field(inst.rs1, fp_rs1, "rs1") << 16
    return word | (imm & _IMM_MASK)


def _sign_extend(value: int, bits: int) -> int:
    mask = 1 << (bits - 1)
    return (value & (mask - 1)) - (value & mask)


def decode(word: int, addr: int) -> Instruction:
    """Decode a 32-bit word at byte address *addr*."""
    if not 0 <= word < (1 << 32):
        raise EncodingError(f"not a 32-bit word: {word:#x}")
    index = word >> 26
    if index >= len(_OPCODE_TABLE):
        raise EncodingError(f"illegal opcode field {index}")
    op = _OPCODE_TABLE[index]
    fp_rd, fp_rs1, fp_rs2 = _fp_banks(op)
    field_a = (word >> 21) & 0x1F     # rd (or rs2 for stores/branches)
    field_b = (word >> 16) & 0x1F     # rs1
    field_c = (word >> 11) & 0x1F     # rs2 (R-format)
    imm = word & _IMM_MASK

    if op in _N_FORMAT:
        return Instruction(op, addr=addr)

    if op in _R_FORMAT:
        if op is Opcode.RET:
            return Instruction(op, rs1=LINK_REG, addr=addr)
        if op is Opcode.JR:
            return Instruction(op, rs1=_reg_unfield(field_b, fp_rs1),
                               addr=addr)
        if op in (Opcode.OUT,):
            return Instruction(op, rs1=_reg_unfield(field_b, fp_rs1),
                               addr=addr)
        if op is Opcode.JALR:
            return Instruction(op, rd=_reg_unfield(field_a, fp_rd),
                               rs1=_reg_unfield(field_b, fp_rs1),
                               addr=addr)
        if op is Opcode.FCVT:
            return Instruction(op, rd=_reg_unfield(field_a, fp_rd),
                               rs1=_reg_unfield(field_b, fp_rs1),
                               addr=addr)
        return Instruction(op, rd=_reg_unfield(field_a, fp_rd),
                           rs1=_reg_unfield(field_b, fp_rs1),
                           rs2=_reg_unfield(field_c, fp_rs2), addr=addr)

    if op in _J_FORMAT:
        target = (word & ((1 << _TARGET_BITS) - 1)) * INSTRUCTION_BYTES
        rd = _reg_unfield(field_a, False) if op is Opcode.JAL else None
        return Instruction(op, rd=rd, target=target, addr=addr)

    if op in _BRANCHES:
        displacement = _sign_extend(imm, _IMM_BITS)
        return Instruction(op, rs1=_reg_unfield(field_b, False),
                           rs2=_reg_unfield(field_a, False),
                           target=addr + displacement * INSTRUCTION_BYTES,
                           addr=addr)

    value = imm if op in _LOGICAL_IMM else _sign_extend(imm, _IMM_BITS)
    if op in (Opcode.ST, Opcode.FST):
        return Instruction(op, rs1=_reg_unfield(field_b, fp_rs1),
                           rs2=_reg_unfield(field_a, fp_rs2), imm=value,
                           addr=addr)
    if op in (Opcode.LD, Opcode.FLD):
        return Instruction(op, rd=_reg_unfield(field_a, fp_rd),
                           rs1=_reg_unfield(field_b, fp_rs1), imm=value,
                           addr=addr)
    if op is Opcode.LUI:
        return Instruction(op, rd=_reg_unfield(field_a, False), imm=value,
                           addr=addr)
    return Instruction(op, rd=_reg_unfield(field_a, fp_rd),
                       rs1=_reg_unfield(field_b, fp_rs1), imm=value,
                       addr=addr)


def program_image(program: Program) -> bytes:
    """The little-endian binary image of the program's text segment."""
    words: List[int] = [encode(inst) for inst in program.instructions]
    return struct.pack(f"<{len(words)}I", *words)


def load_image(image: bytes, text_base: int) -> List[Instruction]:
    """Decode a binary text image back into instructions."""
    if len(image) % INSTRUCTION_BYTES:
        raise EncodingError("image length not a multiple of 4")
    count = len(image) // INSTRUCTION_BYTES
    words = struct.unpack(f"<{count}I", image)
    return [decode(word, text_base + i * INSTRUCTION_BYTES)
            for i, word in enumerate(words)]
