"""Static program representation.

A :class:`Program` is the unit the emulator and the timing model both
consume: a contiguous text segment of :class:`~repro.isa.instructions.Instruction`
objects plus an initialised data segment and a symbol table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.errors import ReproError
from repro.isa.instructions import INSTRUCTION_BYTES, Instruction

#: Default base address of the text segment.
TEXT_BASE = 0x1000
#: Default base address of the data segment.
DATA_BASE = 0x100000
#: Size in bytes of a data word (``ld``/``st`` granularity).
WORD_BYTES = 8
#: Default initial stack pointer (grows down, far above the data segment).
STACK_BASE = 0x4000000


@dataclass
class Program:
    """An assembled program.

    Attributes:
        instructions: text segment in address order.
        text_base: byte address of ``instructions[0]``.
        data: initial contents of the data segment, ``{byte_addr: word}``.
        data_base: first byte address of the data segment.
        data_size: size of the data segment in bytes.
        symbols: label -> byte address.
        entry: address execution starts at.
        name: human-readable program name (used in reports).
    """

    instructions: List[Instruction]
    text_base: int = TEXT_BASE
    data: Dict[int, int] = field(default_factory=dict)
    data_base: int = DATA_BASE
    data_size: int = 0
    symbols: Dict[str, int] = field(default_factory=dict)
    entry: Optional[int] = None
    name: str = "program"

    def __post_init__(self) -> None:
        if self.entry is None:
            self.entry = self.symbols.get("main", self.text_base)
        # Hot-path constants: fetch/emulation translate PCs to
        # instructions millions of times per run, so the bounds and the
        # address->instruction map are precomputed here rather than
        # re-derived per lookup.
        self._text_end = (self.text_base
                          + len(self.instructions) * INSTRUCTION_BYTES)
        self._by_addr = {
            self.text_base + i * INSTRUCTION_BYTES: inst
            for i, inst in enumerate(self.instructions)
        }

    # -- text segment ----------------------------------------------------

    @property
    def text_size(self) -> int:
        """Size of the text segment in bytes (the code footprint)."""
        return len(self.instructions) * INSTRUCTION_BYTES

    @property
    def text_end(self) -> int:
        """First byte address past the text segment."""
        return self._text_end

    def contains_addr(self, addr: int) -> bool:
        """True if *addr* falls inside the text segment."""
        return self.text_base <= addr < self._text_end

    def index_of(self, addr: int) -> int:
        """Index into ``instructions`` for byte address *addr*."""
        if not self.contains_addr(addr):
            raise ReproError(f"PC {addr:#x} outside text segment "
                             f"[{self.text_base:#x}, {self._text_end:#x})")
        offset = addr - self.text_base
        if offset % INSTRUCTION_BYTES:
            raise ReproError(f"unaligned PC {addr:#x}")
        return offset // INSTRUCTION_BYTES

    def inst_at(self, addr: int) -> Instruction:
        """The instruction stored at byte address *addr*."""
        inst = self._by_addr.get(addr)
        if inst is None:
            self.index_of(addr)  # raises the precise diagnostic
            raise ReproError(f"unaligned PC {addr:#x}")  # pragma: no cover
        return inst

    def iter_from(self, addr: int) -> Iterator[Instruction]:
        """Iterate instructions in static order starting at *addr*."""
        idx = self.index_of(addr)
        return iter(self.instructions[idx:])

    # -- symbols ---------------------------------------------------------

    def address_of(self, label: str) -> int:
        """Address of *label*; raises ReproError when unknown."""
        try:
            return self.symbols[label]
        except KeyError:
            raise ReproError(f"unknown symbol {label!r}") from None

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Program({self.name!r}, {len(self.instructions)} insts, "
                f"text={self.text_size}B, data={self.data_size}B)")


def link(instructions: List[Instruction], text_base: int = TEXT_BASE) -> List[Instruction]:
    """Assign addresses to a list of instructions.

    Returns a new list whose elements carry their final ``addr``.  Direct
    control-transfer targets are expected to already be absolute addresses.
    """
    placed = []
    addr = text_base
    for inst in instructions:
        placed.append(Instruction(
            opcode=inst.opcode, rd=inst.rd, rs1=inst.rs1, rs2=inst.rs2,
            imm=inst.imm, target=inst.target, addr=addr,
        ))
        addr += INSTRUCTION_BYTES
    return placed
