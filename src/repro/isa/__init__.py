"""The repro instruction set: definitions, programs, and the assembler."""

from repro.isa.assembler import Assembler, assemble
from repro.isa.disassembler import (
    disassemble,
    disassemble_program,
    format_instruction,
)
from repro.isa.encoding import (
    EncodingError,
    decode,
    encode,
    load_image,
    program_image,
)
from repro.isa.objectfile import (
    ObjectFileError,
    dumps,
    load,
    loads,
    save,
)
from repro.isa.instructions import (
    INSTRUCTION_BYTES,
    Instruction,
    OpClass,
    Opcode,
)
from repro.isa.program import (
    DATA_BASE,
    STACK_BASE,
    TEXT_BASE,
    WORD_BYTES,
    Program,
    link,
)
from repro.isa.registers import (
    LINK_REG,
    NUM_ARCH_REGS,
    NUM_INT_REGS,
    ZERO_REG,
    parse_reg,
    reg_name,
)

__all__ = [
    "Assembler",
    "assemble",
    "disassemble",
    "disassemble_program",
    "format_instruction",
    "encode",
    "decode",
    "program_image",
    "load_image",
    "EncodingError",
    "ObjectFileError",
    "dumps",
    "loads",
    "save",
    "load",
    "Instruction",
    "Opcode",
    "OpClass",
    "INSTRUCTION_BYTES",
    "Program",
    "link",
    "TEXT_BASE",
    "DATA_BASE",
    "STACK_BASE",
    "WORD_BYTES",
    "LINK_REG",
    "ZERO_REG",
    "NUM_ARCH_REGS",
    "NUM_INT_REGS",
    "parse_reg",
    "reg_name",
]
