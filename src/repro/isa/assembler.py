"""Two-pass assembler for the repro ISA.

The assembly language is deliberately small but complete enough to write
real benchmark kernels:

.. code-block:: asm

        .text
    main:
        la   t0, arr          # pseudo: load address
        li   t1, 10           # pseudo: load immediate
    loop:
        ld   t2, 0(t0)
        add  s0, s0, t2
        addi t0, t0, 8
        addi t1, t1, -1
        bne  t1, zero, loop
        halt

        .data
    arr:
        .word 1, 2, 3, 4, 5, 6, 7, 8, 9, 10

Supported directives: ``.text``, ``.data``, ``.word`` (8-byte words),
``.space N`` (N bytes, zeroed), ``.align N`` (align to N bytes).
Comments start with ``#`` or ``;``.

Pseudo-instructions: ``li``, ``la``, ``mv``, ``call``, ``b``, ``bgt``,
``ble``, ``ret`` and ``nop`` (the last two are real opcodes but take no
operands).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.errors import AssemblerError
from repro.isa.instructions import (
    INSTRUCTION_BYTES,
    MNEMONIC_TO_OPCODE,
    Instruction,
    OpClass,
    Opcode,
)
from repro.isa.program import DATA_BASE, TEXT_BASE, WORD_BYTES, Program
from repro.isa.registers import LINK_REG, parse_reg

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_MEM_OPERAND_RE = re.compile(r"^(-?\w+)\((\w+)\)$")

#: Signed 16-bit immediate range for I-format instructions.
IMM_MIN, IMM_MAX = -(1 << 15), (1 << 15) - 1


def _parse_int(text: str, line: int) -> int:
    try:
        return int(text, 0)
    except ValueError:
        raise AssemblerError(f"bad integer literal {text!r}", line) from None


class _Statement:
    """One source statement after pass 1: mnemonic + operands + address."""

    __slots__ = ("mnemonic", "operands", "line", "addr")

    def __init__(self, mnemonic: str, operands: List[str], line: int, addr: int):
        self.mnemonic = mnemonic
        self.operands = operands
        self.line = line
        self.addr = addr


def _pseudo_size(mnemonic: str, operands: List[str], line: int) -> int:
    """Number of real instructions a statement expands to (pass 1)."""
    if mnemonic == "li":
        if len(operands) != 2:
            raise AssemblerError("li needs 2 operands", line)
        value = _parse_int(operands[1], line)
        return 1 if IMM_MIN <= value <= IMM_MAX else 2
    if mnemonic == "la":
        return 2
    return 1


class Assembler:
    """Assembles source text into a :class:`Program`."""

    def __init__(self, text_base: int = TEXT_BASE, data_base: int = DATA_BASE):
        self.text_base = text_base
        self.data_base = data_base

    # -- public API -------------------------------------------------------

    def assemble(self, source: str, name: str = "program") -> Program:
        """Assemble *source* and return the linked :class:`Program`."""
        statements, symbols, data, data_size = self._pass1(source)
        instructions = self._pass2(statements, symbols)
        return Program(
            instructions=instructions,
            text_base=self.text_base,
            data=data,
            data_base=self.data_base,
            data_size=data_size,
            symbols=symbols,
            name=name,
        )

    # -- pass 1: layout ----------------------------------------------------

    def _pass1(self, source: str) -> Tuple[List[_Statement], Dict[str, int],
                                           Dict[int, int], int]:
        statements: List[_Statement] = []
        symbols: Dict[str, int] = {}
        data: Dict[int, int] = {}
        # .word operands may reference labels defined later; collect the
        # raw tokens and resolve them once all symbols are known.
        data_tokens: List[Tuple[int, str, int]] = []
        in_text = True
        text_addr = self.text_base
        data_addr = self.data_base

        for lineno, raw in enumerate(source.splitlines(), start=1):
            line = raw.split("#")[0].split(";")[0].strip()
            while line:
                match = _LABEL_RE.match(line)
                if match:
                    label = match.group(1)
                    if label in symbols:
                        raise AssemblerError(f"duplicate label {label!r}", lineno)
                    symbols[label] = text_addr if in_text else data_addr
                    line = line[match.end():].strip()
                    continue
                break
            if not line:
                continue

            parts = line.split(None, 1)
            mnemonic = parts[0].lower()
            rest = parts[1] if len(parts) > 1 else ""
            operands = [op.strip() for op in rest.split(",")] if rest else []

            if mnemonic == ".text":
                in_text = True
            elif mnemonic == ".data":
                in_text = False
            elif mnemonic == ".word":
                if in_text:
                    raise AssemblerError(".word in text segment", lineno)
                for op in operands:
                    data_tokens.append((data_addr, op, lineno))
                    data_addr += WORD_BYTES
            elif mnemonic == ".space":
                if in_text:
                    raise AssemblerError(".space in text segment", lineno)
                size = _parse_int(operands[0], lineno)
                if size < 0:
                    raise AssemblerError("negative .space size", lineno)
                data_addr += size
            elif mnemonic == ".align":
                boundary = _parse_int(operands[0], lineno)
                if boundary <= 0 or boundary & (boundary - 1):
                    raise AssemblerError(".align needs a power of two", lineno)
                if in_text:
                    raise AssemblerError(".align in text segment", lineno)
                data_addr = (data_addr + boundary - 1) & ~(boundary - 1)
            elif mnemonic.startswith("."):
                raise AssemblerError(f"unknown directive {mnemonic!r}", lineno)
            else:
                if not in_text:
                    raise AssemblerError("instruction in data segment", lineno)
                statements.append(_Statement(mnemonic, operands, lineno, text_addr))
                text_addr += (_pseudo_size(mnemonic, operands, lineno)
                              * INSTRUCTION_BYTES)

        for addr, token, lineno in data_tokens:
            if token in symbols:
                data[addr] = symbols[token]
            else:
                data[addr] = _parse_int(token, lineno)
        return statements, symbols, data, data_addr - self.data_base

    # -- pass 2: encode ------------------------------------------------------

    def _pass2(self, statements: List[_Statement],
               symbols: Dict[str, int]) -> List[Instruction]:
        instructions: List[Instruction] = []
        for stmt in statements:
            for inst in self._encode(stmt, symbols):
                instructions.append(inst)
        return instructions

    def _resolve(self, token: str, symbols: Dict[str, int], line: int) -> int:
        """Resolve a label or integer literal to a value."""
        if token in symbols:
            return symbols[token]
        return _parse_int(token, line)

    def _reg(self, token: str, line: int) -> int:
        try:
            return parse_reg(token)
        except ValueError as exc:
            raise AssemblerError(str(exc), line) from None

    def _imm(self, token: str, symbols: Dict[str, int], line: int) -> int:
        value = self._resolve(token, symbols, line)
        if not IMM_MIN <= value <= IMM_MAX:
            raise AssemblerError(
                f"immediate {value} out of 16-bit range (use li/la)", line)
        return value

    def _imm_logical(self, token: str, symbols: Dict[str, int],
                     line: int) -> int:
        """Logical immediates (andi/ori/xori) are zero-extended 16-bit."""
        value = self._resolve(token, symbols, line)
        if not 0 <= value <= 0xFFFF:
            raise AssemblerError(
                f"logical immediate {value} out of 0..65535 range", line)
        return value

    def _encode(self, stmt: _Statement,
                symbols: Dict[str, int]) -> List[Instruction]:
        m, ops, line, addr = stmt.mnemonic, stmt.operands, stmt.line, stmt.addr
        expanded = self._expand_pseudo(m, ops, symbols, line)
        if expanded is not None:
            placed = []
            for i, inst in enumerate(expanded):
                placed.append(Instruction(
                    opcode=inst.opcode, rd=inst.rd, rs1=inst.rs1,
                    rs2=inst.rs2, imm=inst.imm, target=inst.target,
                    addr=addr + i * INSTRUCTION_BYTES))
            return placed

        opcode = MNEMONIC_TO_OPCODE.get(m)
        if opcode is None:
            raise AssemblerError(f"unknown mnemonic {m!r}", line)

        def need(n: int) -> None:
            if len(ops) != n:
                raise AssemblerError(
                    f"{m} needs {n} operand(s), got {len(ops)}", line)

        cls = opcode.op_class
        if opcode in (Opcode.NOP, Opcode.HALT):
            need(0)
            return [Instruction(opcode, addr=addr)]
        if opcode is Opcode.RET:
            need(0)
            return [Instruction(opcode, rs1=LINK_REG, addr=addr)]
        if opcode is Opcode.OUT:
            need(1)
            return [Instruction(opcode, rs1=self._reg(ops[0], line), addr=addr)]
        if opcode is Opcode.LUI:
            need(2)
            return [Instruction(opcode, rd=self._reg(ops[0], line),
                                imm=self._resolve(ops[1], symbols, line),
                                addr=addr)]
        if opcode in (Opcode.ANDI, Opcode.ORI, Opcode.XORI):
            need(3)
            return [Instruction(opcode, rd=self._reg(ops[0], line),
                                rs1=self._reg(ops[1], line),
                                imm=self._imm_logical(ops[2], symbols,
                                                      line),
                                addr=addr)]
        if opcode in (Opcode.ADDI, Opcode.SLLI, Opcode.SRLI, Opcode.SLTI):
            need(3)
            return [Instruction(opcode, rd=self._reg(ops[0], line),
                                rs1=self._reg(ops[1], line),
                                imm=self._imm(ops[2], symbols, line),
                                addr=addr)]
        if cls in (OpClass.IALU, OpClass.IMUL, OpClass.IDIV,
                   OpClass.FADD, OpClass.FMUL) and opcode is not Opcode.FCVT:
            need(3)
            return [Instruction(opcode, rd=self._reg(ops[0], line),
                                rs1=self._reg(ops[1], line),
                                rs2=self._reg(ops[2], line), addr=addr)]
        if opcode is Opcode.FCVT:
            need(2)
            return [Instruction(opcode, rd=self._reg(ops[0], line),
                                rs1=self._reg(ops[1], line), addr=addr)]
        if cls is OpClass.LOAD:
            need(2)
            base, offset = self._mem_operand(ops[1], symbols, line)
            return [Instruction(opcode, rd=self._reg(ops[0], line),
                                rs1=base, imm=offset, addr=addr)]
        if cls is OpClass.STORE:
            need(2)
            base, offset = self._mem_operand(ops[1], symbols, line)
            return [Instruction(opcode, rs1=base,
                                rs2=self._reg(ops[0], line),
                                imm=offset, addr=addr)]
        if cls is OpClass.BRANCH:
            need(3)
            return [Instruction(opcode, rs1=self._reg(ops[0], line),
                                rs2=self._reg(ops[1], line),
                                target=self._resolve(ops[2], symbols, line),
                                addr=addr)]
        if opcode is Opcode.J:
            need(1)
            return [Instruction(opcode,
                                target=self._resolve(ops[0], symbols, line),
                                addr=addr)]
        if opcode is Opcode.JAL:
            if len(ops) == 1:
                return [Instruction(opcode, rd=LINK_REG,
                                    target=self._resolve(ops[0], symbols, line),
                                    addr=addr)]
            need(2)
            return [Instruction(opcode, rd=self._reg(ops[0], line),
                                target=self._resolve(ops[1], symbols, line),
                                addr=addr)]
        if opcode is Opcode.JR:
            need(1)
            return [Instruction(opcode, rs1=self._reg(ops[0], line), addr=addr)]
        if opcode is Opcode.JALR:
            if len(ops) == 1:
                return [Instruction(opcode, rd=LINK_REG,
                                    rs1=self._reg(ops[0], line), addr=addr)]
            need(2)
            return [Instruction(opcode, rd=self._reg(ops[0], line),
                                rs1=self._reg(ops[1], line), addr=addr)]
        raise AssemblerError(f"cannot encode {m!r}", line)  # pragma: no cover

    def _mem_operand(self, token: str, symbols: Dict[str, int],
                     line: int) -> Tuple[int, int]:
        """Parse ``imm(reg)`` memory operands."""
        match = _MEM_OPERAND_RE.match(token.replace(" ", ""))
        if not match:
            raise AssemblerError(f"bad memory operand {token!r}", line)
        offset_text, reg_text = match.groups()
        offset = self._resolve(offset_text, symbols, line)
        if not IMM_MIN <= offset <= IMM_MAX:
            raise AssemblerError(f"memory offset {offset} out of range", line)
        return self._reg(reg_text, line), offset

    def _expand_pseudo(self, m: str, ops: List[str],
                       symbols: Dict[str, int],
                       line: int) -> Optional[List[Instruction]]:
        """Expand pseudo-instructions; return None for real opcodes."""
        if m == "li":
            if len(ops) != 2:
                raise AssemblerError("li needs 2 operands", line)
            rd = self._reg(ops[0], line)
            value = _parse_int(ops[1], line)
            return self._materialise(rd, value, line)
        if m == "la":
            if len(ops) != 2:
                raise AssemblerError("la needs 2 operands", line)
            rd = self._reg(ops[0], line)
            value = self._resolve(ops[1], symbols, line)
            return self._materialise(rd, value, line, force_wide=True)
        if m == "mv":
            if len(ops) != 2:
                raise AssemblerError("mv needs 2 operands", line)
            return [Instruction(Opcode.ADDI, rd=self._reg(ops[0], line),
                                rs1=self._reg(ops[1], line), imm=0)]
        if m == "call":
            if len(ops) != 1:
                raise AssemblerError("call needs 1 operand", line)
            return [Instruction(Opcode.JAL, rd=LINK_REG,
                                target=self._resolve(ops[0], symbols, line))]
        if m == "b":
            if len(ops) != 1:
                raise AssemblerError("b needs 1 operand", line)
            return [Instruction(Opcode.J,
                                target=self._resolve(ops[0], symbols, line))]
        if m == "bgt":  # bgt a, b, L  ==  blt b, a, L
            if len(ops) != 3:
                raise AssemblerError("bgt needs 3 operands", line)
            return [Instruction(Opcode.BLT, rs1=self._reg(ops[1], line),
                                rs2=self._reg(ops[0], line),
                                target=self._resolve(ops[2], symbols, line))]
        if m == "ble":  # ble a, b, L  ==  bge b, a, L
            if len(ops) != 3:
                raise AssemblerError("ble needs 3 operands", line)
            return [Instruction(Opcode.BGE, rs1=self._reg(ops[1], line),
                                rs2=self._reg(ops[0], line),
                                target=self._resolve(ops[2], symbols, line))]
        return None

    def _materialise(self, rd: int, value: int, line: int,
                     force_wide: bool = False) -> List[Instruction]:
        """Emit instructions that load *value* into *rd*."""
        if not force_wide and IMM_MIN <= value <= IMM_MAX:
            return [Instruction(Opcode.ADDI, rd=rd, rs1=0, imm=value)]
        if not 0 <= value < (1 << 32):
            raise AssemblerError(f"li/la value {value} out of 32-bit range",
                                 line)
        high, low = value >> 16, value & 0xFFFF
        return [Instruction(Opcode.LUI, rd=rd, imm=high),
                Instruction(Opcode.ORI, rd=rd, rs1=rd, imm=low)]


def assemble(source: str, name: str = "program", **kwargs) -> Program:
    """Convenience wrapper: assemble *source* with default bases."""
    return Assembler(**kwargs).assemble(source, name=name)
