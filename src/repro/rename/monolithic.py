"""Monolithic (sequential) rename.

One rename unit processes the in-order instruction stream up to ``width``
instructions per cycle.  Because the stream must be consumed in order, the
renamer cannot proceed past the oldest fragment's unfetched instructions —
the serialization Section 3.4 identifies as the limiter of parallel fetch
with a sequential rename stage.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.uop import MicroOp
from repro.frontend.buffers import FragmentInFlight
from repro.isa.registers import NUM_ARCH_REGS
from repro.rename.base import MakeUop, dest_of, source_regs
from repro.stats import StatsCollector


class MonolithicRenamer:
    """A single ``width``-wide in-order rename unit."""

    def __init__(self, width: int, window, stats: StatsCollector):
        self.width = width
        self.window = window
        self.stats = stats
        #: Running architectural-to-producer map, indexed by architectural
        #: register number (array-backed: rename probes it once per source
        #: operand, and a list index is markedly cheaper than a dict probe
        #: on that path).  ``None`` means the register reads architectural
        #: state.
        self._map: List[Optional[MicroOp]] = [None] * NUM_ARCH_REGS

    def cycle(self, now: int, fragments: List[FragmentInFlight],
              make_uop: MakeUop) -> List[MicroOp]:
        """Rename up to ``width`` instructions in program order."""
        budget = self.width
        renamed: List[MicroOp] = []
        reg_map = self._map
        for fragment in fragments:
            if budget <= 0:
                break
            if fragment.squashed or fragment.rename_done:
                continue
            # Fetch and truncation state cannot change inside this cycle
            # (fetch runs after rename in Processor.step), so the number
            # of renameable instructions is computed once per fragment.
            available = fragment.renameable_count()
            if fragment.rename_started_cycle < 0 and available:
                fragment.rename_started_cycle = now
                self._note_construction(fragment)
            while budget > 0 and available > 0:
                if not self.window.reserve_single(fragment.seq):
                    # NB: deliberately skips the rename.insts accounting
                    # below, faithful to the original stall behaviour.
                    self.stats.add("rename.window_stalls")
                    return renamed
                uop = make_uop(fragment, fragment.read_count)
                sources = uop.sources
                for src in source_regs(uop):
                    producer = reg_map[src]
                    if producer is not None:
                        sources.append(producer)
                dest = dest_of(uop)
                if dest is not None:
                    reg_map[dest] = uop
                    fragment.internal_writers[dest] = uop
                fragment.read_count += 1
                fragment.uops.append(uop)
                renamed.append(uop)
                budget -= 1
                available -= 1
            if fragment.read_count >= fragment.length:
                fragment.rename_done = True
                fragment.rename_done_cycle = now
                continue
            # In-order rename cannot skip past unfetched instructions.
            break
        self.stats.add("rename.insts", len(renamed))
        return renamed

    def _note_construction(self, fragment: FragmentInFlight) -> None:
        """Section 3.3 statistic: was the fragment fully constructed by the
        time rename first touched it?"""
        self.stats.add("rename.fragments_started")
        if fragment.complete:
            self.stats.add("rename.fragments_preconstructed")

    def rebuild(self, fragments: List[FragmentInFlight]) -> None:
        """Rebuild the map from surviving uops after a squash."""
        reg_map = self._map = [None] * NUM_ARCH_REGS
        for fragment in fragments:
            if fragment.squashed:
                continue
            for uop in fragment.uops:
                dest = dest_of(uop)
                if dest is not None:
                    reg_map[dest] = uop
