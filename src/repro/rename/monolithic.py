"""Monolithic (sequential) rename.

One rename unit processes the in-order instruction stream up to ``width``
instructions per cycle.  Because the stream must be consumed in order, the
renamer cannot proceed past the oldest fragment's unfetched instructions —
the serialization Section 3.4 identifies as the limiter of parallel fetch
with a sequential rename stage.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.uop import MicroOp
from repro.frontend.buffers import FragmentInFlight
from repro.isa.registers import ZERO_REG
from repro.rename.base import MakeUop, link_sources
from repro.stats import StatsCollector


class MonolithicRenamer:
    """A single ``width``-wide in-order rename unit."""

    def __init__(self, width: int, window, stats: StatsCollector):
        self.width = width
        self.window = window
        self.stats = stats
        #: Running architectural-to-producer map.
        self._map: Dict[int, MicroOp] = {}

    def cycle(self, now: int, fragments: List[FragmentInFlight],
              make_uop: MakeUop) -> List[MicroOp]:
        budget = self.width
        renamed: List[MicroOp] = []
        for fragment in fragments:
            if budget <= 0:
                break
            if fragment.squashed or fragment.rename_done:
                continue
            if fragment.rename_started_cycle < 0 and fragment.renameable_count():
                fragment.rename_started_cycle = now
                self._note_construction(fragment)
            while budget > 0 and fragment.renameable_count() > 0:
                if not self.window.reserve_single(fragment.seq):
                    self.stats.add("rename.window_stalls")
                    return renamed
                uop = make_uop(fragment, fragment.read_count)
                link_sources(uop, self._map)
                dest = uop.inst.dest_reg()
                if dest is not None and dest != ZERO_REG:
                    self._map[dest] = uop
                    fragment.internal_writers[dest] = uop
                fragment.read_count += 1
                fragment.uops.append(uop)
                renamed.append(uop)
                budget -= 1
            if fragment.read_count >= fragment.length:
                fragment.rename_done = True
                fragment.rename_done_cycle = now
                continue
            # In-order rename cannot skip past unfetched instructions.
            break
        self.stats.add("rename.insts", len(renamed))
        return renamed

    def _note_construction(self, fragment: FragmentInFlight) -> None:
        """Section 3.3 statistic: was the fragment fully constructed by the
        time rename first touched it?"""
        self.stats.add("rename.fragments_started")
        if fragment.complete:
            self.stats.add("rename.fragments_preconstructed")

    def rebuild(self, fragments: List[FragmentInFlight]) -> None:
        """Rebuild the map from surviving uops after a squash."""
        self._map = {}
        for fragment in fragments:
            if fragment.squashed:
                continue
            for uop in fragment.uops:
                dest = uop.inst.dest_reg()
                if dest is not None and dest != ZERO_REG:
                    self._map[dest] = uop
