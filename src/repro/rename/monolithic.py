"""Monolithic (sequential) rename.

One rename unit processes the in-order instruction stream up to ``width``
instructions per cycle.  Because the stream must be consumed in order, the
renamer cannot proceed past the oldest fragment's unfetched instructions —
the serialization Section 3.4 identifies as the limiter of parallel fetch
with a sequential rename stage.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.uop import MicroOp, UopState
from repro.frontend.buffers import FragmentInFlight
from repro.isa.registers import NUM_ARCH_REGS
from repro.rename.base import MakeUop, dest_of, source_regs
from repro.stats import StatsCollector


class MonolithicRenamer:
    """A single ``width``-wide in-order rename unit."""

    def __init__(self, width: int, window, stats: StatsCollector,
                 dispatch_delay: int = 1):
        self.width = width
        self.window = window
        self.stats = stats
        #: Backend dispatch-pipeline latency, so the tier-2 batch loop
        #: can stamp ``dispatch_ready_cycle`` at build time and hand the
        #: whole batch to the core in one extend.
        self.dispatch_delay = dispatch_delay
        #: Running architectural-to-producer map, indexed by architectural
        #: register number (array-backed: rename probes it once per source
        #: operand, and a list index is markedly cheaper than a dict probe
        #: on that path).  ``None`` means the register reads architectural
        #: state.
        self._map: List[Optional[MicroOp]] = [None] * NUM_ARCH_REGS
        #: Whether this cycle finished any fragment's rename — lets the
        #: SoA step skip the buffer-release scan on cycles where nothing
        #: can have become releasable.
        self.finished_any = False

    def cycle(self, now: int, fragments: List[FragmentInFlight],
              make_uop: MakeUop) -> List[MicroOp]:
        """Rename up to ``width`` instructions in program order."""
        budget = self.width
        renamed: List[MicroOp] = []
        reg_map = self._map
        for fragment in fragments:
            if budget <= 0:
                break
            if fragment.squashed or fragment.rename_done:
                continue
            # Fetch and truncation state cannot change inside this cycle
            # (fetch runs after rename in Processor.step), so the number
            # of renameable instructions is computed once per fragment.
            available = fragment.renameable_count()
            if fragment.rename_started_cycle < 0 and available:
                fragment.rename_started_cycle = now
                self._note_construction(fragment)
            while budget > 0 and available > 0:
                if not self.window.reserve_single(fragment.seq):
                    # NB: deliberately skips the rename.insts accounting
                    # below, faithful to the original stall behaviour.
                    self.stats.add("rename.window_stalls")
                    return renamed
                uop = make_uop(fragment, fragment.read_count)
                sources = uop.sources
                for src in source_regs(uop):
                    producer = reg_map[src]
                    if producer is not None:
                        sources.append(producer)
                dest = dest_of(uop)
                if dest is not None:
                    reg_map[dest] = uop
                    fragment.internal_writers[dest] = uop
                fragment.read_count += 1
                fragment.uops.append(uop)
                renamed.append(uop)
                budget -= 1
                available -= 1
            if fragment.read_count >= fragment.length:
                fragment.rename_done = True
                fragment.rename_done_cycle = now
                continue
            # In-order rename cannot skip past unfetched instructions.
            break
        self.stats.add("rename.insts", len(renamed))
        return renamed

    def cycle_soa(self, now: int,
                  fragments: List[FragmentInFlight]) -> tuple:
        """Tier-2 batched twin of :meth:`cycle` (``REPRO_FAST=2``);
        returns ``(renamed, wrongpath_count)``.

        One window reservation and one tight loop per fragment batch:
        uops are built directly from the fragment's precomputed
        :class:`~repro.perf.soa.FragMeta` arrays instead of through the
        per-uop ``make_uop`` callback.  Stall semantics match the
        reference bit for bit: a cycle that fills the window renames
        what fits, counts one ``rename.window_stalls`` and skips the
        ``rename.insts`` accounting, exactly like the per-uop loop.
        """
        budget = self.width
        renamed: List[MicroOp] = []
        wrong = 0
        self.finished_any = False
        reg_map = self._map
        window = self.window
        renamed_state = UopState.RENAMED
        dispatch_ready = now + self.dispatch_delay
        for fragment in fragments:
            if budget <= 0:
                break
            if fragment.squashed or fragment.rename_done:
                continue
            available = fragment.renameable_count()
            if fragment.rename_started_cycle < 0 and available:
                fragment.rename_started_cycle = now
                self._note_construction(fragment)
            stalled = False
            if available:
                take = budget if budget < available else available
                free = window.window_free
                if take > free:
                    take = free
                    stalled = True
                if take:
                    window.reserve(take, fragment.seq)
                    meta = fragment.soa_meta
                    insts = meta.insts
                    pcs, dec_l = meta.pcs, meta.decoded
                    srcs_l, dest_l = meta.srcs, meta.dest
                    records = fragment.records
                    rec_len = len(records)
                    uops = fragment.uops
                    writers = fragment.internal_writers
                    fseq = fragment.seq
                    seq_base = fseq << 8
                    m_target = fragment.mispredict_target
                    m_pos = (fragment.mispredict_position
                             if m_target is not None else None)
                    start = fragment.read_count
                    for p in range(start, start + take):
                        uop = MicroOp.__new__(MicroOp)
                        uop.seq = seq_base | p
                        uop.inst = insts[p]
                        uop.pc = pcs[p]
                        uop.fragment_seq = fseq
                        uop.position = p
                        entry = records[p] if p < rec_len else None
                        if entry is not None:
                            uop.record = entry[0]
                            uop.oracle_idx = entry[1]
                        else:
                            uop.record = None
                            uop.oracle_idx = -1
                            wrong += 1
                        uop.decoded = dec_l[p]
                        uop.state = renamed_state
                        sources: List[MicroOp] = []
                        uop.sources = sources
                        uop.complete_cycle = -1
                        uop.renamed_cycle = now
                        uop.dispatch_ready_cycle = dispatch_ready
                        uop.consumers = []
                        uop.pending = 0
                        uop.redirect_target = (m_target if p == m_pos
                                               else None)
                        uop.issue_cycle = -1
                        uop.commit_cycle = -1
                        for src in srcs_l[p]:
                            producer = reg_map[src]
                            if producer is not None:
                                sources.append(producer)
                        dest = dest_l[p]
                        if dest is not None:
                            reg_map[dest] = uop
                            writers[dest] = uop
                        uops.append(uop)
                        renamed.append(uop)
                    fragment.read_count = start + take
                    budget -= take
            if stalled:
                # NB: skips the rename.insts accounting below, faithful
                # to the reference stall behaviour.
                self.stats.add("rename.window_stalls")
                return renamed, wrong
            if fragment.read_count >= fragment.length:
                fragment.rename_done = True
                fragment.rename_done_cycle = now
                self.finished_any = True
                continue
            # In-order rename cannot skip past unfetched instructions.
            break
        self.stats.add("rename.insts", len(renamed))
        return renamed, wrong

    def _note_construction(self, fragment: FragmentInFlight) -> None:
        """Section 3.3 statistic: was the fragment fully constructed by the
        time rename first touched it?"""
        self.stats.add("rename.fragments_started")
        if fragment.complete:
            self.stats.add("rename.fragments_preconstructed")

    def rebuild(self, fragments: List[FragmentInFlight]) -> None:
        """Rebuild the map from surviving uops after a squash."""
        reg_map = self._map = [None] * NUM_ARCH_REGS
        for fragment in fragments:
            if fragment.squashed:
                continue
            for uop in fragment.uops:
                dest = dest_of(uop)
                if dest is not None:
                    reg_map[dest] = uop
