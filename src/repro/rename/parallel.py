"""Parallel rename with live-out prediction (Section 4).

Fragments are renamed in two phases:

* **Phase 1** (serial, one fragment per cycle, program order): the
  fragment is allocated instruction-window entries for its (perfectly)
  predicted length, its live-outs are predicted, a
  :class:`~repro.core.uop.PlaceholderProducer` is allocated for every
  predicted live-out register, and the updated register map — incoming map
  overlaid with the placeholders — is forwarded to the next fragment.

* **Phase 2** (parallel): each of N renamers renames one fragment,
  ``width/N`` instructions per cycle, using the fragment's incoming map
  for cross-fragment sources and binding placeholders at predicted
  last-write positions.

The four misprediction conditions of Section 4.3 are detected exactly:

1. a write to a register not predicted live-out (during rename);
2. no write to a predicted live-out register (subsumed by 4);
3. a write to a live-out register after its predicted last write
   (during rename);
4. no instruction bound to a predicted last write (at fragment end).

A fragment with no live-out prediction (cold) forwards no predicted map,
which serialises the next fragment's phase 1 behind its completed rename —
cold fragments cannot mispredict, they just lose parallelism.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.uop import MicroOp, PlaceholderProducer, Producer, UopState
from repro.frontend.buffers import FragmentInFlight
from repro.isa.registers import NUM_ARCH_REGS, ZERO_REG
from repro.predictors.liveout import LiveOutPredictor
from repro.rename.base import MakeUop, dest_of, link_sources
from repro.stats import StatsCollector

#: Shared empty incoming map for fragments renamed before phase 1 set one.
_EMPTY: Dict[int, Producer] = {}


class ParallelRenamer:
    """N renamers of ``width/N`` instructions per cycle each."""

    def __init__(self, renamers: int, renamer_width: int, window,
                 liveout_predictor: LiveOutPredictor,
                 stats: StatsCollector,
                 use_liveout_prediction: bool = True,
                 dispatch_delay: int = 1):
        self.num_renamers = renamers
        self.renamer_width = renamer_width
        self.window = window
        self.liveout_predictor = liveout_predictor
        self.stats = stats
        #: Backend dispatch-pipeline latency, so the tier-2 batch loop
        #: can stamp ``dispatch_ready_cycle`` at build time and hand the
        #: whole batch to the core in one extend.
        self.dispatch_delay = dispatch_delay
        #: False selects the paper's *solution 1* (Section 4): no live-out
        #: prediction; every fragment forwards pass-through placeholders
        #: and consumers are delayed until the mappings become available.
        self.use_liveout_prediction = use_liveout_prediction
        self._slots: List[Optional[FragmentInFlight]] = [None] * renamers
        #: Architectural map after every retired fragment.
        self._base_map: Dict[int, Producer] = {}
        #: Oldest fragment that detected a live-out misprediction this
        #: cycle; the processor squashes/renames younger fragments.
        self.pending_liveout_mispredict: Optional[FragmentInFlight] = None
        #: Every fragment that flagged a misprediction this cycle (the
        #: selective re-execution policy must repair each one).
        self.pending_liveout_mispredicts: List[FragmentInFlight] = []
        #: Whether this cycle finished any fragment's rename — the SoA
        #: step skips the buffer-release scan on cycles where nothing
        #: can have become releasable (rename_done is only ever set
        #: inside a renamer cycle or on paths that release explicitly).
        self.finished_any = False

    # -- per-cycle operation ----------------------------------------------

    def cycle(self, now: int, fragments: List[FragmentInFlight],
              make_uop: MakeUop) -> List[MicroOp]:
        """Run both rename phases across all rename units this cycle."""
        self.pending_liveout_mispredict = None
        self.pending_liveout_mispredicts = []
        self._phase1(now, fragments)
        renamed = self._phase2(now, fragments, make_uop)
        self.stats.add("rename.insts", len(renamed))
        return renamed

    def cycle_soa(self, now: int,
                  fragments: List[FragmentInFlight]) -> tuple:
        """Tier-2 batched twin of :meth:`cycle` (``REPRO_FAST=2``);
        returns ``(renamed, wrongpath_count)``.

        Phase 1 is untouched (it already runs at most once per cycle);
        phase 2 renames each slot's batch through
        :meth:`_rename_fragment_soa`, building uops straight from the
        fragment's precomputed :class:`~repro.perf.soa.FragMeta` arrays.
        """
        self.pending_liveout_mispredict = None
        self.pending_liveout_mispredicts = []
        self.finished_any = False
        self._phase1(now, fragments)

        slots = self._slots
        free = 0
        for i, fragment in enumerate(slots):
            if fragment is None:
                free += 1
            elif fragment.squashed or fragment.rename_done:
                slots[i] = None
                free += 1
        if free:
            # Only scan for candidates when a slot can actually take one.
            assigned = {f.seq for f in slots if f is not None}
            candidates = [f for f in fragments
                          if f.phase1_done and not f.rename_done
                          and not f.squashed and f.seq not in assigned]
            for i in range(len(slots)):
                if slots[i] is None and candidates:
                    slots[i] = candidates.pop(0)

        renamed: List[MicroOp] = []
        wrong = 0
        for fragment in list(slots):
            if fragment is not None:
                wrong += self._rename_fragment_soa(now, fragment, renamed)
        self.stats.add("rename.insts", len(renamed))
        return renamed, wrong

    # -- phase 1 -----------------------------------------------------------

    def _phase1(self, now: int, fragments: List[FragmentInFlight]) -> None:
        target: Optional[FragmentInFlight] = None
        predecessor: Optional[FragmentInFlight] = None
        for fragment in fragments:
            if fragment.squashed:
                continue
            if not fragment.phase1_done:
                target = fragment
                break
            predecessor = fragment
        if target is None:
            return

        incoming = self._incoming_map(predecessor)
        if incoming is None:
            self.stats.add("rename.phase1_map_stalls")
            return
        if not self.window.reserve(target.length, target.seq):
            self.stats.add("rename.window_stalls")
            return

        target.window_reserved = True
        target.incoming_map = dict(incoming)
        if self.use_liveout_prediction:
            prediction = self.liveout_predictor.predict(target.key)
            self.stats.add("rename.liveout_lookups")
        else:
            prediction = None
            self.stats.add("rename.delay_fragments")
        target.liveout_prediction = prediction
        outgoing = dict(target.incoming_map)
        if prediction is None:
            # No live-out information (cold fragment, or delay mode).
            # Forward a pass-through placeholder for every register;
            # consumers wait until this fragment's rename resolves each
            # mapping — the Multiscalar-style "delay until the mapping is
            # available" of Section 4.
            if self.use_liveout_prediction:
                self.stats.add("rename.liveout_cold")
            for reg in range(NUM_ARCH_REGS):
                if reg == ZERO_REG:
                    continue
                placeholder = PlaceholderProducer(reg, target.seq)
                target.placeholders[reg] = placeholder
                outgoing[reg] = placeholder
        else:
            for reg in prediction.liveout_list():
                placeholder = PlaceholderProducer(reg, target.seq)
                target.placeholders[reg] = placeholder
                outgoing[reg] = placeholder
        target.outgoing_predicted = outgoing
        target.phase1_done = True
        target.phase1_cycle = now

    def _incoming_map(self, predecessor: Optional[FragmentInFlight]
                      ) -> Optional[Dict[int, Producer]]:
        if predecessor is None:
            return self._base_map
        if predecessor.rename_done:
            return predecessor.outgoing_actual
        if (predecessor.phase1_done
                and predecessor.outgoing_predicted is not None
                and not predecessor.liveout_mispredicted):
            return predecessor.outgoing_predicted
        return None

    # -- phase 2 -----------------------------------------------------------

    def _phase2(self, now: int, fragments: List[FragmentInFlight],
                make_uop: MakeUop) -> List[MicroOp]:
        # Clear finished/squashed slots, then fill idle ones oldest-first.
        assigned = set()
        for i, fragment in enumerate(self._slots):
            if fragment is None:
                continue
            if fragment.squashed or fragment.rename_done:
                self._slots[i] = None
            else:
                assigned.add(fragment.seq)
        candidates = [f for f in fragments
                      if f.phase1_done and not f.rename_done
                      and not f.squashed and f.seq not in assigned]
        for i in range(len(self._slots)):
            if self._slots[i] is None and candidates:
                self._slots[i] = candidates.pop(0)

        renamed: List[MicroOp] = []
        for fragment in [s for s in self._slots if s is not None]:
            renamed.extend(self._rename_fragment(now, fragment, make_uop))
        return renamed

    def _rename_fragment(self, now: int, fragment: FragmentInFlight,
                         make_uop: MakeUop) -> List[MicroOp]:
        renamed: List[MicroOp] = []
        budget = min(self.renamer_width, fragment.renameable_count())
        if budget > 0 and fragment.rename_started_cycle < 0:
            fragment.rename_started_cycle = now
            self.stats.add("rename.fragments_started")
            if fragment.complete:
                self.stats.add("rename.fragments_preconstructed")
        for _ in range(budget):
            position = fragment.read_count
            uop = make_uop(fragment, position)
            link_sources(uop, fragment.internal_writers,
                         fragment.incoming_map or {})
            if any(isinstance(p, PlaceholderProducer) and p.producer is None
                   for p in uop.sources):
                self.stats.add("rename.before_source")
            self._handle_dest(fragment, uop, position)
            fragment.read_count += 1
            fragment.uops.append(uop)
            renamed.append(uop)
        if (fragment.read_count >= fragment.length
                and not fragment.rename_done):
            self._finish_fragment(fragment, now)
        return renamed

    def _rename_fragment_soa(self, now: int, fragment: FragmentInFlight,
                             renamed: List[MicroOp]) -> int:
        """Batched twin of :meth:`_rename_fragment` (appends into
        *renamed*; returns the batch's wrong-path uop count).  Source
        linking follows the precomputed ``FragMeta.src_plan`` — the same
        internal-writer-over-incoming-map priority as
        :func:`~repro.rename.base.link_sources`, resolved statically —
        and the live-out misprediction conditions are re-checked per uop
        because :meth:`_flag_mispredict` can fire mid-batch."""
        wrong = 0
        budget = min(self.renamer_width, fragment.renameable_count())
        if budget > 0 and fragment.rename_started_cycle < 0:
            fragment.rename_started_cycle = now
            self.stats.add("rename.fragments_started")
            if fragment.complete:
                self.stats.add("rename.fragments_preconstructed")
        if budget > 0:
            stats = self.stats
            meta = fragment.soa_meta
            insts = meta.insts
            pcs, dec_l = meta.pcs, meta.decoded
            plan_l, dest_l = meta.src_plan, meta.dest
            records = fragment.records
            rec_len = len(records)
            uops = fragment.uops
            writers = fragment.internal_writers
            incoming = fragment.incoming_map
            incoming_get = incoming.get if incoming is not None else _EMPTY.get
            placeholders_get = fragment.placeholders.get
            prediction = fragment.liveout_prediction
            # Locals mirror the per-uop re-check of the reference loop:
            # only _flag_mispredict (called right here) can flip
            # liveout_mispredicted mid-batch, so tracking it locally is
            # exact.  is_last_write is inlined as a bitmap test.
            check_liveout = (prediction is not None
                             and not fragment.liveout_mispredicted)
            lw_bits = prediction.last_writes if prediction is not None else 0
            renamed_state = UopState.RENAMED
            dispatch_ready = now + self.dispatch_delay
            fseq = fragment.seq
            seq_base = fseq << 8
            m_target = fragment.mispredict_target
            m_pos = (fragment.mispredict_position
                     if m_target is not None else None)
            start = fragment.read_count
            for p in range(start, start + budget):
                uop = MicroOp.__new__(MicroOp)
                uop.seq = seq_base | p
                uop.inst = insts[p]
                uop.pc = pcs[p]
                uop.fragment_seq = fseq
                uop.position = p
                entry = records[p] if p < rec_len else None
                if entry is not None:
                    uop.record = entry[0]
                    uop.oracle_idx = entry[1]
                else:
                    uop.record = None
                    uop.oracle_idx = -1
                    wrong += 1
                uop.decoded = dec_l[p]
                uop.state = renamed_state
                sources: List[Producer] = []
                uop.sources = sources
                uop.complete_cycle = -1
                uop.renamed_cycle = now
                uop.dispatch_ready_cycle = dispatch_ready
                uop.consumers = []
                uop.pending = 0
                uop.redirect_target = m_target if p == m_pos else None
                uop.issue_cycle = -1
                uop.commit_cycle = -1
                before_source = False
                # src_plan resolves each source statically: codes >= 0
                # name an earlier position in this fragment (always a
                # MicroOp, never a placeholder), negative codes read
                # register ``-(code + 1)`` from the incoming map.
                for code in plan_l[p]:
                    if code >= 0:
                        sources.append(uops[code])
                    else:
                        producer = incoming_get(-1 - code)
                        if producer is not None:
                            sources.append(producer)
                            if (producer.__class__ is PlaceholderProducer
                                    and producer.producer is None):
                                before_source = True
                if before_source:
                    stats.add("rename.before_source")
                dest = dest_l[p]
                if dest is not None:
                    if check_liveout:
                        placeholder = placeholders_get(dest)
                        if placeholder is None:
                            # Condition 1: write to an unpredicted live-out.
                            self._flag_mispredict(fragment, "cond1")
                            check_liveout = False
                        elif lw_bits >> p & 1:
                            if placeholder.producer is not None:
                                self._flag_mispredict(fragment, "cond3")
                                check_liveout = False
                            else:
                                placeholder.bind(uop)
                        elif placeholder.producer is not None:
                            # Condition 3: write after predicted last write.
                            self._flag_mispredict(fragment, "cond3")
                            check_liveout = False
                    writers[dest] = uop
                uops.append(uop)
                renamed.append(uop)
            fragment.read_count = start + budget
        if (fragment.read_count >= fragment.length
                and not fragment.rename_done):
            self._finish_fragment(fragment, now)
        return wrong

    def _handle_dest(self, fragment: FragmentInFlight, uop: MicroOp,
                     position: int) -> None:
        dest = dest_of(uop)
        if dest is None:
            return
        prediction = fragment.liveout_prediction
        if prediction is not None and not fragment.liveout_mispredicted:
            placeholder = fragment.placeholders.get(dest)
            if placeholder is None:
                # Condition 1: write to an unpredicted live-out.
                self._flag_mispredict(fragment, "cond1")
            elif prediction.is_last_write(position):
                if placeholder.producer is not None:
                    # Two writes both claiming the last-write slot.
                    self._flag_mispredict(fragment, "cond3")
                else:
                    placeholder.bind(uop)
            elif placeholder.producer is not None:
                # Condition 3: write after the predicted last write.
                self._flag_mispredict(fragment, "cond3")
        fragment.internal_writers[dest] = uop

    def _finish_fragment(self, fragment: FragmentInFlight,
                         now: int) -> None:
        prediction = fragment.liveout_prediction
        if prediction is None:
            self._resolve_cold_placeholders(fragment)
        elif (not fragment.liveout_mispredicted
                and fragment.truncated_at is None):
            # Condition 4: a predicted live-out never got its last write.
            if any(p.producer is None
                   for p in fragment.placeholders.values()):
                self._flag_mispredict(fragment, "cond4")
        outgoing = dict(fragment.incoming_map or {})
        outgoing.update(fragment.internal_writers)
        fragment.outgoing_actual = outgoing
        fragment.rename_done = True
        fragment.rename_done_cycle = now
        self.finished_any = True

    def _resolve_cold_placeholders(self, fragment: FragmentInFlight) -> None:
        """Bind a cold fragment's pass-through placeholders now that its
        actual writes are known."""
        incoming = fragment.incoming_map or {}
        for reg, placeholder in fragment.placeholders.items():
            writer = fragment.internal_writers.get(reg)
            if writer is not None:
                self.window.bind_placeholder(placeholder, producer=writer)
                continue
            upstream = incoming.get(reg)
            if upstream is None:
                self.window.bind_placeholder(placeholder, ready=True)
            else:
                self.window.bind_placeholder(placeholder, producer=upstream)

    def _flag_mispredict(self, fragment: FragmentInFlight,
                         condition: str) -> None:
        if fragment.liveout_mispredicted:
            return
        fragment.liveout_mispredicted = True
        self.stats.add("rename.liveout_mispredicts")
        self.stats.add(f"rename.liveout_{condition}")
        self.pending_liveout_mispredicts.append(fragment)
        if (self.pending_liveout_mispredict is None
                or fragment.seq < self.pending_liveout_mispredict.seq):
            self.pending_liveout_mispredict = fragment

    # -- recovery / retirement ---------------------------------------------

    def rebuild(self, fragments: List[FragmentInFlight]) -> None:
        """Drop stale fragments from renamer slots after a squash.

        A live-out squash resets younger fragments' phase 1, so slots also
        drop fragments that have lost their phase-1 state.
        """
        for i, fragment in enumerate(self._slots):
            if fragment is not None and (fragment.squashed
                                         or fragment.rename_done
                                         or not fragment.phase1_done):
                self._slots[i] = None

    def retire_fragment(self, fragment: FragmentInFlight) -> None:
        """Fold a fully-committed fragment's map into the base map."""
        if fragment.outgoing_actual is not None:
            self._base_map = fragment.outgoing_actual
