"""Rename mechanisms: monolithic (sequential) and parallel (Section 4)."""

from repro.rename.base import MakeUop, Renamer, link_sources
from repro.rename.monolithic import MonolithicRenamer
from repro.rename.parallel import ParallelRenamer

__all__ = [
    "Renamer",
    "MakeUop",
    "link_sources",
    "MonolithicRenamer",
    "ParallelRenamer",
]
