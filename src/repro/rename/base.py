"""Shared rename-stage machinery.

A renamer consumes instructions from in-flight fragments (in fragment
order) and produces :class:`~repro.core.uop.MicroOp` objects whose sources
are linked to their producers.  The processor supplies a ``make_uop``
callback that creates and oracle-tags uops; renamers own only the dataflow
linking and the rename *timing*.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Protocol

from repro.core.uop import MicroOp, Producer
from repro.frontend.buffers import FragmentInFlight
from repro.isa.registers import ZERO_REG

#: Callback: (fragment, position) -> freshly created MicroOp.
MakeUop = Callable[[FragmentInFlight, int], MicroOp]


class Renamer(Protocol):
    """Interface implemented by both rename mechanisms."""

    def cycle(self, now: int, fragments: List[FragmentInFlight],
              make_uop: MakeUop) -> List[MicroOp]:
        """Rename for one cycle; returns the uops renamed."""

    def rebuild(self, fragments: List[FragmentInFlight]) -> None:
        """Reconstruct rename state after a squash."""


def link_sources(uop: MicroOp, *maps: Dict[int, Producer]) -> None:
    """Attach producers for each source register of *uop*.

    *maps* are consulted in priority order (e.g. the fragment's internal
    writers before the incoming cross-fragment map).  Registers with no
    producer in any map read architectural state and are ready immediately;
    the zero register never creates a dependence.
    """
    for src in uop.inst.src_regs():
        if src == ZERO_REG:
            continue
        for reg_map in maps:
            producer = reg_map.get(src)
            if producer is not None:
                uop.sources.append(producer)
                break
