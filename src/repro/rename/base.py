"""Shared rename-stage machinery.

A renamer consumes instructions from in-flight fragments (in fragment
order) and produces :class:`~repro.core.uop.MicroOp` objects whose sources
are linked to their producers.  The processor supplies a ``make_uop``
callback that creates and oracle-tags uops; renamers own only the dataflow
linking and the rename *timing*.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Protocol

from repro.core.uop import MicroOp, Producer
from repro.frontend.buffers import FragmentInFlight
from repro.isa.registers import ZERO_REG

#: Callback: (fragment, position) -> freshly created MicroOp.
MakeUop = Callable[[FragmentInFlight, int], MicroOp]


def source_regs(uop: MicroOp):
    """Dependence-creating source registers of *uop* (``r0`` filtered).

    Prefers the cached decode metadata attached by the processor's
    decoded-uop cache; falls back to deriving it from the instruction for
    uops constructed outside the processor (tests, tools).
    """
    decoded = uop.decoded
    if decoded is not None:
        return decoded.srcs
    return tuple(r for r in uop.inst.src_regs() if r != ZERO_REG)


def dest_of(uop: MicroOp) -> Optional[int]:
    """Destination register of *uop*, or ``None`` for ``r0``/no-dest.

    Same cached-metadata fast path as :func:`source_regs`.
    """
    decoded = uop.decoded
    if decoded is not None:
        return decoded.dest
    dest = uop.inst.dest_reg()
    return dest if dest is not None and dest != ZERO_REG else None


class Renamer(Protocol):
    """Interface implemented by both rename mechanisms."""

    def cycle(self, now: int, fragments: List[FragmentInFlight],
              make_uop: MakeUop) -> List[MicroOp]:
        """Rename for one cycle; returns the uops renamed."""

    def rebuild(self, fragments: List[FragmentInFlight]) -> None:
        """Reconstruct rename state after a squash."""


def link_sources(uop: MicroOp, *maps: Dict[int, Producer]) -> None:
    """Attach producers for each source register of *uop*.

    *maps* are consulted in priority order (e.g. the fragment's internal
    writers before the incoming cross-fragment map).  Registers with no
    producer in any map read architectural state and are ready immediately;
    the zero register never creates a dependence.
    """
    sources = uop.sources
    for src in source_regs(uop):
        for reg_map in maps:
            producer = reg_map.get(src)
            if producer is not None:
                sources.append(producer)
                break
