"""End-to-end property test: for *any* generated workload, every
front-end commits exactly the functional execution.

This is the simulator's master invariant — speculation, squashes,
parallel rename, live-out mispredictions and cache behaviour may change
*timing*, never the committed instruction sequence.
"""

from hypothesis import given, settings, strategies as st

from repro import frontend_config
from repro.core.processor import Processor
from repro.emulator.machine import Machine
from repro.workloads.characteristics import WorkloadSpec
from repro.workloads.generator import generate_program

CONFIG_NAMES = ("w16", "tc", "pf-4x4w", "pr-2x8w")


@st.composite
def workload_specs(draw):
    num_functions = draw(st.integers(min_value=4, max_value=24))
    hot = draw(st.integers(min_value=2, max_value=num_functions))
    # Segment-kind probabilities must sum to <= 1.0: draw raw weights and
    # normalise to a random budget.
    weights = [draw(st.floats(0.0, 1.0)) for _ in range(6)]
    budget = draw(st.floats(0.2, 0.95))
    total = sum(weights) or 1.0
    diamond, loop, switch, call, mem, fp = (w / total * budget
                                            for w in weights)
    return WorkloadSpec(
        name="prop",
        seed=draw(st.integers(min_value=1, max_value=10_000)),
        num_functions=num_functions,
        hot_functions=hot,
        segments_per_function=(1, draw(st.integers(2, 6))),
        block_len=(1, draw(st.integers(2, 8))),
        diamond_prob=diamond,
        loop_prob=loop,
        switch_prob=switch,
        call_prob=call,
        mem_prob=mem,
        fp_prob=fp,
        nop_prob=draw(st.floats(0.0, 0.1)),
        biased_branch_fraction=draw(st.floats(0.0, 1.0)),
        switch_cases=draw(st.sampled_from([2, 4, 8])),
        array_words=draw(st.sampled_from([64, 1024, 4096])),
        random_access_fraction=draw(st.floats(0.0, 1.0)),
    )


@given(spec=workload_specs(),
       config_name=st.sampled_from(CONFIG_NAMES))
@settings(max_examples=12, deadline=None)
def test_any_workload_commits_functional_execution(spec, config_name):
    program = generate_program(spec)
    oracle = Machine(program).run(1500).stream
    non_nop = sum(1 for r in oracle if not r.inst.is_nop)
    if non_nop == 0:
        return
    processor = Processor(frontend_config(config_name), program, oracle)
    processor.run()
    assert processor.finished, (spec.seed, config_name)
    assert processor.committed == non_nop
    # The pipeline can never commit faster than its width.
    assert processor.committed <= 16 * processor.now
