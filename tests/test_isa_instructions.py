"""Unit tests for instruction classification and dataflow metadata."""

from repro.isa.instructions import (
    CONTROL_CLASSES,
    INDIRECT_CLASSES,
    Instruction,
    MNEMONIC_TO_OPCODE,
    OpClass,
    Opcode,
    writes_zero_only,
)
from repro.isa.registers import LINK_REG


def inst(opcode, **kwargs):
    return Instruction(opcode, **kwargs)


class TestClassification:
    def test_every_opcode_has_unique_mnemonic(self):
        assert len(MNEMONIC_TO_OPCODE) == len(Opcode)

    def test_branch_classes(self):
        assert inst(Opcode.BEQ, rs1=1, rs2=2, target=0x1000).is_cond_branch
        assert inst(Opcode.BNE, rs1=1, rs2=2, target=0x1000).is_control
        assert not inst(Opcode.ADD, rd=1, rs1=2, rs2=3).is_control

    def test_indirect_classes(self):
        assert inst(Opcode.JR, rs1=5).is_indirect
        assert inst(Opcode.JALR, rd=LINK_REG, rs1=5).is_indirect
        assert inst(Opcode.RET, rs1=LINK_REG).is_indirect
        assert not inst(Opcode.J, target=0x1000).is_indirect
        assert not inst(Opcode.JAL, rd=LINK_REG, target=0x1000).is_indirect

    def test_call_and_return(self):
        assert inst(Opcode.JAL, rd=LINK_REG, target=0x1000).is_call
        assert inst(Opcode.JALR, rd=LINK_REG, rs1=3).is_call
        assert inst(Opcode.RET, rs1=LINK_REG).is_return
        assert not inst(Opcode.RET, rs1=LINK_REG).is_call

    def test_memory_classes(self):
        load = inst(Opcode.LD, rd=1, rs1=2, imm=8)
        store = inst(Opcode.ST, rs1=2, rs2=1, imm=8)
        assert load.is_load and load.is_mem and not load.is_store
        assert store.is_store and store.is_mem and not store.is_load

    def test_nop_and_halt(self):
        assert inst(Opcode.NOP).is_nop
        assert inst(Opcode.HALT).is_halt
        assert inst(Opcode.HALT).is_control

    def test_control_class_sets_consistent(self):
        assert INDIRECT_CLASSES < CONTROL_CLASSES
        assert OpClass.BRANCH in CONTROL_CLASSES
        assert OpClass.IALU not in CONTROL_CLASSES


class TestDataflow:
    def test_alu_sources_and_dest(self):
        add = inst(Opcode.ADD, rd=3, rs1=1, rs2=2)
        assert add.src_regs() == (1, 2)
        assert add.dest_reg() == 3

    def test_immediate_sources(self):
        addi = inst(Opcode.ADDI, rd=3, rs1=1, imm=5)
        assert addi.src_regs() == (1,)
        assert addi.dest_reg() == 3

    def test_store_reads_base_and_value(self):
        store = inst(Opcode.ST, rs1=2, rs2=7, imm=0)
        assert set(store.src_regs()) == {2, 7}
        assert store.dest_reg() is None

    def test_call_writes_link(self):
        call = inst(Opcode.JAL, rd=LINK_REG, target=0x1000)
        assert call.dest_reg() == LINK_REG

    def test_return_reads_link(self):
        ret = inst(Opcode.RET, rs1=LINK_REG)
        assert LINK_REG in ret.src_regs()
        assert ret.dest_reg() is None

    def test_branch_has_no_dest(self):
        assert inst(Opcode.BLT, rs1=1, rs2=2, target=0).dest_reg() is None

    def test_writes_zero_only(self):
        assert writes_zero_only(inst(Opcode.ADD, rd=0, rs1=1, rs2=2))
        assert not writes_zero_only(inst(Opcode.ADD, rd=1, rs1=1, rs2=2))
        assert not writes_zero_only(inst(Opcode.LD, rd=0, rs1=1, imm=0))


class TestAddressing:
    def test_next_addr(self):
        i = Instruction(Opcode.NOP, addr=0x1000)
        assert i.next_addr == 0x1004

    def test_addr_not_compared(self):
        a = Instruction(Opcode.NOP, addr=0x1000)
        b = Instruction(Opcode.NOP, addr=0x2000)
        assert a == b
