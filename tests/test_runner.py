"""Tests for the parallel sweep runner and its persistent result cache."""

import json

import pytest

from repro.core.simulation import SimulationResult
from repro.experiments.runner import (
    CACHE_SCHEMA_VERSION,
    ResultCache,
    SweepJob,
    default_workers,
    parallel_map,
    run_job,
    run_sweep,
)

LENGTH = 1500


def make_result(**kwargs):
    defaults = dict(benchmark="gzip", config_name="w16", cycles=100,
                    committed=400, counters={"fetch.insts": 600.0})
    defaults.update(kwargs)
    return SimulationResult(**defaults)


class TestSweepJob:
    def test_hashable_and_equal_by_value(self):
        a = SweepJob("w16", "gzip", LENGTH)
        b = SweepJob("w16", "gzip", LENGTH)
        assert a == b and hash(a) == hash(b)

    def test_cache_key_stable(self):
        a = SweepJob("w16", "gzip", LENGTH)
        b = SweepJob("w16", "gzip", LENGTH)
        assert a.cache_key() == b.cache_key()

    def test_cache_key_distinguishes_every_field(self):
        base = SweepJob("w16", "gzip", LENGTH)
        variants = [
            SweepJob("tc", "gzip", LENGTH),
            SweepJob("w16", "mcf", LENGTH),
            SweepJob("w16", "gzip", LENGTH + 1),
            SweepJob("w16", "gzip", LENGTH, total_l1_storage=8192),
            SweepJob("w16", "gzip", LENGTH, predictor_entries=4096),
            SweepJob("w16", "gzip", LENGTH,
                     overrides=(("frontend.num_fragment_buffers", 8),)),
            SweepJob("w16", "gzip", LENGTH, warm=False),
            SweepJob("w16", "gzip", LENGTH, label="other"),
        ]
        keys = {job.cache_key() for job in variants}
        assert base.cache_key() not in keys
        assert len(keys) == len(variants)

    def test_build_config_applies_overrides(self):
        job = SweepJob("pf-2x8w", "gzip", LENGTH,
                       overrides=(("frontend.num_fragment_buffers", 8),
                                  ("fragment.max_length", 32)))
        config = job.build_config()
        assert config.frontend.num_fragment_buffers == 8
        assert config.fragment.max_length == 32

    def test_describe_mentions_overrides(self):
        job = SweepJob("w16", "gzip", LENGTH, total_l1_storage=8192,
                       overrides=(("fragment.max_length", 32),))
        text = job.describe()
        assert "w16" in text and "gzip" in text
        assert "l1=8KB" in text and "fragment.max_length=32" in text


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=True)
        result = make_result()
        cache.store("k1", SweepJob("w16", "gzip", LENGTH), result)
        loaded = cache.load("k1")
        assert loaded is not None and loaded is not result
        assert loaded == result

    def test_miss_returns_none(self, tmp_path):
        assert ResultCache(tmp_path, enabled=True).load("nope") is None

    def test_disabled_cache_never_stores(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=False)
        cache.store("k1", SweepJob("w16", "gzip", LENGTH), make_result())
        assert len(ResultCache(tmp_path, enabled=True)) == 0
        assert cache.load("k1") is None

    def test_no_cache_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert not ResultCache().enabled

    def test_cache_dir_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "alt"))
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        cache = ResultCache()
        assert cache.directory == tmp_path / "alt"
        assert cache.enabled

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=True)
        cache.store("k1", SweepJob("w16", "gzip", LENGTH), make_result())
        path = tmp_path / "k1.json"
        payload = json.loads(path.read_text())
        payload["schema"] = CACHE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(payload))
        assert cache.load("k1") is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        (tmp_path / "k1.json").write_text("{not json")
        assert ResultCache(tmp_path, enabled=True).load("k1") is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=True)
        cache.store("k1", SweepJob("w16", "gzip", LENGTH), make_result())
        cache.store("k2", SweepJob("tc", "gzip", LENGTH), make_result())
        assert cache.clear() == 2
        assert len(cache) == 0


class TestRunJob:
    def test_executes_then_hits_disk(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=True)
        job = SweepJob("w16", "gzip", LENGTH)
        first = run_job(job, cache=cache)
        assert first.committed > 0
        assert len(cache) == 1
        second = run_job(job, cache=cache)
        assert second is not first
        assert second == first

    def test_label_becomes_config_name(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=True)
        job = SweepJob("w16", "gzip", LENGTH, label="w16/custom")
        assert run_job(job, cache=cache).config_name == "w16/custom"


class TestRunSweep:
    def test_parallel_identical_to_serial(self, tmp_path):
        """Sweep results must be bit-identical regardless of worker count."""
        jobs = [SweepJob(config, bench, LENGTH)
                for config in ("w16", "tc") for bench in ("gzip", "mcf")]
        parallel = run_sweep(jobs, workers=2,
                             cache=ResultCache(tmp_path, enabled=True))
        serial = run_sweep(jobs, workers=1,
                           cache=ResultCache(tmp_path / "x", enabled=False))
        for job in jobs:
            assert parallel.results[job] == serial.results[job]

    def test_warm_disk_cache_executes_nothing(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=True)
        jobs = [SweepJob("w16", bench, LENGTH)
                for bench in ("gzip", "mcf")]
        cold = run_sweep(jobs, workers=2, cache=cache)
        assert cold.executed == len(jobs)
        warm = run_sweep(jobs, workers=2, cache=cache)
        assert warm.executed == 0
        assert int(warm.stats.get("sweep.disk_hits")) == len(jobs)
        for job in jobs:
            assert warm.results[job] == cold.results[job]

    def test_memo_is_consulted_and_filled(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=True)
        memo = {}
        jobs = [SweepJob("w16", "gzip", LENGTH)]
        first = run_sweep(jobs, workers=1, memo=memo, cache=cache)
        assert jobs[0] in memo
        second = run_sweep(jobs, workers=1, memo=memo, cache=cache)
        assert int(second.stats.get("sweep.memo_hits")) == 1
        assert second.results[jobs[0]] is memo[jobs[0]]
        assert first.results[jobs[0]] is memo[jobs[0]]

    def test_duplicate_jobs_run_once(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=True)
        job = SweepJob("w16", "gzip", LENGTH)
        report = run_sweep([job, job, job], workers=2, cache=cache)
        assert report.executed == 1
        assert int(report.stats.get("sweep.jobs")) == 3

    def test_progress_callback_and_timing(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=True)
        seen = []
        jobs = [SweepJob("w16", "gzip", LENGTH)]
        report = run_sweep(jobs, workers=1, cache=cache,
                           progress=lambda j, r, s: seen.append((j, s)))
        assert [j for j, _ in seen] == jobs
        assert all(s >= 0 for _, s in seen)
        assert report.job_seconds[jobs[0]] > 0
        assert report.stats.get("sweep.wall_seconds") > 0

    def test_empty_sweep(self, tmp_path):
        report = run_sweep([], cache=ResultCache(tmp_path, enabled=True))
        assert report.results == {} and report.executed == 0


class TestHelpers:
    def test_default_workers_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "3")
        assert default_workers() == 3
        monkeypatch.delenv("REPRO_SWEEP_WORKERS")
        assert default_workers() >= 1

    def test_parallel_map_preserves_order(self):
        items = list(range(20))
        assert parallel_map(_square, items, workers=4) == \
            [x * x for x in items]
        assert parallel_map(_square, items, workers=1) == \
            [x * x for x in items]

    def test_parallel_map_empty(self):
        assert parallel_map(_square, [], workers=4) == []


def _square(x):
    return x * x
