"""Tests for the parallel sweep runner and its persistent result cache."""

import json
import multiprocessing

import pytest

from repro import faults
from repro.core.simulation import SimulationResult
from repro.errors import SweepError
from repro.experiments.runner import (
    CACHE_SCHEMA_VERSION,
    GROUP_ENV,
    JobFailure,
    ResultCache,
    SweepJob,
    default_backoff,
    default_group_streams,
    default_job_timeout,
    default_retries,
    default_workers,
    parallel_map,
    run_job,
    run_sweep,
)

LENGTH = 1500


@pytest.fixture(autouse=True)
def no_ambient_faults(monkeypatch):
    """Keep every test hermetic against an inherited REPRO_FAULTS."""
    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)


def make_result(**kwargs):
    defaults = dict(benchmark="gzip", config_name="w16", cycles=100,
                    committed=400, counters={"fetch.insts": 600.0})
    defaults.update(kwargs)
    return SimulationResult(**defaults)


class TestSweepJob:
    def test_hashable_and_equal_by_value(self):
        a = SweepJob("w16", "gzip", LENGTH)
        b = SweepJob("w16", "gzip", LENGTH)
        assert a == b and hash(a) == hash(b)

    def test_cache_key_stable(self):
        a = SweepJob("w16", "gzip", LENGTH)
        b = SweepJob("w16", "gzip", LENGTH)
        assert a.cache_key() == b.cache_key()

    def test_cache_key_distinguishes_every_field(self):
        base = SweepJob("w16", "gzip", LENGTH)
        variants = [
            SweepJob("tc", "gzip", LENGTH),
            SweepJob("w16", "mcf", LENGTH),
            SweepJob("w16", "gzip", LENGTH + 1),
            SweepJob("w16", "gzip", LENGTH, total_l1_storage=8192),
            SweepJob("w16", "gzip", LENGTH, predictor_entries=4096),
            SweepJob("w16", "gzip", LENGTH,
                     overrides=(("frontend.num_fragment_buffers", 8),)),
            SweepJob("w16", "gzip", LENGTH, warm=False),
            SweepJob("w16", "gzip", LENGTH, label="other"),
        ]
        keys = {job.cache_key() for job in variants}
        assert base.cache_key() not in keys
        assert len(keys) == len(variants)

    def test_build_config_applies_overrides(self):
        job = SweepJob("pf-2x8w", "gzip", LENGTH,
                       overrides=(("frontend.num_fragment_buffers", 8),
                                  ("fragment.max_length", 32)))
        config = job.build_config()
        assert config.frontend.num_fragment_buffers == 8
        assert config.fragment.max_length == 32

    def test_describe_mentions_overrides(self):
        job = SweepJob("w16", "gzip", LENGTH, total_l1_storage=8192,
                       overrides=(("fragment.max_length", 32),))
        text = job.describe()
        assert "w16" in text and "gzip" in text
        assert "l1=8KB" in text and "fragment.max_length=32" in text


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=True)
        result = make_result()
        cache.store("k1", SweepJob("w16", "gzip", LENGTH), result)
        loaded = cache.load("k1")
        assert loaded is not None and loaded is not result
        assert loaded == result

    def test_miss_returns_none(self, tmp_path):
        assert ResultCache(tmp_path, enabled=True).load("nope") is None

    def test_disabled_cache_never_stores(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=False)
        cache.store("k1", SweepJob("w16", "gzip", LENGTH), make_result())
        assert len(ResultCache(tmp_path, enabled=True)) == 0
        assert cache.load("k1") is None

    def test_no_cache_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert not ResultCache().enabled

    def test_cache_dir_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "alt"))
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        cache = ResultCache()
        assert cache.directory == tmp_path / "alt"
        assert cache.enabled

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=True)
        cache.store("k1", SweepJob("w16", "gzip", LENGTH), make_result())
        path = tmp_path / "k1.json"
        payload = json.loads(path.read_text())
        payload["schema"] = CACHE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(payload))
        assert cache.load("k1") is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        (tmp_path / "k1.json").write_text("{not json")
        assert ResultCache(tmp_path, enabled=True).load("k1") is None

    def test_corrupt_entry_is_quarantined(self, tmp_path):
        """A broken entry must be renamed aside (and counted), not left
        in place to be re-parsed unsuccessfully on every future run."""
        from repro.stats import StatsCollector
        (tmp_path / "k1.json").write_text("{not json")
        cache = ResultCache(tmp_path, enabled=True)
        stats = StatsCollector()
        assert cache.load("k1", stats=stats) is None
        assert not (tmp_path / "k1.json").exists()
        assert (tmp_path / "k1.json.corrupt").read_text() == "{not json"
        assert stats.get("sweep.cache_corrupt") == 1
        # The slot is reusable: a fresh store round-trips again.
        result = make_result()
        cache.store("k1", SweepJob("w16", "gzip", LENGTH), result)
        assert cache.load("k1") == result

    def test_missing_result_keys_are_corrupt(self, tmp_path):
        payload = {"schema": CACHE_SCHEMA_VERSION, "result": {}}
        (tmp_path / "k1.json").write_text(json.dumps(payload))
        assert ResultCache(tmp_path, enabled=True).load("k1") is None
        assert (tmp_path / "k1.json.corrupt").exists()

    def test_schema_mismatch_is_not_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=True)
        cache.store("k1", SweepJob("w16", "gzip", LENGTH), make_result())
        payload = json.loads((tmp_path / "k1.json").read_text())
        payload["schema"] = CACHE_SCHEMA_VERSION + 1
        (tmp_path / "k1.json").write_text(json.dumps(payload))
        assert cache.load("k1") is None
        assert (tmp_path / "k1.json").exists()  # stale, not corrupt

    def test_clear_removes_quarantined_files(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=True)
        cache.store("k1", SweepJob("w16", "gzip", LENGTH), make_result())
        (tmp_path / "k2.json").write_text("{broken")
        assert cache.load("k2") is None
        assert cache.clear() == 1
        assert list(tmp_path.iterdir()) == []

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=True)
        cache.store("k1", SweepJob("w16", "gzip", LENGTH), make_result())
        cache.store("k2", SweepJob("tc", "gzip", LENGTH), make_result())
        assert cache.clear() == 2
        assert len(cache) == 0


class TestRunJob:
    def test_executes_then_hits_disk(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=True)
        job = SweepJob("w16", "gzip", LENGTH)
        first = run_job(job, cache=cache)
        assert first.committed > 0
        assert len(cache) == 1
        second = run_job(job, cache=cache)
        assert second is not first
        assert second == first

    def test_label_becomes_config_name(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=True)
        job = SweepJob("w16", "gzip", LENGTH, label="w16/custom")
        assert run_job(job, cache=cache).config_name == "w16/custom"


class TestRunSweep:
    def test_parallel_identical_to_serial(self, tmp_path):
        """Sweep results must be bit-identical regardless of worker count."""
        jobs = [SweepJob(config, bench, LENGTH)
                for config in ("w16", "tc") for bench in ("gzip", "mcf")]
        parallel = run_sweep(jobs, workers=2,
                             cache=ResultCache(tmp_path, enabled=True))
        serial = run_sweep(jobs, workers=1,
                           cache=ResultCache(tmp_path / "x", enabled=False))
        for job in jobs:
            assert parallel.results[job] == serial.results[job]

    def test_warm_disk_cache_executes_nothing(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=True)
        jobs = [SweepJob("w16", bench, LENGTH)
                for bench in ("gzip", "mcf")]
        cold = run_sweep(jobs, workers=2, cache=cache)
        assert cold.executed == len(jobs)
        warm = run_sweep(jobs, workers=2, cache=cache)
        assert warm.executed == 0
        assert int(warm.stats.get("sweep.disk_hits")) == len(jobs)
        for job in jobs:
            assert warm.results[job] == cold.results[job]

    def test_memo_is_consulted_and_filled(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=True)
        memo = {}
        jobs = [SweepJob("w16", "gzip", LENGTH)]
        first = run_sweep(jobs, workers=1, memo=memo, cache=cache)
        assert jobs[0] in memo
        second = run_sweep(jobs, workers=1, memo=memo, cache=cache)
        assert int(second.stats.get("sweep.memo_hits")) == 1
        assert second.results[jobs[0]] is memo[jobs[0]]
        assert first.results[jobs[0]] is memo[jobs[0]]

    def test_duplicate_jobs_run_once(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=True)
        job = SweepJob("w16", "gzip", LENGTH)
        report = run_sweep([job, job, job], workers=2, cache=cache)
        assert report.executed == 1
        assert int(report.stats.get("sweep.jobs")) == 3

    def test_progress_callback_and_timing(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=True)
        seen = []
        jobs = [SweepJob("w16", "gzip", LENGTH)]
        report = run_sweep(jobs, workers=1, cache=cache,
                           progress=lambda j, r, s: seen.append((j, s)))
        assert [j for j, _ in seen] == jobs
        assert all(s >= 0 for _, s in seen)
        assert report.job_seconds[jobs[0]] > 0
        assert report.stats.get("sweep.wall_seconds") > 0

    def test_empty_sweep(self, tmp_path):
        report = run_sweep([], cache=ResultCache(tmp_path, enabled=True))
        assert report.results == {} and report.executed == 0


class TestStreamGrouping:
    """Stream-sharing jobs scheduled as one group must change worker
    placement only — never results, failures, or merge determinism."""

    def test_grouped_identical_to_ungrouped(self, tmp_path):
        jobs = [SweepJob(config, bench, LENGTH)
                for config in ("w16", "tc") for bench in ("gzip", "mcf")]
        grouped = run_sweep(jobs, workers=2, group_streams=True,
                            cache=ResultCache(tmp_path, enabled=True))
        ungrouped = run_sweep(jobs, workers=2, group_streams=False,
                              cache=ResultCache(tmp_path / "x",
                                                enabled=False))
        assert not grouped.failures and not ungrouped.failures
        # Two benchmarks at one length -> two stream groups of two jobs.
        assert int(grouped.stats.get("sweep.stream_groups")) == 2
        assert int(ungrouped.stats.get("sweep.stream_groups")) == 0
        for job in jobs:
            assert grouped.results[job] == ungrouped.results[job]

    def test_grouped_identical_to_serial(self, tmp_path):
        jobs = [SweepJob(config, "gzip", LENGTH)
                for config in ("w16", "tc", "pf-2x8w")]
        grouped = run_sweep(jobs, workers=2, group_streams=True,
                            cache=ResultCache(tmp_path, enabled=True))
        # One benchmark -> one group -> the pool clamps to one worker.
        assert int(grouped.stats.get("sweep.stream_groups")) == 1
        assert int(grouped.stats.get("sweep.workers")) == 1
        serial = run_sweep(jobs, workers=1, group_streams=False,
                           cache=ResultCache(tmp_path / "x", enabled=False))
        for job in jobs:
            assert grouped.results[job] == serial.results[job]

    def test_group_member_failure_recovers_inline(self, tmp_path,
                                                  monkeypatch):
        """A failing job inside a group must not poison its siblings:
        its error comes back per-job and only it is retried."""
        monkeypatch.setenv(faults.FAULTS_ENV,
                           "worker_exception match=w16 attempts=0")
        jobs = [SweepJob("w16", "gzip", LENGTH),
                SweepJob("tc", "gzip", LENGTH),
                SweepJob("tc", "mcf", LENGTH)]
        report = run_sweep(jobs, workers=2, backoff=0.0, group_streams=True,
                           cache=ResultCache(tmp_path, enabled=True))
        # Two groups -> real pool fan-out; only the faulted member of the
        # gzip group retries.
        assert int(report.stats.get("sweep.stream_groups")) == 2
        assert not report.failures
        assert len(report.results) == len(jobs)
        assert int(report.stats.get("sweep.worker_errors")) == 1
        assert int(report.stats.get("sweep.recovered")) == 1

    def test_default_group_streams_parsing(self, monkeypatch):
        monkeypatch.delenv(GROUP_ENV, raising=False)
        assert default_group_streams()
        for value in ("0", "false", "NO", " off "):
            monkeypatch.setenv(GROUP_ENV, value)
            assert not default_group_streams(), value
        for value in ("1", "yes", ""):
            monkeypatch.setenv(GROUP_ENV, value)
            assert default_group_streams(), value


class TestFaultTolerance:
    """Every recovery path of the fault-tolerant runner, exercised via
    the deterministic fault-injection harness in repro.faults."""

    JOBS = [SweepJob("w16", bench, LENGTH) for bench in ("gzip", "mcf")]

    def test_worker_exception_recovers_inline(self, tmp_path, monkeypatch):
        """A job that blows up in its pool worker is re-executed inline
        and the sweep still produces every result."""
        monkeypatch.setenv(faults.FAULTS_ENV,
                           "worker_exception match=gzip attempts=0")
        report = run_sweep(self.JOBS, workers=2, backoff=0.0,
                           cache=ResultCache(tmp_path, enabled=True))
        assert not report.failures
        assert len(report.results) == len(self.JOBS)
        assert int(report.stats.get("sweep.retries")) >= 1
        assert int(report.stats.get("sweep.recovered")) == 1
        assert int(report.stats.get("sweep.worker_errors")) >= 1

    def test_recovered_results_match_clean_run(self, tmp_path, monkeypatch):
        clean = run_sweep(self.JOBS, workers=1,
                          cache=ResultCache(tmp_path / "clean",
                                            enabled=True))
        monkeypatch.setenv(faults.FAULTS_ENV,
                           "worker_exception match=w16 attempts=0")
        faulty = run_sweep(self.JOBS, workers=2, backoff=0.0,
                           cache=ResultCache(tmp_path / "faulty",
                                             enabled=True))
        assert not faulty.failures
        for job in self.JOBS:
            assert faulty.results[job] == clean.results[job]

    def test_persistent_failure_is_structured(self, tmp_path, monkeypatch):
        """A job failing every attempt becomes a JobFailure record, not a
        sweep-wide crash; the other jobs still succeed."""
        monkeypatch.setenv(faults.FAULTS_ENV,
                           "worker_exception match=gzip attempts=*")
        report = run_sweep(self.JOBS, workers=2, retries=1, backoff=0.0,
                           cache=ResultCache(tmp_path, enabled=True))
        assert len(report.results) == 1
        assert len(report.failures) == 1
        failure = report.failures[self.JOBS[0]]
        assert isinstance(failure, JobFailure)
        assert failure.error_type == "InjectedFault"
        assert failure.attempts == 2  # first attempt + one retry
        assert "gzip" in failure.describe()
        assert int(report.stats.get("sweep.failures")) == 1
        with pytest.raises(SweepError, match="InjectedFault"):
            report.raise_failures()

    def test_timeout_then_retry_succeeds(self, tmp_path, monkeypatch):
        """A job that overruns its wall-clock budget on the first attempt
        is killed and retried; the retry (not slowed) succeeds."""
        monkeypatch.setenv(faults.FAULTS_ENV,
                           "slow_job match=gzip seconds=30 attempts=0")
        report = run_sweep(self.JOBS, workers=2, timeout=4.0, backoff=0.0,
                           cache=ResultCache(tmp_path, enabled=True))
        assert not report.failures
        assert len(report.results) == len(self.JOBS)
        assert int(report.stats.get("sweep.timeouts")) >= 1
        assert int(report.stats.get("sweep.recovered")) == 1

    def test_persistent_timeout_is_structured_failure(self, tmp_path,
                                                      monkeypatch):
        """slow on every attempt -> retries also time out -> JobFailure
        with TimeoutError, and the sweep itself never hangs."""
        monkeypatch.setenv(faults.FAULTS_ENV,
                           "slow_job match=gzip seconds=30 attempts=*")
        report = run_sweep(self.JOBS, workers=2, retries=1, timeout=2.0,
                           backoff=0.0,
                           cache=ResultCache(tmp_path, enabled=True))
        assert len(report.failures) == 1
        failure = report.failures[self.JOBS[0]]
        assert failure.error_type == "TimeoutError"
        assert report.results[self.JOBS[1]] is not None

    def test_worker_crash_recovers_inline(self, tmp_path, monkeypatch):
        """A worker that dies mid-job (os._exit) loses its task silently;
        the bounded wait notices and the job re-executes inline."""
        monkeypatch.setenv(faults.FAULTS_ENV,
                           "worker_crash match=mcf attempts=0")
        report = run_sweep(self.JOBS, workers=2, timeout=6.0, backoff=0.0,
                           cache=ResultCache(tmp_path, enabled=True))
        assert not report.failures
        assert len(report.results) == len(self.JOBS)
        assert int(report.stats.get("sweep.recovered")) == 1

    def test_corrupt_cache_entry_quarantined_and_reexecuted(
            self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path, enabled=True)
        first = run_sweep(self.JOBS, workers=1, cache=cache)
        corrupted = faults.corrupt_entry(cache, self.JOBS[0])
        assert corrupted is not None
        second = run_sweep(self.JOBS, workers=1, cache=cache)
        assert not second.failures
        assert second.executed == 1  # only the corrupt entry re-executes
        assert int(second.stats.get("sweep.disk_hits")) == 1
        assert int(second.stats.get("sweep.cache_corrupt")) == 1
        assert second.results[self.JOBS[0]] == first.results[self.JOBS[0]]
        assert corrupted.with_name(corrupted.name + ".corrupt").exists()

    def test_truncated_cache_write_heals_on_next_sweep(self, tmp_path,
                                                       monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "truncated_write match=gzip")
        cache = ResultCache(tmp_path, enabled=True)
        run_sweep(self.JOBS, workers=1, cache=cache)
        monkeypatch.delenv(faults.FAULTS_ENV)
        report = run_sweep(self.JOBS, workers=1, cache=cache)
        assert not report.failures
        assert report.executed == 1  # the truncated entry re-executed
        assert int(report.stats.get("sweep.cache_corrupt")) == 1
        # Healed: a third sweep is all disk hits.
        third = run_sweep(self.JOBS, workers=1, cache=cache)
        assert third.executed == 0

    def test_degrades_to_serial_without_multiprocessing(self, tmp_path,
                                                        monkeypatch):
        """When no pool can be created the sweep runs serial inline
        instead of crashing."""
        from repro.experiments import runner as runner_mod
        monkeypatch.setattr(runner_mod, "_make_pool", lambda workers: None)
        report = run_sweep(self.JOBS, workers=2,
                           cache=ResultCache(tmp_path, enabled=True))
        assert not report.failures
        assert len(report.results) == len(self.JOBS)
        assert int(report.stats.get("sweep.degraded")) == 1

    def test_no_worker_processes_leak(self, tmp_path, monkeypatch):
        """After a sweep with hung (timed-out) jobs, every pool process
        must be gone — terminate() on the error path, no zombies."""
        import time
        monkeypatch.setenv(faults.FAULTS_ENV,
                           "slow_job match=gzip seconds=60 attempts=*")
        report = run_sweep(self.JOBS, workers=2, retries=0, timeout=2.0,
                           backoff=0.0,
                           cache=ResultCache(tmp_path, enabled=True))
        assert len(report.failures) == 1
        deadline = time.time() + 10
        while multiprocessing.active_children() and time.time() < deadline:
            time.sleep(0.1)
        assert not multiprocessing.active_children()

    def test_failed_jobs_keep_report_order_and_summary(self, tmp_path,
                                                       monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV,
                           "worker_exception match=gzip attempts=*")
        report = run_sweep(self.JOBS, workers=1, retries=0, backoff=0.0,
                           cache=ResultCache(tmp_path, enabled=True))
        summary = report.summary()
        assert "failures      1" in summary
        assert "FAILED" in summary and "InjectedFault" in summary
        assert report.failed == 1


class TestHelpers:
    def test_default_workers_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "3")
        assert default_workers() == 3
        monkeypatch.delenv("REPRO_SWEEP_WORKERS")
        assert default_workers() >= 1

    def test_default_retries_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_RETRIES", "5")
        assert default_retries() == 5
        monkeypatch.delenv("REPRO_SWEEP_RETRIES")
        assert default_retries() == 2

    def test_default_timeout_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOB_TIMEOUT", raising=False)
        assert default_job_timeout() is None
        monkeypatch.setenv("REPRO_JOB_TIMEOUT", "12.5")
        assert default_job_timeout() == 12.5
        monkeypatch.setenv("REPRO_JOB_TIMEOUT", "0")
        assert default_job_timeout() is None

    def test_default_backoff_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_BACKOFF", "0.25")
        assert default_backoff() == 0.25
        monkeypatch.delenv("REPRO_SWEEP_BACKOFF")
        assert default_backoff() == 0.05

    def test_parallel_map_preserves_order(self):
        items = list(range(20))
        assert parallel_map(_square, items, workers=4) == \
            [x * x for x in items]
        assert parallel_map(_square, items, workers=1) == \
            [x * x for x in items]

    def test_parallel_map_empty(self):
        assert parallel_map(_square, [], workers=4) == []


def _square(x):
    return x * x
