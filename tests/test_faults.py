"""Tests for the deterministic fault-injection harness."""

import pytest

from repro.errors import ReproError
from repro.faults import (
    FAULTS_ENV,
    FaultPlan,
    FaultSpec,
    FaultSpecError,
    InjectedFault,
    active_plan,
    install,
    uninstall,
)


class TestParsing:
    def test_parse_single_directive(self):
        plan = FaultPlan.parse("worker_exception match=gzip attempts=0")
        assert len(plan.specs) == 1
        spec = plan.specs[0]
        assert spec.kind == "worker_exception"
        assert spec.match == "gzip"
        assert spec.attempts == frozenset({0})

    def test_parse_multiple_directives(self):
        plan = FaultPlan.parse(
            "worker_exception match=gzip; "
            "slow_job seconds=0.25 attempts=*; "
            "truncated_write keep=0.3")
        kinds = [spec.kind for spec in plan.specs]
        assert kinds == ["worker_exception", "slow_job", "truncated_write"]
        assert plan.specs[1].attempts is None
        assert plan.specs[1].seconds == 0.25
        assert plan.specs[2].keep == 0.3

    def test_parse_attempt_list(self):
        plan = FaultPlan.parse("worker_exception attempts=0,2")
        assert plan.specs[0].attempts == frozenset({0, 2})

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse("explode match=gzip")

    def test_unknown_option_rejected(self):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse("slow_job minutes=5")

    def test_malformed_option_rejected(self):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse("slow_job seconds")

    def test_bad_value_rejected(self):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse("slow_job seconds=fast")

    def test_injected_fault_is_a_repro_error(self):
        assert issubclass(InjectedFault, ReproError)


class TestMatching:
    def test_match_substring_and_attempts(self):
        spec = FaultSpec(kind="worker_exception", match="gzip",
                         attempts=frozenset({0}))
        assert spec.applies("w16/gzip/n=1500", 0)
        assert not spec.applies("w16/gzip/n=1500", 1)
        assert not spec.applies("w16/mcf/n=1500", 0)

    def test_attempts_wildcard(self):
        spec = FaultSpec(kind="worker_exception", attempts=None)
        for attempt in range(5):
            assert spec.applies("anything", attempt)

    def test_seeded_rate_is_deterministic_and_partial(self):
        spec = FaultSpec(kind="worker_exception", rate=0.5, seed=7)
        jobs = [f"w16/bench{i}/n=1000" for i in range(200)]
        first = [spec.applies(job, 0) for job in jobs]
        second = [spec.applies(job, 0) for job in jobs]
        assert first == second, "seeded selection must be deterministic"
        hits = sum(first)
        assert 40 < hits < 160, f"rate=0.5 selected {hits}/200"

    def test_different_seeds_select_differently(self):
        a = FaultSpec(kind="worker_exception", rate=0.5, seed=1)
        b = FaultSpec(kind="worker_exception", rate=0.5, seed=2)
        jobs = [f"bench{i}" for i in range(100)]
        assert [a.applies(j, 0) for j in jobs] != \
            [b.applies(j, 0) for j in jobs]

    def test_rate_extremes(self):
        never = FaultSpec(kind="worker_exception", rate=0.0)
        always = FaultSpec(kind="worker_exception", rate=1.0)
        assert not never.applies("job", 0)
        assert always.applies("job", 0)


class TestInjection:
    def test_worker_exception_raises(self):
        plan = FaultPlan.parse("worker_exception match=gzip attempts=0")
        with pytest.raises(InjectedFault):
            plan.on_execute("w16/gzip/n=1500", 0)
        plan.on_execute("w16/gzip/n=1500", 1)  # retry passes
        plan.on_execute("w16/mcf/n=1500", 0)   # other jobs untouched

    def test_slow_job_sleeps(self):
        import time
        plan = FaultPlan.parse("slow_job seconds=0.05 attempts=0")
        start = time.perf_counter()
        plan.on_execute("w16/gzip/n=1500", 0)
        assert time.perf_counter() - start >= 0.05

    def test_truncated_write_mutates_payload(self):
        plan = FaultPlan.parse("truncated_write keep=0.5")
        text = "x" * 100
        assert plan.on_cache_write("job", text) == "x" * 50
        clean = FaultPlan.parse("worker_exception match=other")
        assert clean.on_cache_write("job", text) == text


class TestEnvPlumbing:
    def test_no_env_means_no_plan(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        assert active_plan() is None

    def test_env_round_trip(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "worker_exception match=abc")
        plan = active_plan()
        assert plan is not None and plan.specs[0].match == "abc"
        monkeypatch.setenv(FAULTS_ENV, "worker_exception match=xyz")
        plan = active_plan()
        assert plan is not None and plan.specs[0].match == "xyz"

    def test_install_uninstall(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        install("slow_job seconds=0.1")
        try:
            plan = active_plan()
            assert plan is not None and plan.specs[0].kind == "slow_job"
        finally:
            uninstall()
        assert active_plan() is None

    def test_install_validates_before_exporting(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        with pytest.raises(FaultSpecError):
            install("not_a_fault")
        assert active_plan() is None
