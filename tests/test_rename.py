"""Direct tests of the rename mechanisms, using small synthetic fragments
against a real out-of-order core."""

from repro.backend.core import OutOfOrderCore
from repro.config import (
    BackEndConfig,
    FragmentConfig,
    LiveOutPredictorConfig,
    MemoryConfig,
)
from repro.core.uop import MicroOp, PlaceholderProducer
from repro.frontend.buffers import FragmentInFlight
from repro.frontend.fragments import walk_fragment
from repro.isa.assembler import assemble
from repro.memory.hierarchy import MemoryHierarchy
from repro.predictors.liveout import LiveOutPredictor, compute_liveouts
from repro.rename.monolithic import MonolithicRenamer
from repro.rename.parallel import ParallelRenamer
from repro.stats import StatsCollector

CONFIG = FragmentConfig()


def make_core():
    stats = StatsCollector()
    memory = MemoryHierarchy(MemoryConfig(), stats)
    return OutOfOrderCore(BackEndConfig(), memory, stats), stats


def make_fragments(source, starts):
    """Build fully-fetched fragments starting at each symbol in *starts*."""
    program = assemble(source)
    fragments = []
    for seq, label in enumerate(starts):
        static = walk_fragment(program, program.symbols[label], (), CONFIG)
        fragment = FragmentInFlight(seq, static.key, static, (), ())
        fragment.fetched_count = static.length
        fragment.complete = True
        fragments.append(fragment)
    return program, fragments


def simple_make_uop(fragment, position):
    inst = fragment.static_frag.instructions[position]
    return MicroOp((fragment.seq << 8) | position, inst, inst.addr,
                   fragment.seq, position, record=None)


TWO_FRAGMENT_SOURCE = """
f0:
    addi t0, zero, 1
    addi t1, zero, 2
    add  t2, t0, t1
    jr   t2
f1:
    add  t3, t2, t0
    sub  t4, t3, t1
    jr   t4
"""


class TestMonolithicRenamer:
    def test_renames_in_order_and_links(self):
        core, stats = make_core()
        renamer = MonolithicRenamer(16, core, stats)
        _, fragments = make_fragments(TWO_FRAGMENT_SOURCE, ["f0", "f1"])
        renamed = renamer.cycle(1, fragments, simple_make_uop)
        assert len(renamed) == 7
        # f1's `add t3, t2, t0` must point at f0's producers.
        cross = fragments[1].uops[0]
        producers = {p.inst.dest_reg() for p in cross.sources}
        assert producers == {8, 10}  # t0, t2

    def test_width_limit(self):
        core, stats = make_core()
        renamer = MonolithicRenamer(3, core, stats)
        _, fragments = make_fragments(TWO_FRAGMENT_SOURCE, ["f0", "f1"])
        assert len(renamer.cycle(1, fragments, simple_make_uop)) == 3
        assert len(renamer.cycle(2, fragments, simple_make_uop)) == 3

    def test_cannot_skip_unfetched_oldest(self):
        core, stats = make_core()
        renamer = MonolithicRenamer(16, core, stats)
        _, fragments = make_fragments(TWO_FRAGMENT_SOURCE, ["f0", "f1"])
        fragments[0].fetched_count = 2  # f0 only partially fetched
        fragments[0].complete = False
        renamed = renamer.cycle(1, fragments, simple_make_uop)
        assert len(renamed) == 2  # stops at the unfetched instruction
        assert all(u.fragment_seq == 0 for u in renamed)

    def test_window_full_stalls(self):
        core, stats = make_core()
        core.reserve(BackEndConfig().window_size, fragment_seq=99)
        renamer = MonolithicRenamer(16, core, stats)
        _, fragments = make_fragments(TWO_FRAGMENT_SOURCE, ["f0"])
        assert renamer.cycle(1, fragments, simple_make_uop) == []
        assert stats.get("rename.window_stalls") == 1


class TestParallelRenamer:
    def make_renamer(self, core, stats, renamers=2, width=8,
                     predictor=None):
        predictor = predictor or LiveOutPredictor(
            LiveOutPredictorConfig(), stats)
        return ParallelRenamer(renamers, width, core, predictor, stats), \
            predictor

    def test_cold_fragment_serialises_through_placeholders(self):
        core, stats = make_core()
        renamer, _ = self.make_renamer(core, stats, renamers=2, width=4)
        # A long cold f0 so it is still renaming when f1 starts.
        source = ("f0:\n" + "\n".join(["    addi t0, t0, 1"] * 11)
                  + "\n    jr t0\n"
                  + "f1:\n    add t3, t0, t1\n    jr t3\n")
        _, fragments = make_fragments(source, ["f0", "f1"])
        renamer.cycle(1, fragments, simple_make_uop)   # phase1+start f0
        renamer.cycle(2, fragments, simple_make_uop)   # phase1 f1, both run
        assert not fragments[0].rename_done
        assert fragments[1].uops, "f1 renamed in parallel with cold f0"
        cross = fragments[1].uops[0]
        placeholders = [p for p in cross.sources
                        if isinstance(p, PlaceholderProducer)]
        assert placeholders
        assert all(p.producer is None and not p.ready
                   for p in placeholders)
        renamer.cycle(3, fragments, simple_make_uop)
        renamer.cycle(4, fragments, simple_make_uop)
        assert fragments[0].rename_done and fragments[1].rename_done
        assert stats.get("rename.liveout_cold") == 2
        # Cold placeholders resolved once f0's rename completed.
        assert all(p.producer is not None or p.ready
                   for p in placeholders)

    def test_predicted_fragment_binds_last_writes(self):
        core, stats = make_core()
        predictor = LiveOutPredictor(LiveOutPredictorConfig(), stats)
        program, fragments = make_fragments(TWO_FRAGMENT_SOURCE,
                                            ["f0", "f1"])
        # Pre-train the predictor with ground truth for both fragments.
        for fragment in fragments:
            predictor.train(fragment.key, compute_liveouts(
                fragment.static_frag.instructions))
        renamer, _ = self.make_renamer(core, stats, predictor=predictor)
        for cycle in range(1, 5):
            renamer.cycle(cycle, fragments, simple_make_uop)
        assert fragments[0].rename_done and fragments[1].rename_done
        assert stats.get("rename.liveout_mispredicts") == 0
        # Every placeholder of f0 bound to the actual last writer.
        for reg, placeholder in fragments[0].placeholders.items():
            assert placeholder.producer is not None
            assert placeholder.producer.inst.dest_reg() == reg

    def test_phase1_is_one_fragment_per_cycle(self):
        core, stats = make_core()
        renamer, predictor = self.make_renamer(core, stats)
        _, fragments = make_fragments(TWO_FRAGMENT_SOURCE, ["f0", "f1"])
        for fragment in fragments:
            predictor.train(fragment.key, compute_liveouts(
                fragment.static_frag.instructions))
        renamer.cycle(1, fragments, simple_make_uop)
        assert fragments[0].phase1_done and not fragments[1].phase1_done
        renamer.cycle(2, fragments, simple_make_uop)
        assert fragments[1].phase1_done

    def test_wrong_liveout_prediction_detected(self):
        core, stats = make_core()
        predictor = LiveOutPredictor(LiveOutPredictorConfig(), stats)
        _, fragments = make_fragments(TWO_FRAGMENT_SOURCE, ["f0", "f1"])
        truth = compute_liveouts(fragments[0].static_frag.instructions)
        # Claim t7 (never written) is a live-out and drop t2's last write:
        # condition 4 (no last write for a predicted live-out) must fire.
        from repro.predictors.liveout import LiveOutInfo
        wrong = LiveOutInfo(truth.liveout_regs | (1 << 15),
                            truth.last_writes, truth.length)
        predictor.train(fragments[0].key, wrong)
        renamer, _ = self.make_renamer(core, stats, predictor=predictor)
        for cycle in range(1, 4):
            renamer.cycle(cycle, fragments, simple_make_uop)
        assert stats.get("rename.liveout_mispredicts") == 1
        assert fragments[0].liveout_mispredicted

    def test_window_reservation_per_fragment_length(self):
        core, stats = make_core()
        renamer, _ = self.make_renamer(core, stats)
        _, fragments = make_fragments(TWO_FRAGMENT_SOURCE, ["f0"])
        renamer.cycle(1, fragments, simple_make_uop)
        assert core.window_free == \
            BackEndConfig().window_size - fragments[0].length

    def test_rename_rate_with_two_renamers(self):
        """Two 8-wide renamers rename two fragments concurrently."""
        core, stats = make_core()
        source = "\n".join(
            [f"g{i}:\n" + "\n".join(["    add t0, t0, t1"] * 7)
             + "\n    jr t0" for i in range(3)])
        _, fragments = make_fragments(source, ["g0", "g1", "g2"])
        renamer, predictor = self.make_renamer(core, stats)
        for fragment in fragments:
            predictor.train(fragment.key, compute_liveouts(
                fragment.static_frag.instructions))
        renamer.cycle(1, fragments, simple_make_uop)   # phase1 g0, rename g0
        renamed = renamer.cycle(2, fragments, simple_make_uop)
        # Cycle 2: g0 (second renamer slot free) and g1 in flight.
        assert len({u.fragment_seq for u in renamed}) >= 1
        total = []
        for cycle in range(3, 8):
            total.extend(renamer.cycle(cycle, fragments, simple_make_uop))
        assert all(f.rename_done for f in fragments)


class TestDelayRenamer:
    """The paper's solution 1: no live-out prediction; every fragment
    forwards pass-through placeholders."""

    def test_no_predictor_lookups(self):
        core, stats = make_core()
        predictor = LiveOutPredictor(LiveOutPredictorConfig(), stats)
        renamer = ParallelRenamer(2, 8, core, predictor, stats,
                                  use_liveout_prediction=False)
        _, fragments = make_fragments(TWO_FRAGMENT_SOURCE, ["f0", "f1"])
        for cycle in range(1, 5):
            renamer.cycle(cycle, fragments, simple_make_uop)
        assert all(f.rename_done for f in fragments)
        assert stats.get("rename.liveout_lookups") == 0
        assert stats.get("rename.delay_fragments") == 2
        # Delay mode can never mispredict live-outs.
        assert stats.get("rename.liveout_mispredicts") == 0

    def test_end_to_end_delay_configs(self):
        from repro import run_simulation
        for config in ("pd-2x8w", "pd-4x4w"):
            result = run_simulation(config, "gzip", max_instructions=3000)
            assert not result.timed_out
            assert result.counter("rename.delay_fragments") > 0

    def test_delay_waits_more_than_prediction(self):
        """Solution 1 delays consumers behind producing fragments, so more
        instructions rename before their source mapping resolves."""
        from repro import run_simulation
        pr = run_simulation("pr-2x8w", "gcc", max_instructions=5000)
        pd = run_simulation("pd-2x8w", "gcc", max_instructions=5000)
        assert pd.renamed_before_source_fraction > \
            pr.renamed_before_source_fraction


class TestSelectiveReexecution:
    """Section 4.3's alternative recovery: repair and re-execute only the
    incorrectly renamed instructions."""

    def _run(self, config_name, bench, recovery, n=6000):
        import dataclasses
        from repro import frontend_config, run_simulation
        config = frontend_config(config_name)
        config = config.replace(frontend=dataclasses.replace(
            config.frontend, liveout_recovery=recovery))
        return run_simulation(config, bench, max_instructions=n,
                              config_name=f"{config_name}/{recovery}")

    def test_reexecute_commits_full_stream(self):
        for bench in ("gzip", "gcc"):
            result = self._run("pr-4x4w", bench, "reexecute")
            assert not result.timed_out
            squash = self._run("pr-4x4w", bench, "squash")
            assert result.committed == squash.committed

    def test_reexecute_repairs_instead_of_squashing(self):
        result = self._run("pr-4x4w", "gzip", "reexecute")
        if result.counter("rename.liveout_mispredicts"):
            assert result.counter("rename.liveout_squashes") == 0
            assert result.counter("rename.liveout_reexec_events") > 0

    def test_reexecute_never_slower_by_much(self):
        """The paper: squashing is acceptable when misprediction rates are
        low; re-execution should be a small refinement either way."""
        squash = self._run("pr-4x4w", "gcc", "squash")
        reexec = self._run("pr-4x4w", "gcc", "reexecute")
        assert reexec.ipc > 0.9 * squash.ipc

    def test_config_validation(self):
        import pytest
        from repro.config import FrontEndConfig
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            FrontEndConfig(liveout_recovery="bogus")
