"""Tests for the pipeline watchdog and per-cycle invariant audits."""

import pytest

from repro import frontend_config, run_simulation
from repro.core.invariants import (
    DEFAULT_STALL_CYCLES,
    InvariantChecker,
    PipelineWatchdog,
    dump_pipeline_state,
)
from repro.core.processor import Processor
from repro.core.uop import UopState
from repro.emulator.machine import execute
from repro.errors import DeadlockError, InvariantError, SimulationError
from repro.workloads.kernels import state_machine


def make_processor(config_name="w16", instructions=1200, **kwargs):
    program = state_machine(128)
    oracle = execute(program, instructions).stream
    return Processor(frontend_config(config_name), program, oracle, **kwargs)


class TestWatchdog:
    def test_healthy_run_never_trips(self):
        processor = make_processor(watchdog=PipelineWatchdog(stall_limit=500))
        processor.run()
        assert processor.finished

    def test_livelock_raises_deadlock_error(self):
        """A deliberately stalled processor (commit disabled) must raise
        DeadlockError at the stall limit, not run silently to the
        max_cycles bound."""
        processor = make_processor(
            watchdog=PipelineWatchdog(stall_limit=100))
        processor._commit = lambda: None
        with pytest.raises(DeadlockError) as excinfo:
            processor.run()
        error = excinfo.value
        # Far before the default max_cycles bound.
        assert error.cycle == pytest.approx(100, abs=5)
        assert "livelock" in str(error)

    def test_deadlock_carries_cycle_stamped_dump(self):
        processor = make_processor(watchdog=PipelineWatchdog(stall_limit=60))
        processor._commit = lambda: None
        with pytest.raises(DeadlockError) as excinfo:
            processor.run()
        message = str(excinfo.value)
        assert f"pipeline state @ cycle {excinfo.value.cycle}" in message
        assert "frag#" in message and "buffers:" in message
        assert excinfo.value.dump is not None

    def test_deadlock_is_a_simulation_error(self):
        """Callers catching the existing hierarchy keep working."""
        assert issubclass(DeadlockError, SimulationError)
        assert issubclass(InvariantError, SimulationError)

    def test_watchdog_disabled_times_out_silently(self):
        processor = make_processor(watchdog=None)
        processor._commit = lambda: None
        processor.run(max_cycles=300)
        assert not processor.finished
        assert processor.stats.get("sim.timeout") == 1

    def test_env_configures_stall_limit(self, monkeypatch):
        monkeypatch.setenv("REPRO_WATCHDOG_CYCLES", "123")
        watchdog = PipelineWatchdog.from_env()
        assert watchdog is not None and watchdog.stall_limit == 123
        monkeypatch.setenv("REPRO_WATCHDOG_CYCLES", "0")
        assert PipelineWatchdog.from_env() is None
        monkeypatch.delenv("REPRO_WATCHDOG_CYCLES")
        watchdog = PipelineWatchdog.from_env()
        assert watchdog is not None
        assert watchdog.stall_limit == DEFAULT_STALL_CYCLES


class TestInvariantChecker:
    @pytest.mark.parametrize("config_name",
                             ["w16", "tc", "pf-2x8w", "pr-2x8w",
                              "tc+pr-4x4w"])
    def test_healthy_runs_pass_audits(self, config_name):
        result = run_simulation(config_name, state_machine(256),
                                max_instructions=2500,
                                invariant_checks=True)
        assert not result.timed_out

    def test_env_opt_in(self, monkeypatch):
        monkeypatch.delenv("REPRO_INVARIANT_CHECKS", raising=False)
        assert InvariantChecker.from_env() is None
        monkeypatch.setenv("REPRO_INVARIANT_CHECKS", "1")
        checker = InvariantChecker.from_env()
        assert checker is not None and checker.interval == 1
        monkeypatch.setenv("REPRO_INVARIANT_CHECKS", "16")
        checker = InvariantChecker.from_env()
        assert checker is not None and checker.interval == 16
        monkeypatch.setenv("REPRO_INVARIANT_CHECKS", "0")
        assert InvariantChecker.from_env() is None

    def run_briefly(self):
        # pr-2x8w keeps partially renamed fragments in flight at this
        # depth, giving the audits uops and map tables to corrupt.
        processor = make_processor("pr-2x8w")
        processor.run(max_cycles=40)
        assert processor.fragments, "expected in-flight fragments"
        return processor

    def test_detects_commit_cursor_overrun(self):
        processor = self.run_briefly()
        fragment = processor.fragments[0]
        fragment.committed_count = fragment.length + 7
        with pytest.raises(InvariantError) as excinfo:
            InvariantChecker().check(processor)
        assert "committed" in str(excinfo.value)
        assert excinfo.value.cycle == processor.now

    def test_detects_buffer_backpointer_mismatch(self):
        processor = self.run_briefly()
        occupied = [f for f in processor.fragments
                    if f.buffer_index is not None]
        assert occupied, "expected a buffered fragment"
        occupied[0].buffer_index = (occupied[0].buffer_index + 1) % len(
            processor.buffers._buffers)
        with pytest.raises(InvariantError) as excinfo:
            InvariantChecker().check(processor)
        assert "buffer" in str(excinfo.value)

    def test_detects_wrong_path_commit(self):
        processor = self.run_briefly()
        fragment = next(f for f in processor.fragments if f.uops)
        uop = fragment.uops[0]
        uop.record = None
        uop.state = UopState.COMMITTED
        fragment.committed_count = max(fragment.committed_count, 1)
        with pytest.raises(InvariantError) as excinfo:
            InvariantChecker().check(processor)
        assert "committed" in str(excinfo.value)
        assert excinfo.value.dump is not None

    def test_detects_rename_map_corruption(self):
        processor = self.run_briefly()
        fragment = next(f for f in processor.fragments
                        if f.internal_writers)
        reg = next(iter(fragment.internal_writers))
        foreign = make_processor("pr-2x8w")
        foreign.run(max_cycles=40)
        donor = next(f for f in foreign.fragments if f.uops)
        fragment.internal_writers[reg] = donor.uops[0]
        with pytest.raises(InvariantError) as excinfo:
            InvariantChecker().check(processor)
        assert "internal writer" in str(excinfo.value)

    def test_interval_skips_off_cycles(self):
        processor = self.run_briefly()
        fragment = processor.fragments[0]
        fragment.committed_count = fragment.length + 7
        checker = InvariantChecker(interval=10_000)
        if processor.now % 10_000:
            checker.check(processor)  # off-cycle: audit skipped
        checker = InvariantChecker(interval=1)
        with pytest.raises(InvariantError):
            checker.check(processor)


def test_dump_pipeline_state_is_cycle_stamped():
    processor = make_processor()
    processor.run(max_cycles=50)
    dump = dump_pipeline_state(processor)
    assert f"@ cycle {processor.now}" in dump
    assert "fragments in flight" in dump
    assert "commit.insts" in dump
