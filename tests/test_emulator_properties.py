"""Property-based tests of emulator arithmetic against a reference model.

Each property assembles a tiny program that loads two 64-bit operands
from memory, applies one operation, and outputs the result; the result
must match an independently-computed reference.
"""

from hypothesis import given, settings, strategies as st

from repro.emulator.machine import execute, to_signed, to_unsigned
from repro.isa.assembler import assemble

WORDS = st.integers(min_value=-(2**63), max_value=2**63 - 1)
SMALL_SHIFTS = st.integers(min_value=0, max_value=63)

_TEMPLATE = """
    main:
        ld  t0, 0(gp)
        ld  t1, 8(gp)
        {op} t2, t0, t1
        out t2
        halt
        .data
        .word {a}, {b}
"""


def run_binop(op, a, b):
    source = _TEMPLATE.format(op=op, a=a, b=b)
    return execute(assemble(source)).outputs[0]


@given(a=WORDS, b=WORDS)
@settings(max_examples=60, deadline=None)
def test_add_matches_wraparound(a, b):
    assert run_binop("add", a, b) == to_signed(a + b)


@given(a=WORDS, b=WORDS)
@settings(max_examples=60, deadline=None)
def test_sub_matches_wraparound(a, b):
    assert run_binop("sub", a, b) == to_signed(a - b)


@given(a=WORDS, b=WORDS)
@settings(max_examples=60, deadline=None)
def test_mul_matches_wraparound(a, b):
    assert run_binop("mul", a, b) == to_signed(a * b)


@given(a=WORDS, b=WORDS)
@settings(max_examples=60, deadline=None)
def test_logic_ops_match(a, b):
    ua, ub = to_unsigned(a), to_unsigned(b)
    assert run_binop("and", a, b) == to_signed(ua & ub)
    assert run_binop("or", a, b) == to_signed(ua | ub)
    assert run_binop("xor", a, b) == to_signed(ua ^ ub)


@given(a=WORDS, b=WORDS)
@settings(max_examples=60, deadline=None)
def test_division_identity(a, b):
    """Truncating division invariant: a == q*b + r with |r| < |b|."""
    quotient = run_binop("div", a, b)
    remainder = run_binop("rem", a, b)
    if b == 0:
        assert quotient == -1 and remainder == a
    else:
        assert to_signed(quotient * b + remainder) == a
        assert abs(remainder) < abs(b)
        # Truncation toward zero: remainder has the dividend's sign.
        assert remainder == 0 or (remainder < 0) == (a < 0)


@given(a=WORDS, shift=SMALL_SHIFTS)
@settings(max_examples=60, deadline=None)
def test_shifts_match(a, shift):
    source = f"""
    main:
        ld   t0, 0(gp)
        li   t1, {shift}
        sll  t2, t0, t1
        out  t2
        srl  t3, t0, t1
        out  t3
        sra  t4, t0, t1
        out  t4
        halt
        .data
        .word {a}
    """
    sll, srl, sra = execute(assemble(source)).outputs
    ua = to_unsigned(a)
    assert sll == to_signed(ua << shift)
    assert srl == to_signed(ua >> shift)
    assert sra == to_signed(a) >> shift


@given(a=WORDS, b=WORDS)
@settings(max_examples=60, deadline=None)
def test_comparisons_match(a, b):
    assert run_binop("slt", a, b) == int(a < b)
    assert run_binop("sltu", a, b) == int(to_unsigned(a) < to_unsigned(b))


@given(values=st.lists(WORDS, min_size=1, max_size=16))
@settings(max_examples=30, deadline=None)
def test_memory_roundtrip(values):
    """Stores followed by loads return exactly what was stored."""
    word_list = ", ".join(str(v) for v in values)
    source = f"""
    main:
        li   s0, {len(values)}
        la   t0, src
        la   t1, dst
    copy:
        ld   t2, 0(t0)
        st   t2, 0(t1)
        addi t0, t0, 8
        addi t1, t1, 8
        addi s0, s0, -1
        bne  s0, zero, copy
        la   t1, dst
        li   s0, {len(values)}
    emit:
        ld   t2, 0(t1)
        out  t2
        addi t1, t1, 8
        addi s0, s0, -1
        bne  s0, zero, emit
        halt
        .data
    src:
        .word {word_list}
    dst:
        .space {8 * len(values)}
    """
    assert execute(assemble(source)).outputs == values
