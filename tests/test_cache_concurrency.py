"""Crash-safety and concurrency tests for the persistent result cache:
orphaned-tmp reaping, racing clears, size-budget eviction, and a
multi-process hammer over one shared directory."""

import json
import multiprocessing
import os
import pathlib
import time

import pytest

from repro.core.simulation import SimulationResult
from repro.experiments import runner
from repro.experiments.runner import (
    ResultCache,
    SweepJob,
    parse_cache_budget,
)
from repro.stats import StatsCollector

LENGTH = 1500


def make_result(**kwargs):
    defaults = dict(benchmark="gzip", config_name="w16", cycles=100,
                    committed=400, counters={"fetch.insts": 600.0})
    defaults.update(kwargs)
    return SimulationResult(**defaults)


def seed_entries(cache, count, start=0):
    """Store *count* distinct entries; returns their keys in order."""
    keys = []
    for index in range(start, start + count):
        job = SweepJob("w16", "gzip", LENGTH + index)
        key = job.cache_key()
        cache.store(key, job, make_result(cycles=100 + index))
        keys.append(key)
    return keys


class TestBudgetParsing:
    @pytest.mark.parametrize("text,expected", [
        (None, None),
        ("", None),
        ("0", None),
        ("1024", 1024),
        ("64K", 64 * 1024),
        ("64k", 64 * 1024),
        ("256M", 256 * 1024 ** 2),
        ("256MB", 256 * 1024 ** 2),
        ("2G", 2 * 1024 ** 3),
        ("1.5K", 1536),
        (" 512 ", 512),
    ])
    def test_accepted_forms(self, text, expected):
        assert parse_cache_budget(text) == expected

    @pytest.mark.parametrize("text", ["lots", "12Q", "M", "-"])
    def test_garbage_raises(self, text):
        with pytest.raises(ValueError):
            parse_cache_budget(text)

    def test_env_reaches_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv(runner.CACHE_BUDGET_ENV, "4K")
        assert ResultCache(tmp_path).budget == 4096

    def test_explicit_budget_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(runner.CACHE_BUDGET_ENV, "4K")
        assert ResultCache(tmp_path, budget=999).budget == 999


class TestStaleTmpReaping:
    def _orphan(self, directory, name, age):
        path = directory / name
        path.write_text("half a write")
        stamp = time.time() - age
        os.utime(path, (stamp, stamp))
        return path

    def test_reap_is_age_gated(self, tmp_path):
        cache = ResultCache(tmp_path)
        stale = self._orphan(tmp_path, "aaaa.tmp.999-0", age=3600)
        fresh = self._orphan(tmp_path, "bbbb.tmp.999-1", age=1)
        stats = StatsCollector()
        assert cache.reap_stale_tmp(stats=stats) == 1
        assert not stale.exists()
        assert fresh.exists()  # an in-flight write is never touched
        assert stats.get("sweep.cache_tmp_reaped") == 1

    def test_open_sweeps_stale_orphans(self, tmp_path, monkeypatch):
        # A fresh directory key, so the per-process rate limit is cold.
        monkeypatch.setattr(runner, "_LAST_REAP", {})
        stale = self._orphan(tmp_path, "cccc.tmp.999-0", age=3600)
        ResultCache(tmp_path)
        assert not stale.exists()

    def test_open_reap_is_rate_limited(self, tmp_path, monkeypatch):
        monkeypatch.setattr(runner, "_LAST_REAP", {})
        ResultCache(tmp_path)  # records the sweep time for this dir
        stale = self._orphan(tmp_path, "dddd.tmp.999-0", age=3600)
        ResultCache(tmp_path)  # within the rate-limit window: no scan
        assert stale.exists()

    def test_clear_reaps_stale_but_spares_inflight(self, tmp_path):
        cache = ResultCache(tmp_path)
        stale = self._orphan(tmp_path, "eeee.tmp.999-0", age=3600)
        fresh = self._orphan(tmp_path, "eeee.tmp.999-1", age=0)
        cache.clear()
        assert not stale.exists()
        # A live writer's in-flight tmp must survive a concurrent clear
        # or its atomic rename would blow up (see the hammer test).
        assert fresh.exists()

    def test_store_losing_race_to_sweeper_is_quiet(self, tmp_path,
                                                   monkeypatch):
        """If an external sweeper unlinks our tmp before the rename,
        store() drops the entry silently instead of failing the job."""
        cache = ResultCache(tmp_path)
        job = SweepJob("w16", "gzip", LENGTH)

        original = runner.os.replace

        def sweeper_wins(src, dst):
            os.unlink(src)
            return original(src, dst)  # now raises FileNotFoundError

        monkeypatch.setattr(runner.os, "replace", sweeper_wins)
        stats = StatsCollector()
        cache.store(job.cache_key(), job, make_result(), stats=stats)
        monkeypatch.undo()
        assert stats.get("sweep.cache_store_lost") == 1
        assert cache.load(job.cache_key()) is None

    def test_ttl_env_override(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        orphan = self._orphan(tmp_path, "ffff.tmp.999-0", age=10)
        monkeypatch.setenv(runner.CACHE_TMP_TTL_ENV, "5")
        assert cache.reap_stale_tmp() == 1
        assert not orphan.exists()

    def test_failed_store_leaves_no_tmp(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        job = SweepJob("w16", "gzip", LENGTH)

        def explode(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(runner.os, "replace", explode)
        with pytest.raises(OSError):
            cache.store(job.cache_key(), job, make_result())
        monkeypatch.undo()
        assert list(tmp_path.glob("*.tmp.*")) == []
        assert len(cache) == 0

    def test_concurrent_stores_use_distinct_tmp_names(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = SweepJob("w16", "gzip", LENGTH)
        key = job.cache_key()
        seen = set()
        original = runner.os.replace

        def spy(src, dst):
            seen.add(str(src))
            return original(src, dst)

        try:
            runner.os.replace = spy
            cache.store(key, job, make_result())
            cache.store(key, job, make_result())
        finally:
            runner.os.replace = original
        assert len(seen) == 2  # same key, same pid, distinct tmp files


class TestClearRaces:
    def test_clear_tolerates_vanishing_entries(self, tmp_path,
                                               monkeypatch):
        """A second process may delete entries between our listing and
        our unlink; clear() must skip them, not crash."""
        cache = ResultCache(tmp_path)
        keys = seed_entries(cache, 3)
        original_glob = pathlib.Path.glob

        def racing_glob(self, pattern):
            for path in original_glob(self, pattern):
                if path.stem.startswith(keys[0]):
                    path.unlink()  # the "other process" wins the race
                yield path

        monkeypatch.setattr(pathlib.Path, "glob", racing_glob)
        removed = cache.clear()
        monkeypatch.undo()
        assert removed == 2  # only the entries *we* actually deleted
        assert len(cache) == 0

    def test_concurrent_clear_of_quarantined_files(self, tmp_path,
                                                   monkeypatch):
        cache = ResultCache(tmp_path)
        seed_entries(cache, 1)
        corpse = tmp_path / ("0" * 64 + ".json.corrupt")
        corpse.write_text("{broken")
        original_glob = pathlib.Path.glob

        def racing_glob(self, pattern):
            for path in original_glob(self, pattern):
                if path.name.endswith(".corrupt"):
                    path.unlink()
                yield path

        monkeypatch.setattr(pathlib.Path, "glob", racing_glob)
        assert cache.clear() == 1  # no FileNotFoundError escape


class TestBudgetEviction:
    def test_store_evicts_oldest_mtime_first(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = seed_entries(cache, 3)
        size = cache.total_bytes() // 3
        now = time.time()
        for rank, key in enumerate(keys):
            stamp = now - 1000 + rank  # keys[0] oldest ... keys[2] newest
            os.utime(cache._path(key), (stamp, stamp))
        cache.budget = int(size * 2.5)  # room for two entries + slack
        stats = StatsCollector()
        job = SweepJob("w16", "gzip", LENGTH + 99)
        cache.store(job.cache_key(), job, make_result(), stats=stats)
        assert cache.load(keys[0]) is None       # oldest: evicted
        assert cache.load(job.cache_key()) is not None  # newest: kept
        assert cache.total_bytes() <= cache.budget
        assert stats.get("sweep.cache_evicted") >= 1

    def test_load_refreshes_recency(self, tmp_path):
        cache = ResultCache(tmp_path, budget=1 << 30)
        keys = seed_entries(cache, 2)
        now = time.time()
        for rank, key in enumerate(keys):
            stamp = now - 1000 + rank
            os.utime(cache._path(key), (stamp, stamp))
        assert cache.load(keys[0]) is not None   # touch the oldest
        size = cache.total_bytes() // 2
        cache.budget = int(size * 1.5)           # room for one entry
        cache._evict_over_budget(None)
        assert cache.load(keys[0]) is not None   # hot entry survived
        assert cache.load(keys[1]) is None       # cold entry evicted

    def test_no_budget_never_evicts(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.budget is None
        seed_entries(cache, 5)
        assert len(cache) == 5

    def test_under_budget_is_untouched(self, tmp_path):
        cache = ResultCache(tmp_path, budget=1 << 30)
        seed_entries(cache, 3)
        assert len(cache) == 3


# ---------------------------------------------------------------------------
# Multi-process hammer

HAMMER_OPS = 60
HAMMER_KEYS = 8


def _hammer_job(index):
    return SweepJob("w16", "gzip", LENGTH + index)


def _hammer_worker(directory, worker_id, failures):
    """Mixed store/load/clear traffic; any inconsistency is reported."""
    import random
    rng = random.Random(worker_id)
    cache = ResultCache(directory)
    try:
        for op in range(HAMMER_OPS):
            index = rng.randrange(HAMMER_KEYS)
            job = _hammer_job(index)
            key = job.cache_key()
            roll = rng.random()
            if roll < 0.55:
                cache.store(key, job, make_result(cycles=100 + index))
            elif roll < 0.92:
                result = cache.load(key)
                # A miss is legal (cleared / not yet written); a hit
                # must carry exactly the payload keyed to this job.
                if result is not None and result.cycles != 100 + index:
                    failures.put(f"worker {worker_id}: corrupt read "
                                 f"for key {index}: {result.cycles}")
            else:
                cache.clear()
    except BaseException as exc:  # noqa: BLE001 - report, don't hang
        failures.put(f"worker {worker_id}: {type(exc).__name__}: {exc}")


class TestMultiProcessHammer:
    def test_shared_directory_hammer(self, tmp_path):
        """N processes store/load/clear one directory concurrently:
        no crashes, no torn or mismatched reads, no quarantine events,
        and a deterministic final state after re-seeding."""
        directory = tmp_path / "shared"
        failures = multiprocessing.Queue()
        workers = [
            multiprocessing.Process(target=_hammer_worker,
                                    args=(str(directory), worker_id,
                                          failures))
            for worker_id in range(4)
        ]
        for proc in workers:
            proc.start()
        for proc in workers:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        errors = []
        while not failures.empty():
            errors.append(failures.get())
        assert errors == []
        # Torn writes would have been quarantined as *.corrupt.
        assert list(directory.glob("*.corrupt")) == []
        assert list(directory.glob("*.tmp.*")) == []
        # The directory is still fully usable: clear, re-seed, verify.
        cache = ResultCache(directory)
        cache.clear()
        assert len(cache) == 0
        seed_entries(cache, HAMMER_KEYS)
        assert len(cache) == HAMMER_KEYS
        for index in range(HAMMER_KEYS):
            job = _hammer_job(index)
            loaded = cache.load(job.cache_key())
            # seed_entries uses LENGTH+index jobs with cycles=100+index
            assert loaded is not None and loaded.cycles == 100 + index

    def test_hammer_entries_are_valid_json(self, tmp_path):
        """Every surviving entry parses and round-trips."""
        directory = tmp_path / "shared"
        failures = multiprocessing.Queue()
        workers = [
            multiprocessing.Process(target=_hammer_worker,
                                    args=(str(directory), worker_id,
                                          failures))
            for worker_id in (10, 11)
        ]
        for proc in workers:
            proc.start()
        for proc in workers:
            proc.join(timeout=120)
        for path in directory.glob("*.json"):
            payload = json.loads(path.read_text())
            assert payload["schema"] == runner.CACHE_SCHEMA_VERSION
            assert "result" in payload
