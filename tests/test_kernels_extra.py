"""Functional and pipeline tests for the extended kernel library."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import run_simulation
from repro.emulator.machine import execute
from repro.workloads.kernels_extra import (
    bfs,
    binary_search,
    crc32_kernel,
    quicksort,
    random_graph,
    reference_bfs,
    reference_crc32,
    sieve,
)


class TestBinarySearch:
    def test_finds_and_misses(self):
        values = [2, 5, 7, 11, 13, 17, 19, 23]
        queries = [7, 1, 23, 12, 2]
        outputs = execute(binary_search(values, queries)).outputs
        expected = []
        for q in queries:
            expected.append(values.index(q) if q in values else -1)
        assert outputs == expected

    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=32,
                    unique=True),
           st.lists(st.integers(-1000, 1000), min_size=1, max_size=8))
    @settings(max_examples=20, deadline=None)
    def test_matches_reference(self, values, queries):
        ordered = sorted(values)
        outputs = execute(binary_search(values, queries),
                          200_000).outputs
        for q, got in zip(queries, outputs):
            if q in ordered:
                assert ordered[got] == q
            else:
                assert got == -1


class TestSieve:
    @pytest.mark.parametrize("limit, primes", [(10, 4), (30, 10),
                                               (100, 25), (200, 46)])
    def test_prime_counts(self, limit, primes):
        assert execute(sieve(limit), 2_000_000).outputs == [primes]


class TestQuicksort:
    def test_sorts_shuffled(self):
        rng = random.Random(5)
        values = list(range(24))
        rng.shuffle(values)
        assert execute(quicksort(values), 500_000).outputs == sorted(values)

    def test_sorts_adversarial_inputs(self):
        for values in ([5, 4, 3, 2, 1], [1, 1, 1, 2, 1],
                       list(range(16)), [3, 3, 3, 3]):
            result = execute(quicksort(values), 500_000)
            assert result.halted
            assert result.outputs == sorted(values)

    @given(st.lists(st.integers(-999, 999), min_size=2, max_size=24))
    @settings(max_examples=20, deadline=None)
    def test_matches_sorted(self, values):
        assert execute(quicksort(values), 1_000_000).outputs == \
            sorted(values)


class TestCrc32:
    def test_matches_reference(self):
        data = [0x31, 0x32, 0x33, 0x34, 0x35, 0x36, 0x37, 0x38, 0x39]
        outputs = execute(crc32_kernel(data, rounds=2), 100_000).outputs
        expected = reference_crc32(data)
        assert outputs == [expected, expected]

    def test_reference_matches_zlib(self):
        import zlib
        data = list(b"hello, front-end")
        assert reference_crc32(data) == zlib.crc32(bytes(data))

    @given(st.lists(st.integers(0, 255), min_size=1, max_size=16))
    @settings(max_examples=15, deadline=None)
    def test_property_vs_zlib(self, data):
        import zlib
        outputs = execute(crc32_kernel(data, rounds=1), 200_000).outputs
        assert outputs == [zlib.crc32(bytes(data))]


class TestBfs:
    def test_visit_order_matches_reference(self):
        graph = random_graph(10, density=0.4, seed=3)
        outputs = execute(bfs(graph), 500_000).outputs
        assert outputs == reference_bfs(graph)

    def test_disconnected_graph(self):
        graph = [[0, 1, 0, 0], [1, 0, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]]
        assert execute(bfs(graph), 100_000).outputs == [0, 1]

    @given(st.integers(min_value=2, max_value=12),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_property_random_graphs(self, n, seed):
        graph = random_graph(n, density=0.3, seed=seed)
        assert execute(bfs(graph), 500_000).outputs == reference_bfs(graph)


class TestKernelsOnPipeline:
    @pytest.mark.parametrize("config", ["w16", "pr-2x8w"])
    def test_kernels_simulate_cleanly(self, config):
        for program in (binary_search(list(range(0, 64, 2)), [10, 11]),
                        sieve(60),
                        crc32_kernel([1, 2, 3, 4], rounds=1),
                        bfs(random_graph(8, seed=1))):
            result = run_simulation(config, program, max_instructions=4000)
            assert not result.timed_out
            assert result.committed > 0
