"""Tests for live telemetry and attach (:mod:`repro.obs.live`,
:mod:`repro.obs.attach`) plus the observability satellites that ride
along: the service metrics stream, sweep fleet telemetry, checkpoint
timing counters, loadgen latency percentiles, and the phase profiler
under the interval-sampled engine.

The load-bearing property throughout: telemetry is read-only — a run
with a publisher attached is bit-identical (cycles, committed and every
counter) to the same run without one, in full-detail, sampled and
checkpointed modes alike.
"""

import asyncio
import json
import os

import pytest

from repro.config import LiveConfig
from repro.core.simulation import run_simulation
from repro.errors import ConfigError
from repro.obs import LiveTelemetry, SweepFleet, read_snapshots, \
    validate_snapshot
from repro.obs.attach import (
    FileSource,
    bar,
    render_fleet_lines,
    render_lines,
    resolve_source,
    snapshot_once,
    sparkline,
)
from repro.obs.live import SCHEMA_VERSION, default_path, default_sweep_path
from repro.sampling import SamplingConfig

CONFIG = "pr-2x8w"
BENCH = "gzip"
N = 1500


@pytest.fixture(autouse=True)
def no_ambient_live(monkeypatch):
    """Keep every test hermetic against inherited REPRO_LIVE* knobs."""
    for name in ("REPRO_LIVE", "REPRO_LIVE_PATH", "REPRO_LIVE_EVERY"):
        monkeypatch.delenv(name, raising=False)


class TestLiveConfig:
    def test_from_env_defaults_off(self):
        assert LiveConfig.from_env() is None

    def test_enabled_by_flag(self, monkeypatch):
        monkeypatch.setenv("REPRO_LIVE", "1")
        config = LiveConfig.from_env()
        assert config is not None
        assert config.path is None and config.every == 1000

    def test_path_implies_enabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_LIVE_PATH", "/tmp/x.ndjson")
        config = LiveConfig.from_env()
        assert config is not None and config.path == "/tmp/x.ndjson"

    def test_cadence_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_LIVE", "true")
        monkeypatch.setenv("REPRO_LIVE_EVERY", "250")
        assert LiveConfig.from_env().every == 250

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            LiveConfig(every=0)
        with pytest.raises(ConfigError):
            LiveConfig(history=0)


class TestSnapshotSchema:
    def _valid(self):
        return {"v": SCHEMA_VERSION, "seq": 0, "pid": 1,
                "state": "running", "mode": "full", "cycle": 10,
                "committed": 5, "ipc": 0.5,
                "gauges": {"window.used": 3.0}, "wall": 0.1}

    def test_valid_snapshot_passes(self):
        assert validate_snapshot(self._valid()) == []

    def test_missing_keys_reported(self):
        snapshot = self._valid()
        del snapshot["gauges"]
        problems = validate_snapshot(snapshot)
        assert problems and "gauges" in problems[0]

    def test_wrong_version_and_state(self):
        snapshot = self._valid()
        snapshot["v"] = 99
        snapshot["state"] = "paused"
        problems = "\n".join(validate_snapshot(snapshot))
        assert "version" in problems and "paused" in problems

    def test_negative_counters_rejected(self):
        snapshot = self._valid()
        snapshot["committed"] = -1
        assert validate_snapshot(snapshot)

    def test_non_dict_rejected(self):
        assert validate_snapshot([1, 2]) == ["snapshot is not a JSON object"]

    def test_read_snapshots_missing_file(self, tmp_path):
        assert read_snapshots(str(tmp_path / "absent.ndjson")) == []

    def test_read_snapshots_skips_garbage(self, tmp_path):
        path = tmp_path / "s.ndjson"
        path.write_text('{"seq": 0}\nnot json\n[1]\n{"seq": 1}\n')
        assert read_snapshots(str(path)) == [{"seq": 0}, {"seq": 1}]


def _strip_obs(counters):
    return {name: value for name, value in counters.items()
            if not name.startswith("obs.")}


class TestBitIdentity:
    """The acceptance criterion: REPRO_LIVE on/off changes nothing."""

    def _snapshots(self, path):
        snapshots = read_snapshots(str(path))
        assert snapshots, "publisher wrote no snapshots"
        for snapshot in snapshots:
            assert validate_snapshot(snapshot) == []
        seqs = [s["seq"] for s in snapshots]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        committed = [s["committed"] for s in snapshots]
        assert committed == sorted(committed)
        assert snapshots[-1]["state"] == "done"
        return snapshots

    def test_full_detail(self, tmp_path, monkeypatch):
        baseline = run_simulation(CONFIG, BENCH, max_instructions=N)
        path = tmp_path / "live.ndjson"
        monkeypatch.setenv("REPRO_LIVE_PATH", str(path))
        monkeypatch.setenv("REPRO_LIVE_EVERY", "100")
        live = run_simulation(CONFIG, BENCH, max_instructions=N)
        assert live.cycles == baseline.cycles
        assert live.committed == baseline.committed
        assert live.counters == baseline.counters
        snapshots = self._snapshots(path)
        assert all(s["mode"] == "full" for s in snapshots)
        assert snapshots[-1]["committed"] == baseline.committed

    def test_sampled(self, tmp_path, monkeypatch):
        sampling = SamplingConfig(period=3, unit=400, warmup=100)
        baseline = run_simulation(CONFIG, BENCH, max_instructions=6000,
                                  sampling=sampling)
        path = tmp_path / "live.ndjson"
        monkeypatch.setenv("REPRO_LIVE", "1")
        monkeypatch.setenv("REPRO_LIVE_PATH", str(path))
        live = run_simulation(CONFIG, BENCH, max_instructions=6000,
                              sampling=sampling)
        assert live.cycles == baseline.cycles
        assert live.committed == baseline.committed
        assert live.counters == baseline.counters
        snapshots = self._snapshots(path)
        assert all(s["mode"] == "sampled" for s in snapshots)
        final = snapshots[-1]
        assert final["sampling"]["units_total"] >= final["sampling"]["unit"]
        assert "cpi_mean" in final["sampling"]

    def test_checkpointed(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKPOINT_DIR",
                           str(tmp_path / "ckpt_base"))
        baseline = run_simulation(CONFIG, BENCH, max_instructions=N,
                                  checkpoint_every=500)
        monkeypatch.setenv("REPRO_CHECKPOINT_DIR",
                           str(tmp_path / "ckpt_live"))
        path = tmp_path / "live.ndjson"
        live = run_simulation(CONFIG, BENCH, max_instructions=N,
                              checkpoint_every=500,
                              live=LiveConfig(path=str(path), every=100))
        assert live.cycles == baseline.cycles
        assert live.counters == baseline.counters
        snapshots = self._snapshots(path)
        assert snapshots[-1]["checkpoint"] is not None

    def test_explicit_true_uses_default_path(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        result = run_simulation(CONFIG, BENCH, max_instructions=N,
                                live=True)
        assert result.committed > 0
        assert read_snapshots(default_path())


class TestLiveTelemetryUnit:
    def test_ring_bounded_by_history(self, tmp_path):
        path = str(tmp_path / "ring.ndjson")
        telemetry = LiveTelemetry(LiveConfig(path=path, every=1,
                                             history=5))
        processor = _processor()
        for _ in range(12):
            telemetry.publish(processor)
        assert len(read_snapshots(path)) == 5

    def test_notes_ride_along(self, tmp_path):
        path = str(tmp_path / "n.ndjson")
        telemetry = LiveTelemetry(LiveConfig(path=path))
        telemetry.note_checkpoint(3)
        telemetry.note_sampling(unit=2, units_total=9)
        telemetry.publish(_processor())
        snapshot = read_snapshots(path)[-1]
        assert snapshot["checkpoint"] == 3
        assert snapshot["sampling"] == {"unit": 2, "units_total": 9}

    def test_write_failure_is_swallowed(self, tmp_path):
        target = tmp_path / "dir.ndjson"
        target.mkdir()  # os.replace onto a directory fails
        telemetry = LiveTelemetry(LiveConfig(path=str(target)))
        telemetry.publish(_processor())  # must not raise
        assert not list(tmp_path.glob("*.tmp.*")), "tmp file leaked"


def _processor():
    """A tiny real processor mid-run, for publisher unit tests."""
    from repro.config import frontend_config
    from repro.core.processor import Processor
    from repro.sampling import prep

    program, execution, _ = prep.get_oracle(BENCH, 400)
    processor = Processor(frontend_config(CONFIG), program,
                          execution.stream)
    processor.run_until(200)
    return processor


class TestSweepFleet:
    class _Result:
        committed = 1000
        cycles = 500
        ipc = 2.0

    class _Job:
        @staticmethod
        def describe():
            return "cfg/bench/n=1"

    def test_hooks_accumulate(self, tmp_path):
        fleet = SweepFleet(LiveConfig(path=str(tmp_path / "f.ndjson")),
                           jobs_total=4, tag="t1")
        fleet.note_done(self._Job(), self._Result(), 1.5)
        fleet.observe("cached", self._Job(), {"source": "disk"})
        fleet.observe("retry", self._Job(), {"attempt": 2})
        fleet.observe("failure", self._Job(), {"error": "Boom"})
        snapshot = fleet.snapshot("done")
        assert snapshot["jobs_done"] == 1
        assert snapshot["cache_hits"] == 1
        assert snapshot["retries"] == 1
        assert snapshot["jobs_failed"] == 1
        assert snapshot["committed"] == 1000
        assert snapshot["ipc"] == 2.0
        statuses = {row["status"] for row in snapshot["jobs"]}
        assert {"done", "disk", "FAILED:Boom"} <= statuses

    def test_publishes_readable_file(self, tmp_path):
        path = str(tmp_path / "fleet.ndjson")
        fleet = SweepFleet(LiveConfig(path=path), jobs_total=2)
        fleet.publish()
        fleet.note_done(self._Job(), self._Result(), 0.5)
        fleet.publish_final()
        snapshots = read_snapshots(path)
        assert [s["seq"] for s in snapshots] == sorted(
            s["seq"] for s in snapshots)
        assert snapshots[-1]["state"] == "done"
        assert snapshots[-1]["jobs_total"] == 2

    def test_render_fleet_lines(self, tmp_path):
        fleet = SweepFleet(LiveConfig(path=str(tmp_path / "f.ndjson")),
                           jobs_total=3, tag="sweep-x")
        fleet.note_done(self._Job(), self._Result(), 0.5)
        lines = render_fleet_lines(fleet.snapshot(), fleet.history())
        text = "\n".join(lines)
        assert "sweep-x" in text and "1/3" in text
        assert "executed=1" in text and "cfg/bench/n=1" in text
        # render_lines must delegate fleet-shaped snapshots.
        assert render_lines(fleet.snapshot(), [])[0].startswith("fleet")


class TestRunSweepObserver:
    def test_observer_sees_cache_hits_and_survives_errors(self, tmp_path):
        from repro.experiments.runner import (
            ResultCache,
            SWEEP_STATS,
            SweepJob,
            run_sweep,
        )
        cache = ResultCache(directory=str(tmp_path / "cache"))
        jobs = [SweepJob(CONFIG, BENCH, 400)]
        events = []

        def observer(kind, job, info):
            events.append((kind, info.get("source")))
            raise RuntimeError("observer bug")  # must never fail a sweep

        first = run_sweep(jobs, workers=1, cache=cache, observer=observer)
        assert not first.failures and events == []
        errors = SWEEP_STATS.get("sweep.observer_errors")
        second = run_sweep(jobs, workers=1, cache=cache,
                           observer=observer)
        assert not second.failures
        assert events == [("cached", "disk")]
        assert SWEEP_STATS.get("sweep.observer_errors") > errors


class TestAttachSources:
    def test_file_source_tracks_seq(self, tmp_path):
        path = tmp_path / "s.ndjson"
        path.write_text('{"seq": 0}\n{"seq": 1}\n')
        source = FileSource(str(path))
        assert [s["seq"] for s in source.poll()] == [0, 1]
        assert source.poll() == []  # nothing new
        path.write_text('{"seq": 1}\n{"seq": 2}\n')
        assert [s["seq"] for s in source.poll()] == [2]

    def test_resolve_pid_prefers_run_then_sweep(self, tmp_path,
                                                monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert resolve_source("1234").path == default_path(1234)
        os.makedirs(os.path.dirname(default_sweep_path(1234)),
                    exist_ok=True)
        with open(default_sweep_path(1234), "w") as handle:
            handle.write("{}\n")
        assert resolve_source("1234").path == default_sweep_path(1234)

    def test_resolve_path_verbatim(self):
        assert resolve_source("some/file.ndjson").path == \
            "some/file.ndjson"

    def test_snapshot_once_validates_simulation_shape(self, tmp_path):
        path = tmp_path / "s.ndjson"
        path.write_text('{"seq": 0, "gauges": {}}\n')
        newest, problems = snapshot_once(FileSource(str(path)))
        assert newest["seq"] == 0 and problems  # missing required keys

    def test_snapshot_once_fleet_shape_skips_validator(self, tmp_path):
        path = tmp_path / "s.ndjson"
        path.write_text('{"seq": 0, "jobs_done": 1}\n')
        newest, problems = snapshot_once(FileSource(str(path)))
        assert newest and problems == []


class TestRendering:
    def test_sparkline_and_bar(self):
        assert len(sparkline([1.0, 2.0, 3.0], 10)) == 10
        assert sparkline([], 5) == " " * 5
        assert bar(0, 10, 8) == "[--------]"
        assert bar(10, 10, 8) == "[########]"
        assert bar(5, 0, 4).count("#") == 4  # limitless clamps to value

    def test_render_simulation_snapshot(self, tmp_path, monkeypatch):
        path = tmp_path / "live.ndjson"
        monkeypatch.setenv("REPRO_LIVE_PATH", str(path))
        monkeypatch.setenv("REPRO_LIVE_EVERY", "100")
        run_simulation(CONFIG, BENCH, max_instructions=N)
        snapshots = read_snapshots(str(path))
        text = "\n".join(render_lines(snapshots[-1], snapshots))
        assert f"{CONFIG}/{BENCH}" in text and "[done]" in text
        assert "fragbuf.occupancy" in text and "window.used" in text
        assert "IPC" in text


class TestAttachCli:
    def _publish(self, tmp_path, monkeypatch):
        path = tmp_path / "live.ndjson"
        monkeypatch.setenv("REPRO_LIVE_PATH", str(path))
        monkeypatch.setenv("REPRO_LIVE_EVERY", "100")
        run_simulation(CONFIG, BENCH, max_instructions=N)
        return path

    def test_once_json_valid_snapshot(self, tmp_path, monkeypatch,
                                      capsys):
        from repro.__main__ import main
        path = self._publish(tmp_path, monkeypatch)
        assert main(["attach", str(path), "--once", "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert validate_snapshot(snapshot) == []
        assert snapshot["state"] == "done"

    def test_once_text(self, tmp_path, monkeypatch, capsys):
        from repro.__main__ import main
        path = self._publish(tmp_path, monkeypatch)
        assert main(["attach", str(path), "--once"]) == 0
        assert "committed" in capsys.readouterr().out

    def test_missing_telemetry_exit_code(self, tmp_path, capsys):
        from repro.__main__ import main
        assert main(["attach", str(tmp_path / "nope.ndjson"),
                     "--once", "--json"]) == 2


def _with_service(tmp_path, scenario, **config_kwargs):
    from repro.service.client import ServiceClient
    from repro.service.server import ServiceConfig, SweepService

    config_kwargs.setdefault("sweep_workers", 1)
    config_kwargs.setdefault("cache_dir", str(tmp_path / "svc_cache"))

    async def main():
        service = SweepService(ServiceConfig(port=0, **config_kwargs))
        await service.start()
        client = ServiceClient(port=service.port, timeout=120.0)
        try:
            return await scenario(service, client)
        finally:
            service.request_shutdown()
            await service.serve_forever()

    return asyncio.run(main())


class TestServiceMetrics:
    def test_stream_is_monotonic_and_terminal(self, tmp_path):
        from repro.experiments.runner import SweepJob

        async def scenario(service, client):
            jobs = [SweepJob(CONFIG, BENCH, 400),
                    SweepJob(CONFIG, "vortex", 400)]
            record = await client.submit(jobs)
            snapshots = []
            async for snapshot in client.metrics(record["id"]):
                snapshots.append(snapshot)
            return snapshots

        snapshots = _with_service(tmp_path, scenario)
        assert snapshots
        seqs = [s["seq"] for s in snapshots]
        assert seqs == list(range(len(seqs)))
        committed = [s["committed"] for s in snapshots]
        assert committed == sorted(committed)
        assert committed[-1] > 0
        final = snapshots[-1]
        assert final["state"] == "done"
        assert final["jobs_total"] == 2
        assert final["jobs_done"] + final["cache_hits"] == 2
        assert final["jobs_failed"] == 0

    def test_unknown_job_404(self, tmp_path):
        from repro.service.client import ServiceError

        async def scenario(service, client):
            with pytest.raises(ServiceError) as info:
                async for _ in client.metrics("no-such-id"):
                    pass
            return info.value.status

        assert _with_service(tmp_path, scenario) == 404

    def test_stats_gauges(self, tmp_path):
        async def scenario(service, client):
            return await client.stats()

        stats = _with_service(tmp_path, scenario, max_active=3)
        gauges = stats["gauges"]
        assert gauges["queue_depth"] == 0
        assert gauges["executor"]["max"] == 3
        assert 0.0 <= gauges["executor"]["utilization"] <= 1.0
        assert "cache_hit_rate" in gauges
        assert "lag_seconds" in gauges["journal"]


class TestCheckpointTimers:
    def test_store_and_load_timed(self, tmp_path, monkeypatch):
        from repro.checkpoint import CHECKPOINT_STATS
        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path))
        before = {name: CHECKPOINT_STATS.get(name) for name in
                  ("checkpoint.store_seconds", "checkpoint.bytes",
                   "checkpoint.load_seconds")}
        run_simulation(CONFIG, BENCH, max_instructions=N,
                       checkpoint_every=500)
        assert CHECKPOINT_STATS.get("checkpoint.store_seconds") > \
            before["checkpoint.store_seconds"]
        assert CHECKPOINT_STATS.get("checkpoint.bytes") > \
            before["checkpoint.bytes"]

    def test_load_timed(self, tmp_path):
        # A completed run clears its snapshots, so drive the restore
        # path directly: store one snapshot, read it back.
        from repro.checkpoint import (
            CHECKPOINT_STATS,
            CheckpointManager,
            ProcessorSnapshot,
        )
        manager = CheckpointManager("fp-live-test",
                                    directory=tmp_path)
        snapshot = ProcessorSnapshot.capture(_processor(),
                                            manager.fingerprint)
        manager.store(snapshot, ordinal=0)
        before = CHECKPOINT_STATS.get("checkpoint.load_seconds")
        assert manager.latest() is not None
        assert CHECKPOINT_STATS.get("checkpoint.load_seconds") > before


class TestLoadReportPercentiles:
    def test_percentiles_in_dict_and_text(self):
        from repro.service.loadgen import LoadReport
        report = LoadReport()
        report.latencies = [i / 1000.0 for i in range(1, 101)]
        data = report.to_dict()
        assert data["latency_p50_ms"] == pytest.approx(50.0, abs=2.0)
        assert data["latency_p95_ms"] == pytest.approx(95.0, abs=2.0)
        assert data["latency_p99_ms"] == pytest.approx(99.0, abs=2.0)
        assert data["latency_max_ms"] == pytest.approx(100.0, abs=1.0)
        assert data["latency_p50_ms"] <= data["latency_p95_ms"] \
            <= data["latency_p99_ms"] <= data["latency_max_ms"]
        text = report.format_text()
        assert "latency_p99_ms" in text

    def test_empty_latencies(self):
        from repro.service.loadgen import LoadReport
        assert LoadReport().to_dict()["latency_p99_ms"] == 0.0


class TestProfilerUnderSampledEngine:
    """Satellite: the phase profiler stays live across the sampled
    engine's run_until/restart_at resumes and gap fast-forwards."""

    SAMPLING = SamplingConfig(period=3, unit=400, warmup=100)

    def test_profiler_counters_present_and_identity_held(self):
        from repro.config import ObservabilityConfig
        from repro.obs import Observability

        baseline = run_simulation(CONFIG, BENCH, max_instructions=6000,
                                  sampling=self.SAMPLING)
        obs = Observability(ObservabilityConfig(profile=True))
        profiled = run_simulation(CONFIG, BENCH, max_instructions=6000,
                                  sampling=self.SAMPLING,
                                  observability=obs)
        assert profiled.cycles == baseline.cycles
        assert profiled.committed == baseline.committed
        assert _strip_obs(profiled.counters) == baseline.counters
        # Detailed phases accumulated across every measured unit...
        for phase in ("execute", "commit", "rename", "fetch"):
            assert profiled.counter(f"obs.profile.{phase}.calls") > 0
        # ...and the functional gap warming is attributed too.
        assert profiled.counter("obs.profile.warm.calls") > 0
        assert profiled.counter("obs.profile.total_seconds") > 0
